"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one paper table/figure (quick grid), asserts
its reproduction-target *shape*, and writes the rendered rows/series to
``benchmarks/results/<figure>.txt`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import telemetry
from repro.experiments.figures import NURSERY_SCALE
from repro.experiments.runner import ExperimentRunner

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _benchmark_telemetry():
    """Benchmarks opt into metrics (the library default stays off)."""
    with telemetry.session():
        yield


def save_result(result) -> None:
    """Persist a FigureResult's rendered text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.figure_id}.txt"
    path.write_text(str(result) + "\n")


def save_text(name: str, text: str) -> Path:
    """Persist arbitrary rendered text under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def append_text(name: str, text: str) -> Path:
    """Append a section to a results file (tests sharing one report)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    existing = path.read_text() if path.exists() else ""
    path.write_text(existing + text + "\n")
    return path


@pytest.fixture(scope="session")
def breakdown_runner():
    """Runner shared by the breakdown figures (scale 1)."""
    return ExperimentRunner(scale=1, trace_cache_size=3)


@pytest.fixture(scope="session")
def sweep_runner():
    """Runner shared by the microarchitecture sweep figures."""
    return ExperimentRunner(scale=1, trace_cache_size=3,
                            state_cache_size=24)


@pytest.fixture(scope="session")
def nursery_runner():
    """Runner shared by the nursery-study figures (scaled workloads)."""
    return ExperimentRunner(scale=NURSERY_SCALE, trace_cache_size=2,
                            state_cache_size=8)
