"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one paper table/figure (quick grid), asserts
its reproduction-target *shape*, and writes the rendered rows/series to
``benchmarks/results/<figure>.txt`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.figures import NURSERY_SCALE
from repro.experiments.runner import ExperimentRunner

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(result) -> None:
    """Persist a FigureResult's rendered text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.figure_id}.txt"
    path.write_text(str(result) + "\n")


@pytest.fixture(scope="session")
def breakdown_runner():
    """Runner shared by the breakdown figures (scale 1)."""
    return ExperimentRunner(scale=1, trace_cache_size=3)


@pytest.fixture(scope="session")
def sweep_runner():
    """Runner shared by the microarchitecture sweep figures."""
    return ExperimentRunner(scale=1, trace_cache_size=3,
                            state_cache_size=24)


@pytest.fixture(scope="session")
def nursery_runner():
    """Runner shared by the nursery-study figures (scaled workloads)."""
    return ExperimentRunner(scale=NURSERY_SCALE, trace_cache_size=2,
                            state_cache_size=8)
