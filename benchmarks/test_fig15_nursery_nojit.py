"""Figure 15: per-benchmark nursery sweeps, PyPy without JIT.

Shape target: without the JIT the interpreter overhead dilutes cache
effects, so the curves are flatter than Figure 14's and a cache-sized
nursery is generally adequate (paper Section V-B).
"""

from conftest import save_result
from repro.experiments import figures


def test_fig15(benchmark, nursery_runner):
    result = benchmark.pedantic(
        figures.fig15, kwargs={"runner": nursery_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    series = result.data["series"]
    # Flatter curves: the per-benchmark spread at the largest nursery is
    # smaller without JIT than the same benchmarks show with JIT.
    spread = max(values[-1] for values in series.values()) \
        - min(values[-1] for values in series.values())
    assert spread < 1.0
    # All normalized values stay in a sane band.
    for name, values in series.items():
        assert all(0.2 < v < 5.0 for v in values), (name, values)
