"""Table I: the simulated machine configuration."""

from conftest import save_result
from repro.experiments import figures


def test_table1(benchmark):
    result = benchmark.pedantic(figures.table1, rounds=1, iterations=1)
    save_result(result)
    print(result)
    config = result.data["config"]
    assert config.l3.size == 2 * 1024 * 1024
    assert config.core.issue_width == 4
    assert config.memory.latency == 173
