"""Figure 8: per-benchmark CPI sweeps on PyPy with JIT.

Shape target: "the performance impacts of microarchitecture parameter
changes depend on individual application characteristics" — the
benchmarks must not all respond identically.
"""

from conftest import save_result
from repro.experiments import figures


def test_fig8(benchmark, sweep_runner):
    result = benchmark.pedantic(
        figures.fig8, kwargs={"runner": sweep_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    cache_series = result.data["series"]["cache_size"]
    # Per-benchmark sensitivity to cache size differs meaningfully.
    benefits = {name: values[0] / values[-1]
                for name, values in cache_series.items()}
    spread = max(benefits.values()) - min(benefits.values())
    assert spread > 0.05, benefits
    # Every benchmark produces a positive CPI at every point.
    for axis, series in result.data["series"].items():
        for name, values in series.items():
            assert all(v > 0 for v in values), (axis, name)
