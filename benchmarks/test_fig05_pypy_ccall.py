"""Figure 5: C function call overhead persists under PyPy's JIT.

Shape targets: the average C-call share on the PyPy model is positive
but clearly below the CPython model's (paper: 7.5% vs 18.4%) — the JIT
inlines interpreter helpers but cannot inline external C functions.
"""

from conftest import save_result
from repro.analysis.breakdown import breakdown_for_run
from repro.experiments import figures
from repro.workloads import BREAKDOWN_QUICK_SUITE


def test_fig5(benchmark, breakdown_runner):
    result = benchmark.pedantic(
        figures.fig5, kwargs={"runner": breakdown_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    pypy_avg = result.data["average"]
    assert 0.005 < pypy_avg < 0.25

    cpython_total = 0.0
    for name in BREAKDOWN_QUICK_SUITE:
        handle = breakdown_runner.run(name, runtime="cpython")
        cpython_total += breakdown_for_run(handle).c_function_call_share
    cpython_avg = cpython_total / len(BREAKDOWN_QUICK_SUITE)
    assert pypy_avg < cpython_avg
