"""Figure 4: CPython overhead breakdown.

Shape targets (paper values in parentheses):
* identified overheads are the majority of execution (64.9%);
* C function call is the top interpreter-operation category (18.4%)
  with dispatch also major (14.2%);
* indirect calls are a minority of the C-call overhead (11.9% of it);
* C library time is a small overall average (7.0%) but dominates the
  pickle/regex family (>64%).
"""

from conftest import save_result
from repro.categories import INTERPRETER_CATEGORIES, OverheadCategory
from repro.experiments import figures


def test_fig4(benchmark, breakdown_runner):
    result = benchmark.pedantic(
        figures.fig4, kwargs={"runner": breakdown_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    averages = result.data["averages"]

    # Overheads dominate execution, same side of 50% as the paper.
    assert 0.50 < result.data["overhead_avg"] < 0.95

    # C function call: the paper's headline new category is the largest
    # interpreter operation.
    interp = {c: averages.get(c, 0.0) for c in INTERPRETER_CATEGORIES}
    assert max(interp, key=interp.get) == OverheadCategory.C_FUNCTION_CALL
    assert interp[OverheadCategory.C_FUNCTION_CALL] > 0.10

    # Dispatch is the other major interpreter overhead.
    assert interp[OverheadCategory.DISPATCH] > 0.05

    # Indirect calls are a clear minority of the C-call overhead.
    assert 0.0 < result.data["indirect_of_ccall"] < 0.5
    assert result.data["indirect_of_total"] < 0.1

    # Name resolution tops the dynamic-language features on average.
    assert averages.get(OverheadCategory.NAME_RESOLUTION, 0.0) > 0.02

    # The quick suite includes one pickle workload: C-library dominated.
    pickle_bd = result.data["breakdowns"]["pickle_list"]
    assert pickle_bd.c_library_share > 0.5
