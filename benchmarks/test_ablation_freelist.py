"""Ablation: CPython's freelist recycling vs pure bump allocation.

Section V-A observes that CPython does not need a large cache. The
mechanism is the obmalloc freelist: a dealloc/alloc pair returns a
recently touched address. Disabling recycling turns the heap into a
bump allocator and the locality (and small-cache tolerance) disappears.
"""

from conftest import save_result
from repro.analysis.report import render_table
from repro.config import skylake_config
from repro.experiments.figures import FigureResult
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.uarch import SimulatedSystem
from repro.vm.cpython import CPythonVM
from repro.workloads import get_workload

WORKLOADS = ("tuple_gc", "float", "sym_str")


def _run(name, recycle):
    program = compile_source(get_workload(name).source(2), name)
    machine = HostMachine(AddressSpace(), max_instructions=60_000_000)
    vm = CPythonVM(machine, program, recycle_freelist=recycle)
    vm.run()
    # Simple core: every store fill is charged, so the locality loss is
    # visible without the OOO core's write buffering hiding it.
    small_cache = skylake_config().with_llc_size(256 * 1024)
    result = SimulatedSystem(small_cache).run(machine.trace, core="simple")
    return result, machine.space.heap.used


def ablation():
    rows = []
    data = {}
    for name in WORKLOADS:
        with_fl, heap_fl = _run(name, recycle=True)
        without_fl, heap_bump = _run(name, recycle=False)
        slowdown = without_fl.cycles / with_fl.cycles
        data[name] = {
            "slowdown": slowdown,
            "heap_growth": heap_bump / max(1, heap_fl),
            "misses_with": with_fl.cache_stats["L3"].misses,
            "misses_without": without_fl.cache_stats["L3"].misses,
        }
        rows.append([
            name, f"{slowdown:.3f}x", f"{heap_bump / max(1, heap_fl):.1f}x",
            with_fl.cache_stats["L3"].misses,
            without_fl.cache_stats["L3"].misses,
        ])
    rendered = render_table(
        ["workload", "slowdown w/o freelist", "heap growth",
         "LLC misses (freelist)", "LLC misses (bump)"],
        rows,
        title="Ablation: freelist recycling off (256 kB LLC, simple core)")
    return FigureResult("ablation_freelist", "freelist ablation",
                        rendered, data)


def test_ablation_freelist(benchmark):
    result = benchmark.pedantic(ablation, rounds=1, iterations=1)
    save_result(result)
    print(result)
    for name, entry in result.data.items():
        # Without recycling the heap footprint explodes ...
        assert entry["heap_growth"] > 2.0, name
        # ... and allocation-heavy programs must not get faster.
        assert entry["slowdown"] > 0.98, name
        # ... and the cold bump stream misses more.
        assert entry["misses_without"] > entry["misses_with"], name
    # At least one workload slows down visibly.
    assert any(e["slowdown"] > 1.02 for e in result.data.values())
