"""Distributed-queue smoke target: a real multi-worker campaign.

One end-to-end proof, written to ``benchmarks/results/queue_smoke.txt``:
a quick Figure 5 grid is published as queue cells and drained by three
``python -m repro work`` subprocesses sharing the coordinator's disk
cache, then compared byte-for-byte against a plain serial run. The
wall-clock of both paths and the queue recovery counters land in the
results file so fabric overhead and recovery work are diffable run to
run.

The fleet here is healthy (no injected faults — the chaos variants live
in ``tests/test_queue.py``); what this target watches is the *overhead*
of the lease protocol: publish + claim + journal + poll should not make
a 3-worker campaign slower than serial by more than the fixed grid cost.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from conftest import save_text

from repro import telemetry
from repro.experiments.diskcache import cache_root
from repro.experiments.figures import fig5
from repro.experiments.parallel import use_executor
from repro.experiments.queue import (
    QueueExecutor,
    WorkQueue,
    campaign_id,
    queue_root,
)
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _spawn_worker(queue_dir: Path) -> subprocess.Popen:
    env = {**os.environ,
           "PYTHONPATH": _SRC + (os.pathsep + os.environ["PYTHONPATH"]
                                 if os.environ.get("PYTHONPATH") else "")}
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "work",
         "--queue", str(queue_dir), "--idle-exit", "60"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _queue_counters() -> dict:
    snapshot = TELEMETRY.metrics.snapshot()
    return {k: v for k, v in sorted(snapshot.items())
            if k.startswith("queue.") and not isinstance(v, dict)}


def test_queue_smoke(tmp_path, monkeypatch):
    telemetry.reset()
    monkeypatch.delenv("REPRO_FAULTS", raising=False)

    # -- serial baseline (its own cache root) ---------------------------
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    t0 = time.monotonic()
    serial = fig5(ExperimentRunner(), quick=True, jobs=1)
    serial_wall = time.monotonic() - t0

    # -- same grid drained by a 3-worker fleet --------------------------
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dist"))
    queue = WorkQueue(queue_root() / campaign_id(["fig5"], True),
                      ttl=10.0).ensure(
        extra={"cache_dir": str(cache_root())})
    fleet = [_spawn_worker(queue.directory) for _ in range(3)]
    try:
        executor = QueueExecutor(queue, grace_seconds=120.0,
                                 poll_seconds=0.05)
        t0 = time.monotonic()
        with use_executor(executor):
            distributed = fig5(ExperimentRunner(), quick=True, jobs=1)
        distributed_wall = time.monotonic() - t0
    finally:
        queue.close("complete")
        for proc in fleet:
            if proc.poll() is None:
                proc.terminate()
        for proc in fleet:
            proc.wait(timeout=30)

    assert distributed.rendered == serial.rendered
    assert distributed.data == serial.data

    results = queue.results()
    workers = sorted({record.get("worker", "?")
                      for record in results.values()})
    counters = _queue_counters()
    # queue.completed lives in the worker processes; the coordinator
    # sees its own publishes and the journaled results they produced.
    assert counters.get("queue.published", 0) >= 1
    assert len(results) >= 1
    assert queue.counts()["poison"] == 0

    lines = [
        "queue smoke: quick fig5 grid, 3 `repro work` subprocess "
        "peers vs serial",
        "",
        f"serial      : {serial_wall:6.2f}s (jobs=1, no queue)",
        f"distributed : {distributed_wall:6.2f}s (3 workers over the "
        "lease queue)",
        f"  rendered output identical to serial run: "
        f"{distributed.rendered == serial.rendered}",
        f"  cells journaled: {len(results)}",
        f"  completing workers: {', '.join(workers)}",
        f"  poisoned cells: {queue.counts()['poison']}",
        "",
        "queue counters:",
    ]
    lines += [f"  {key}: {value}" for key, value in counters.items()]
    path = save_text("queue_smoke", "\n".join(lines))
    assert path.exists()
