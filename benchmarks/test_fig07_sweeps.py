"""Figure 7: CPI vs microarchitecture parameters, three run-times.

Shape targets from the paper:
* all run-times are relatively insensitive to issue width (low ILP);
* a small branch predictor hurts the interpreters more than the JIT;
* cache size and memory parameters matter most for PyPy with JIT;
* PyPy-with-JIT CPI exceeds the interpreters' CPI (fewer instructions,
  each more memory-bound).
"""

from conftest import save_result
from repro.experiments import figures


def _relative_span(values):
    low, high = min(values), max(values)
    return (high - low) / low if low else 0.0


def test_fig7(benchmark, sweep_runner):
    result = benchmark.pedantic(
        figures.fig7, kwargs={"runner": sweep_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    sweep = result.data["sweep"]

    # (a) Issue width: low ILP -> CPI barely moves for every runtime.
    for label, series in sweep.series("issue_width").items():
        assert _relative_span(series) < 0.35, (label, series)

    # (b) Branch tables: shrinking the predictor hurts the interpreters
    # more than the JIT (paper Section V-A).
    branch = sweep.series("branch_scale")
    cpython_hit = branch["cpython"][0] / branch["cpython"][-1]
    jit_hit = branch["pypy-jit"][0] / branch["pypy-jit"][-1]
    assert cpython_hit >= jit_hit - 0.02

    # (c) Cache size: the JIT depends on it far more than CPython.
    cache = sweep.series("cache_size")
    jit_cache_benefit = cache["pypy-jit"][0] / cache["pypy-jit"][-1]
    cpython_cache_benefit = cache["cpython"][0] / cache["cpython"][-1]
    assert jit_cache_benefit > cpython_cache_benefit

    # (e) Memory latency: the JIT is the most sensitive runtime.
    latency = sweep.series("memory_latency")
    jit_slope = latency["pypy-jit"][-1] / latency["pypy-jit"][0]
    cpython_slope = latency["cpython"][-1] / latency["cpython"][0]
    assert jit_slope > cpython_slope

    # Overall CPI ordering at the baseline machine: PyPy w/ JIT executes
    # fewer, slower instructions (paper Section V-A).
    baseline_idx = 1  # middle point of the quick axes = baseline-ish
    assert sweep.series("memory_latency")["pypy-jit"][0] > \
        sweep.series("memory_latency")["cpython"][0] * 0.9

    # Phase breakdown exists and the GC phase differs from compiled code.
    phases = result.data["phases"]
    assert set(phases) >= {"bytecode_interpreter", "garbage_collection",
                           "jit_compiled_code", "overall"}
    assert phases["jit_compiled_code"] > 0
