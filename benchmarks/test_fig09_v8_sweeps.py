"""Figure 9: V8 CPI sweeps show the same memory sensitivity as PyPy."""

from conftest import save_result
from repro.experiments import figures


def test_fig9(benchmark, sweep_runner):
    result = benchmark.pedantic(
        figures.fig9, kwargs={"runner": sweep_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    sweep = result.data["sweep"]
    # Issue width: flat (low ILP), like PyPy in Figure 7.
    issue = sweep.series("issue_width")["v8"]
    assert (max(issue) - min(issue)) / min(issue) < 0.35
    # Memory latency: a JIT runtime is clearly sensitive.
    latency = sweep.series("memory_latency")["v8"]
    assert latency[-1] > latency[0] * 1.05
    # Cache size helps.
    cache = sweep.series("cache_size")["v8"]
    assert cache[0] >= cache[-1]
