"""Vectorized engine speedups on a 1M-instruction guest trace.

Acceptance targets for the vectorization work, all on the same
million-instruction deltablue trace with bit-identical outputs: the
batched memory-side engines at least 5x over the scalar reference, the
OOO core at least 3x, and a warm Figure 7 sweep axis at least 2x via
the batched config walk. The measured numbers land in
``benchmarks/results/vectorized_speed.txt``; in-test assertion floors
sit below the targets so shared-runner noise does not flake the suite.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import append_text, save_text

from repro.analysis.sweeps import axis_config
from repro.config import skylake_config
from repro.experiments.runner import ExperimentRunner
from repro.uarch.branch import simulate_branches, simulate_branches_scalar
from repro.uarch.cache import (
    simulate_cache_hierarchy,
    simulate_cache_hierarchy_scalar,
)
from repro.uarch.ooo_core import ooo_cycles, ooo_cycles_scalar

_64K = 64 * 1024


def _best_of(n, fn):
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorized_speedup_on_megainstruction_trace():
    # deltablue on CPython at scale 2 emits a ~1.08M-instruction trace.
    runner = ExperimentRunner(scale=2)
    handle = runner.run("deltablue", runtime="cpython")
    arrays = handle.trace.arrays()
    config = skylake_config()
    n = len(handle.trace)
    assert n >= 1_000_000

    scalar_s, scalar_cache = _best_of(
        2, lambda: simulate_cache_hierarchy_scalar(arrays, config))
    vector_s, vector_cache = _best_of(
        3, lambda: simulate_cache_hierarchy(arrays, config,
                                            backend="auto"))
    scalar_bs, scalar_branch = _best_of(
        2, lambda: simulate_branches_scalar(arrays, config.branch))
    vector_bs, vector_branch = _best_of(
        3, lambda: simulate_branches(arrays, config.branch,
                                     backend="auto"))

    # Identical outputs first: speed means nothing if the bits differ.
    assert np.array_equal(scalar_cache.dlevel, vector_cache.dlevel)
    assert np.array_equal(scalar_cache.ilevel, vector_cache.ilevel)
    for name in scalar_cache.stats:
        assert scalar_cache.stats[name] == vector_cache.stats[name]
    assert np.array_equal(scalar_branch[0], vector_branch[0])
    assert scalar_branch[1] == vector_branch[1]

    total_scalar = scalar_s + scalar_bs
    total_vector = vector_s + vector_bs
    speedup = total_scalar / total_vector
    cache_speedup = scalar_s / vector_s
    branch_speedup = scalar_bs / vector_bs
    save_text("vectorized_speed", "\n".join([
        "vectorized memory-side speedup (deltablue, cpython, scale 2)",
        f"trace length        : {n:,} instructions",
        f"cache  scalar/vector: {scalar_s:.3f}s / {vector_s:.3f}s "
        f"({cache_speedup:.1f}x)",
        f"branch scalar/vector: {scalar_bs:.3f}s / {vector_bs:.3f}s "
        f"({branch_speedup:.1f}x)",
        f"combined            : {total_scalar:.3f}s / "
        f"{total_vector:.3f}s ({speedup:.1f}x)",
        "outputs             : bit-identical "
        "(service levels, stats, mispredicts)",
        "acceptance          : >= 5x target; assertion floor 3x "
        "for machine noise",
    ]))
    assert speedup >= 3.0, f"memory-side speedup regressed: {speedup:.2f}x"


def test_ooo_core_speedup_on_megainstruction_trace():
    """OOO core: vector backend >= 3x the scalar walk, same bits."""
    runner = ExperimentRunner(scale=2)
    handle = runner.run("deltablue", runtime="cpython")
    arrays = handle.trace.arrays()
    config = skylake_config()
    state = runner.memory_side(handle, config)
    n = len(handle.trace)
    assert n >= 1_000_000

    scalar_s, scalar_cycles = _best_of(
        2, lambda: ooo_cycles_scalar(arrays, state.dlevel, state.ilevel,
                                     state.mispredicted, config))
    vector_s, vector_cycles = _best_of(
        3, lambda: ooo_cycles(arrays, state.dlevel, state.ilevel,
                              state.mispredicted, config,
                              backend="vector"))
    assert vector_cycles == scalar_cycles
    speedup = scalar_s / vector_s
    append_text("vectorized_speed", "\n".join([
        "",
        "OOO-core speedup (deltablue, cpython, scale 2)",
        f"trace length        : {n:,} instructions",
        f"core   scalar/vector: {scalar_s:.3f}s / {vector_s:.3f}s "
        f"({speedup:.1f}x)",
        "outputs             : bit-identical cycle counts",
        "acceptance          : >= 3x on a 1M-instruction trace",
    ]))
    assert speedup >= 3.0, f"OOO-core speedup regressed: {speedup:.2f}x"


def test_config_sweep_axis_batching_speedup():
    """A warm Figure 7 axis through the batched walk >= 2x serial."""
    runner = ExperimentRunner(scale=2)
    handle = runner.run("deltablue", runtime="cpython")
    base = skylake_config()
    values = (2, 4, 8, 16, 32)
    configs = [axis_config(base, "issue_width", value)
               for value in values]
    # Warm the memory-side state (shared by the whole axis) so both
    # timings measure only the core walks, as in a warm fig7 cell.
    runner.memory_side(handle, base)

    serial_s, serial = _best_of(
        2, lambda: [runner.simulate(handle, config, core="ooo").cycles
                    for config in configs])
    batched_s, batched = _best_of(
        3, lambda: [sim.cycles for sim in runner.simulate_many_configs(
            handle, configs, core="ooo")])
    assert batched == serial
    speedup = serial_s / batched_s
    append_text("vectorized_speed", "\n".join([
        "",
        "config-axis batching (issue_width axis, warm states)",
        f"axis points         : {len(configs)}",
        f"serial / batched    : {serial_s:.3f}s / {batched_s:.3f}s "
        f"({speedup:.1f}x)",
        "outputs             : bit-identical cycle counts",
        "acceptance          : >= 2x for a warm fig7 sweep axis; "
        "assertion floor 1.5x for machine noise",
    ]))
    assert speedup >= 1.5, f"axis batching regressed: {speedup:.2f}x"


def test_guest_emission_speedup(monkeypatch):
    """Burst emission >= 5x scalar on a cache-bypassed guest run.

    Both backends interpret the same deltablue program from scratch
    (disk cache disabled, fresh runner per run) and must produce the
    same number of trace rows; the byte-level identity matrix lives in
    tests/test_emit_equivalence.py.
    """
    from repro.experiments.diskcache import DiskCache

    def fresh_run(backend):
        monkeypatch.setenv("REPRO_EMIT_BACKEND", backend)
        runner = ExperimentRunner(scale=2, disk_cache=DiskCache(None))
        handle = runner.run("deltablue", runtime="cpython")
        return handle

    def timed(n, backend):
        best = float("inf")
        handle = None
        for _ in range(n):
            start = time.perf_counter()
            handle = fresh_run(backend)
            best = min(best, time.perf_counter() - start)
        return best, handle

    scalar_s, scalar_handle = timed(2, "scalar")
    burst_s, burst_handle = timed(3, "burst")
    assert len(scalar_handle.trace) == len(burst_handle.trace)
    n = len(burst_handle.trace)
    speedup = scalar_s / burst_s
    rate = n / burst_s
    append_text("vectorized_speed", "\n".join([
        "",
        "guest emission speedup (deltablue, cpython, scale 2, "
        "cache-bypassed)",
        f"trace length        : {n:,} instructions",
        f"scalar / burst      : {scalar_s:.3f}s / {burst_s:.3f}s "
        f"({speedup:.1f}x)",
        f"burst throughput    : {rate:,.0f} instr/s emitted",
        "outputs             : identical row counts; bit identity "
        "gated in tests/test_emit_equivalence.py",
        "acceptance          : >= 5x target; assertion floor 3x "
        "for machine noise",
    ]))
    assert speedup >= 3.0, f"guest emission speedup regressed: " \
        f"{speedup:.2f}x"
