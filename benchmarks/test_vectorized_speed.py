"""Vectorized memory-side speedup on a 1M-instruction guest trace.

Acceptance target for the vectorization work: the batched engines must
be at least 5x faster than the scalar reference on a million-instruction
trace while producing identical outputs. The measured numbers land in
``benchmarks/results/vectorized_speed.txt``; the in-test assertion uses
a 3x floor so shared-runner noise does not flake the suite.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import save_text

from repro.config import skylake_config
from repro.experiments.runner import ExperimentRunner
from repro.uarch.branch import simulate_branches, simulate_branches_scalar
from repro.uarch.cache import (
    simulate_cache_hierarchy,
    simulate_cache_hierarchy_scalar,
)

_64K = 64 * 1024


def _best_of(n, fn):
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorized_speedup_on_megainstruction_trace():
    # deltablue on CPython at scale 2 emits a ~1.08M-instruction trace.
    runner = ExperimentRunner(scale=2)
    handle = runner.run("deltablue", runtime="cpython")
    arrays = handle.trace.arrays()
    config = skylake_config()
    n = len(handle.trace)
    assert n >= 1_000_000

    scalar_s, scalar_cache = _best_of(
        2, lambda: simulate_cache_hierarchy_scalar(arrays, config))
    vector_s, vector_cache = _best_of(
        3, lambda: simulate_cache_hierarchy(arrays, config,
                                            backend="auto"))
    scalar_bs, scalar_branch = _best_of(
        2, lambda: simulate_branches_scalar(arrays, config.branch))
    vector_bs, vector_branch = _best_of(
        3, lambda: simulate_branches(arrays, config.branch,
                                     backend="auto"))

    # Identical outputs first: speed means nothing if the bits differ.
    assert np.array_equal(scalar_cache.dlevel, vector_cache.dlevel)
    assert np.array_equal(scalar_cache.ilevel, vector_cache.ilevel)
    for name in scalar_cache.stats:
        assert scalar_cache.stats[name] == vector_cache.stats[name]
    assert np.array_equal(scalar_branch[0], vector_branch[0])
    assert scalar_branch[1] == vector_branch[1]

    total_scalar = scalar_s + scalar_bs
    total_vector = vector_s + vector_bs
    speedup = total_scalar / total_vector
    cache_speedup = scalar_s / vector_s
    branch_speedup = scalar_bs / vector_bs
    save_text("vectorized_speed", "\n".join([
        "vectorized memory-side speedup (deltablue, cpython, scale 2)",
        f"trace length        : {n:,} instructions",
        f"cache  scalar/vector: {scalar_s:.3f}s / {vector_s:.3f}s "
        f"({cache_speedup:.1f}x)",
        f"branch scalar/vector: {scalar_bs:.3f}s / {vector_bs:.3f}s "
        f"({branch_speedup:.1f}x)",
        f"combined            : {total_scalar:.3f}s / "
        f"{total_vector:.3f}s ({speedup:.1f}x)",
        "outputs             : bit-identical "
        "(service levels, stats, mispredicts)",
        "acceptance          : >= 5x target; assertion floor 3x "
        "for machine noise",
    ]))
    assert speedup >= 3.0, f"memory-side speedup regressed: {speedup:.2f}x"
