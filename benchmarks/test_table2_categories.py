"""Table II: the overhead taxonomy."""

from conftest import save_result
from repro.categories import NEW_CATEGORIES, OVERHEAD_CATEGORIES
from repro.experiments import figures


def test_table2(benchmark):
    result = benchmark.pedantic(figures.table2, rounds=1, iterations=1)
    save_result(result)
    print(result)
    assert len(OVERHEAD_CATEGORIES) == 14
    assert len(NEW_CATEGORIES) == 3
    assert result.rendered.count("NEW") == 3
