"""Figure 17: choosing the best nursery size per application.

Shape targets (paper: 21.4% vs 9.8%): per-application best sizing beats
the static half-cache baseline, and beats the one-size-fits-all
maximum-nursery policy.
"""

from conftest import save_result
from repro.experiments import figures


def test_fig17(benchmark, nursery_runner):
    result = benchmark.pedantic(
        figures.fig17, kwargs={"runner": nursery_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    summary = result.data["summary"]
    # Per-app best sizing can only help relative to the static baseline.
    assert summary["best_improvement"] >= 0.0
    # And it beats (or matches) blindly maximizing the nursery.
    assert summary["best_improvement"] >= \
        summary["max_nursery_improvement"] - 1e-9
    # Each workload's best normalized time is at most the baseline.
    for value in summary["per_workload"].values():
        assert value <= 1.0 + 1e-9
