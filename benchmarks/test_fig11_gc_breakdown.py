"""Figure 11: GC / non-GC / overall time vs nursery size.

Shape targets: the GC component falls monotonically-ish as the nursery
grows (fewer collections), while the non-GC component rises once the
nursery exceeds the cache (poorer locality).
"""

from conftest import save_result
from repro.experiments import figures


def test_fig11(benchmark, nursery_runner):
    result = benchmark.pedantic(
        figures.fig11, kwargs={"runner": nursery_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    ratios = result.data["ratios"]
    series = result.data["series"]
    gc = dict(zip(ratios, series["GC"]))
    nongc = dict(zip(ratios, series["Non-GC"]))
    # GC work shrinks with nursery size.
    assert gc[0.25] > gc[2.0] > gc[8.0] * 0.99
    # Non-GC time is worse past the cache than within it.
    assert nongc[2.0] > nongc[0.5]
    # Components add up to the overall series.
    for i in range(len(ratios)):
        assert abs(series["GC"][i] + series["Non-GC"][i]
                   - series["Overall"][i]) < 1e-6
