"""Figure 14: per-benchmark nursery sweeps, PyPy with JIT.

Shape target: "one sizing policy is not good for all the benchmarks" —
allocation-heavy programs (eparse) prefer large nurseries while
low-allocation programs (fannkuch) do not benefit.
"""

from conftest import save_result
from repro.experiments import figures


def test_fig14(benchmark, nursery_runner):
    result = benchmark.pedantic(
        figures.fig14, kwargs={"runner": nursery_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    ratios = result.data["ratios"]
    series = result.data["series"]
    last = {name: values[-1] for name, values in series.items()}
    # Benchmarks disagree about the largest nursery: some gain, some not.
    assert max(last.values()) - min(last.values()) > 0.03, last
    # eparse (GC-heavy parser) benefits from a large nursery.
    eparse = dict(zip(ratios, series["eparse"]))
    assert eparse[8.0] < eparse[0.25]
