"""Figure 12: nursery sweep across run-time configs and LLC sizes.

Shape targets from the paper:
* without JIT, GC contribution is small, so a cache-resident nursery is
  close to optimal;
* with JIT, large nurseries recover (GC amortization outweighs cache
  misses);
* a larger LLC shifts the trade-off toward larger nurseries.
"""

from conftest import save_result
from repro.experiments import figures


def test_fig12(benchmark, nursery_runner):
    result = benchmark.pedantic(
        figures.fig12, kwargs={"runner": nursery_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    ratios = result.data["ratios"]
    series = result.data["series"]
    jit_2mb = dict(zip(ratios, series["w/ JIT 2MB LLC"]))
    nojit_2mb = dict(zip(ratios, series["w/o JIT 2MB LLC"]))
    jit_8mb = dict(zip(ratios, series["w/ JIT 8MB LLC"]))

    # With JIT, growing the nursery from just-past-cache recovers time.
    assert jit_2mb[8.0] < jit_2mb[2.0] + 0.02

    # Without JIT, the penalty for large nurseries is not recovered as
    # strongly as with JIT (relative to the 2x point).
    jit_recovery = jit_2mb[2.0] - jit_2mb[8.0]
    nojit_recovery = nojit_2mb[2.0] - nojit_2mb[8.0]
    assert jit_recovery >= nojit_recovery - 0.05

    # A 4x larger LLC keeps larger nurseries cache-resident: at the 2x
    # point (which fits in the bigger cache) it must do no worse.
    assert jit_8mb[2.0] <= jit_2mb[2.0] + 0.05
