"""Ablation: perfect devirtualization of indirect calls.

Section IV-C.1: indirect calls account for ~11.9% of the C-call
overhead — so BTB-oriented optimizations (Casey et al., Ertl & Gregg)
"would not eliminate the majority of the C function call overhead."
This ablation converts every indirect call into a direct one (an upper
bound on those techniques) and measures how little of the C-call cost
disappears.
"""

from conftest import save_result
from repro.analysis.report import format_percent, render_table
from repro.experiments.figures import FigureResult
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.uarch import SimulatedSystem
from repro.vm.cpython import CPythonVM
from repro.workloads import get_workload

WORKLOADS = ("richards", "nqueens", "chaos")


def _run(name, devirtualize):
    program = compile_source(get_workload(name).source(1), name)
    machine = HostMachine(AddressSpace(), max_instructions=30_000_000)
    machine.devirtualize = devirtualize
    vm = CPythonVM(machine, program)
    vm.run()
    result = SimulatedSystem().run(machine.trace, core="ooo")
    return result


def ablation():
    rows = []
    data = {}
    for name in WORKLOADS:
        base = _run(name, devirtualize=False)
        devirt = _run(name, devirtualize=True)
        saved = 1.0 - devirt.cycles / base.cycles
        data[name] = {
            "saved": saved,
            "indirect_mispredicts": base.branch_stats
            .indirect_mispredicts,
        }
        rows.append([name, format_percent(saved),
                     base.branch_stats.indirect_mispredicts])
    rendered = render_table(
        ["workload", "cycles saved by devirtualizing",
         "indirect mispredicts (baseline)"],
        rows,
        title="Ablation: perfect indirect-call devirtualization "
              "(upper bound on BTB optimizations)")
    return FigureResult("ablation_indirect_calls",
                        "devirtualization ablation", rendered, data)


def test_ablation_indirect_calls(benchmark):
    result = benchmark.pedantic(ablation, rounds=1, iterations=1)
    save_result(result)
    print(result)
    for name, entry in result.data.items():
        # Devirtualizing helps a little ...
        assert entry["saved"] > -0.01, name
        # ... but removes well under half of execution time — the
        # paper's argument that BTB fixes cannot solve C-call overhead.
        assert entry["saved"] < 0.30, name
        assert entry["indirect_mispredicts"] > 0, name
