"""Figure 13: GC share of execution, with and without JIT.

Shape target: the JIT shrinks non-GC work, so the *relative* GC
contribution grows substantially (paper: 3% -> 14% average) even though
absolute GC work stays similar.
"""

from conftest import save_result
from repro.experiments import figures


def test_fig13(benchmark, nursery_runner):
    result = benchmark.pedantic(
        figures.fig13, kwargs={"runner": nursery_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    assert result.data["avg_jit"] > result.data["avg_nojit"] * 1.4
    assert 0.0 < result.data["avg_nojit"] < 0.5
    # Per-benchmark: the share grows for at least half the set — the
    # paper's own Figure 13 also shows a few benchmarks shrinking.
    shares = result.data["shares"]
    grew = sum(1 for name in shares["jit"]
               if shares["jit"][name] >= shares["nojit"][name])
    assert grew * 2 >= len(shares["jit"])
    # The allocation-heavy benchmarks grow substantially (paper: eparse
    # reaches 43-69%).
    assert shares["jit"]["eparse"] > shares["nojit"]["eparse"] * 1.2
