"""Telemetry smoke target: one quick ``chaos`` run, span tree on disk.

Writes ``benchmarks/results/telemetry_smoke.txt`` with the span
self-time tree and key metrics of a quick PyPy ``chaos`` run, so
simulator-side perf regressions (guest emission, cache sim, core sim)
become diffable run to run: the instruction counts are deterministic
and the per-stage times show where any new wall-clock went.
"""

from __future__ import annotations

import json

from conftest import save_text

from repro import telemetry
from repro.analysis.report import render_span_tree
from repro.config import skylake_config
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY
from repro.telemetry.export import build_manifest

_64K = 64 * 1024


def _hit_rate(metrics: dict, prefix: str) -> str:
    hits = sum(v for k, v in metrics.items()
               if k.startswith(f"{prefix}.hit"))
    misses = sum(v for k, v in metrics.items()
                 if k.startswith(f"{prefix}.miss"))
    total = hits + misses
    if total == 0:
        return "no accesses"
    return f"{hits}/{total} ({100 * hits / total:.0f}% hit)"


def test_telemetry_smoke():
    # Start from a clean slate inside the session-wide enablement.
    telemetry.reset()
    runner = ExperimentRunner()
    with TELEMETRY.tracer.span("telemetry_smoke"):
        handle = runner.run("chaos", runtime="pypy", jit=True,
                            nursery=_64K)
        sim = runner.simulate(handle, skylake_config(), core="ooo")
        # Same run again: in-memory hits. A fresh runner sharing the
        # cache directory: disk hits (no re-interpretation).
        runner.run("chaos", runtime="pypy", jit=True, nursery=_64K)
        runner.simulate(handle, skylake_config(), core="ooo")
        second = ExperimentRunner(disk_cache=runner.disk_cache)
        warm = second.run("chaos", runtime="pypy", jit=True,
                          nursery=_64K)
        second.simulate(warm, skylake_config(), core="ooo")

    tree = render_span_tree(TELEMETRY.tracer.tree(),
                            title="telemetry smoke: quick chaos run "
                                  "(pypy, 64 kB nursery)")
    metrics = TELEMETRY.metrics.snapshot()
    events = TELEMETRY.events
    throughput = handle.host_instructions / handle.wall_seconds
    lines = [
        tree,
        "",
        f"host instructions : {handle.host_instructions}",
        f"simulated cycles  : {sim.cycles:.0f} (CPI {sim.cpi:.2f})",
        f"guest throughput  : {throughput:,.0f} instr/s (host wall)",
        f"minor GCs         : {events.count('gc.minor.end')}",
        f"JIT traces        : {events.count('jit.trace_compile')}",
        f"guard fails       : {events.count('jit.guard_fail')}",
        "",
        "runner caches (1 fresh run + repeat + fresh-runner repeat):",
        f"  trace cache : {_hit_rate(metrics, 'runner.trace_cache')}",
        f"  state cache : {_hit_rate(metrics, 'runner.state_cache')}",
        f"  disk cache  : {_hit_rate(metrics, 'runner.disk_cache')}",
        "",
        "metrics snapshot (excerpt):",
    ]
    for key, value in metrics.items():
        if isinstance(value, dict):  # histograms: count/sum only
            lines.append(f"  {key}: count={value['count']}")
        elif key.startswith("sim.instructions_per_second"):
            lines.append(f"  {key}: {value:,.0f}")
        else:
            lines.append(f"  {key}: {value}")
    path = save_text("telemetry_smoke", "\n".join(lines))

    # Shape assertions: the whole pipeline showed up.
    assert "guest.run" in tree
    assert "sim.memory_side" in tree
    assert "sim.core" in tree
    assert events.count("gc.minor.end") >= 1
    assert events.count("jit.trace_compile") >= 1
    # The repeat hit memory; the fresh runner hit disk (when enabled).
    assert metrics.get("runner.trace_cache.hit{runtime=pypy}", 0) >= 2
    if runner.disk_cache.enabled:
        assert metrics.get("runner.disk_cache.hit{kind=trace}", 0) >= 1
        assert metrics.get("runner.disk_cache.hit{kind=state}", 0) >= 1
    manifest = build_manifest(command="benchmarks.telemetry_smoke")
    assert json.loads(json.dumps(manifest)) == manifest
    assert path.exists()
