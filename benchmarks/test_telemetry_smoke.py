"""Telemetry smoke targets: span tree, faulted campaign, perf gate.

Writes ``benchmarks/results/telemetry_smoke.txt`` in three sections:

* the span self-time tree and key metrics of a quick PyPy ``chaos``
  run, so simulator-side perf regressions (guest emission, cache sim,
  core sim) become diffable run to run;
* a faulted ``fig5`` fan-out (worker crashes + cache corruption) with
  the resilience/cache-integrity counters and the unified Chrome
  trace's worker-lane census — the observability plane exercised under
  the exact conditions it exists for;
* the perf-regression sentinel run against the committed baseline.
"""

from __future__ import annotations

import json
import os

from conftest import append_text, save_text

from repro import telemetry
from repro.analysis.report import render_span_tree
from repro.config import skylake_config
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY
from repro.telemetry.export import build_chrome_trace, build_manifest

_64K = 64 * 1024


def _hit_rate(metrics: dict, prefix: str) -> str:
    hits = sum(v for k, v in metrics.items()
               if k.startswith(f"{prefix}.hit"))
    misses = sum(v for k, v in metrics.items()
                 if k.startswith(f"{prefix}.miss"))
    total = hits + misses
    if total == 0:
        return "no accesses"
    return f"{hits}/{total} ({100 * hits / total:.0f}% hit)"


def test_telemetry_smoke(tmp_path, monkeypatch):
    # Start from a clean slate inside the session-wide enablement. A
    # fresh cache root keeps the run cold: a previous invocation's disk
    # entries would otherwise satisfy the first run and elide the
    # guest.run span this file exists to measure.
    from repro.experiments.diskcache import CACHE_DIR_ENV
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "smoke-cache"))
    telemetry.reset()
    runner = ExperimentRunner()
    with TELEMETRY.tracer.span("telemetry_smoke"):
        handle = runner.run("chaos", runtime="pypy", jit=True,
                            nursery=_64K)
        sim = runner.simulate(handle, skylake_config(), core="ooo")
        # Same run again: in-memory hits. A fresh runner sharing the
        # cache directory: disk hits (no re-interpretation).
        runner.run("chaos", runtime="pypy", jit=True, nursery=_64K)
        runner.simulate(handle, skylake_config(), core="ooo")
        second = ExperimentRunner(disk_cache=runner.disk_cache)
        warm = second.run("chaos", runtime="pypy", jit=True,
                          nursery=_64K)
        second.simulate(warm, skylake_config(), core="ooo")

    tree = render_span_tree(TELEMETRY.tracer.tree(),
                            title="telemetry smoke: quick chaos run "
                                  "(pypy, 64 kB nursery)")
    metrics = TELEMETRY.metrics.snapshot()
    events = TELEMETRY.events
    throughput = handle.host_instructions / handle.wall_seconds
    lines = [
        tree,
        "",
        f"host instructions : {handle.host_instructions}",
        f"simulated cycles  : {sim.cycles:.0f} (CPI {sim.cpi:.2f})",
        f"guest throughput  : {throughput:,.0f} instr/s (host wall)",
        f"minor GCs         : {events.count('gc.minor.end')}",
        f"JIT traces        : {events.count('jit.trace_compile')}",
        f"guard fails       : {events.count('jit.guard_fail')}",
        "",
        "runner caches (1 fresh run + repeat + fresh-runner repeat):",
        f"  trace cache : {_hit_rate(metrics, 'runner.trace_cache')}",
        f"  state cache : {_hit_rate(metrics, 'runner.state_cache')}",
        f"  disk cache  : {_hit_rate(metrics, 'runner.disk_cache')}",
        "",
        "metrics snapshot (excerpt):",
    ]
    for key, value in metrics.items():
        if isinstance(value, dict):  # histograms: count/sum only
            lines.append(f"  {key}: count={value['count']}")
        elif key.startswith("sim.instructions_per_second"):
            lines.append(f"  {key}: {value:,.0f}")
        else:
            lines.append(f"  {key}: {value}")
    path = save_text("telemetry_smoke", "\n".join(lines))

    # Shape assertions: the whole pipeline showed up.
    assert "guest.run" in tree
    assert "sim.memory_side" in tree
    assert "sim.core" in tree
    assert events.count("gc.minor.end") >= 1
    assert events.count("jit.trace_compile") >= 1
    # The repeat hit memory; the fresh runner hit disk (when enabled).
    assert metrics.get("runner.trace_cache.hit{runtime=pypy}", 0) >= 2
    if runner.disk_cache.enabled:
        assert metrics.get("runner.disk_cache.hit{kind=trace}", 0) >= 1
        assert metrics.get("runner.disk_cache.hit{kind=state}", 0) >= 1
    manifest = build_manifest(command="benchmarks.telemetry_smoke")
    assert json.loads(json.dumps(manifest)) == manifest
    assert path.exists()


def test_faulted_campaign_smoke(tmp_path, monkeypatch):
    """One faulted figure fan-out; worker lanes + recovery counters.

    Crashes hit ~30% of cell attempts and every disk-cache store is
    corrupted, so this drives pool rebuilds (possibly down to the
    isolation rung), checksum quarantines, and the cross-worker trace
    merge in a single quick run.
    """
    from repro.experiments.diskcache import CACHE_DIR_ENV
    from repro.experiments.figures import fig5
    from repro.experiments.resilience import FAULTS_ENV

    telemetry.reset()
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "faulted-cache"))
    monkeypatch.setenv(FAULTS_ENV,
                       "worker_crash:p=0.3;cache_corrupt:p=1")
    result = fig5(ExperimentRunner(), quick=True, jobs=4)
    assert result.data["shares"]

    # fig5's cells all have distinct cache keys, so its corrupted
    # stores are never read back within the run. One store + fresh-
    # runner re-read drives detection: checksum mismatch, quarantine,
    # recompute.
    ExperimentRunner().run("chaos", runtime="pypy", nursery=_64K)
    ExperimentRunner().run("chaos", runtime="pypy", nursery=_64K)

    metrics = TELEMETRY.metrics.snapshot()
    trace = build_chrome_trace()
    events = trace["traceEvents"]
    parent = os.getpid()
    worker_lanes = sorted({e["pid"] for e in events
                           if e["ph"] == "X" and e["pid"] != parent})
    retries = [e for e in events
               if e["ph"] == "i" and e["name"] == "resilience.retry"]
    done = [e for e in events
            if e["ph"] == "i" and e["name"] == "cell.done"]

    def count(prefix: str) -> int:
        return int(sum(v for k, v in metrics.items()
                       if k.startswith(prefix)))

    lines = [
        "",
        "faulted campaign (fig5 --jobs 4, worker_crash:p=0.3 + "
        "cache_corrupt:p=1):",
        f"  worker lanes      : {len(worker_lanes)} "
        f"(+ parent {parent})",
        f"  cells shipped     : {TELEMETRY.workers.snapshot()['cells']}",
        f"  retries           : {count('resilience.retries')} "
        f"({len(retries)} trace instants)",
        f"  pool rebuilds     : {count('resilience.pool_rebuilds')}",
        f"  isolated cells    : {count('resilience.isolated_cells')}",
        f"  serial cells      : {count('resilience.serial_cells')}",
        f"  cache.faults_injected  : {count('cache.faults_injected')}",
        f"  cache.checksum_mismatch: "
        f"{count('cache.checksum_mismatch')}",
        f"  cache.quarantined      : {count('cache.quarantined')}",
    ]
    append_text("telemetry_smoke", "\n".join(lines))

    # The unified trace shows the fan-out: several distinct worker
    # lanes with real spans, every recovery mirrored as an instant.
    assert len(worker_lanes) >= 2
    assert len(done) >= 1
    assert count("resilience.retries") >= 1
    assert len(retries) == count("resilience.retries")
    # Corrupt stores were detected on read-back, never trusted.
    assert count("cache.faults_injected") >= 1
    assert count("cache.checksum_mismatch") >= 1
    assert count("cache.quarantined") >= 1


def test_perf_check_smoke(tmp_path, monkeypatch):
    """The sentinel passes on the committed baseline, fails on a 2x
    degradation (simulated by doubling the baseline's expectations)."""
    from repro.experiments import perf

    telemetry.reset()
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "registry"))
    record = perf.run_probe(repeats=1)
    lines: list[str] = []
    code = perf.check(probe=False, emit=lines.append)
    append_text("telemetry_smoke", "\n" + "\n".join(lines))
    assert code == 0, "\n".join(lines)

    inflated = {"schema": 1, "config": record["config"],
                "gauges": {k: v * 2.5
                           for k, v in record["gauges"].items()},
                "categories": record["categories"]}
    bad = tmp_path / "inflated.json"
    bad.write_text(json.dumps(inflated), encoding="utf-8")
    assert perf.check(bad, probe=False, emit=lambda *_: None) == 1
