"""Simulation-throughput regression gates.

Fails the bench suite when a gated pipeline stage — ``guest`` (trace
emission by the interpreter models), ``sim.memory_side`` (cache +
branch simulation) or ``sim.core.ooo`` (the batched OOO core) — falls
below half of its checked-in baseline throughput, so a change that
quietly de-vectorizes a hot loop or de-fuses the burst emitter cannot
land unnoticed. Every stage is read from the telemetry gauge the
production pipeline updates (``sim.instructions_per_second`` for the
simulator stages, ``guest.instructions_per_second`` for emission,
``trace.codec.bytes_per_second`` for the columnar trace codec's
encode and decode paths).

Refresh the baselines on the target machine with one command:

    REPRO_REFRESH_BASELINES=1 python -m pytest \
        benchmarks/test_throughput_gate.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import save_text

from repro.config import skylake_config
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY
from repro.uarch.system import SimulatedSystem

BASELINE_PATH = Path(__file__).parent / "baselines" / "throughput.json"
REFRESH_ENV = "REPRO_REFRESH_BASELINES"

#: Fail when measured throughput drops below this fraction of baseline.
GATE_FRACTION = 0.5


def _gauge(stage: str) -> float:
    return TELEMETRY.metrics.snapshot().get(
        f"sim.instructions_per_second{{stage={stage}}}", 0.0)


def _guest_gauge() -> float:
    return TELEMETRY.metrics.snapshot().get(
        "guest.instructions_per_second{runtime=cpython}", 0.0)


def _codec_gauge(op: str) -> float:
    return TELEMETRY.metrics.snapshot().get(
        f"trace.codec.bytes_per_second{{op={op}}}", 0.0)


def _measure(repeats: int = 3, scratch: Path | None = None) -> dict:
    """Best observed throughput per gated stage, instructions/second
    (canonical bytes/second for the ``trace.codec.*`` stages)."""
    import tempfile

    from repro.experiments.diskcache import DiskCache
    from repro.host.trace import InstructionTrace
    best = {"guest": 0.0, "sim.memory_side": 0.0, "sim.core.ooo": 0.0,
            "trace.codec.encode": 0.0, "trace.codec.decode": 0.0}
    handle = None
    for _ in range(repeats):
        # A fresh cache-bypassing runner per repeat: the gauge is only
        # set by a run that actually interprets.
        bypass = ExperimentRunner(scale=2, disk_cache=DiskCache(None))
        handle = bypass.run("deltablue", runtime="cpython")
        best["guest"] = max(best["guest"], _guest_gauge())
    config = skylake_config()
    system = SimulatedSystem(config)
    state = None
    for _ in range(repeats):
        state = system.memory_side(handle.trace)
        best["sim.memory_side"] = max(best["sim.memory_side"],
                                      _gauge("memory_side"))
    for _ in range(repeats):
        SimulatedSystem.run_many_configs(
            handle.trace, [config], [state])
        best["sim.core.ooo"] = max(best["sim.core.ooo"],
                                   _gauge("core.ooo"))
    with tempfile.TemporaryDirectory(dir=scratch) as tmp:
        path = Path(tmp) / "trace.rpt"
        for _ in range(repeats):
            handle.trace.save(path, codec="v2")
            best["trace.codec.encode"] = max(
                best["trace.codec.encode"], _codec_gauge("encode"))
        for _ in range(repeats):
            loaded = InstructionTrace.load(path)
            loaded.arrays()
            loaded.close()
            best["trace.codec.decode"] = max(
                best["trace.codec.decode"], _codec_gauge("decode"))
    return {"instructions": len(handle.trace), "best": best}


def test_simulation_throughput_gates(tmp_path):
    measured = _measure(scratch=tmp_path)
    instructions = measured["instructions"]
    best = measured["best"]
    for stage, value in best.items():
        assert value > 0, f"telemetry gauge missing for {stage}"
    if os.environ.get(REFRESH_ENV, "").strip() not in ("", "0"):
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps({
            stage: {
                "instructions_per_second": value,
                "workload": "deltablue",
                "runtime": "cpython",
                "scale": 2,
                "trace_instructions": instructions,
            } for stage, value in best.items()}, indent=2) + "\n")
    baseline = json.loads(BASELINE_PATH.read_text())
    lines = ["simulation throughput gates "
             "(deltablue, cpython, scale 2)",
             f"trace length : {instructions:,} instructions"]
    failures = []
    for stage, value in best.items():
        base = baseline[stage]["instructions_per_second"]
        floor = base * GATE_FRACTION
        unit = "B/s" if stage.startswith("trace.codec") else "instr/s"
        lines.append(f"{stage:18s}: {value:,.0f} {unit} "
                     f"(baseline {base:,.0f}, gate >= {floor:,.0f})")
        if value < floor:
            failures.append(
                f"{stage} throughput {value:,.0f} instr/s is below "
                f"{GATE_FRACTION:.0%} of the checked-in baseline "
                f"({floor:,.0f} instr/s)")
    lines.append(f"refresh with : {REFRESH_ENV}=1 python -m pytest "
                 "benchmarks/test_throughput_gate.py -q")
    save_text("throughput_gate", "\n".join(lines))
    assert not failures, "; ".join(
        failures) + f"; refresh with {REFRESH_ENV}=1 if the machine " \
        "legitimately changed"
