"""Memory-side throughput regression gate.

Fails the bench suite when the ``sim.memory_side`` stage (the span the
telemetry tree attributes cache + branch simulation to) falls below
half of the checked-in baseline throughput, so a change that quietly
de-vectorizes the hot loops cannot land unnoticed.

Refresh the baseline on the target machine with one command:

    REPRO_REFRESH_BASELINES=1 python -m pytest \
        benchmarks/test_throughput_gate.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import save_text

from repro.config import skylake_config
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY
from repro.uarch.system import SimulatedSystem

BASELINE_PATH = Path(__file__).parent / "baselines" / "throughput.json"
REFRESH_ENV = "REPRO_REFRESH_BASELINES"

#: Fail when measured throughput drops below this fraction of baseline.
GATE_FRACTION = 0.5


def _measure_instructions_per_second(repeats: int = 3) -> tuple[int, float]:
    runner = ExperimentRunner(scale=2)
    handle = runner.run("deltablue", runtime="cpython")
    system = SimulatedSystem(skylake_config())
    best = 0.0
    for _ in range(repeats):
        system.memory_side(handle.trace)
        gauge = TELEMETRY.metrics.snapshot().get(
            "sim.instructions_per_second{stage=memory_side}", 0.0)
        best = max(best, gauge)
    return len(handle.trace), best


def test_memory_side_throughput_gate():
    instructions, measured = _measure_instructions_per_second()
    assert measured > 0, "telemetry gauge missing for sim.memory_side"
    if os.environ.get(REFRESH_ENV, "").strip() not in ("", "0"):
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps({
            "sim.memory_side": {
                "instructions_per_second": measured,
                "workload": "deltablue",
                "runtime": "cpython",
                "scale": 2,
                "trace_instructions": instructions,
            }}, indent=2) + "\n")
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["sim.memory_side"]["instructions_per_second"] \
        * GATE_FRACTION
    save_text("throughput_gate", "\n".join([
        "memory-side throughput gate (deltablue, cpython, scale 2)",
        f"trace length : {instructions:,} instructions",
        f"measured     : {measured:,.0f} instr/s (best of 3)",
        f"baseline     : "
        f"{baseline['sim.memory_side']['instructions_per_second']:,.0f}"
        " instr/s",
        f"gate         : >= {GATE_FRACTION:.0%} of baseline "
        f"({floor:,.0f} instr/s)",
        f"refresh with : {REFRESH_ENV}=1 python -m pytest "
        "benchmarks/test_throughput_gate.py -q",
    ]))
    assert measured >= floor, (
        f"sim.memory_side throughput {measured:,.0f} instr/s is below "
        f"{GATE_FRACTION:.0%} of the checked-in baseline "
        f"({floor:,.0f} instr/s); refresh with {REFRESH_ENV}=1 if the "
        "machine legitimately changed")
