"""Figure 6: C function call overhead generalizes to V8.

Shape target: a positive average C-call share on the V8 analog, smaller
than the CPython interpreter's (paper: 5.6% vs 18.4%).
"""

from conftest import save_result
from repro.experiments import figures


def test_fig6(benchmark, breakdown_runner):
    result = benchmark.pedantic(
        figures.fig6, kwargs={"runner": breakdown_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    assert 0.002 < result.data["average"] < 0.25
    # Every workload shows at least some residual C-call overhead.
    assert all(share >= 0.0 for share in result.data["shares"].values())
    assert sum(1 for s in result.data["shares"].values() if s > 0.005) \
        >= len(result.data["shares"]) // 2
