"""Ablation: inline caching for global name resolution.

The paper cites caching variable look-ups (ref [20]) as the fix for the
name resolution overhead it measures at 9.1% average. This ablation
enables a per-site global inline cache in the CPython model and
quantifies how much of the category it removes.
"""

from conftest import save_result
from repro.analysis.report import format_percent, render_table
from repro.categories import OverheadCategory as C
from repro.experiments.figures import FigureResult
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.pintool import compute_breakdown
from repro.vm.cpython import CPythonVM
from repro.workloads import get_workload

WORKLOADS = ("richards", "deltablue", "go", "logging_format")


def _run(name, global_cache):
    program = compile_source(get_workload(name).source(1), name)
    machine = HostMachine(AddressSpace(), max_instructions=30_000_000)
    vm = CPythonVM(machine, program, global_cache=global_cache)
    vm.run()
    return compute_breakdown(machine.trace, machine, workload=name)


def ablation():
    rows = []
    data = {}
    for name in WORKLOADS:
        base = _run(name, global_cache=False)
        cached = _run(name, global_cache=True)
        base_share = base.share(C.NAME_RESOLUTION)
        cached_share = cached.share(C.NAME_RESOLUTION)
        speedup = base.total_cycles / cached.total_cycles
        data[name] = (base_share, cached_share, speedup)
        rows.append([name, format_percent(base_share),
                     format_percent(cached_share), f"{speedup:.3f}x"])
    rendered = render_table(
        ["workload", "name res (baseline)", "name res (inline cache)",
         "total speedup"],
        rows, title="Ablation: global-lookup inline caching (paper [20])")
    return FigureResult("ablation_name_resolution",
                        "inline caching ablation", rendered, data)


def test_ablation_name_resolution(benchmark):
    result = benchmark.pedantic(ablation, rounds=1, iterations=1)
    save_result(result)
    print(result)
    for name, (base_share, cached_share, speedup) in result.data.items():
        # Caching must shrink the category and never slow the program.
        assert cached_share < base_share, name
        assert speedup > 1.0, name
