"""Sweep-server smoke target: serving latency, admission, drain.

One end-to-end proof, written to ``benchmarks/results/serve_smoke.txt``:
an in-process ``repro serve`` instance answers a cold quick-Figure-5
query (every cell simulated), a warm query under a fresh key (every
cell a content-addressed cache hit), and an idempotent re-ask of the
cold key (answered straight from the session journal without touching
the scheduler). The three latencies land in the results file so the
serving overhead on top of the cache is diffable run to run — the warm
path is where "as fast as the cache" either holds or doesn't.

The same pass exercises admission control (a deliberately tiny token
bucket sheds the fourth ask with a typed ``RETRY_AFTER``) and finishes
with a graceful drain, asserting a clean exit. Chaos variants (crash
mid-campaign, vanished clients) live in ``tests/test_server.py``.
"""

from __future__ import annotations

import time

from conftest import save_text

from repro import telemetry
from repro.experiments.client import RETRY_AFTER, ServeClient, \
    wait_until_ready
from repro.experiments.resilience import FaultPlan
from repro.experiments.server import SweepServer


def test_serve_smoke(tmp_path, monkeypatch):
    telemetry.reset()
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    no_faults = FaultPlan()
    server = SweepServer(tcp="127.0.0.1:0",
                         serve_dir=tmp_path / "serve",
                         tenant_rate=0.2, tenant_burst=3.0,
                         faults=no_faults).start()
    try:
        host, port = server.address
        cli = ServeClient(tcp=f"{host}:{port}", timeout=600.0,
                          faults=no_faults)
        assert wait_until_ready(cli, timeout=30.0)

        t0 = time.monotonic()
        cold = cli.query_figure("fig5", quick=True, key="smoke-cold")
        cold_wall = time.monotonic() - t0
        assert cold["ok"] and cold["cells"] >= 1

        t0 = time.monotonic()
        warm = cli.query_figure("fig5", quick=True, key="smoke-warm")
        warm_wall = time.monotonic() - t0
        assert warm["ok"]
        assert warm["rendered"] == cold["rendered"]
        assert warm_wall < cold_wall

        t0 = time.monotonic()
        reask = cli.query_figure("fig5", quick=True, key="smoke-cold")
        reask_wall = time.monotonic() - t0
        assert reask["ok"]
        assert reask["rendered"] == cold["rendered"]

        # Three admissions drained the burst; the fourth is shed with
        # a typed RETRY_AFTER carrying the exact wait.
        assert cli.bench(cells=1, key="smoke-bench")["ok"]
        shed = cli.bench(cells=1, key="smoke-shed")
        assert shed["error"] == RETRY_AFTER and shed["reason"] == "quota"

        assert cli.drain()["ok"]
        stats = server.stats_snapshot()
    finally:
        rc = server.drain(grace=30.0)
        server.stop()
    assert rc == 0
    assert stats["journal_hits"] == 1
    assert stats["rejected"] == 1

    lines = [
        "serve smoke: quick fig5 over an in-process sweep server "
        "(TCP loopback)",
        "",
        f"cold query      : {cold_wall:6.2f}s "
        f"({cold['cells']} cells simulated)",
        f"warm query      : {warm_wall:6.2f}s "
        "(fresh key, every cell a disk-cache hit)",
        f"journal re-ask  : {reask_wall * 1000:6.1f}ms "
        "(same key, answered from the session journal)",
        f"  warm speedup  : {cold_wall / max(warm_wall, 1e-9):6.1f}x "
        "over cold",
        f"  rendered output identical across all three: "
        f"{cold['rendered'] == warm['rendered'] == reask['rendered']}",
        "",
        "admission + drain:",
        f"  quota shed    : reason={shed['reason']}, "
        f"retry_after={shed['retry_after']}s",
        f"  drain exit    : rc={rc} (clean)",
        f"  server stats  : {stats}",
    ]
    path = save_text("serve_smoke", "\n".join(lines))
    assert path.exists()
