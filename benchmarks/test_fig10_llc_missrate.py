"""Figure 10: LLC miss rate as a function of nursery size.

Shape target: the miss rate is low while the nursery fits in the LLC
and jumps once the allocator sweeps beyond it (paper: ~2.4x).
"""

from conftest import save_result
from repro.experiments import figures


def test_fig10(benchmark, nursery_runner):
    result = benchmark.pedantic(
        figures.fig10, kwargs={"runner": nursery_runner, "quick": True},
        rounds=1, iterations=1)
    save_result(result)
    print(result)
    ratios = result.data["ratios"]
    rates = dict(zip(ratios, result.data["rates"]))
    # Cache-resident nursery: low miss rate; past the LLC: high.
    assert rates[0.5] < rates[2.0]
    assert result.data["jump"] > 1.5
