"""Ablation: JIT hot-loop threshold sweep.

Section II-B: compilation cost "must be amortized by the performance
improvement in the compiled code." Sweeping the hot-loop threshold
exposes the trade-off: compile too eagerly and compilation time grows;
too lazily and the program stays interpreted.
"""

import dataclasses

from conftest import save_result
from repro.analysis.report import render_table
from repro.categories import OverheadCategory as C
from repro.config import pypy_runtime
from repro.experiments.figures import FigureResult
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.uarch import SimulatedSystem
from repro.vm.pypy import PyPyVM
from repro.workloads import get_workload

THRESHOLDS = (5, 30, 200, 2000)
WORKLOAD = "crypto_pyaes"


def _run(threshold):
    program = compile_source(get_workload(WORKLOAD).source(1), WORKLOAD)
    nursery = 1 << 20
    machine = HostMachine(AddressSpace(nursery_size=nursery),
                          max_instructions=40_000_000)
    config = pypy_runtime(jit=True, nursery_size=nursery)
    config = dataclasses.replace(
        config, jit=dataclasses.replace(
            config.jit, hot_loop_threshold=threshold,
            hot_call_threshold=threshold * 2))
    vm = PyPyVM(machine, program, config)
    vm.run()
    timing = SimulatedSystem().run(machine.trace, core="ooo")
    counts = machine.trace.category_counts()
    return {
        "cycles": timing.cycles,
        "traces": vm.stats.traces_compiled,
        "compile_instrs": int(counts[int(C.JIT_COMPILING)]),
        "compiled_instrs": int(counts[int(C.JIT_COMPILED_CODE)]),
    }


def ablation():
    rows = []
    data = {}
    for threshold in THRESHOLDS:
        entry = _run(threshold)
        data[threshold] = entry
        rows.append([threshold, f"{entry['cycles']:.3e}",
                     entry["traces"], entry["compile_instrs"],
                     entry["compiled_instrs"]])
    rendered = render_table(
        ["hot threshold", "OOO cycles", "traces", "compile instrs",
         "compiled-code instrs"],
        rows, title=f"Ablation: JIT threshold sweep ({WORKLOAD})")
    return FigureResult("ablation_jit_threshold", "JIT threshold sweep",
                        rendered, data)


def test_ablation_jit_threshold(benchmark):
    result = benchmark.pedantic(ablation, rounds=1, iterations=1)
    save_result(result)
    print(result)
    data = result.data
    # A very lazy JIT compiles less and executes less compiled code.
    assert data[2000]["compiled_instrs"] < data[30]["compiled_instrs"]
    assert data[2000]["compile_instrs"] <= data[5]["compile_instrs"]
    # The default-ish threshold must beat the extremely lazy one.
    assert data[30]["cycles"] < data[2000]["cycles"]
