"""Resilience smoke target: figure output survives injected faults.

Two end-to-end proofs, written to
``benchmarks/results/resilience_smoke.txt``:

* a quick Figure 5 grid run under a 100% ``worker_crash`` plan — every
  pool worker dies, the supervisor rebuilds the pool up to its budget
  and then degrades to in-process serial execution — must render
  byte-identically to a fault-free serial run;
* a guest run stored through a 100% ``cache_corrupt`` plan must be
  caught by SHA-256 verification on reload, quarantined exactly once,
  and recomputed bit-identically.

The recovery counters (``resilience.*``, ``cache.*``) land in the
results file so the recovery work is diffable run to run.
"""

from __future__ import annotations

import numpy as np
from conftest import save_text

from repro import telemetry
from repro.experiments.diskcache import DiskCache
from repro.experiments.figures import fig5
from repro.experiments.resilience import FaultPlan, FaultSpec
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY

_64K = 64 * 1024


def _resilience_counters() -> dict:
    snapshot = TELEMETRY.metrics.snapshot()
    return {k: v for k, v in sorted(snapshot.items())
            if k.startswith(("resilience.", "cache.", "campaign."))
            and not isinstance(v, dict)}


def test_resilience_smoke(tmp_path, monkeypatch):
    telemetry.reset()
    monkeypatch.delenv("REPRO_FAULTS", raising=False)

    # -- fault-free serial baseline (its own cache root) ----------------
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
    serial = fig5(ExperimentRunner(), quick=True, jobs=1)

    # -- same grid, parallel, under a 100% worker-crash plan ------------
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "faulted"))
    monkeypatch.setenv("REPRO_FAULTS", "worker_crash:p=1")
    faulted = fig5(ExperimentRunner(), quick=True, jobs=2)
    monkeypatch.delenv("REPRO_FAULTS")
    assert faulted.rendered == serial.rendered
    assert faulted.data["shares"] == serial.data["shares"]
    counters = _resilience_counters()
    assert counters.get("resilience.pool_rebuilds", 0) >= 1
    assert counters.get("resilience.retries{reason=crash}", 0) >= 1
    assert counters.get("resilience.serial_fallbacks", 0) == 1

    # -- store through a 100% corruption plan, heal on reload -----------
    plan = FaultPlan({"cache_corrupt": FaultSpec("cache_corrupt", 1.0)})
    root = tmp_path / "corrupt"
    writer = ExperimentRunner(disk_cache=DiskCache(root, fault_plan=plan))
    original = writer.run("chaos", runtime="pypy", jit=True,
                          nursery=_64K)
    reader = ExperimentRunner(disk_cache=DiskCache(root))
    recomputed = reader.run("chaos", runtime="pypy", jit=True,
                            nursery=_64K)
    identical = all(
        np.array_equal(column, recomputed.trace.arrays()[name])
        for name, column in original.trace.arrays().items())
    assert identical
    counters = _resilience_counters()
    assert counters.get("cache.faults_injected{kind=traces}", 0) >= 1
    assert counters.get("cache.checksum_mismatch{kind=traces}", 0) >= 1
    assert counters.get("cache.quarantined{kind=traces}", 0) == 1
    quarantined = sorted(
        p.name for p in (root / "quarantine").iterdir())

    lines = [
        "resilience smoke: quick fig5 grid + cache corruption round trip",
        "",
        "fig5 (8 workloads, jobs=2) under REPRO_FAULTS=worker_crash:p=1",
        f"  rendered output identical to fault-free serial run: "
        f"{faulted.rendered == serial.rendered}",
        f"  shares identical: {faulted.data['shares'] == serial.data['shares']}",
        "",
        "chaos trace stored under cache_corrupt:p=1, then reloaded",
        f"  recomputed trace bit-identical: {identical}",
        f"  quarantined files: {', '.join(quarantined)}",
        "",
        "recovery counters:",
    ]
    lines += [f"  {key}: {value}" for key, value in counters.items()]
    path = save_text("resilience_smoke", "\n".join(lines))
    assert path.exists()
