"""Columnar trace codec: footprint and encode/decode throughput.

Measures the v2 frame codec against the legacy compressed ``.npz``
format on the same ~1M-instruction deltablue trace: bytes per
instruction, compression ratio vs the canonical 35-byte row, and
encode/decode bandwidth (canonical bytes per second, the same unit the
``trace.codec.bytes_per_second`` gauges report). Numbers land in
``benchmarks/results/codec_speed.txt``; assertion floors sit well
below the targets so shared-runner noise does not flake the suite.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import save_text

from repro.experiments.runner import ExperimentRunner
from repro.host.codec import RAW_ROW_BYTES, FrameReader
from repro.host.trace import InstructionTrace


def _best_of(n, fn):
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_codec_footprint_and_bandwidth(tmp_path):
    runner = ExperimentRunner(scale=2)
    handle = runner.run("deltablue", runtime="cpython")
    trace = handle.trace
    n = len(trace)
    assert n >= 1_000_000
    raw_bytes = n * RAW_ROW_BYTES

    v2_path = tmp_path / "trace.rpt"
    npz_path = tmp_path / "trace.npz"
    encode_s, _ = _best_of(3, lambda: trace.save(v2_path, codec="v2"))
    npz_s, _ = _best_of(2, lambda: trace.save(npz_path, codec="npz"))
    v2_bytes = v2_path.stat().st_size
    npz_bytes = npz_path.stat().st_size

    def decode_all():
        loaded = InstructionTrace.load(v2_path)
        arrays = loaded.arrays()
        loaded.close()
        return arrays

    decode_s, arrays = _best_of(3, decode_all)
    for name, column in trace.arrays().items():
        assert np.array_equal(column, arrays[name]), name

    # Lazy single-column read: the per-frame directory means touching
    # one int8 column decodes ~1/35th of the canonical bytes.
    def one_column():
        reader = FrameReader(v2_path)
        column = reader.column("category")
        reader.close()
        return column

    column_s, _ = _best_of(3, one_column)

    v2_ratio = raw_bytes / v2_bytes
    npz_ratio = raw_bytes / npz_bytes
    save_text("codec_speed", "\n".join([
        "columnar trace codec (deltablue, cpython, scale 2)",
        f"trace length   : {n:,} instructions "
        f"({raw_bytes / 1e6:.1f} MB canonical at {RAW_ROW_BYTES} B/row)",
        f"v2 frames      : {v2_bytes / 1e6:.2f} MB "
        f"({v2_bytes / n:.2f} B/instr, {v2_ratio:.1f}x smaller)",
        f"compressed npz : {npz_bytes / 1e6:.2f} MB "
        f"({npz_bytes / n:.2f} B/instr, {npz_ratio:.1f}x smaller)",
        f"v2 encode      : {encode_s * 1e3:.1f} ms "
        f"({raw_bytes / encode_s / 1e6:.0f} MB/s canonical)",
        f"npz encode     : {npz_s * 1e3:.1f} ms "
        f"({raw_bytes / npz_s / 1e6:.0f} MB/s canonical)",
        f"v2 decode      : {decode_s * 1e3:.1f} ms "
        f"({raw_bytes / decode_s / 1e6:.0f} MB/s canonical, "
        "all 8 columns)",
        f"single column  : {column_s * 1e3:.2f} ms "
        "(category, lazy per-frame read)",
        "outputs        : bit-identical columns after round trip",
        "acceptance     : >= 3x footprint shrink; floor asserted here",
    ]))
    assert v2_ratio >= 3.0, \
        f"v2 footprint shrink regressed: {v2_ratio:.2f}x"
    assert column_s < decode_s, \
        "single-column read should undercut a full decode"
