"""Figure 16: the nursery/cache trade-off exists for V8 too.

Shape target: with a larger LLC, larger nurseries stay cache-resident,
so the normalized-time curve shifts in favor of bigger nurseries.
"""

from conftest import save_result
from repro.experiments import figures


def test_fig16(benchmark):
    result = benchmark.pedantic(
        figures.fig16, kwargs={"quick": True}, rounds=1, iterations=1)
    save_result(result)
    print(result)
    ratios = result.data["ratios"]
    series = result.data["series"]
    small = dict(zip(ratios, series["2MB LLC"]))
    big = dict(zip(ratios, series["8MB LLC"]))
    # At 2x the baseline LLC (fits in the 8MB-equivalent cache, thrashes
    # the 2MB-equivalent one) the bigger cache must do no worse.
    assert big[2.0] <= small[2.0] + 0.05
    for values in series.values():
        assert all(0.2 < v < 5.0 for v in values)
