"""Columnar instruction traces: append, views, persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.host.isa import InstrKind
from repro.host.trace import InstructionTrace


def make_trace(n=10):
    trace = InstructionTrace()
    for i in range(n):
        trace.append(pc=0x400000 + 4 * i, kind=int(InstrKind.ALU),
                     category=i % 5, addr=0x1000 * i, size=8, dep=1,
                     flags=0, origin=7)
    return trace


def test_append_and_len():
    trace = make_trace(10)
    assert len(trace) == 10


def test_arrays_views_match_appends():
    trace = make_trace(4)
    arrays = trace.arrays()
    assert arrays["pc"].tolist() == [0x400000, 0x400004, 0x400008,
                                     0x40000C]
    assert arrays["category"].tolist() == [0, 1, 2, 3]
    assert arrays["origin"].tolist() == [7, 7, 7, 7]


def test_arrays_cache_tracks_growth():
    trace = make_trace(2)
    first = trace.arrays()
    assert len(first["pc"]) == 2
    trace.append(1, 0, 0)
    assert len(trace.arrays()["pc"]) == 3


def test_column_validates_name():
    trace = make_trace(1)
    with pytest.raises(TraceError):
        trace.column("nonsense")


def test_category_counts():
    trace = make_trace(10)
    counts = trace.category_counts()
    assert counts[0] == 2  # categories cycle 0..4 over 10 instructions
    assert counts[4] == 2
    assert counts.sum() == 10


def test_empty_trace_counts():
    trace = InstructionTrace()
    assert trace.category_counts().sum() == 0


def test_save_load_roundtrip(tmp_path):
    trace = make_trace(32)
    path = tmp_path / "trace.npz"
    trace.save(path)
    loaded = InstructionTrace.load(path)
    assert len(loaded) == len(trace)
    for column in ("pc", "kind", "category", "addr", "size", "dep",
                   "flags", "origin"):
        assert np.array_equal(loaded.column(column),
                              trace.column(column)), column


def test_slice_view():
    trace = make_trace(10)
    view = trace.slice_view(2, 5)
    assert len(view["pc"]) == 3
    assert view["pc"][0] == 0x400008
    with pytest.raises(TraceError):
        trace.slice_view(5, 50)


@given(st.lists(
    st.tuples(st.integers(0, 2**40), st.integers(0, 9),
              st.integers(0, 18), st.integers(0, 2**40)),
    min_size=0, max_size=60))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(tmp_path_factory, rows):
    trace = InstructionTrace()
    for pc, kind, category, addr in rows:
        trace.append(pc, kind, category, addr)
    path = tmp_path_factory.mktemp("traces") / "t.npz"
    trace.save(path)
    loaded = InstructionTrace.load(path)
    assert np.array_equal(loaded.column("pc"), trace.column("pc"))
    assert np.array_equal(loaded.column("addr"), trace.column("addr"))
