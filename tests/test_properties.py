"""Property-based tests: MiniPy semantics vs the host interpreter.

Hypothesis generates arithmetic expressions, list programs, and data
structures; the invariant everywhere is "the MiniPy VM computes exactly
what CPython computes".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import guest_output
from repro.workloads.native import SerializerShim

_INT = st.integers(min_value=-1000, max_value=1000)
_SMALL_INT = st.integers(min_value=0, max_value=40)


@st.composite
def arithmetic_expression(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return str(draw(_INT))
    op = draw(st.sampled_from(["+", "-", "*", "//", "%", "|", "&", "^"]))
    left = draw(arithmetic_expression(depth=depth + 1))
    right = draw(arithmetic_expression(depth=depth + 1))
    if op in ("//", "%"):
        right = f"({right} * ({right}) + 1)"  # never zero
    return f"({left} {op} {right})"


@given(arithmetic_expression())
@settings(max_examples=40, deadline=None)
def test_integer_arithmetic_matches_python(expression):
    expected = str(eval(expression))  # generated: ints and operators only
    assert guest_output(f"print({expression})\n") == [expected]


@given(st.lists(_INT, min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_list_operations_match_python(values):
    literal = repr(values)
    source = f"""
a = {literal}
a.sort()
print(a)
print(sum(a))
print(min(a))
print(max(a))
a.reverse()
print(a[0])
"""
    expected = [str(sorted(values)), str(sum(values)),
                str(min(values)), str(max(values)),
                str(sorted(values)[-1])]
    assert guest_output(source) == expected


@given(st.lists(_SMALL_INT, min_size=0, max_size=15), _SMALL_INT)
@settings(max_examples=25, deadline=None)
def test_membership_matches_python(values, needle):
    source = f"print({needle} in {values!r})\n"
    assert guest_output(source) == [str(needle in values)]


@given(st.text(alphabet="abcxyz ", max_size=20),
       st.text(alphabet="abcxyz", min_size=1, max_size=3))
@settings(max_examples=25, deadline=None)
def test_string_operations_match_python(text, needle):
    source = f"""
s = {text!r}
print(len(s))
print(s.count({needle!r}))
print(s.find({needle!r}))
print({needle!r} in s)
print(s.replace({needle!r}, "_"))
"""
    expected = [str(len(text)), str(text.count(needle)),
                str(text.find(needle)), str(needle in text),
                text.replace(needle, "_")]
    assert guest_output(source) == expected


_JSONISH = st.recursive(
    st.one_of(st.integers(-999, 999), st.booleans(), st.none(),
              st.text(alphabet="abc123", max_size=6)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(alphabet="key", min_size=1, max_size=4),
                        children, max_size=4)),
    max_leaves=12)


@given(_JSONISH)
@settings(max_examples=40, deadline=None)
def test_serializer_shim_roundtrip(value):
    blob = SerializerShim.dumps(value)
    assert SerializerShim.loads(blob) == value


@given(st.lists(_INT, min_size=0, max_size=10))
@settings(max_examples=20, deadline=None)
def test_guest_pickle_roundtrip_matches_shim(values):
    literal = repr(values)
    source = f"""
payload = {literal}
blob = pickle.dumps(payload)
print(len(blob))
print(pickle.loads(blob) == payload)
"""
    expected_blob = SerializerShim.dumps(values)
    assert guest_output(source) == [str(len(expected_blob)), "True"]


@given(st.lists(st.tuples(_SMALL_INT, _INT), min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_dict_semantics_match_python(pairs):
    expected: dict = {}
    lines = ["d = {}"]
    for key, value in pairs:
        expected[key] = value
        lines.append(f"d[{key}] = {value}")
    lines.append("print(len(d))")
    lines.append("total = 0")
    lines.append("for k in d.keys():")
    lines.append("    total = total + d[k]")
    lines.append("print(total)")
    out = guest_output("\n".join(lines) + "\n")
    assert out == [str(len(expected)), str(sum(expected.values()))]


@given(st.integers(2, 30), st.integers(2, 8))
@settings(max_examples=20, deadline=None)
def test_loop_accumulation_matches_python(n, divisor):
    source = f"""
total = 0
for i in range({n}):
    if i % {divisor} == 0:
        total = total + i
    else:
        total = total - 1
print(total)
"""
    expected = sum(i if i % divisor == 0 else -1 for i in range(n))
    assert guest_output(source) == [str(expected)]


@given(st.lists(_INT, min_size=2, max_size=8))
@settings(max_examples=15, deadline=None)
def test_pypy_jit_agrees_with_cpython_model(values):
    source = f"""
data = {values!r}
total = 0
for rounds in range(60):
    for v in data:
        total = total + v * 2 - 1
print(total)
"""
    expected = guest_output(source, "cpython")
    assert guest_output(source, "pypy", jit=True) == expected
