"""The 48 Python-suite workloads: cross-runtime semantic equivalence.

Every workload must produce identical output on the host Python
interpreter (ground truth via shim modules), the CPython model, and —
for a representative subset — the PyPy model with and without JIT.
"""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.frontend import compile_source
from repro.vm.cpython import run_cpython
from repro.vm.pypy import run_pypy
from repro.config import pypy_runtime
from repro.workloads import (
    BREAKDOWN_QUICK_SUITE,
    NURSERY_BENCHMARKS,
    PYTHON_SUITE,
    SWEEP_BENCHMARKS,
    get_workload,
    workload_names,
)
from repro.workloads.native import run_native
from repro.errors import WorkloadError


def test_suite_has_48_benchmarks():
    assert len(PYTHON_SUITE) == 48
    assert len(set(PYTHON_SUITE)) == 48


def test_figure_subsets_are_members():
    for subset in (SWEEP_BENCHMARKS, NURSERY_BENCHMARKS,
                   BREAKDOWN_QUICK_SUITE):
        for name in subset:
            assert name in PYTHON_SUITE
    assert len(SWEEP_BENCHMARKS) == 8   # Figure 8
    assert len(NURSERY_BENCHMARKS) == 8  # Figures 14/15


def test_workload_tags_cover_classes():
    tags = {get_workload(name).tag for name in PYTHON_SUITE}
    assert tags == {"numeric", "clib", "oo", "string", "gc"}
    assert len(workload_names("clib")) == 11


def test_unknown_workload_raises():
    with pytest.raises(WorkloadError):
        get_workload("no_such_benchmark")


def test_scale_must_be_positive():
    with pytest.raises(WorkloadError):
        get_workload("float").source(0)


def test_scale_grows_work():
    runner1 = ExperimentRunner(scale=1)
    runner3 = ExperimentRunner(scale=3)
    small = runner1.run("tuple_gc", runtime="cpython")
    big = runner3.run("tuple_gc", runtime="cpython")
    assert big.bytecodes > 2 * small.bytecodes


@pytest.mark.parametrize("name", PYTHON_SUITE)
def test_matches_native_on_cpython_model(name):
    source = get_workload(name).source(1)
    expected = run_native(source)
    assert expected, f"{name} produced no output natively"
    program = compile_source(source, name)
    vm, _ = run_cpython(program, max_instructions=30_000_000)
    assert vm.output == expected


@pytest.mark.parametrize("name", BREAKDOWN_QUICK_SUITE)
def test_matches_native_on_pypy_models(name):
    source = get_workload(name).source(1)
    expected = run_native(source)
    program = compile_source(source, name)
    vm_interp, _ = run_pypy(program, pypy_runtime(jit=False),
                            max_instructions=40_000_000)
    assert vm_interp.output == expected
    program = compile_source(source, name)
    vm_jit, _ = run_pypy(program, pypy_runtime(jit=True),
                         max_instructions=40_000_000)
    assert vm_jit.output == expected


@pytest.mark.parametrize("name", NURSERY_BENCHMARKS)
def test_nursery_benchmarks_survive_tiny_nursery(name):
    source = get_workload(name).source(1)
    expected = run_native(source)
    program = compile_source(source, name)
    vm, _ = run_pypy(program,
                     pypy_runtime(jit=True, nursery_size=64 * 1024),
                     max_instructions=60_000_000)
    assert vm.output == expected
