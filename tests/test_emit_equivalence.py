"""Emission-path equivalence: every backend produces the same bytes.

The burst engine, the compiled flush kernel, and spill-to-disk storage
are pure performance features: traces, category breakdowns, and cache
keys must be byte-identical across every ``REPRO_EMIT_BACKEND`` x
``REPRO_EMIT_KERNEL`` x spill combination — and across interpreter
hash-seed randomization, since nothing observable may depend on
``hash()``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest

from conftest import run_source

from repro.analysis.breakdown import breakdown_for_run
from repro.errors import TraceError
from repro.experiments.diskcache import DiskCache
from repro.experiments.runner import ExperimentRunner
from repro.host.trace import InstructionTrace

WORKLOAD = "richards"

#: (backend, kernel on, spill on). The scalar path never consults the
#: kernel or the burst queues, so its kernel axis is not enumerated.
COMBOS = [
    ("scalar", False, False),
    ("scalar", False, True),
    ("burst", False, False),
    ("burst", False, True),
    ("burst", True, False),
    ("burst", True, True),
]


def _run_combo(monkeypatch, tmp_path, backend: str, kernel: bool,
               spill: bool):
    monkeypatch.setenv("REPRO_EMIT_BACKEND", backend)
    monkeypatch.setenv("REPRO_EMIT_KERNEL", "auto" if kernel else "off")
    if spill:
        # 1 MB ~ 16K rows: well under the workload's trace, so the
        # buffer genuinely migrates to a memmap mid-run.
        monkeypatch.setenv("REPRO_TRACE_SPILL_MB", "1")
    else:
        monkeypatch.delenv("REPRO_TRACE_SPILL_MB", raising=False)
    # A disabled disk cache isolates the combos from one another: every
    # run interprets from scratch (spill still works; it keys off
    # REPRO_CACHE_DIR, which conftest points at tmp_path).
    runner = ExperimentRunner(disk_cache=DiskCache(None))
    handle = runner.run(WORKLOAD, "cpython", jit=False)
    return runner, handle


def _trace_digest(handle) -> str:
    # Normalize to int64: spilled traces hand back memmap int64
    # columns, in-memory traces the canonical narrower dtypes. The
    # *values* must agree; save() canonicalizes dtypes on persist.
    digest = hashlib.sha256()
    for name, column in sorted(handle.trace.arrays().items()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(column, dtype=np.int64)
                      .tobytes())
    return digest.hexdigest()


def test_all_emission_combos_are_bit_identical(monkeypatch, tmp_path):
    reference = None
    for backend, kernel, spill in COMBOS:
        runner, handle = _run_combo(monkeypatch, tmp_path, backend,
                                    kernel, spill)
        result = (_trace_digest(handle), runner.last_cache_key,
                  handle.site_table, handle.bytecodes,
                  handle.allocations)
        # The digest above forces a full drain, so by now the buffer
        # has migrated (burst spills mid-run; scalar at first read).
        spilled = handle.trace.spill_path is not None
        assert spilled == spill, (backend, kernel, spill)
        if reference is None:
            reference = result
        else:
            assert result == reference, (backend, kernel, spill)


#: Seeded program generator: each snippet leans on a different fused
#: emitter family (int ALU + jumps, dict/global lookup, list subscript
#: + method calls, class construction + attribute traffic, dealloc
#: cascades), so backend divergence in any one template shows up.
_PROGRAMS = [
    """
total = 0
i = 0
while i < 40:
    if i % 3 == 0:
        total = total + i * 2
    else:
        total = total - 1
    i = i + 1
print(total)
""",
    """
limit = 25


def collatz(n):
    steps = 0
    while n != 1 and steps < limit:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps = steps + 1
    return steps


acc = 0
for seed in range(2, 30):
    acc = acc + collatz(seed)
print(acc)
""",
    """
values = []
for i in range(30):
    values.append(i * i % 17)
pairs = {}
for v in values:
    if v in pairs:
        pairs[v] = pairs[v] + 1
    else:
        pairs[v] = 1
total = 0
for v in values:
    total = total + values[v % len(values)] + pairs[v]
print(total)
""",
    """
class Node:
    def __init__(self, value):
        self.value = value
        self.next = None


head = None
for i in range(25):
    node = Node(i)
    node.next = head
    head = node
total = 0
cursor = head
while cursor is not None:
    total = total + cursor.value
    cursor = cursor.next
print(total)
""",
    """
def churn(n):
    keep = []
    for i in range(n):
        scratch = [i, i + 1, i + 2]
        if i % 4 == 0:
            keep.append(scratch)
    return len(keep)


print(churn(60))
print(churn(31))
""",
]


@pytest.mark.parametrize("runtime", ["cpython", "pypy"])
def test_generated_programs_equivalent_across_backends(monkeypatch,
                                                       runtime):
    for index, source in enumerate(_PROGRAMS):
        digests = set()
        outputs = set()
        for backend in ("scalar", "burst"):
            monkeypatch.setenv("REPRO_EMIT_BACKEND", backend)
            vm, machine = run_source(source, runtime=runtime)
            digest = hashlib.sha256()
            for name, column in sorted(machine.trace.arrays().items()):
                digest.update(np.ascontiguousarray(
                    column, dtype=np.int64).tobytes())
            digests.add(digest.hexdigest())
            outputs.add(tuple(vm.output))
        assert len(digests) == 1, (runtime, index)
        assert len(outputs) == 1, (runtime, index)


@pytest.mark.parametrize("workload,runtime,jit",
                         [("richards", "cpython", False),
                          ("nqueens", "cpython", False),
                          ("chaos", "pypy", True),
                          ("richards", "v8", True)])
def test_workload_sample_equivalent_across_backends(monkeypatch, tmp_path,
                                                    workload, runtime,
                                                    jit):
    digests = set()
    for backend in ("scalar", "burst"):
        monkeypatch.setenv("REPRO_EMIT_BACKEND", backend)
        runner = ExperimentRunner(disk_cache=DiskCache(None))
        handle = runner.run(workload, runtime, jit=jit,
                            nursery=64 * 1024)
        digests.add(_trace_digest(handle))
    assert len(digests) == 1


def test_category_breakdowns_match_across_backends(monkeypatch, tmp_path):
    cycles = None
    for backend, kernel, spill in (("scalar", False, False),
                                   ("burst", True, True)):
        _, handle = _run_combo(monkeypatch, tmp_path, backend, kernel,
                               spill)
        breakdown = breakdown_for_run(handle)
        if cycles is None:
            cycles = breakdown.cycles
        else:
            assert breakdown.cycles == cycles


_CHILD_SCRIPT = """
import hashlib, sys
from repro.experiments.diskcache import DiskCache
from repro.experiments.runner import ExperimentRunner

assert sys.flags.hash_randomization, "hash randomization must be live"
runner = ExperimentRunner(disk_cache=DiskCache(None))
handle = runner.run({workload!r}, "cpython", jit=False)
import numpy as np
digest = hashlib.sha256()
for name, column in sorted(handle.trace.arrays().items()):
    digest.update(np.ascontiguousarray(column, dtype="int64").tobytes())
print(digest.hexdigest(), runner.last_cache_key)
"""


def test_traces_are_stable_across_hash_seeds(tmp_path):
    """Two fresh interpreters with different PYTHONHASHSEEDs agree.

    Guest "addresses" derived from identifier names go through the
    FNV-1a ``stable_hash``, never the builtin ``hash``; if that ever
    regresses, the two children print different digests.
    """
    outputs = []
    for seed in ("1", "987654321"):
        env = dict(os.environ,
                   PYTHONHASHSEED=seed,
                   REPRO_CACHE="off",
                   REPRO_EMIT_BACKEND="auto")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p)
        proc = subprocess.run(
            [sys.executable, "-c",
             _CHILD_SCRIPT.format(workload=WORKLOAD)],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout.strip())
    assert outputs[0] == outputs[1]
    digest, cache_key = outputs[0].split()
    assert len(digest) == 64 and len(cache_key) == 64


def test_frozen_trace_rejects_all_append_paths(monkeypatch):
    """freeze() seals every emission path, including queued bursts."""
    trace = InstructionTrace()
    trace.append(1, 0, 0)
    trace.freeze()
    with pytest.raises(TraceError):
        trace.append(2, 0, 0)
    with pytest.raises(TraceError):
        trace.alloc_rows(4)


def test_frozen_trace_rejects_burst_flush(monkeypatch, tmp_path):
    """A burst VM whose trace is frozen mid-run fails loudly on flush."""
    monkeypatch.setenv("REPRO_EMIT_BACKEND", "burst")
    runner = ExperimentRunner(disk_cache=DiskCache(None))
    handle = runner.run(WORKLOAD, "cpython", jit=False)
    trace = handle.trace
    trace.freeze()
    with pytest.raises(TraceError):
        trace.alloc_rows(1)
    # Frozen columns stay readable after sealing.
    assert len(trace.arrays()["pc"]) == len(trace)
