"""Host ISA tables and the DRAM model."""

import pytest

from repro.config import MemoryConfig
from repro.host.isa import (
    CONTROL_KINDS,
    KIND_LATENCY,
    MEMORY_KINDS,
    InstrKind,
)
from repro.uarch.dram import DramModel


def test_every_kind_has_latency():
    for kind in InstrKind:
        assert kind in KIND_LATENCY
        assert KIND_LATENCY[kind] >= 1


def test_kind_classifications():
    assert InstrKind.LOAD in MEMORY_KINDS
    assert InstrKind.STORE in MEMORY_KINDS
    assert InstrKind.ALU not in MEMORY_KINDS
    assert InstrKind.BRANCH in CONTROL_KINDS
    assert InstrKind.ICALL in CONTROL_KINDS
    assert InstrKind.DIV not in CONTROL_KINDS


def test_div_is_long_latency():
    assert KIND_LATENCY[InstrKind.DIV] > KIND_LATENCY[InstrKind.MUL] \
        > KIND_LATENCY[InstrKind.ALU]


def test_dram_latency_and_transfer():
    dram = DramModel(MemoryConfig(latency=173, bandwidth_mbps=19200))
    assert dram.latency == 173
    # One 64-byte line at ~5.6 B/cycle takes ~11 cycles of bus time.
    assert 10 < dram.line_transfer_cycles() < 13


def test_dram_bandwidth_accounting():
    dram = DramModel(MemoryConfig(bandwidth_mbps=200), line_size=64)
    # 200 MBps at 3.4 GHz is ~0.059 B/cycle: lines queue immediately.
    for _ in range(100):
        dram.record_access()
    assert dram.bytes_transferred == 6400
    assert dram.earliest_start(0.0) > 100_000


def test_dram_idle_bus_does_not_delay():
    dram = DramModel(MemoryConfig())
    dram.record_access()
    later = dram.earliest_start(1_000_000.0)
    assert later == pytest.approx(1_000_000.0)
