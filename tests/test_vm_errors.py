"""Guest-level error behavior: the right exception at the right moment."""

import pytest

from conftest import run_source
from repro.errors import (
    GuestIndexError,
    GuestKeyError,
    GuestNameError,
    GuestTypeError,
    GuestValueError,
    GuestZeroDivisionError,
    VMError,
)


@pytest.mark.parametrize("source, exc", [
    ("x = 1 / 0\n", GuestZeroDivisionError),
    ("x = 1 // 0\n", GuestZeroDivisionError),
    ("x = 1 % 0\n", GuestZeroDivisionError),
    ("x = 1.5 / 0.0\n", GuestZeroDivisionError),
    ("x = undefined_name\n", GuestNameError),
    ("a = [1, 2]\nx = a[5]\n", GuestIndexError),
    ("a = [1, 2]\na[9] = 0\n", GuestIndexError),
    ("s = 'ab'\nx = s[10]\n", GuestIndexError),
    ("d = {}\nx = d['missing']\n", GuestKeyError),
    ("x = 'a' + 1\n", GuestTypeError),
    ("x = [1] - [2]\n", GuestTypeError),
    ("x = -'abc'\n", GuestTypeError),
    ("x = 5\nx.append(1)\n", GuestNameError),
    ("x = 5\ny = x[0]\n", GuestTypeError),
    ("for i in 5:\n    pass\n", GuestTypeError),
    ("x = 1\nx(2)\n", GuestTypeError),
    ("def f(a):\n    return a\nf(1, 2)\n", GuestTypeError),
    ("a, b = (1, 2, 3)\n", GuestValueError),
    ("x = int('not a number')\n", GuestValueError),
    ("x = chr(-1)\n", GuestValueError),
    ("x = [1].index(9)\n", GuestValueError),
    ("d = {}\nd[[1, 2]] = 3\n", GuestTypeError),
    ("x = len(5)\n", GuestTypeError),
    ("x = range(1, 2, 0)\n", GuestValueError),
])
def test_guest_errors(source, exc):
    with pytest.raises(exc):
        run_source(source)


def test_local_before_assignment():
    source = """
def f():
    y = x
    x = 1
    return y
f()
"""
    with pytest.raises(GuestNameError):
        run_source(source)


def test_class_wrong_arity():
    source = """
class P:
    def __init__(self, a, b):
        self.a = a
P(1)
"""
    with pytest.raises(GuestTypeError):
        run_source(source)


def test_missing_attribute():
    source = """
class P:
    def __init__(self):
        self.x = 1
p = P()
y = p.nonexistent
"""
    with pytest.raises(GuestNameError):
        run_source(source)


def test_instruction_budget_guards_infinite_loops():
    with pytest.raises(VMError):
        run_source("while True:\n    pass\n", max_instructions=100_000)


def test_errors_propagate_from_pypy_jit():
    source = """
total = 0
for i in range(200):
    total = total + i
x = total / 0
"""
    with pytest.raises(GuestZeroDivisionError):
        run_source(source, runtime="pypy", jit=True)
