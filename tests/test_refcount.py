"""CPython-model memory management: refcounting and the freelist."""

from conftest import run_source
from repro.categories import OverheadCategory as C


def test_freelist_reuse_dominates_steady_state():
    # A loop that churns boxed ints should recycle freed boxes.
    vm, machine = run_source("""
total = 0
for i in range(500):
    x = i * 1000 + 7
    total = total + x % 13
print(total)
""")
    allocator = vm.allocator
    assert allocator.free_count > 100
    assert allocator.reuse_count > allocator.alloc_count * 0.3


def test_heap_footprint_stays_bounded():
    # With freelist recycling, the bump cursor must stay far below the
    # total allocated volume.
    vm, machine = run_source("""
total = 0
for i in range(800):
    data = [i, i + 1, i + 2]
    total = total + data[1]
print(total)
""")
    heap_used = machine.space.heap.used
    assert vm.stats.allocated_bytes > 3 * heap_used


def test_container_teardown_releases_children():
    vm, machine = run_source("""
for i in range(50):
    block = [i * 1000, i * 2000, i * 3000]
print("done")
""")
    allocator = vm.allocator
    # Each discarded list frees its boxes and its buffer.
    assert allocator.free_count >= 150


def test_small_ints_are_never_allocated():
    vm_small, m_small = run_source(
        "t = 0\nfor i in range(250):\n    t = t + 1\nprint(t)\n")
    vm_large, m_large = run_source(
        "t = 100000\nfor i in range(250):\n    t = t + 1\nprint(t)\n")
    # Counting within the small-int cache allocates far less.
    assert vm_small.stats.allocations < vm_large.stats.allocations / 2


def test_refcount_work_is_attributed_to_gc_category():
    vm, machine = run_source("x = [1, 2, 3]\ny = x\nprint(len(y))\n")
    counts = machine.trace.category_counts()
    assert counts[int(C.GARBAGE_COLLECTION)] > 0


def test_no_double_free_corruption():
    # Aliased containers going out of scope repeatedly must not break
    # the allocator (sentinel guards double deallocation).
    vm, machine = run_source("""
a = [1, 2, 3]
b = [a, a, a]
c = [b, b]
c = None
b = None
a = None
x = [9] * 10
print(len(x))
""")
    assert vm.output == ["10"]
