"""Breakdown analysis: shares, aggregation, paper-shape assertions."""

import pytest

from repro.analysis.breakdown import (
    average_shares,
    breakdown_for_run,
    indirect_call_fraction,
    suite_breakdowns,
)
from repro.categories import (
    INTERPRETER_CATEGORIES,
    LANGUAGE_FEATURE_CATEGORIES,
    OverheadCategory as C,
)
from repro.experiments.runner import ExperimentRunner


def make_runner():
    return ExperimentRunner(scale=1, trace_cache_size=2)


def test_breakdown_shares_sum_to_one():
    runner = make_runner()
    handle = runner.run("nqueens", runtime="cpython")
    breakdown = breakdown_for_run(handle)
    assert abs(sum(breakdown.share(c) for c in C) - 1.0) < 1e-9
    assert breakdown.overhead_share == pytest.approx(
        breakdown.language_share + breakdown.interpreter_share)


def test_c_function_call_is_a_top_interpreter_category():
    # The paper's headline: C function calls are the largest interpreter
    # operation overhead (18.4% average).
    runner = make_runner()
    handle = runner.run("richards", runtime="cpython")
    breakdown = breakdown_for_run(handle)
    interp = {c: breakdown.share(c) for c in INTERPRETER_CATEGORIES}
    assert max(interp, key=interp.get) == C.C_FUNCTION_CALL
    assert interp[C.C_FUNCTION_CALL] > 0.10


def test_dispatch_is_significant():
    runner = make_runner()
    handle = runner.run("nqueens", runtime="cpython")
    breakdown = breakdown_for_run(handle)
    assert breakdown.share(C.DISPATCH) > 0.08


def test_clib_benchmark_is_c_library_dominated():
    runner = make_runner()
    handle = runner.run("pickle_list", runtime="cpython")
    breakdown = breakdown_for_run(handle)
    assert breakdown.c_library_share > 0.5
    # And overhead categories correspondingly shrink (paper IV-C.1).
    assert breakdown.overhead_share < 0.5


def test_compute_benchmark_is_overhead_dominated():
    runner = make_runner()
    handle = runner.run("nqueens", runtime="cpython")
    breakdown = breakdown_for_run(handle)
    assert breakdown.overhead_share > 0.6


def test_pypy_jit_reduces_c_call_share():
    # Figure 5: the JIT removes most interpreter C calls but the
    # overhead survives (paper: 18.4% CPython -> 7.5% PyPy).
    runner = make_runner()
    cpython = breakdown_for_run(runner.run("chaos", runtime="cpython"))
    pypy = breakdown_for_run(
        runner.run("chaos", runtime="pypy", jit=True))
    assert pypy.c_function_call_share < cpython.c_function_call_share
    assert pypy.c_function_call_share > 0.0


def test_suite_breakdowns_and_averages():
    runner = make_runner()
    breakdowns = suite_breakdowns(runner, ["nqueens", "mako"],
                                  runtime="cpython")
    assert set(breakdowns) == {"nqueens", "mako"}
    averages = average_shares(breakdowns)
    assert abs(sum(averages.values()) - 1.0) < 1e-6
    for category in LANGUAGE_FEATURE_CATEGORIES:
        assert averages.get(category, 0.0) >= 0.0


def test_indirect_call_fraction_bounds():
    runner = make_runner()
    handle = runner.run("richards", runtime="cpython")
    of_ccall, of_total = indirect_call_fraction(handle)
    assert 0.0 < of_total < of_ccall < 0.5


def test_gc_share_grows_with_jit():
    # Figure 13: the JIT shrinks non-GC work, so the GC *share* grows.
    runner = ExperimentRunner(scale=1)
    nursery = 128 * 1024
    nojit = breakdown_for_run(
        runner.run("tuple_gc", runtime="pypy", jit=False,
                   nursery=nursery))
    jit = breakdown_for_run(
        runner.run("tuple_gc", runtime="pypy", jit=True, nursery=nursery))
    assert jit.gc_share > nojit.gc_share
