"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.config import pypy_runtime, v8_runtime
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.vm.cpython import CPythonVM
from repro.vm.pypy import PyPyVM
from repro.vm.v8 import V8VM


@pytest.fixture(autouse=True)
def _telemetry_isolation(tmp_path, monkeypatch):
    """Keep manifests and the disk cache in tmp; disable telemetry after.

    Pointing REPRO_CACHE_DIR at a per-test directory keeps tests
    hermetic: no reuse of (possibly stale) cached runs from a
    developer's working tree, and no ``.repro-cache`` litter.
    """
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "telemetry"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    yield
    telemetry.disable()


def run_source(source: str, runtime: str = "cpython", jit: bool = True,
               nursery: int = 1 << 20,
               max_instructions: int = 20_000_000):
    """Compile and run MiniPy source; returns (vm, machine)."""
    program = compile_source(source, "<test>")
    space = AddressSpace(nursery_size=nursery)
    machine = HostMachine(space, max_instructions=max_instructions)
    if runtime == "cpython":
        vm = CPythonVM(machine, program)
    elif runtime == "pypy":
        vm = PyPyVM(machine, program,
                    pypy_runtime(jit=jit, nursery_size=nursery))
    elif runtime == "v8":
        vm = V8VM(machine, program, v8_runtime(nursery_size=nursery))
    else:
        raise ValueError(runtime)
    vm.run()
    return vm, machine


def guest_output(source: str, runtime: str = "cpython", **kwargs):
    """Run source and return the captured print lines."""
    vm, _ = run_source(source, runtime=runtime, **kwargs)
    return vm.output


@pytest.fixture
def cpython_run():
    return lambda src, **kw: run_source(src, "cpython", **kw)


@pytest.fixture
def pypy_run():
    return lambda src, **kw: run_source(src, "pypy", **kw)
