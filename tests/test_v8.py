"""V8-analog runtime specifics: inline caches and configuration."""

from conftest import run_source
from repro.categories import OverheadCategory as C
from repro.config import v8_runtime


ATTR_HEAVY = """
class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y

total = 0
points = []
for i in range(150):
    points.append(Point(i, i * 2))
for p in points:
    total = total + p.x + p.y
print(total)
"""


def test_v8_config_profile():
    config = v8_runtime()
    assert config.kind == "v8"
    assert config.jit.hot_call_threshold < 60  # method-JIT gets hot fast
    assert config.uses_jit


def test_attribute_access_is_cheaper_than_pypy():
    vm_v8, m_v8 = run_source(ATTR_HEAVY, runtime="v8")
    vm_pypy, m_pypy = run_source(ATTR_HEAVY, runtime="pypy", jit=True)
    assert vm_v8.output == vm_pypy.output
    # Hidden-class ICs replace dictionary lookups: far fewer
    # name-resolution-category instructions.
    v8_counts = m_v8.trace.category_counts()
    pypy_counts = m_pypy.trace.category_counts()
    assert v8_counts[int(C.NAME_RESOLUTION)] < \
        pypy_counts[int(C.NAME_RESOLUTION)]


def test_ic_site_exists():
    vm, machine = run_source(ATTR_HEAVY, runtime="v8")
    assert "v8.inline_cache" in machine.site_table


def test_v8_runs_generational_gc():
    source = """
keep = []
for i in range(2500):
    keep.append((i, str(i)))
    if len(keep) > 12:
        keep.pop(0)
print(len(keep))
"""
    vm, _ = run_source(source, runtime="v8", nursery=64 * 1024)
    assert vm.output == ["12"]
    assert vm.stats.minor_gcs > 0


def test_v8_c_call_overhead_is_present():
    vm, machine = run_source("""
total = 0
for i in range(100):
    m = re.search("[0-9]+", "abc" + str(i))
    if not m is None:
        total = total + len(m)
print(total)
""", runtime="v8")
    counts = machine.trace.category_counts()
    assert counts[int(C.C_FUNCTION_CALL)] > 0
    assert counts[int(C.C_LIBRARY)] > 0
