"""Sweep server: admission, fairness, deadlines, crash-safe journal."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro import telemetry
from repro.errors import ExperimentError, ReproError
from repro.experiments.client import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    RETRY_AFTER,
    ServeClient,
    ServeUnavailable,
    parse_endpoint,
    request_key,
    serve_root,
    wait_until_ready,
)
from repro.experiments.figures import fig5
from repro.experiments.resilience import FAULTS_ENV, FaultPlan, _decide
from repro.experiments.runner import ExperimentRunner
from repro.experiments.server import (
    CRASH_EXIT,
    SessionJournal,
    SweepServer,
    TokenBucket,
    estimate_cost,
)
from repro.telemetry import TELEMETRY

_SRC = str(Path(repro.__file__).resolve().parents[1])

_NO_FAULTS = FaultPlan()


def counter_sum(prefix: str) -> float:
    snapshot = TELEMETRY.metrics.snapshot()
    return sum(v for k, v in snapshot.items() if k.startswith(prefix))


def _start(tmp_path, **kwargs) -> SweepServer:
    kwargs.setdefault("tcp", "127.0.0.1:0")
    kwargs.setdefault("serve_dir", tmp_path / "serve")
    # Generous admission defaults so individual tests exercise exactly
    # one mechanism at a time.
    kwargs.setdefault("tenant_rate", 1000.0)
    kwargs.setdefault("tenant_burst", 1000.0)
    kwargs.setdefault("faults", _NO_FAULTS)
    return SweepServer(**kwargs).start()


@contextmanager
def _server(tmp_path, **kwargs):
    server = _start(tmp_path, **kwargs)
    try:
        yield server
    finally:
        server.stop()


def _client(server: SweepServer, **kwargs) -> ServeClient:
    host, port = server.address
    kwargs.setdefault("timeout", 60.0)
    kwargs.setdefault("faults", _NO_FAULTS)
    return ServeClient(tcp=f"{host}:{port}", **kwargs)


def _wait_for_result(server: SweepServer, key: str,
                     timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with server._lock:
            record = server._results.get(key)
        if record is not None:
            return record
        time.sleep(0.02)
    raise AssertionError(f"no journaled result for key {key!r}")


def _wait_for_inflight(server: SweepServer, count: int,
                       timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with server._lock:
            if len(server._known) >= count:
                return
        time.sleep(0.01)
    raise AssertionError(f"never saw {count} requests in flight")


# ---------------------------------------------------------------------------
# Units: token bucket, cost model, keys, endpoints, journal
# ---------------------------------------------------------------------------


def test_token_bucket_burst_then_wait_then_refill():
    bucket = TokenBucket(rate=2.0, burst=4.0)
    t0 = bucket._updated
    for _ in range(4):
        assert bucket.take(1.0, now=t0) == 0.0
    wait = bucket.take(1.0, now=t0)
    assert wait == pytest.approx(0.5)  # 1 token / 2 per second
    # Nothing was taken on failure; one second refills two tokens.
    assert bucket.take(1.0, now=t0 + 1.0) == 0.0
    assert bucket.take(1.0, now=t0 + 1.0) == 0.0
    assert bucket.take(1.0, now=t0 + 1.0) > 0.0


def test_token_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate=10.0, burst=3.0)
    # Long idle: the refill clamps at burst instead of accumulating.
    bucket.take(0.0, now=bucket._updated + 500.0)
    assert bucket.tokens == pytest.approx(3.0)


def test_estimate_cost_scales_with_request_weight():
    assert estimate_cost({"type": "bench", "cells": 7}) == 7.0
    assert estimate_cost({"type": "figure", "figure": "table1"}) == 1.0
    quick = estimate_cost({"type": "figure", "figure": "fig5",
                           "quick": True})
    full = estimate_cost({"type": "figure", "figure": "fig5",
                          "quick": False})
    assert quick < full


def test_request_key_is_deterministic_and_tenant_scoped():
    spec = {"type": "figure", "figure": "fig5", "quick": True}
    assert request_key("alice", spec) == request_key("alice", dict(spec))
    assert request_key("alice", spec) != request_key("bob", spec)
    assert len(request_key("alice", spec)) == 16


def test_parse_endpoint_resolution_order(tmp_path):
    assert parse_endpoint(None, "127.0.0.1:9000") == \
        ("tcp", ("127.0.0.1", 9000))
    # Explicit TCP wins over an explicit socket path.
    assert parse_endpoint(tmp_path / "s.sock", "h:1")[0] == "tcp"
    kind, address = parse_endpoint(tmp_path / "s.sock", None)
    assert kind == "unix" and address == str(tmp_path / "s.sock")
    with pytest.raises(ReproError):
        parse_endpoint(None, "no-port-here")
    with pytest.raises(ReproError):
        parse_endpoint(None, "host:notaport")


def test_session_journal_replay_skips_torn_tail_first_record_wins(tmp_path):
    journal = SessionJournal(tmp_path / "serve")
    journal.append({"type": "request", "key": "k1", "tenant": "a",
                    "spec": {"type": "bench", "cells": 1}})
    journal.append({"type": "result", "key": "k1", "status": "ok",
                    "rendered": "first"})
    # Duplicate result for the same key: the first one wins on replay.
    journal.append({"type": "result", "key": "k1", "status": "ok",
                    "rendered": "second"})
    # A torn tail (killed mid-append) must not poison the replay.
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"schema": 1, "type": "result", "key": "k2"')
    requests, results = journal.load()
    assert set(requests) == {"k1"}
    assert results["k1"]["rendered"] == "first"
    assert "k2" not in results


# ---------------------------------------------------------------------------
# Probes and request validation
# ---------------------------------------------------------------------------


def test_ping_ready_and_status_probes(tmp_path):
    with _server(tmp_path) as server:
        cli = _client(server)
        assert wait_until_ready(cli, timeout=10.0)
        pong = cli.probe("ping")
        assert pong["ok"] and pong["type"] == "pong"
        assert pong["pid"] == os.getpid()
        status = cli.probe("status")
        assert status["ok"] and not status["draining"]
        assert status["endpoint"] == server.endpoint
        assert status["inflight"] == 0
        assert status["journal"]["path"] == str(server.journal.path)


def test_bad_requests_get_typed_errors(tmp_path):
    with _server(tmp_path) as server:
        cli = _client(server)
        assert cli.request({"type": "nonsense"})["error"] == BAD_REQUEST
        assert cli.request({"type": "figure", "figure": "nope"}
                           )["error"] == BAD_REQUEST
        assert cli.request({"type": "bench", "cells": -3}
                           )["error"] == BAD_REQUEST
        assert cli.request({"type": "bench", "cells": 1,
                            "deadline_seconds": "soon"}
                           )["error"] == BAD_REQUEST
        # A non-JSON line must be answered, not crash the reader.
        sock = socket.create_connection(server.address, timeout=10.0)
        try:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("r").readline()
        finally:
            sock.close()
        assert json.loads(line)["error"] == BAD_REQUEST


# ---------------------------------------------------------------------------
# Execution, journaling, idempotent re-ask
# ---------------------------------------------------------------------------


def test_bench_runs_journals_and_counts_cells(tmp_path):
    telemetry.enable()
    with _server(tmp_path) as server:
        cli = _client(server)
        response = cli.bench(cells=3, key="bench-3")
        assert response["ok"] and response["cells"] == 3
        assert response["rendered"] == "bench: 3 cells x 0s"
        requests, results = server.journal.load()
        assert "bench-3" in requests and "bench-3" in results
        assert results["bench-3"]["status"] == "ok"
        assert counter_sum("serve.cells") == 3


def test_reask_by_key_is_answered_from_the_journal(tmp_path):
    with _server(tmp_path) as server:
        cli = _client(server)
        first = cli.bench(cells=2, key="idem")
        again = cli.bench(cells=2, key="idem")
        assert first["ok"] and again["ok"]
        assert again["rendered"] == first["rendered"]
        stats = server.stats_snapshot()
        assert stats["served"] == 1
        assert stats["journal_hits"] == 1


def test_same_key_while_running_attaches_as_waiter(tmp_path):
    with _server(tmp_path) as server:
        responses = {}

        def ask(slot):
            responses[slot] = _client(server).bench(
                cells=10, cell_seconds=0.05, key="shared")

        first = threading.Thread(target=ask, args=("first",))
        first.start()
        _wait_for_inflight(server, 1)
        second = threading.Thread(target=ask, args=("second",))
        second.start()
        first.join(timeout=30)
        second.join(timeout=30)
        assert responses["first"]["ok"] and responses["second"]["ok"]
        assert responses["first"]["key"] == responses["second"]["key"]
        # One execution served both askers.
        assert server.stats_snapshot()["served"] == 1


# ---------------------------------------------------------------------------
# Admission control: quota and backpressure
# ---------------------------------------------------------------------------


def test_quota_exhaustion_sheds_with_retry_after(tmp_path):
    with _server(tmp_path, tenant_rate=0.1, tenant_burst=1.0) as server:
        cli = _client(server)
        assert cli.bench(cells=1, key="q1")["ok"]
        shed = cli.bench(cells=1, key="q2")
        assert shed["error"] == RETRY_AFTER
        assert shed["reason"] == "quota"
        assert shed["retry_after"] > 0
        assert server.stats_snapshot()["rejected"] == 1
        # Tenants are isolated: another tenant's bucket is untouched.
        other = _client(server, tenant="other")
        assert other.bench(cells=1, key="q3", tenant="other")["ok"]


def test_backpressure_bounds_inflight_requests(tmp_path):
    with _server(tmp_path, max_inflight=1) as server:
        done = {}

        def ask():
            done["slow"] = _client(server).bench(
                cells=20, cell_seconds=0.05, key="occupant")

        thread = threading.Thread(target=ask)
        thread.start()
        _wait_for_inflight(server, 1)
        shed = _client(server).bench(cells=1, key="overflow")
        assert shed["error"] == RETRY_AFTER
        assert shed["reason"] == "backpressure"
        thread.join(timeout=30)
        assert done["slow"]["ok"]


# ---------------------------------------------------------------------------
# Deadlines: cooperative cancellation between cells
# ---------------------------------------------------------------------------


def test_deadline_cancels_between_cells_and_is_terminal(tmp_path):
    with _server(tmp_path) as server:
        cli = _client(server)
        response = cli.bench(cells=50, cell_seconds=0.05,
                             key="late", deadline_seconds=0.12)
        assert response["error"] == DEADLINE_EXCEEDED
        _, results = server.journal.load()
        record = results["late"]
        assert record["status"] == "deadline"
        assert record["cells"] < 50  # cancelled partway, not run out
        # Terminal: the re-ask gets the journaled expiry, no re-run.
        again = cli.bench(cells=50, cell_seconds=0.05, key="late")
        assert again["error"] == DEADLINE_EXCEEDED
        assert server.stats_snapshot()["deadline"] == 1


def test_restart_expires_requests_whose_deadline_passed(tmp_path):
    journal = SessionJournal(tmp_path / "serve")
    journal.append({"type": "request", "key": "expired", "tenant": "a",
                    "spec": {"type": "bench", "cells": 1},
                    "deadline_unix": time.time() - 5.0,
                    "accepted_unix": time.time() - 10.0})
    with _server(tmp_path) as server:
        record = _wait_for_result(server, "expired", timeout=5.0)
        assert record["status"] == "deadline"
        response = _client(server).bench(cells=1, key="expired")
        assert response["error"] == DEADLINE_EXCEEDED


# ---------------------------------------------------------------------------
# Crash safety: journal resume across restarts
# ---------------------------------------------------------------------------


def test_restart_resumes_journaled_unfinished_request(tmp_path):
    journal = SessionJournal(tmp_path / "serve")
    journal.append({"type": "request", "key": "orphan", "tenant": "a",
                    "spec": {"type": "bench", "cells": 2,
                             "cell_seconds": 0.0},
                    "deadline_unix": None,
                    "accepted_unix": time.time()})
    with _server(tmp_path) as server:
        assert server.stats_snapshot()["resumed"] == 1
        record = _wait_for_result(server, "orphan")
        assert record["status"] == "ok"
        # The original client re-asks by key and gets the answer.
        response = _client(server).bench(cells=2, key="orphan")
        assert response["ok"]
        assert response["rendered"] == "bench: 2 cells x 0s"


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


def test_drain_finishes_inflight_sheds_queued_and_resumes(tmp_path):
    responses = {}
    with _server(tmp_path) as server:
        def ask(slot, key):
            responses[slot] = _client(server).bench(
                cells=10, cell_seconds=0.05, key=key)

        running = threading.Thread(target=ask, args=("running", "r1"))
        running.start()
        _wait_for_inflight(server, 1)
        queued = threading.Thread(target=ask, args=("queued", "r2"))
        queued.start()
        _wait_for_inflight(server, 2)
        drain_ack = _client(server).drain()
        assert drain_ack["ok"]
        # New work is shed immediately while draining.
        late = _client(server).bench(cells=1, key="r3")
        assert late["error"] == RETRY_AFTER
        assert late["reason"] == "draining"
        assert server.drain(grace=30.0) == 0
        running.join(timeout=30)
        queued.join(timeout=30)
    # The in-flight request finished inside the grace window; the
    # queued one was answered with a typed draining shed.
    assert responses["running"]["ok"]
    assert responses["queued"]["error"] == RETRY_AFTER
    assert responses["queued"]["reason"] == "draining"
    # Restart on the same journal: the queued request resumes and its
    # client gets the answer by re-asking with the same key.
    with _server(tmp_path) as reborn:
        assert reborn.stats_snapshot()["resumed"] == 1
        record = _wait_for_result(reborn, "r2")
        assert record["status"] == "ok"
        response = _client(reborn).bench(cells=10, key="r2")
        assert response["ok"]


def test_drain_past_grace_aborts_between_cells_then_resumes(tmp_path):
    telemetry.enable()
    responses = {}
    with _server(tmp_path) as server:
        def ask():
            responses["victim"] = _client(server).bench(
                cells=40, cell_seconds=0.03, key="long")

        thread = threading.Thread(target=ask)
        thread.start()
        _wait_for_inflight(server, 1)
        assert server.drain(grace=0.05) == 0
        thread.join(timeout=30)
        assert responses["victim"]["error"] == RETRY_AFTER
        assert responses["victim"]["reason"] == "draining"
        # The abort is deliberately NOT journaled as a result...
        _, results = server.journal.load()
        assert "long" not in results
        assert counter_sum("serve.aborted") >= 1
    # ...so a restart re-runs it from the acceptance record.
    with _server(tmp_path) as reborn:
        record = _wait_for_result(reborn, "long")
        assert record["status"] == "ok"
        assert record["cells"] == 40


# ---------------------------------------------------------------------------
# Fair-share scheduling (deficit round-robin)
# ---------------------------------------------------------------------------


def test_drr_interleaves_light_tenant_through_heavy_backlog(tmp_path):
    heavy_n, light_n = 5, 4
    with _server(tmp_path, quantum=4.0) as server:
        threads = []

        def ask(tenant, key, cells):
            _client(server, tenant=tenant).bench(
                cells=cells, cell_seconds=0.03, key=key, tenant=tenant)

        for i in range(heavy_n):
            thread = threading.Thread(
                target=ask, args=("heavy", f"h{i}", 6))
            thread.start()
            threads.append(thread)
        _wait_for_inflight(server, heavy_n)
        for i in range(light_n):
            thread = threading.Thread(
                target=ask, args=("light", f"l{i}", 1))
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=60)
        lines = server.journal.path.read_text().splitlines()
    order = [json.loads(line)["tenant"] for line in lines
             if json.loads(line).get("type") == "result"]
    assert order.count("heavy") == heavy_n
    assert order.count("light") == light_n
    # FIFO would run every heavy request before any light one. DRR
    # must interleave: the first light completion happens while most
    # of the heavy backlog is still pending, and the light tenant is
    # fully served before the heavy tenant finishes.
    first_light = order.index("light")
    assert order[:first_light].count("heavy") <= 3
    last_light = len(order) - 1 - order[::-1].index("light")
    last_heavy = len(order) - 1 - order[::-1].index("heavy")
    assert last_light < last_heavy


# ---------------------------------------------------------------------------
# Warm queries come straight from the disk cache
# ---------------------------------------------------------------------------


def test_warm_figure_query_skips_the_simulator(tmp_path):
    telemetry.enable()
    with _server(tmp_path) as server:
        cli = _client(server)
        cold = cli.query_figure("fig5", quick=True, key="cold")
        assert cold["ok"]
        executed = counter_sum("guest.instructions")
        assert executed > 0  # the cold pass really simulated
        warm = cli.query_figure("fig5", quick=True, key="warm")
        assert warm["ok"]
        assert warm["rendered"] == cold["rendered"]
        # Byte-identical answer without a single guest instruction:
        # every cell was a content-addressed cache hit.
        assert counter_sum("guest.instructions") == executed
        assert server.stats_snapshot()["journal_hits"] == 0


# ---------------------------------------------------------------------------
# Fault injection: slow tenants and vanishing clients
# ---------------------------------------------------------------------------


def test_slow_tenant_fault_stretches_that_tenants_cells(tmp_path):
    plan = FaultPlan.from_env("slow_tenant:p=1,sleep=0.05")
    with _server(tmp_path, faults=plan) as server:
        response = _client(server).bench(cells=3, key="slowed")
        assert response["ok"]
        # One checkpoint on entry plus one per cell, 0.05s each.
        assert response["wall_seconds"] >= 0.15


def test_client_disconnect_fault_still_journals_the_answer(tmp_path):
    plan = FaultPlan.from_env("client_disconnect:p=1")
    with _server(tmp_path) as server:
        flaky = _client(server, faults=plan)
        assert flaky.bench(cells=3, cell_seconds=0.1, key="gone") is None
        record = _wait_for_result(server, "gone")
        assert record["status"] == "ok"
        # The vanished client re-asks by key and gets the answer.
        response = _client(server).bench(cells=3, key="gone")
        assert response["ok"]
        assert server.stats_snapshot()["disconnects"] >= 1


# ---------------------------------------------------------------------------
# Unix socket hygiene
# ---------------------------------------------------------------------------


def test_unix_socket_path_length_is_checked_early(tmp_path):
    server = SweepServer(socket_path="/tmp/" + "x" * 120,
                         serve_dir=tmp_path / "serve",
                         faults=_NO_FAULTS)
    with pytest.raises(ExperimentError, match="AF_UNIX"):
        server.start()


def test_unix_stale_socket_reclaimed_live_socket_refused(tmp_path):
    import tempfile
    short_dir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    path = short_dir / "s.sock"
    try:
        path.touch()  # stale leftover from a crashed server
        with _server(tmp_path, tcp=None, socket_path=path) as server:
            cli = ServeClient(socket_path=path, timeout=10.0,
                              faults=_NO_FAULTS)
            assert wait_until_ready(cli, timeout=10.0)
            # A second server must refuse the *live* socket.
            rival = SweepServer(socket_path=path,
                                serve_dir=tmp_path / "serve2",
                                faults=_NO_FAULTS)
            with pytest.raises(ExperimentError, match="already"):
                rival.start()
            assert server.endpoint == f"unix:{path}"
        assert not path.exists()  # teardown unlinked it
    finally:
        path.unlink(missing_ok=True)
        short_dir.rmdir()


# ---------------------------------------------------------------------------
# CLI round trips (subprocess)
# ---------------------------------------------------------------------------


def _spawn_server(extra_env: dict | None = None,
                  *args: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env.pop(FAULTS_ENV, None)
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--tcp", "127.0.0.1:0", *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    line = proc.stdout.readline()
    assert "listening on tcp:" in line, line
    endpoint = line.split("listening on tcp:")[1].split()[0]
    return proc, endpoint


def _query(endpoint: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env.pop(FAULTS_ENV, None)
    return subprocess.run(
        [sys.executable, "-m", "repro", "query",
         "--tcp", endpoint, *args],
        env=env, capture_output=True, text=True, timeout=120)


def test_cli_serve_answers_queries_and_drains_on_sigterm():
    proc, endpoint = _spawn_server()
    try:
        probe = _query(endpoint, "--probe", "ping")
        assert probe.returncode == 0, probe.stdout + probe.stderr
        answer = _query(endpoint, "table1")
        assert answer.returncode == 0, answer.stdout + answer.stderr
        assert answer.stdout.strip()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        tail = proc.stdout.read()
        assert "drained" in tail
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def _crash_seed(key: str, probability: float) -> int:
    """A seed whose first server_crash firing lands mid-campaign
    (cell index 2..6 of fig5-quick's 8 cells)."""
    for seed in range(1, 500):
        fired = [i for i in range(8)
                 if _decide(seed, "server_crash", f"{key}#{i}", 0,
                            probability)]
        if fired and 2 <= fired[0] <= 6:
            return seed
    raise AssertionError("no crash seed found")


def test_server_crash_mid_campaign_resume_is_byte_identical():
    """The chaos acceptance test: kill the server between cells of a
    figure campaign, restart it, and prove the resumed answer is
    byte-identical to a serial in-process run."""
    serial = str(fig5(ExperimentRunner(), quick=True, jobs=1))
    key = "chaos-fig5"
    seed = _crash_seed(key, probability=0.5)

    crashy, endpoint = _spawn_server(
        {FAULTS_ENV: f"server_crash:p=0.5,seed={seed}"})
    try:
        # The in-flight query dies with the server.
        asked = _query(endpoint, "fig5", "--key", key)
        assert asked.returncode != 0
        assert crashy.wait(timeout=30) == CRASH_EXIT
    finally:
        if crashy.poll() is None:
            crashy.kill()
            crashy.wait(timeout=10)
    # The acceptance record survived the crash; no result did.
    journal = SessionJournal(serve_root())
    requests, results = journal.load()
    assert key in requests and key not in results

    reborn, endpoint = _spawn_server()
    try:
        # The restarted server re-runs the journaled request; the
        # client just re-asks by key.
        answer = _query(endpoint, "fig5", "--key", key)
        assert answer.returncode == 0, answer.stdout + answer.stderr
        assert answer.stdout.rstrip("\n") == serial.rstrip("\n")
        reborn.send_signal(signal.SIGTERM)
        assert reborn.wait(timeout=30) == 0
    finally:
        if reborn.poll() is None:
            reborn.kill()
            reborn.wait(timeout=10)
