"""The ``repro.telemetry`` subsystem: metrics, spans, events, export."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.__main__ import main
from repro.analysis.report import render_span_tree
from repro.config import skylake_config
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import (
    TELEMETRY,
    EventLog,
    MetricError,
    MetricsRegistry,
    Tracer,
)
from repro.telemetry.export import (
    build_manifest,
    load_last_manifest,
    write_manifest,
)

_64K = 64 * 1024


class FakeClock:
    """Deterministic clock for span/self-time assertions."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

def test_counter_semantics():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.counter("hits") is counter
    with pytest.raises(MetricError):
        counter.inc(-1)


def test_labeled_children_are_distinct_series():
    registry = MetricsRegistry()
    pypy = registry.counter("guest.instructions", runtime="pypy")
    v8 = registry.counter("guest.instructions", runtime="v8")
    assert pypy is not v8
    pypy.inc(10)
    v8.inc(3)
    snap = registry.snapshot()
    assert snap["guest.instructions{runtime=pypy}"] == 10
    assert snap["guest.instructions{runtime=v8}"] == 3


def test_gauge_set_and_move():
    registry = MetricsRegistry()
    gauge = registry.gauge("ips", stage="core")
    gauge.set(1000.0)
    gauge.inc(24.0)
    gauge.dec(4.0)
    assert gauge.value == 1020.0
    assert registry.snapshot()["ips{stage=core}"] == 1020.0


def test_histogram_log_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("bytes")
    for value in (0, 1, 2, 3, 900):
        hist.observe(value)
    assert hist.count == 5
    assert hist.sum == 906
    snap = hist.snapshot()
    # 0 and 1 share the <=1 bucket; 2 is <=2; 3 is <=4; 900 is <=1024.
    assert snap["buckets"] == {"le_1": 2, "le_2": 1, "le_4": 1,
                               "le_1024": 1}
    assert hist.mean == pytest.approx(906 / 5)


def test_metric_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(MetricError):
        registry.gauge("x")
    # Same name with different labels keeps the original kind.
    registry.counter("x", shard="a")


def test_registry_reset_and_get():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    assert registry.get("a").value == 1
    assert registry.get("missing") is None
    registry.reset()
    assert registry.snapshot() == {}


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

def test_span_nesting_and_self_time():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer", workload="chaos"):
        clock.advance(0.010)
        with tracer.span("inner"):
            clock.advance(0.030)
        clock.advance(0.002)
    (outer,) = tracer.tree()
    assert outer["name"] == "outer"
    assert outer["attrs"] == {"workload": "chaos"}
    assert outer["duration_us"] == pytest.approx(42_000, abs=1)
    assert outer["self_us"] == pytest.approx(12_000, abs=1)
    (inner,) = outer["children"]
    assert inner["name"] == "inner"
    assert inner["duration_us"] == pytest.approx(30_000, abs=1)
    assert inner["children"] == []


def test_sibling_spans_attach_to_common_parent():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("root"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    (root,) = tracer.tree()
    assert [c["name"] for c in root["children"]] == ["a", "b"]


def test_chrome_trace_schema():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer"):
        clock.advance(0.001)
        with tracer.span("inner", k=1):
            clock.advance(0.004)
    events = tracer.to_chrome_trace()
    assert [e["name"] for e in events] == ["outer", "inner"]
    for event in events:
        assert event["ph"] == "X"
        assert isinstance(event["ts"], float)
        assert isinstance(event["dur"], float)
        assert {"pid", "tid", "cat", "args"} <= set(event)
    inner = events[1]
    assert inner["ts"] == pytest.approx(1000, abs=1)
    assert inner["dur"] == pytest.approx(4000, abs=1)
    # Valid JSON end to end.
    assert json.loads(json.dumps(events)) == events


def test_render_span_tree():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("guest.run", runtime="pypy"):
        clock.advance(0.5)
        with tracer.span("sim.memory_side"):
            clock.advance(0.25)
    text = render_span_tree(tracer.tree())
    assert "guest.run" in text
    assert "  sim.memory_side" in text
    assert "runtime=pypy" in text
    assert render_span_tree([]).endswith("(no spans recorded)")


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------

def test_event_log_records_fields():
    log = EventLog(capacity=16)
    log.emit("gc.minor.end", bytes_promoted=128, runtime="pypy")
    (event,) = list(log)
    assert event["kind"] == "gc.minor.end"
    assert event["bytes_promoted"] == 128
    assert event["runtime"] == "pypy"
    assert event["ts_us"] >= 0


def test_event_log_bounding_keeps_counts():
    log = EventLog(capacity=4)
    for i in range(10):
        log.emit("tick", i=i)
    assert len(log) == 4
    assert log.emitted == 10
    assert log.dropped == 6
    assert log.count("tick") == 10  # cumulative despite eviction
    # The ring keeps the newest events.
    assert [e["i"] for e in log] == [6, 7, 8, 9]
    snap = log.snapshot()
    assert snap["dropped"] == 6
    assert snap["counts"] == {"tick": 10}


def test_event_log_rejects_bad_capacity():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


# ----------------------------------------------------------------------
# Global state / zero-cost default
# ----------------------------------------------------------------------

def test_disabled_by_default_records_nothing():
    assert not TELEMETRY.enabled
    TELEMETRY.metrics.counter("x").inc()
    TELEMETRY.events.emit("e", a=1)
    with TELEMETRY.tracer.span("s"):
        pass
    assert TELEMETRY.metrics.snapshot() == {}
    assert TELEMETRY.tracer.tree() == []
    assert len(TELEMETRY.events) == 0


def test_session_restores_prior_state():
    assert not TELEMETRY.enabled
    with telemetry.session():
        assert TELEMETRY.enabled
        TELEMETRY.metrics.counter("x").inc()
        assert TELEMETRY.metrics.snapshot() == {"x": 1}
    assert not TELEMETRY.enabled
    # Nested sessions keep the outer one alive.
    telemetry.enable()
    with telemetry.session():
        pass
    assert TELEMETRY.enabled
    telemetry.disable()


def test_reset_clears_data_but_not_enablement():
    with telemetry.session():
        TELEMETRY.metrics.counter("x").inc()
        TELEMETRY.events.emit("e")
        telemetry.reset()
        assert TELEMETRY.enabled
        assert TELEMETRY.metrics.snapshot() == {}
        assert len(TELEMETRY.events) == 0


# ----------------------------------------------------------------------
# Integration: instrumented pipeline
# ----------------------------------------------------------------------

def test_pypy_run_emits_gc_and_jit_events():
    with telemetry.session():
        runner = ExperimentRunner()
        handle = runner.run("chaos", runtime="pypy", jit=True,
                            nursery=_64K)
        events = TELEMETRY.events
        assert events.count("gc.minor.start") >= 1
        assert events.count("gc.minor.end") >= 1
        assert events.count("jit.trace_compile") >= 1
        minor_ends = [e for e in events if e["kind"] == "gc.minor.end"]
        assert any(e["bytes_promoted"] > 0 for e in minor_ends)
        compile_events = [e for e in events
                          if e["kind"] == "jit.trace_compile"]
        assert all(e["ops"] > 0 for e in compile_events)
        # The handle's stats agree with the event log.
        assert events.count("gc.minor.end") == handle.minor_gcs
        assert events.count("jit.trace_compile") == handle.traces_compiled


def test_runner_spans_and_cache_counters():
    with telemetry.session():
        runner = ExperimentRunner()
        handle = runner.run("chaos", runtime="pypy", jit=True,
                            nursery=_64K)
        runner.run("chaos", runtime="pypy", jit=True, nursery=_64K)
        config = skylake_config()
        runner.simulate(handle, config)
        runner.simulate(handle, config)
        metrics = TELEMETRY.metrics
        assert metrics.get("runner.trace_cache.miss",
                           runtime="pypy").value == 1
        assert metrics.get("runner.trace_cache.hit",
                           runtime="pypy").value == 1
        assert metrics.get("runner.state_cache.miss").value == 1
        assert metrics.get("runner.state_cache.hit").value == 1
        assert metrics.get("guest.instructions",
                           runtime="pypy").value == len(handle.trace)
        names = [s["name"] for s in TELEMETRY.tracer.tree()]
        assert "guest.run" in names
        assert "sim.memory_side" in names
        assert "sim.core" in names
        ips = metrics.get("sim.instructions_per_second",
                          stage="memory_side")
        assert ips is not None and ips.value > 0


def test_run_handle_throughput_fields():
    runner = ExperimentRunner()
    handle = runner.run("sym_sum", runtime="cpython")
    assert handle.wall_seconds > 0
    assert handle.host_instructions == len(handle.trace)
    assert handle.token > 0


def test_state_cache_keys_on_token_not_trace_id():
    runner = ExperimentRunner()
    config = skylake_config()
    h1 = runner.run("sym_sum", runtime="cpython")
    h2 = runner.run("sym_sum", runtime="pypy", jit=False)
    assert h1.token != h2.token
    s1 = runner.memory_side(h1, config)
    s2 = runner.memory_side(h2, config)
    assert s1 is not s2
    # Cached: same handle + config returns the identical state.
    assert runner.memory_side(h1, config) is s1


def test_cpython_run_counts_allocator_traffic():
    with telemetry.session():
        runner = ExperimentRunner()
        runner.run("sym_sum", runtime="cpython")
        assert TELEMETRY.metrics.get("cpython.mallocs").value > 0
        assert TELEMETRY.metrics.get("cpython.frees").value > 0


def test_v8_run_counts_inline_caches():
    with telemetry.session():
        runner = ExperimentRunner()
        runner.run("richards", runtime="v8")
        hits = TELEMETRY.metrics.get("v8.ic.hit")
        assert hits is not None and hits.value > 0


# ----------------------------------------------------------------------
# Manifest export
# ----------------------------------------------------------------------

def test_manifest_round_trips_through_json(tmp_path):
    with telemetry.session():
        runner = ExperimentRunner()
        runner.run("chaos", runtime="pypy", jit=True, nursery=_64K)
        path = runner.write_manifest(str(tmp_path / "manifest.json"))
        loaded = json.loads(path.read_text())
    rebuilt = json.loads(json.dumps(loaded))
    assert rebuilt == loaded
    assert rebuilt["schema"] == "repro-telemetry/2"
    assert rebuilt["command"] == "experiments.runner"
    assert rebuilt["stats"]["workload"] == "chaos"
    assert rebuilt["stats"]["wall_seconds"] > 0
    assert rebuilt["metrics"]["gc.minor_collections{runtime=pypy}"] >= 1
    assert any(s["name"] == "guest.run" for s in rebuilt["spans"])
    kinds = {e["kind"] for e in rebuilt["events"]["events"]}
    assert "gc.minor.end" in kinds
    assert "jit.trace_compile" in kinds
    # The unified trace mixes complete spans with lane metadata and
    # instant markers.
    for event in rebuilt["chrome_trace"]["traceEvents"]:
        assert event["ph"] in ("X", "M", "i")
        if event["ph"] == "X":
            assert "ts" in event and "dur" in event


def test_write_manifest_mirrors_last_run(tmp_path):
    with telemetry.session():
        with TELEMETRY.tracer.span("s"):
            pass
        write_manifest(command="test")
        manifest = load_last_manifest()
    assert manifest is not None
    assert manifest["command"] == "test"
    assert manifest["spans"][0]["name"] == "s"


def test_build_manifest_disabled_is_empty_but_valid():
    manifest = build_manifest(command="noop")
    assert manifest["metrics"] == {}
    assert manifest["spans"] == []
    assert manifest["events"]["events"] == []
    json.dumps(manifest)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_metrics_out_writes_manifest(tmp_path, capsys):
    out = tmp_path / "m.json"
    assert main(["run", "chaos", "--runtime", "pypy",
                 "--metrics-out", str(out)]) == 0
    capsys.readouterr()
    manifest = json.loads(out.read_text())
    assert manifest["command"] == "run"
    assert manifest["config"]["runtime"] == "pypy"
    assert any(s["name"] == "guest.run" for s in manifest["spans"])
    assert manifest["metrics"]["guest.instructions{runtime=pypy}"] > 0
    assert manifest["stats"]["bytecodes"] > 0
    trace_events = manifest["chrome_trace"]["traceEvents"]
    assert trace_events and all(
        "ts" in e and "dur" in e
        for e in trace_events if e["ph"] == "X")
    assert any(e["ph"] == "X" for e in trace_events)
    # The CLI leaves library defaults untouched.
    assert not TELEMETRY.enabled


def test_cli_telemetry_dumps_last_manifest(capsys):
    assert main(["run", "sym_sum"]) == 0
    capsys.readouterr()
    assert main(["telemetry"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["command"] == "run"
    assert manifest["config"]["file"] == "sym_sum"


def test_cli_telemetry_tree_and_chrome_out(tmp_path, capsys):
    assert main(["run", "sym_sum"]) == 0
    capsys.readouterr()
    assert main(["telemetry", "--tree"]) == 0
    assert "guest.run" in capsys.readouterr().out
    chrome = tmp_path / "trace.json"
    assert main(["telemetry", "--chrome-out", str(chrome)]) == 0
    capsys.readouterr()
    trace = json.loads(chrome.read_text())
    assert trace["traceEvents"]
    assert all(e["ph"] in ("X", "M", "i") for e in trace["traceEvents"])
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_cli_telemetry_without_manifest_fails(capsys):
    # The isolation fixture points REPRO_TELEMETRY_DIR at an empty dir.
    assert main(["telemetry"]) == 1
    assert "no telemetry manifest" in capsys.readouterr().err
