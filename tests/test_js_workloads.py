"""The 37 JetStream-analog workloads on the V8-analog runtime."""

import pytest

from repro.errors import WorkloadError
from repro.frontend import compile_source
from repro.vm.v8 import run_v8
from repro.vm.v8.workloads import JS_SUITE, js_source
from repro.workloads.native import run_native


def test_suite_has_37_benchmarks():
    assert len(JS_SUITE) == 37
    assert len(set(JS_SUITE)) == 37


def test_unknown_name_raises():
    with pytest.raises(WorkloadError):
        js_source("bitcoin-miner")


@pytest.mark.parametrize("name", JS_SUITE)
def test_matches_native_on_v8_model(name):
    source = js_source(name)
    expected = run_native(source)
    assert expected, f"{name} produced no output natively"
    program = compile_source(source, name)
    vm, _ = run_v8(program, max_instructions=30_000_000)
    assert vm.output == expected


def test_v8_compiles_hot_code():
    compiled = 0
    for name in ("crypto", "splay", "quicksort.c", "hash-map"):
        program = compile_source(js_source(name), name)
        vm, _ = run_v8(program, max_instructions=30_000_000)
        compiled += vm.stats.traces_compiled
    assert compiled >= 4
