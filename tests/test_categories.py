"""Table II taxonomy invariants."""

from repro.categories import (
    CATEGORY_INFO,
    INTERPRETER_CATEGORIES,
    LANGUAGE_FEATURE_CATEGORIES,
    NEW_CATEGORIES,
    OVERHEAD_CATEGORIES,
    Group,
    OverheadCategory,
    group_of,
    is_overhead,
    label_of,
)


def test_every_category_has_info():
    for category in OverheadCategory:
        assert category in CATEGORY_INFO
        info = CATEGORY_INFO[category]
        assert info.label
        assert info.description


def test_table2_has_fourteen_overhead_categories():
    assert len(OVERHEAD_CATEGORIES) == 14


def test_three_new_categories():
    # Table II marks error check, reg transfer, and C function call NEW.
    assert set(NEW_CATEGORIES) == {
        OverheadCategory.ERROR_CHECK,
        OverheadCategory.REG_TRANSFER,
        OverheadCategory.C_FUNCTION_CALL,
    }


def test_groups_partition_overheads():
    assert set(LANGUAGE_FEATURE_CATEGORIES) | set(INTERPRETER_CATEGORIES) \
        == set(OVERHEAD_CATEGORIES)
    assert not set(LANGUAGE_FEATURE_CATEGORIES) \
        & set(INTERPRETER_CATEGORIES)


def test_execute_is_not_overhead():
    assert not is_overhead(OverheadCategory.EXECUTE)
    assert not is_overhead(OverheadCategory.C_LIBRARY)
    assert is_overhead(OverheadCategory.DISPATCH)


def test_group_of_and_labels():
    assert group_of(OverheadCategory.DISPATCH) is Group.INTERPRETER
    assert group_of(OverheadCategory.TYPE_CHECK) is Group.DYNAMIC_LANGUAGE
    assert group_of(OverheadCategory.ERROR_CHECK) is \
        Group.ADDITIONAL_LANGUAGE
    assert label_of(OverheadCategory.C_FUNCTION_CALL) == "C function call"


def test_category_values_are_stable():
    # Trace files persist these integers; renumbering would corrupt them.
    assert int(OverheadCategory.EXECUTE) == 0
    assert int(OverheadCategory.C_LIBRARY) == 1
    assert int(OverheadCategory.C_FUNCTION_CALL) == 15
    assert int(OverheadCategory.UNRESOLVED) == 16
