"""GenerationalGC internals: barriers, accounting, suppression."""

from repro.config import pypy_runtime
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.vm.pypy import PyPyVM


def make_vm(source, nursery=64 * 1024, jit=False):
    program = compile_source(source, "<gc-internal>")
    machine = HostMachine(AddressSpace(nursery_size=nursery),
                          max_instructions=40_000_000)
    vm = PyPyVM(machine, program,
                pypy_runtime(jit=jit, nursery_size=nursery))
    vm.run()
    return vm, machine


def test_copied_bytes_accounting():
    vm, _ = make_vm("""
keep = []
for i in range(3000):
    keep.append((i, i))
    if len(keep) > 40:
        keep.pop(0)
print(len(keep))
""")
    assert vm.stats.minor_gcs > 0
    # Survivors were copied: accounting moved a plausible volume.
    assert vm.stats.gc_copied_bytes > 0
    assert vm.gc.copied_bytes == vm.stats.gc_copied_bytes
    assert vm.gc.promoted_objects > 0


def test_remembered_set_clears_after_collection():
    vm, _ = make_vm("""
keep = []
for i in range(4000):
    keep.append(i * 1000)
    if len(keep) > 16:
        keep.pop(0)
print(len(keep))
""")
    # After the final collection, only post-GC writes remain remembered.
    assert len(vm.gc.remembered) < 64


def test_nursery_object_tracking_resets():
    vm, machine = make_vm("""
total = 0
for i in range(5000):
    pair = (i, i + 1)
    total = total + pair[0]
print(total)
""")
    assert vm.stats.minor_gcs > 1
    # Tracking holds only objects allocated since the last collection,
    # which is bounded by the nursery size.
    assert len(vm.gc.nursery_objects) < 6000


def test_write_barrier_suppressed_emission_still_tracks():
    # In JIT-compiled execution the barrier's *emission* is suppressed
    # but its bookkeeping must still populate the remembered set, or
    # survivors reachable only from old objects would be lost.
    source = """
keep = []
for i in range(2500):
    keep.append((i, i * 3))
    if len(keep) > 10:
        keep.pop(0)
total = 0
for pair in keep:
    a, b = pair
    total = total + b
print(total)
"""
    vm, _ = make_vm(source, jit=True)
    expected = sum(3 * i for i in range(2490, 2500))
    assert vm.output == [str(expected)]
    assert vm.stats.minor_gcs > 0
    assert vm.stats.traces_compiled >= 1


def test_gc_counts_match_stats():
    vm, _ = make_vm("""
junk = []
for i in range(3000):
    junk.append(str(i))
    if len(junk) > 100:
        junk = []
print(len(junk))
""")
    assert vm.gc.minor_gc_count == vm.stats.minor_gcs
    assert vm.gc.major_gc_count == vm.stats.major_gcs


def test_old_space_grows_monotonically():
    vm, machine = make_vm("""
keep = []
for i in range(2000):
    keep.append((i, i))
print(len(keep))
""")
    if vm.stats.minor_gcs:
        assert machine.space.old.used > 0
