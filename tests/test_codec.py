"""Columnar trace codec: round trips, laziness, corruption, identity.

Covers the v2 frame format end to end — varint/zigzag/delta
primitives, kernel-vs-NumPy bit parity, property round-trips over
random and adversarial column contents, lazy reader-backed loads,
pickle-by-reference fan-out, and figure byte-identity across the
``REPRO_TRACE_CODEC`` switch.
"""

from __future__ import annotations

import json
import os
import pickle
import struct

import numpy as np
import pytest

from repro.errors import ConfigError, TraceError
from repro.experiments.diskcache import DiskCache
from repro.experiments.runner import ExperimentRunner
from repro.host import _codec_kernel, codec
from repro.host.trace import InstructionTrace


def _random_arrays(rng, n):
    return {
        "pc": rng.integers(0, 1 << 48, n, dtype=np.int64),
        "kind": rng.integers(0, 12, n, dtype=np.int8),
        "category": rng.integers(0, 24, n, dtype=np.int8),
        "addr": rng.integers(-(2 ** 63), 2 ** 63 - 1, n,
                             dtype=np.int64),
        "size": rng.integers(0, 2 ** 31 - 1, n, dtype=np.int32),
        "dep": rng.integers(0, 1 << 16, n, dtype=np.int32),
        "flags": rng.integers(0, 8, n, dtype=np.int8),
        "origin": rng.integers(0, 1 << 40, n, dtype=np.int64),
    }


def _assert_arrays_equal(want, got):
    for name, column in want.items():
        assert np.array_equal(column, got[name]), name
        assert got[name].dtype == codec.DTYPES[
            codec.COLUMNS.index(name)], name


def _trace_from_arrays(arrays):
    trace = InstructionTrace()
    n = len(arrays["pc"])
    if n:
        start = trace.alloc_rows(n)
        buf = trace.buffer()
        for j, name in enumerate(codec.COLUMNS):
            buf[start:start + n, j] = arrays[name]
    return trace


# ----------------------------------------------------------------------
# Varint / zigzag primitives
# ----------------------------------------------------------------------


def test_varint_roundtrip_covers_every_length_boundary():
    values = [0, 1, 127, 128]
    for k in range(1, 10):
        edge = 1 << (7 * k)
        values += [edge - 1, edge, edge + 1]
    values.append(2 ** 64 - 1)
    u = np.array(values, dtype=np.uint64)
    buf = codec._varint_encode_numpy(u)
    back = codec._varint_decode_numpy(buf, u.size)
    assert np.array_equal(u, back)


def test_varint_decode_rejects_truncation_and_trailing_bytes():
    u = np.array([300, 5, 2 ** 40], dtype=np.uint64)
    buf = codec._varint_encode_numpy(u)
    with pytest.raises(TraceError):
        codec._varint_decode_numpy(buf[:-1], u.size)
    with pytest.raises(TraceError):
        codec._varint_decode_numpy(
            np.concatenate([buf, np.array([7], dtype=np.uint8)]),
            u.size)
    with pytest.raises(TraceError):
        codec._varint_decode_numpy(buf, u.size + 1)


def test_varint_decode_rejects_overlong_values():
    # Eleven continuation bytes: no 64-bit varint is that long.
    bad = np.array([0x80] * 11 + [0x01], dtype=np.uint8)
    with pytest.raises(TraceError):
        codec._varint_decode_numpy(bad, 1)


def test_zigzag_is_involutive_at_the_int64_extremes():
    v = np.array([0, -1, 1, 2 ** 63 - 1, -(2 ** 63)], dtype=np.int64)
    u = v.view(np.uint64)
    assert np.array_equal(
        codec._unzigzag(codec._zigzag(u)).view(np.int64), v)


def test_kernel_matches_numpy_bit_for_bit():
    kernel = _codec_kernel.get_kernel()
    if kernel is None:
        pytest.skip("no C compiler available")
    rng = np.random.default_rng(7)
    exponents = rng.integers(0, 64, 4096)
    u = (rng.integers(0, 2 ** 63, 4096, dtype=np.int64)
         .astype(np.uint64) >> exponents.astype(np.uint64))
    reference = codec._varint_encode_numpy(u)
    out = np.empty(u.size * 10, dtype=np.uint8)
    written = kernel.encode(np.ascontiguousarray(u), out)
    assert np.array_equal(out[:written], reference)
    decoded = np.empty(u.size, dtype=np.uint64)
    consumed = kernel.decode(np.ascontiguousarray(reference), decoded)
    assert consumed == reference.size
    assert np.array_equal(decoded, u)
    # Malformed input: the kernel reports, never over-reads.
    assert kernel.decode(reference[:-1].copy(), decoded) == -1


def test_kernel_env_switch_disables(monkeypatch):
    monkeypatch.setenv(_codec_kernel.KERNEL_ENV, "off")
    assert _codec_kernel.get_kernel() is None


# ----------------------------------------------------------------------
# File round trips (property + edge cases)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [0, 1, 2, 1023, 70_000])
def test_encode_arrays_roundtrip(tmp_path, n):
    rng = np.random.default_rng(n)
    arrays = _random_arrays(rng, n)
    path = tmp_path / "trace.rpt"
    codec.encode_arrays(path, arrays)
    reader = codec.FrameReader(path)
    assert reader.rows == n
    _assert_arrays_equal(arrays, {name: reader.column(name)
                                  for name in codec.COLUMNS})


def test_multi_frame_roundtrip_and_range_decode(tmp_path):
    rng = np.random.default_rng(3)
    arrays = _random_arrays(rng, 1000)
    path = tmp_path / "trace.rpt"
    codec.encode_arrays(path, arrays, frame_rows=64)
    reader = codec.FrameReader(path)
    for start, stop in [(0, 1000), (0, 0), (63, 65), (64, 128),
                        (999, 1000), (130, 900)]:
        window = reader.decode_range(start, stop)
        _assert_arrays_equal(
            {name: column[start:stop]
             for name, column in arrays.items()}, window)
    with pytest.raises(TraceError):
        reader.decode_range(500, 1001)


def test_extreme_addresses_roundtrip(tmp_path):
    # Max-magnitude int64 values stress the mod-2^64 delta arithmetic.
    n = 64
    arrays = _random_arrays(np.random.default_rng(0), n)
    arrays["addr"] = np.array(
        [2 ** 63 - 1, -(2 ** 63), 0, -1] * (n // 4), dtype=np.int64)
    arrays["pc"] = np.array(
        [0, 2 ** 63 - 1] * (n // 2), dtype=np.int64)
    path = tmp_path / "trace.rpt"
    codec.encode_arrays(path, arrays, frame_rows=7)
    reader = codec.FrameReader(path)
    _assert_arrays_equal(arrays, {name: reader.column(name)
                                  for name in codec.COLUMNS})


def test_numpy_and_kernel_encodings_are_identical(tmp_path,
                                                  monkeypatch):
    if _codec_kernel.get_kernel() is None:
        pytest.skip("no C compiler available")
    arrays = _random_arrays(np.random.default_rng(11), 10_000)
    with_kernel = tmp_path / "kernel.rpt"
    codec.encode_arrays(with_kernel, arrays)
    monkeypatch.setenv(_codec_kernel.KERNEL_ENV, "off")
    without = tmp_path / "numpy.rpt"
    codec.encode_arrays(without, arrays)
    assert with_kernel.read_bytes() == without.read_bytes()


def test_frozen_trace_roundtrip_through_save_load(tmp_path):
    trace = InstructionTrace()
    for i in range(3000):
        trace.append(i * 4, 1, i % 5, addr=0x1000 + 8 * i, size=8,
                     dep=i % 3, flags=i % 2, origin=i)
    trace.freeze()
    path = tmp_path / "frozen.rpt"
    trace.save(path, codec="v2")
    loaded = InstructionTrace.load(path)
    assert loaded.frozen
    _assert_arrays_equal(trace.arrays(), loaded.arrays())


def test_spilled_trace_saves_identically(tmp_path, monkeypatch):
    rng = np.random.default_rng(5)
    arrays = _random_arrays(rng, 200_000)
    in_memory = _trace_from_arrays(arrays)
    monkeypatch.setenv("REPRO_TRACE_SPILL_MB", "1")
    spilled = _trace_from_arrays(arrays)
    assert spilled.spill_path is not None, "trace did not spill"
    a = tmp_path / "memory.rpt"
    b = tmp_path / "spilled.rpt"
    in_memory.save(a, codec="v2")
    spilled.save(b, codec="v2")
    assert a.read_bytes() == b.read_bytes()
    spilled.close()


def test_v2_and_npz_loads_agree(tmp_path):
    arrays = _random_arrays(np.random.default_rng(9), 5000)
    trace = _trace_from_arrays(arrays)
    v2 = tmp_path / "t.rpt"
    npz = tmp_path / "t.npz"
    trace.save(v2, codec="v2")
    trace.save(npz, codec="npz")
    assert v2.stat().st_size < npz.stat().st_size * 1.5
    _assert_arrays_equal(InstructionTrace.load(npz).arrays(),
                         InstructionTrace.load(v2).arrays())


# ----------------------------------------------------------------------
# Corruption and validation
# ----------------------------------------------------------------------


def _encoded_file(tmp_path, n=500, frame_rows=64):
    arrays = _random_arrays(np.random.default_rng(1), n)
    path = tmp_path / "t.rpt"
    codec.encode_arrays(path, arrays, frame_rows=frame_rows)
    return path


def test_truncated_file_is_rejected(tmp_path):
    path = _encoded_file(tmp_path)
    data = path.read_bytes()
    for cut in (0, 3, 10, len(data) // 2, len(data) - 1):
        path.write_bytes(data[:cut])
        with pytest.raises(TraceError):
            codec.FrameReader(path)


def test_truncated_frame_segment_is_rejected_lazily(tmp_path):
    path = _encoded_file(tmp_path)
    data = bytearray(path.read_bytes())
    # Zero a span in the middle of the payload region: the directory
    # still parses, but some frame's varint stream is now garbage.
    magic, version, meta_off, meta_len = struct.unpack_from(
        "<4sIQQ", data)
    start = 24 + (meta_off - 24) // 3
    data[start:start + 64] = bytes(64)
    path.write_bytes(bytes(data))
    reader = codec.FrameReader(path)  # header+directory still valid
    with pytest.raises(TraceError):
        for name in codec.COLUMNS:
            reader.column(name)


def test_corrupt_decode_fires_on_corrupt_callback_once(tmp_path):
    path = _encoded_file(tmp_path)
    data = bytearray(path.read_bytes())
    data[30:200] = bytes(170)
    path.write_bytes(bytes(data))
    fired = []
    reader = codec.FrameReader(path, on_corrupt=lambda: fired.append(1))
    for name in codec.COLUMNS:
        try:
            reader.column(name)
        except TraceError:
            pass
    assert fired == [1]


def test_wrong_column_set_is_rejected_loudly(tmp_path):
    path = _encoded_file(tmp_path, n=10, frame_rows=16)
    data = bytearray(path.read_bytes())
    _, _, meta_off, meta_len = struct.unpack_from("<4sIQQ", data)
    meta = json.loads(bytes(data[meta_off:meta_off + meta_len]))
    meta["columns"] = ["pc", "bogus"] + meta["columns"][2:]
    blob = json.dumps(meta, separators=(",", ":")).encode()
    data = data[:meta_off] + blob
    struct.pack_into("<4sIQQ", data, 0, codec.MAGIC, codec.VERSION,
                     meta_off, len(blob))
    path.write_bytes(bytes(data))
    with pytest.raises(TraceError) as err:
        codec.FrameReader(path)
    assert "kind" in str(err.value)  # the missing column is named
    assert "bogus" in str(err.value)  # ... and so is the unexpected one
    assert str(path) in str(err.value)


def test_npz_load_validates_columns_loudly(tmp_path):
    arrays = _random_arrays(np.random.default_rng(2), 16)
    missing = dict(arrays)
    missing.pop("dep")
    bad_missing = tmp_path / "missing.npz"
    np.savez(bad_missing, **missing)
    with pytest.raises(TraceError) as err:
        InstructionTrace.load(bad_missing)
    assert "dep" in str(err.value) and str(bad_missing) in str(err.value)
    extra = dict(arrays, rogue=np.zeros(16, dtype=np.int64))
    bad_extra = tmp_path / "extra.npz"
    np.savez(bad_extra, **extra)
    with pytest.raises(TraceError) as err:
        InstructionTrace.load(bad_extra)
    assert "rogue" in str(err.value)


def test_unreadable_file_is_a_typed_error(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"this is not a trace in any format")
    with pytest.raises(TraceError):
        InstructionTrace.load(path)


def test_codec_switch_resolution(monkeypatch):
    monkeypatch.delenv(codec.CODEC_ENV, raising=False)
    assert codec.trace_codec() == "v2"
    monkeypatch.setenv(codec.CODEC_ENV, "v2")
    assert codec.trace_codec() == "v2"
    monkeypatch.setenv(codec.CODEC_ENV, "npz")
    assert codec.trace_codec() == "npz"
    monkeypatch.setenv(codec.CODEC_ENV, "zstd")
    with pytest.raises(ConfigError):
        codec.trace_codec()


# ----------------------------------------------------------------------
# Lazy loads and pickle-by-reference
# ----------------------------------------------------------------------


def test_v2_load_is_lazy_per_column(tmp_path):
    path = _encoded_file(tmp_path, n=300, frame_rows=64)
    trace = InstructionTrace.load(path)
    assert trace._reader is not None
    assert len(trace) == 300
    trace.column("category")
    assert set(trace._col_cache) == {"category"}
    assert trace._frozen is None  # nothing else decoded
    window = trace.slice_view(10, 20)
    assert len(window["pc"]) == 10
    assert trace._frozen is None
    counts = trace.category_counts()
    assert counts.sum() == 300


def test_v2_loaded_trace_rejects_appends(tmp_path):
    trace = InstructionTrace.load(_encoded_file(tmp_path))
    with pytest.raises(TraceError):
        trace.append(1, 1, 1)


def test_pickle_by_reference_roundtrip(tmp_path):
    path = _encoded_file(tmp_path, n=2000, frame_rows=512)
    trace = InstructionTrace.load(path)
    blob = pickle.dumps(trace)
    assert len(blob) < 1024, "reference pickle should be tiny"
    back = pickle.loads(blob)
    _assert_arrays_equal(trace.arrays(), back.arrays())


def test_pickle_falls_back_to_full_state_when_file_gone(tmp_path):
    path = _encoded_file(tmp_path, n=1000)
    trace = InstructionTrace.load(path)
    want = {name: np.array(col) for name, col
            in trace.arrays().items()}
    os.unlink(path)
    blob = pickle.dumps(trace)
    assert len(blob) > 10_000  # full arrays travelled
    back = pickle.loads(blob)
    _assert_arrays_equal(want, back.arrays())


def test_pickle_ref_ignored_after_mutation(tmp_path):
    trace = InstructionTrace()
    trace.append(1, 1, 1)
    path = tmp_path / "t.rpt"
    trace.save(path, codec="v2")
    trace.attach_cache_ref(path)
    trace.append(2, 2, 2)  # the file no longer matches the trace
    back = pickle.loads(pickle.dumps(trace))
    assert len(back) == 2
    assert back.column("pc")[1] == 2


def test_stale_reference_rows_fail_loudly(tmp_path):
    path = _encoded_file(tmp_path, n=100, frame_rows=64)
    trace = InstructionTrace.load(path)
    blob = pickle.dumps(trace)
    # The file is replaced with a different-length trace in flight.
    arrays = _random_arrays(np.random.default_rng(4), 50)
    codec.encode_arrays(path, arrays, frame_rows=64)
    with pytest.raises(TraceError):
        pickle.loads(blob)


# ----------------------------------------------------------------------
# Figure byte-identity across the codec switch
# ----------------------------------------------------------------------


@pytest.mark.parametrize("figure_name", ["fig4", "fig5"])
def test_figures_identical_across_codecs(tmp_path, monkeypatch,
                                         figure_name):
    from repro.experiments import figures
    figure = getattr(figures, figure_name)
    rendered = {}
    for fmt in ("auto", "v2", "npz"):
        monkeypatch.setenv(codec.CODEC_ENV, fmt)
        monkeypatch.setenv("REPRO_CACHE_DIR",
                           str(tmp_path / f"cache-{fmt}"))
        result = figure(ExperimentRunner(), quick=True)
        rendered[fmt] = result.rendered
        # Cold pass warmed the cache; a second, disk-served pass must
        # render the same bytes through the codec's load path.
        again = figure(ExperimentRunner(), quick=True)
        assert again.rendered == result.rendered, fmt
    assert rendered["auto"] == rendered["v2"] == rendered["npz"]


def test_run_many_ships_trace_references(tmp_path):
    runner = ExperimentRunner(disk_cache=DiskCache(tmp_path / "cache"))
    requests = [
        {"workload": "chaos", "runtime": "pypy", "jit": True,
         "nursery": 64 * 1024},
        {"workload": "nbody", "runtime": "pypy", "jit": True,
         "nursery": 64 * 1024},
    ]
    handles = runner.run_many(requests, jobs=2)
    assert len(handles) == 2
    # The workers' handles crossed the pipe as file references: the
    # parent re-opened them as lazily decoded readers over the shared
    # cache files, not as privately deserialized buffers.
    for handle in handles:
        assert handle.trace._reader is not None
        assert handle.trace._reader.path.parent \
            == tmp_path / "cache" / "traces"
    serial = ExperimentRunner(
        disk_cache=DiskCache(tmp_path / "cache-serial"))
    for request, handle in zip(requests, handles):
        want = serial.run(**request)
        for name, column in want.trace.arrays().items():
            assert np.array_equal(column,
                                  handle.trace.arrays()[name]), name
