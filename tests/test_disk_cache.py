"""Persistent on-disk run cache: round trips, keys, and corruption."""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.config import scaled_config, skylake_config
from repro.experiments.diskcache import (
    CACHE_DIR_ENV,
    CACHE_TOGGLE_ENV,
    CACHE_VERIFY_ENV,
    QUARANTINE_DIR,
    DiskCache,
    cache_root,
    content_key,
    file_sha256,
)
from repro.experiments.resilience import FaultPlan, FaultSpec
from repro.experiments.runner import ExperimentRunner, memory_side_key
from repro.telemetry import TELEMETRY


def fresh_runner(tmp_path, name="cache"):
    return ExperimentRunner(disk_cache=DiskCache(tmp_path / name))


def test_content_key_is_order_insensitive_and_value_sensitive():
    a = content_key({"x": 1, "y": 2})
    b = content_key({"y": 2, "x": 1})
    c = content_key({"x": 1, "y": 3})
    assert a == b
    assert a != c


def test_cache_root_env_knobs(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "explicit"))
    assert cache_root() == tmp_path / "explicit"
    monkeypatch.setenv(CACHE_TOGGLE_ENV, "off")
    assert cache_root() is None
    assert not DiskCache().enabled
    monkeypatch.setenv(CACHE_TOGGLE_ENV, "0")
    assert cache_root() is None


def test_run_round_trip_is_bit_identical(tmp_path):
    writer = fresh_runner(tmp_path)
    original = writer.run("chaos", runtime="pypy", jit=True,
                          nursery=64 * 1024)
    reader = fresh_runner(tmp_path)
    cached = reader.run("chaos", runtime="pypy", jit=True,
                        nursery=64 * 1024)
    assert cached is not original
    for name, column in original.trace.arrays().items():
        assert np.array_equal(column, cached.trace.arrays()[name]), name
    assert cached.output == original.output
    assert cached.site_table == original.site_table
    assert cached.measure_start == original.measure_start
    assert cached.bytecodes == original.bytecodes
    assert cached.minor_gcs == original.minor_gcs


def test_state_round_trip_is_bit_identical(tmp_path):
    config = skylake_config()
    writer = fresh_runner(tmp_path)
    handle = writer.run("chaos", runtime="pypy", jit=True,
                        nursery=64 * 1024)
    original = writer.memory_side(handle, config)
    reader = fresh_runner(tmp_path)
    cached_handle = reader.run("chaos", runtime="pypy", jit=True,
                               nursery=64 * 1024)
    cached = reader.memory_side(cached_handle, config)
    assert np.array_equal(original.dlevel, cached.dlevel)
    assert np.array_equal(original.ilevel, cached.ilevel)
    assert np.array_equal(original.mispredicted, cached.mispredicted)
    assert original.mem_lines == cached.mem_lines
    assert original.cache_stats == cached.cache_stats
    assert original.branch_stats == cached.branch_stats


def test_disk_hits_are_counted(tmp_path):
    from repro import telemetry
    telemetry.enable()
    runner = fresh_runner(tmp_path)
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    reader = fresh_runner(tmp_path)
    reader.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    snapshot = TELEMETRY.metrics.snapshot()
    hits = [v for k, v in snapshot.items()
            if k.startswith("runner.disk_cache.hit") and "trace" in k]
    assert hits and hits[0] >= 1


def test_key_covers_run_parameters(tmp_path):
    runner = fresh_runner(tmp_path)
    base = dict(workload="chaos", runtime="pypy", jit=True,
                nursery=64 * 1024)
    key = content_key(runner._trace_key_params(
        base["workload"], base["runtime"], base["jit"], base["nursery"],
        0))
    for variation in (dict(base, jit=False),
                      dict(base, nursery=128 * 1024),
                      dict(base, workload="nbody"),
                      dict(base, runtime="cpython")):
        other = content_key(runner._trace_key_params(
            variation["workload"], variation["runtime"],
            variation["jit"], variation["nursery"], 0))
        assert other != key, variation


def test_state_key_covers_geometry_but_not_latency():
    base = skylake_config()
    assert memory_side_key(base) == memory_side_key(
        base.with_memory_latency(400))
    assert memory_side_key(base) != memory_side_key(
        base.with_llc_size(base.l3.size * 2))
    assert memory_side_key(base) != memory_side_key(
        base.with_line_size(128))
    assert memory_side_key(base) != memory_side_key(
        base.with_branch_scale(0.5))
    assert memory_side_key(base) != memory_side_key(scaled_config(4))


def test_corrupt_entries_fall_back_to_recompute(tmp_path):
    writer = fresh_runner(tmp_path)
    original = writer.run("chaos", runtime="pypy", jit=True,
                          nursery=64 * 1024)
    root = tmp_path / "cache"
    for path in (root / "traces").iterdir():
        if path.suffix == ".npz":
            path.write_bytes(b"not an npz")
        else:
            path.write_text("{corrupt")
    reader = fresh_runner(tmp_path)
    recomputed = reader.run("chaos", runtime="pypy", jit=True,
                            nursery=64 * 1024)
    for name, column in original.trace.arrays().items():
        assert np.array_equal(column, recomputed.trace.arrays()[name])


def test_disabled_cache_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_TOGGLE_ENV, "off")
    runner = ExperimentRunner()
    assert not runner.disk_cache.enabled
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    assert not any(os.scandir(tmp_path))


def test_atomic_writes_leave_no_tmp_litter(tmp_path):
    runner = fresh_runner(tmp_path)
    handle = runner.run("chaos", runtime="pypy", jit=True,
                        nursery=64 * 1024)
    runner.memory_side(handle, skylake_config())
    leftovers = [p for p in (tmp_path / "cache").rglob("*")
                 if ".tmp" in p.name]
    assert leftovers == []


def test_schema_salt_changes_every_key(monkeypatch):
    key = content_key({"x": 1})
    monkeypatch.setattr("repro.experiments.diskcache.CACHE_SCHEMA", 99)
    assert content_key({"x": 1}) != key


def test_sidecar_is_compact_json(tmp_path):
    runner = fresh_runner(tmp_path)
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    sidecars = list((tmp_path / "cache" / "traces").glob("*.json"))
    assert len(sidecars) == 1
    meta = json.loads(sidecars[0].read_text())
    assert meta["workload"] == "chaos"
    assert meta["runtime"] == "pypy"
    assert "site_table" in meta
    assert len(meta["npz_sha256"]) == 64  # the pair's commit record


# ----------------------------------------------------------------------
# Corruption: quarantine exactly once, then recompute correctly
# ----------------------------------------------------------------------

_RUN = dict(workload="chaos", runtime="pypy", jit=True,
            nursery=64 * 1024)


def _counter(prefix):
    return sum(v for k, v in TELEMETRY.metrics.snapshot().items()
               if k.startswith(prefix))


def _entry_paths(tmp_path, kind):
    """The single (payload, sidecar) pair under one kind directory."""
    directory = tmp_path / "cache" / kind
    (payload,) = [p for p in directory.iterdir()
                  if p.suffix in (".rpt", ".npz")]
    (meta,) = directory.glob("*.json")
    return payload, meta


def _quarantined_files(tmp_path):
    quarantine = tmp_path / "cache" / QUARANTINE_DIR
    return sorted(p.name for p in quarantine.iterdir()) \
        if quarantine.is_dir() else []


def _populate_trace(tmp_path):
    writer = fresh_runner(tmp_path)
    return writer.run(**_RUN)


def _populate_state(tmp_path):
    writer = fresh_runner(tmp_path)
    handle = writer.run(**_RUN)
    return writer.memory_side(handle, skylake_config())


def test_truncated_trace_npz_quarantined_once_and_recomputed(tmp_path):
    from repro import telemetry
    original = _populate_trace(tmp_path)
    npz, _ = _entry_paths(tmp_path, "traces")
    npz.write_bytes(npz.read_bytes()[:100])
    telemetry.enable()
    telemetry.reset()
    recomputed = fresh_runner(tmp_path).run(**_RUN)
    for name, column in original.trace.arrays().items():
        assert np.array_equal(column, recomputed.trace.arrays()[name])
    assert _counter("cache.checksum_mismatch{kind=traces}") == 1
    assert _counter("cache.quarantined{kind=traces}") == 1
    assert len(_quarantined_files(tmp_path)) == 2  # npz + sidecar moved
    # The recompute re-stored a clean entry: the next reader hits it
    # without tripping quarantine again.
    fresh_runner(tmp_path).run(**_RUN)
    assert _counter("cache.quarantined{kind=traces}") == 1


def test_truncated_npz_quarantined_even_without_verify(tmp_path,
                                                       monkeypatch):
    from repro import telemetry
    monkeypatch.setenv(CACHE_VERIFY_ENV, "off")
    original = _populate_trace(tmp_path)
    npz, _ = _entry_paths(tmp_path, "traces")
    npz.write_bytes(npz.read_bytes()[:100])
    telemetry.enable()
    telemetry.reset()
    recomputed = fresh_runner(tmp_path).run(**_RUN)
    assert np.array_equal(original.trace.arrays()["pc"],
                          recomputed.trace.arrays()["pc"])
    # No checksum pass ran, so the npz decoder caught it instead.
    assert _counter("cache.checksum_mismatch") == 0
    assert _counter("cache.quarantined{kind=traces}") == 1


def test_invalid_json_sidecar_quarantined_once(tmp_path):
    from repro import telemetry
    original = _populate_trace(tmp_path)
    _, meta = _entry_paths(tmp_path, "traces")
    meta.write_text("{definitely not json", encoding="utf-8")
    telemetry.enable()
    telemetry.reset()
    recomputed = fresh_runner(tmp_path).run(**_RUN)
    assert recomputed.output == original.output
    assert _counter("cache.quarantined{kind=traces}") == 1
    assert len(_quarantined_files(tmp_path)) == 2


def test_flipped_byte_in_state_npz_quarantined_and_recomputed(tmp_path):
    from repro import telemetry
    original = _populate_state(tmp_path)
    npz, _ = _entry_paths(tmp_path, "states")
    payload = bytearray(npz.read_bytes())
    payload[len(payload) // 2] ^= 0xFF
    npz.write_bytes(bytes(payload))
    telemetry.enable()
    telemetry.reset()
    reader = fresh_runner(tmp_path)
    recomputed = reader.memory_side(reader.run(**_RUN),
                                    skylake_config())
    assert np.array_equal(original.dlevel, recomputed.dlevel)
    assert original.cache_stats == recomputed.cache_stats
    assert _counter("cache.checksum_mismatch{kind=states}") == 1
    assert _counter("cache.quarantined{kind=states}") == 1


def test_orphaned_npz_is_removed_not_quarantined(tmp_path):
    from repro import telemetry
    original = _populate_trace(tmp_path)
    npz, meta = _entry_paths(tmp_path, "traces")
    meta.unlink()  # simulate a writer killed before the commit record
    telemetry.enable()
    telemetry.reset()
    recomputed = fresh_runner(tmp_path).run(**_RUN)
    assert recomputed.bytecodes == original.bytecodes
    assert _counter("cache.orphans_removed{kind=traces}") == 1
    assert _counter("cache.quarantined") == 0
    assert _quarantined_files(tmp_path) == []


def test_orphaned_sidecar_is_dropped(tmp_path):
    from repro import telemetry
    _populate_state(tmp_path)
    npz, meta = _entry_paths(tmp_path, "states")
    npz.unlink()
    telemetry.enable()
    telemetry.reset()
    reader = fresh_runner(tmp_path)
    state = reader.memory_side(reader.run(**_RUN), skylake_config())
    assert state is not None
    assert _counter("cache.orphans_removed{kind=states}") == 1
    assert not meta.exists() or json.loads(meta.read_text())


def test_sidecar_hash_tamper_detected_unless_verify_off(tmp_path,
                                                        monkeypatch):
    from repro import telemetry
    _populate_trace(tmp_path)
    npz, meta = _entry_paths(tmp_path, "traces")
    record = json.loads(meta.read_text())
    record["npz_sha256"] = "0" * 64
    meta.write_text(json.dumps(record), encoding="utf-8")
    telemetry.enable()
    telemetry.reset()
    monkeypatch.setenv(CACHE_VERIFY_ENV, "off")
    fresh_runner(tmp_path).run(**_RUN)  # loads fine: no checksum pass
    assert _counter("cache.quarantined") == 0
    monkeypatch.delenv(CACHE_VERIFY_ENV)
    fresh_runner(tmp_path).run(**_RUN)
    assert _counter("cache.checksum_mismatch{kind=traces}") == 1
    assert _counter("cache.quarantined{kind=traces}") == 1


def test_injected_cache_corruption_round_trip(tmp_path):
    from repro import telemetry
    telemetry.enable()
    telemetry.reset()
    plan = FaultPlan({"cache_corrupt": FaultSpec("cache_corrupt", 1.0)})
    writer = ExperimentRunner(
        disk_cache=DiskCache(tmp_path / "cache", fault_plan=plan))
    original = writer.run(**_RUN)
    assert _counter("cache.faults_injected{kind=traces}") >= 1
    npz, meta = _entry_paths(tmp_path, "traces")
    assert file_sha256(npz) != json.loads(meta.read_text())["npz_sha256"]
    recomputed = fresh_runner(tmp_path).run(**_RUN)
    for name, column in original.trace.arrays().items():
        assert np.array_equal(column, recomputed.trace.arrays()[name])
    assert _counter("cache.quarantined{kind=traces}") == 1


def test_stale_tmp_litter_is_swept(tmp_path):
    from repro import telemetry
    _populate_state(tmp_path)
    root = tmp_path / "cache"
    stale_a = root / "traces" / "dead.npz.tmp123"
    stale_b = root / "states" / "dead.json.tmp9"
    fresh = root / "traces" / "live.npz.tmp7"
    for path in (stale_a, stale_b, fresh):
        path.write_bytes(b"partial")
    old = time.time() - 7200
    os.utime(stale_a, (old, old))
    os.utime(stale_b, (old, old))
    telemetry.enable()
    telemetry.reset()
    cache = DiskCache(root)
    assert cache.sweep_tmp() == 2
    assert not stale_a.exists() and not stale_b.exists()
    assert fresh.exists()  # young enough to belong to a live writer
    assert _counter("cache.tmp_swept") == 2
    # gc's sweep is unconditional: the survivor goes too.
    assert cache.gc(max_bytes=1 << 40)["tmp_removed"] == 1


def test_gc_evicts_least_recently_used_first(tmp_path):
    writer = fresh_runner(tmp_path)
    writer.run(**_RUN)
    writer.run("nbody", runtime="pypy", jit=True, nursery=64 * 1024)
    cache = DiskCache(tmp_path / "cache")
    sidecars = sorted((tmp_path / "cache" / "traces").glob("*.json"))
    old = time.time() - 1000
    os.utime(sidecars[0], (old, old))  # make one entry cold
    hot = sidecars[1]
    (hot_payload,) = [hot.with_suffix(ext) for ext in (".rpt", ".npz")
                      if hot.with_suffix(ext).exists()]
    keep = hot.stat().st_size + hot_payload.stat().st_size + 1024
    stats = cache.gc(max_bytes=keep)
    assert stats["evicted"] == 1
    assert stats["kept_entries"] == 1
    assert not sidecars[0].exists() and sidecars[1].exists()
    assert cache.gc(max_bytes=0)["evicted"] == 1  # evicts the rest
    assert cache.usage()["entries"] == 0


def test_usage_counts_entries_and_quarantine(tmp_path):
    _populate_state(tmp_path)
    cache = DiskCache(tmp_path / "cache")
    usage = cache.usage()
    assert usage["traces"]["entries"] == 1
    assert usage["states"]["entries"] == 1
    assert usage["entries"] == 2
    assert usage["bytes"] > 0
    npz, _ = _entry_paths(tmp_path, "traces")
    key = npz.stem
    assert cache.quarantine("traces", key)
    assert cache.usage()["quarantined_files"] == 2
    assert cache.usage()["traces"]["entries"] == 0


# ----------------------------------------------------------------------
# Spill governance (live-trace memmaps under spill/)
# ----------------------------------------------------------------------


def _spill_pair(directory, stem, pid, payload=b"x" * 256):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{stem}.bin").write_bytes(payload)
    (directory / f"{stem}.json").write_text(
        '{"kind": "trace_spill", "pid": %d}' % pid)


def test_sweep_spill_keeps_live_and_removes_dead(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    spill = tmp_path / "cache" / "spill"
    _spill_pair(spill, "trace-live-1", os.getpid())
    _spill_pair(spill, "trace-dead-1", 2 ** 22 + 12345)  # beyond pid_max
    (spill / "trace-part-1.bin").write_bytes(b"y")  # no sidecar: partial
    (spill / "trace-gone-1.json").write_text(
        '{"kind": "trace_spill", "pid": 1}')  # sidecar without payload
    stats = cache.sweep_spill()
    assert stats["removed"] == 3
    assert stats["kept"] == 1
    assert sorted(p.name for p in spill.iterdir()) == [
        "trace-live-1.bin", "trace-live-1.json"]


def test_sweep_spill_drops_unparseable_sidecars(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    spill = tmp_path / "cache" / "spill"
    spill.mkdir(parents=True)
    (spill / "trace-bad-1.bin").write_bytes(b"z" * 64)
    (spill / "trace-bad-1.json").write_text("not json")
    assert cache.sweep_spill()["removed"] == 1
    assert not list(spill.iterdir())


def test_gc_reports_and_usage_counts_spill(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    spill = tmp_path / "cache" / "spill"
    _spill_pair(spill, "trace-live-1", os.getpid())
    _spill_pair(spill, "trace-dead-1", 2 ** 22 + 54321)
    usage = cache.usage()
    assert usage["spill"]["entries"] == 2
    assert usage["spill"]["bytes"] > 0
    stats = cache.gc(max_bytes=1 << 30)
    assert stats["spill_removed"] == 1
    assert cache.usage()["spill"]["entries"] == 1


def test_eviction_and_disk_refetch_count_as_spill(tmp_path):
    from repro import telemetry
    telemetry.enable()
    runner = ExperimentRunner(disk_cache=DiskCache(tmp_path / "cache"),
                              trace_cache_size=1, state_cache_size=1)
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    runner.run("nbody", runtime="pypy", jit=True, nursery=64 * 1024)
    assert _counter("cache.spilled{kind=trace}") == 1
    # Re-running the evicted workload hits disk: a spill round-trip.
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    assert _counter("cache.spill_hits{kind=trace}") == 1
    handle = runner.last_handle
    state_a = runner.memory_side(handle, skylake_config())
    state_b = runner.memory_side(handle, scaled_config(1))
    assert _counter("cache.spilled{kind=state}") == 1
    refetched = runner.memory_side(handle, skylake_config())
    assert _counter("cache.spill_hits{kind=state}") == 1
    assert refetched.mem_lines == state_a.mem_lines


def test_no_spill_counters_when_disk_cache_disabled(tmp_path):
    from repro import telemetry
    telemetry.enable()
    runner = ExperimentRunner(disk_cache=DiskCache(None),
                              trace_cache_size=1)
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    runner.run("nbody", runtime="pypy", jit=True, nursery=64 * 1024)
    assert _counter("cache.spilled") == 0


# -- verify_entries: the `repro cache verify` audit --------------------


def test_verify_entries_clean_cache_passes(tmp_path):
    _populate_state(tmp_path)  # stores one trace + one state
    cache = DiskCache(tmp_path / "cache")
    stats = cache.verify_entries()
    assert stats["checked"] == 2
    assert stats["ok"] == 2
    assert stats["checksum_mismatches"] == 0
    assert stats["key_mismatches"] == 0
    # Fresh entries always record their key_params sidecar field.
    assert stats["unkeyed"] == 0
    assert _quarantined_files(tmp_path) == []


def test_verify_entries_quarantines_checksum_mismatch(tmp_path):
    from repro import telemetry
    _populate_trace(tmp_path)
    npz, _ = _entry_paths(tmp_path, "traces")
    npz.write_bytes(npz.read_bytes()[:-7])
    telemetry.enable()
    telemetry.reset()
    stats = DiskCache(tmp_path / "cache").verify_entries()
    assert stats["checked"] == 1
    assert stats["checksum_mismatches"] == 1
    assert stats["ok"] == 0
    assert len(_quarantined_files(tmp_path)) == 2  # npz + sidecar
    # And the entry is gone, so a reader recomputes cleanly.
    recomputed = fresh_runner(tmp_path).run(**_RUN)
    assert recomputed.output


def test_verify_entries_quarantines_key_mismatch(tmp_path):
    from repro import telemetry
    _populate_trace(tmp_path)
    npz, meta_path = _entry_paths(tmp_path, "traces")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    assert isinstance(meta["key_params"], dict)
    # Sidecar claims parameters that hash to a different key: the
    # payload is intact but was filed under the wrong name.
    meta["key_params"]["workload"] = "nbody"
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    telemetry.enable()
    telemetry.reset()
    stats = DiskCache(tmp_path / "cache").verify_entries()
    assert stats["key_mismatches"] == 1
    assert stats["checksum_mismatches"] == 0
    assert _counter("cache.key_mismatch{kind=traces}") == 1
    assert len(_quarantined_files(tmp_path)) == 2


def test_verify_entries_tolerates_legacy_unkeyed_sidecars(tmp_path):
    _populate_trace(tmp_path)
    _, meta_path = _entry_paths(tmp_path, "traces")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    meta.pop("key_params")  # entry written before the audit existed
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    stats = DiskCache(tmp_path / "cache").verify_entries()
    assert stats["unkeyed"] == 1
    assert stats["ok"] == 1
    assert stats["key_mismatches"] == 0
    assert _quarantined_files(tmp_path) == []


def test_verify_entries_sampling_is_deterministic(tmp_path):
    writer = fresh_runner(tmp_path)
    for workload in ("chaos", "nbody", "richards"):
        writer.run(workload=workload, runtime="pypy", jit=True,
                   nursery=64 * 1024)
    cache = DiskCache(tmp_path / "cache")
    stats = cache.verify_entries(sample=2)
    assert stats["checked"] == 2
    assert stats["skipped"] == 1
    assert stats == cache.verify_entries(sample=2)  # same stride, same pick
    full = cache.verify_entries()
    assert full["checked"] == 3
    assert full["skipped"] == 0


def test_verify_entries_disabled_cache_is_a_noop(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_TOGGLE_ENV, "off")
    stats = DiskCache().verify_entries()
    assert stats["checked"] == 0
    assert stats["ok"] == 0


# ----------------------------------------------------------------------
# Codec era: legacy-schema migration, orphaned frames, footprint stats
# ----------------------------------------------------------------------


def test_legacy_schema_entry_is_migrated_on_hit(tmp_path, monkeypatch):
    from repro import telemetry
    from repro.experiments.diskcache import LEGACY_SCHEMAS
    from repro.host.codec import CODEC_ENV

    # Write the entry the way a schema-2 deployment did: npz payload,
    # filed under the legacy content key.
    monkeypatch.setenv(CODEC_ENV, "npz")
    runner = fresh_runner(tmp_path)
    original = runner.run(**_RUN)
    cache = DiskCache(tmp_path / "cache")
    params = runner._trace_key_params(
        _RUN["workload"], _RUN["runtime"], _RUN["jit"], _RUN["nursery"],
        0)
    current_key = content_key(params)
    legacy_key = content_key(params, schema=LEGACY_SCHEMAS[0])
    payload, meta = _entry_paths(tmp_path, "traces")
    assert payload.suffix == ".npz"
    payload.rename(payload.with_stem(legacy_key))
    meta.rename(meta.with_stem(legacy_key))

    monkeypatch.delenv(CODEC_ENV, raising=False)
    telemetry.enable()
    telemetry.reset()
    migrated = fresh_runner(tmp_path).run(**_RUN)
    for name, column in original.trace.arrays().items():
        assert np.array_equal(column, migrated.trace.arrays()[name])
    assert _counter("cache.migrated{kind=traces}") == 1
    # The entry now lives under the current key in the v2 format; the
    # legacy files are gone.
    new_payload, _ = _entry_paths(tmp_path, "traces")
    assert new_payload.stem == current_key
    assert new_payload.suffix == ".rpt"
    # And the migrated entry verifies clean under the audit.
    stats = cache.verify_entries()
    assert stats["checksum_mismatches"] == 0
    assert stats["key_mismatches"] == 0


def test_gc_sweeps_orphaned_halfwritten_codec_frames(tmp_path):
    from repro import telemetry
    _populate_trace(tmp_path)
    traces = tmp_path / "cache" / "traces"
    # A killed encoder leaves two kinds of litter: an old atomic-write
    # temp name, and a committed-looking payload whose sidecar (the
    # commit record) never landed.
    half_written = traces / "dead.rpt.tmp4242"
    half_written.write_bytes(b"RPTC" + b"\x00" * 40)
    old = time.time() - 7200
    os.utime(half_written, (old, old))
    orphan = traces / ("f" * 64 + ".rpt")
    orphan.write_bytes(b"RPTC" + b"\x00" * 512)
    telemetry.enable()
    telemetry.reset()
    stats = DiskCache(tmp_path / "cache").gc(max_bytes=1 << 40)
    assert stats["tmp_removed"] == 1
    assert not half_written.exists()
    assert not orphan.exists()
    assert _counter("cache.orphans_removed{kind=traces}") == 1
    # The real entry survived.
    payload, meta = _entry_paths(tmp_path, "traces")
    assert payload.exists() and meta.exists()


def test_usage_reports_codec_footprint(tmp_path):
    _populate_trace(tmp_path)
    usage = DiskCache(tmp_path / "cache").usage()
    traces = usage["traces"]
    assert traces["rows"] > 0
    assert traces["payload_bytes"] > 0
    assert traces["formats"] == {"v2": 1}
    assert traces["bytes_per_instruction"] \
        == traces["payload_bytes"] / traces["rows"]
    # The whole point of the codec: well under the canonical 35 B/row.
    assert traces["compression_ratio"] > 3.0


def test_npz_codec_writes_compressed_entries(tmp_path, monkeypatch):
    from repro.host.codec import CODEC_ENV, RAW_ROW_BYTES
    monkeypatch.setenv(CODEC_ENV, "npz")
    runner = fresh_runner(tmp_path)
    handle = runner.run(**_RUN)
    payload, _ = _entry_paths(tmp_path, "traces")
    assert payload.suffix == ".npz"
    # Legacy-format entries are no longer written uncompressed: the
    # deflated npz undercuts the canonical raw bytes.
    assert payload.stat().st_size \
        < len(handle.trace) * RAW_ROW_BYTES * 0.9


def test_mixed_format_cache_reads_transparently(tmp_path, monkeypatch):
    from repro.host.codec import CODEC_ENV
    monkeypatch.setenv(CODEC_ENV, "npz")
    fresh_runner(tmp_path).run(**_RUN)
    monkeypatch.delenv(CODEC_ENV, raising=False)
    other = dict(_RUN, workload="nbody")
    fresh_runner(tmp_path).run(**other)
    usage = DiskCache(tmp_path / "cache").usage()
    assert usage["traces"]["formats"] == {"npz": 1, "v2": 1}
    reader = fresh_runner(tmp_path)
    assert reader.run(**_RUN).output
    assert reader.run(**other).output
    assert _counter("cache.quarantined") == 0
