"""Persistent on-disk run cache: round trips, keys, and corruption."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.config import scaled_config, skylake_config
from repro.experiments.diskcache import (
    CACHE_DIR_ENV,
    CACHE_TOGGLE_ENV,
    DiskCache,
    cache_root,
    content_key,
)
from repro.experiments.runner import ExperimentRunner, memory_side_key
from repro.telemetry import TELEMETRY


def fresh_runner(tmp_path, name="cache"):
    return ExperimentRunner(disk_cache=DiskCache(tmp_path / name))


def test_content_key_is_order_insensitive_and_value_sensitive():
    a = content_key({"x": 1, "y": 2})
    b = content_key({"y": 2, "x": 1})
    c = content_key({"x": 1, "y": 3})
    assert a == b
    assert a != c


def test_cache_root_env_knobs(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "explicit"))
    assert cache_root() == tmp_path / "explicit"
    monkeypatch.setenv(CACHE_TOGGLE_ENV, "off")
    assert cache_root() is None
    assert not DiskCache().enabled
    monkeypatch.setenv(CACHE_TOGGLE_ENV, "0")
    assert cache_root() is None


def test_run_round_trip_is_bit_identical(tmp_path):
    writer = fresh_runner(tmp_path)
    original = writer.run("chaos", runtime="pypy", jit=True,
                          nursery=64 * 1024)
    reader = fresh_runner(tmp_path)
    cached = reader.run("chaos", runtime="pypy", jit=True,
                        nursery=64 * 1024)
    assert cached is not original
    for name, column in original.trace.arrays().items():
        assert np.array_equal(column, cached.trace.arrays()[name]), name
    assert cached.output == original.output
    assert cached.site_table == original.site_table
    assert cached.measure_start == original.measure_start
    assert cached.bytecodes == original.bytecodes
    assert cached.minor_gcs == original.minor_gcs


def test_state_round_trip_is_bit_identical(tmp_path):
    config = skylake_config()
    writer = fresh_runner(tmp_path)
    handle = writer.run("chaos", runtime="pypy", jit=True,
                        nursery=64 * 1024)
    original = writer.memory_side(handle, config)
    reader = fresh_runner(tmp_path)
    cached_handle = reader.run("chaos", runtime="pypy", jit=True,
                               nursery=64 * 1024)
    cached = reader.memory_side(cached_handle, config)
    assert np.array_equal(original.dlevel, cached.dlevel)
    assert np.array_equal(original.ilevel, cached.ilevel)
    assert np.array_equal(original.mispredicted, cached.mispredicted)
    assert original.mem_lines == cached.mem_lines
    assert original.cache_stats == cached.cache_stats
    assert original.branch_stats == cached.branch_stats


def test_disk_hits_are_counted(tmp_path):
    from repro import telemetry
    telemetry.enable()
    runner = fresh_runner(tmp_path)
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    reader = fresh_runner(tmp_path)
    reader.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    snapshot = TELEMETRY.metrics.snapshot()
    hits = [v for k, v in snapshot.items()
            if k.startswith("runner.disk_cache.hit") and "trace" in k]
    assert hits and hits[0] >= 1


def test_key_covers_run_parameters(tmp_path):
    runner = fresh_runner(tmp_path)
    base = dict(workload="chaos", runtime="pypy", jit=True,
                nursery=64 * 1024)
    key = content_key(runner._trace_key_params(
        base["workload"], base["runtime"], base["jit"], base["nursery"],
        0))
    for variation in (dict(base, jit=False),
                      dict(base, nursery=128 * 1024),
                      dict(base, workload="nbody"),
                      dict(base, runtime="cpython")):
        other = content_key(runner._trace_key_params(
            variation["workload"], variation["runtime"],
            variation["jit"], variation["nursery"], 0))
        assert other != key, variation


def test_state_key_covers_geometry_but_not_latency():
    base = skylake_config()
    assert memory_side_key(base) == memory_side_key(
        base.with_memory_latency(400))
    assert memory_side_key(base) != memory_side_key(
        base.with_llc_size(base.l3.size * 2))
    assert memory_side_key(base) != memory_side_key(
        base.with_line_size(128))
    assert memory_side_key(base) != memory_side_key(
        base.with_branch_scale(0.5))
    assert memory_side_key(base) != memory_side_key(scaled_config(4))


def test_corrupt_entries_fall_back_to_recompute(tmp_path):
    writer = fresh_runner(tmp_path)
    original = writer.run("chaos", runtime="pypy", jit=True,
                          nursery=64 * 1024)
    root = tmp_path / "cache"
    for path in (root / "traces").iterdir():
        if path.suffix == ".npz":
            path.write_bytes(b"not an npz")
        else:
            path.write_text("{corrupt")
    reader = fresh_runner(tmp_path)
    recomputed = reader.run("chaos", runtime="pypy", jit=True,
                            nursery=64 * 1024)
    for name, column in original.trace.arrays().items():
        assert np.array_equal(column, recomputed.trace.arrays()[name])


def test_disabled_cache_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_TOGGLE_ENV, "off")
    runner = ExperimentRunner()
    assert not runner.disk_cache.enabled
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    assert not any(os.scandir(tmp_path))


def test_atomic_writes_leave_no_tmp_litter(tmp_path):
    runner = fresh_runner(tmp_path)
    handle = runner.run("chaos", runtime="pypy", jit=True,
                        nursery=64 * 1024)
    runner.memory_side(handle, skylake_config())
    leftovers = [p for p in (tmp_path / "cache").rglob("*")
                 if ".tmp" in p.name]
    assert leftovers == []


def test_schema_salt_changes_every_key(monkeypatch):
    key = content_key({"x": 1})
    monkeypatch.setattr("repro.experiments.diskcache.CACHE_SCHEMA", 2)
    assert content_key({"x": 1}) != key


def test_sidecar_is_compact_json(tmp_path):
    runner = fresh_runner(tmp_path)
    runner.run("chaos", runtime="pypy", jit=True, nursery=64 * 1024)
    sidecars = list((tmp_path / "cache" / "traces").glob("*.json"))
    assert len(sidecars) == 1
    meta = json.loads(sidecars[0].read_text())
    assert meta["workload"] == "chaos"
    assert meta["runtime"] == "pypy"
    assert "site_table" in meta
