"""Guest semantics on the CPython-model VM.

Every test runs a small MiniPy program and checks printed results; a
parallel parametrized test runs the same sources on the PyPy model with
and without JIT to pin down cross-runtime semantic equivalence.
"""

import pytest

from conftest import guest_output

CASES = {
    "int_arithmetic": (
        "print(7 + 3 * 2 - 1)\nprint(7 // 2)\nprint(7 % 3)\n"
        "print(2 ** 10)\nprint(-5 + 2)\n",
        ["12", "3", "1", "1024", "-3"]),
    "float_arithmetic": (
        "print(int((1.5 + 2.25) * 4))\nprint(int(7.0 / 2.0 * 10))\n",
        ["15", "35"]),
    "mixed_arithmetic": (
        "print(int(3 * 1.5 + 1))\nprint(int(10 / 4 * 100))\n",
        ["5", "250"]),
    "bitwise": (
        "print(12 & 10)\nprint(12 | 3)\nprint(12 ^ 10)\n"
        "print(1 << 10)\nprint(1024 >> 3)\n",
        ["8", "15", "6", "1024", "128"]),
    "comparison": (
        "print(1 < 2)\nprint(2 <= 1)\nprint('a' == 'a')\n"
        "print(3 != 3)\nprint('b' > 'a')\n",
        ["True", "False", "True", "False", "True"]),
    "bool_logic": (
        "x = 5\nprint(x > 0 and x < 10)\nprint(x < 0 or x == 5)\n"
        "print(not x == 5)\n",
        ["True", "True", "False"]),
    "strings": (
        "s = 'hello' + ' ' + 'world'\nprint(s)\nprint(len(s))\n"
        "print(s[0])\nprint(s[-1])\nprint(s[1:4])\nprint('ab' * 3)\n",
        ["hello world", "11", "h", "d", "ell", "ababab"]),
    "string_methods": (
        "s = ' Hello,World '\nprint(s.strip())\nprint(s.upper().strip())\n"
        "print('a-b-c'.split('-'))\nprint('+'.join(['x', 'y']))\n"
        "print('hello'.replace('l', 'L'))\nprint('hello'.find('ll'))\n"
        "print('hello'.startswith('he'))\nprint('hello'.count('l'))\n",
        ["Hello,World", "HELLO,WORLD", "['a', 'b', 'c']", "x+y",
         "heLLo", "2", "True", "2"]),
    "lists": (
        "a = [1, 2, 3]\na.append(4)\nprint(a)\nprint(a[2])\n"
        "print(a[1:3])\na[0] = 9\nprint(a.pop())\nprint(a)\n"
        "print([0] * 3)\nprint([1, 2] + [3])\n",
        ["[1, 2, 3, 4]", "3", "[2, 3]", "4", "[9, 2, 3]", "[0, 0, 0]",
         "[1, 2, 3]"]),
    "list_methods": (
        "a = [3, 1, 2]\na.sort()\nprint(a)\na.reverse()\nprint(a)\n"
        "a.insert(1, 7)\nprint(a)\nprint(a.index(7))\na.remove(7)\n"
        "print(a)\nprint(a.count(2))\nb = [1]\nb.extend([2, 3])\n"
        "print(b)\n",
        ["[1, 2, 3]", "[3, 2, 1]", "[3, 7, 2, 1]", "1", "[3, 2, 1]",
         "1", "[1, 2, 3]"]),
    "dicts": (
        "d = {}\nd['a'] = 1\nd[2] = 'two'\nprint(d['a'])\nprint(d[2])\n"
        "print(len(d))\nprint('a' in d)\nprint('z' in d)\n"
        "print(d.get('z', 99))\nprint(len(d.keys()))\n",
        ["1", "two", "2", "True", "False", "99", "2"]),
    "dict_iteration": (
        "d = {}\nd['x'] = 1\nd['y'] = 2\ntotal = 0\n"
        "for k in d.keys():\n    total = total + d[k]\nprint(total)\n"
        "vals = d.values()\nprint(len(vals))\n"
        "for pair in d.items():\n    k, v = pair\n    print(k)\n",
        ["3", "2", "x", "y"]),
    "tuples": (
        "t = (1, 'two', 3.0)\nprint(t[1])\nprint(len(t))\n"
        "a, b, c = t\nprint(a)\nprint(t + (4,))\n",
        ["two", "3", "1", "(1, 'two', 3.0, 4)"]),
    "for_range": (
        "total = 0\nfor i in range(10):\n    total = total + i\n"
        "print(total)\nfor i in range(2, 5):\n    print(i)\n"
        "for i in range(10, 0, -3):\n    print(i)\n",
        ["45", "2", "3", "4", "10", "7", "4", "1"]),
    "while_break_continue": (
        "i = 0\nfound = -1\nwhile True:\n    i = i + 1\n"
        "    if i % 2 == 0:\n        continue\n    if i > 7:\n"
        "        found = i\n        break\nprint(found)\n",
        ["9"]),
    "nested_loops": (
        "total = 0\nfor i in range(4):\n    for j in range(4):\n"
        "        if j > i:\n            break\n        total = total + 1\n"
        "print(total)\n",
        ["10"]),
    "functions": (
        "def fact(n):\n    if n <= 1:\n        return 1\n"
        "    return n * fact(n - 1)\nprint(fact(6))\n",
        ["720"]),
    "function_multiple_returns": (
        "def sign(x):\n    if x > 0:\n        return 1\n"
        "    if x < 0:\n        return -1\n    return 0\n"
        "print(sign(5))\nprint(sign(-5))\nprint(sign(0))\n",
        ["1", "-1", "0"]),
    "mutual_recursion": (
        "def is_even(n):\n    if n == 0:\n        return True\n"
        "    return is_odd(n - 1)\n"
        "def is_odd(n):\n    if n == 0:\n        return False\n"
        "    return is_even(n - 1)\nprint(is_even(10))\n"
        "print(is_odd(7))\n",
        ["True", "True"]),
    "classes": (
        "class Counter:\n    def __init__(self, start):\n"
        "        self.n = start\n    def bump(self, by):\n"
        "        self.n = self.n + by\n        return self.n\n"
        "c = Counter(10)\nprint(c.bump(5))\nprint(c.bump(1))\n"
        "print(c.n)\n",
        ["15", "16", "16"]),
    "instances_are_independent": (
        "class Box:\n    def __init__(self):\n        self.items = []\n"
        "a = Box()\nb = Box()\na.items.append(1)\n"
        "print(len(a.items))\nprint(len(b.items))\n",
        ["1", "0"]),
    "builtins": (
        "print(abs(-5))\nprint(min(3, 1))\nprint(max([4, 9, 2]))\n"
        "print(sum([1, 2, 3]))\nprint(ord('A'))\nprint(chr(66))\n"
        "print(int('42'))\nprint(float('2.5'))\nprint(str(17))\n"
        "print(bool(0))\nprint(list(range(3)))\nprint(sorted([3, 1, 2]))\n",
        ["5", "1", "9", "6", "65", "B", "42", "2.5", "17", "False",
         "[0, 1, 2]", "[1, 2, 3]"]),
    "membership": (
        "print(2 in [1, 2, 3])\nprint(5 in [1, 2])\n"
        "print('ell' in 'hello')\nprint(2 not in [1, 3])\n",
        ["True", "False", "True", "True"]),
    "is_none": (
        "x = None\nprint(x is None)\nprint(x is not None)\n",
        ["True", "False"]),
    "truthiness": (
        "if []:\n    print('no')\nelse:\n    print('empty list falsy')\n"
        "if 'x':\n    print('nonempty str truthy')\n"
        "if 0.0:\n    print('no')\nelse:\n    print('zero float falsy')\n",
        ["empty list falsy", "nonempty str truthy", "zero float falsy"]),
    "str_iteration": (
        "out = []\nfor ch in 'abc':\n    out.append(ch.upper())\n"
        "print(''.join(out))\n",
        ["ABC"]),
    "big_ints": (
        "x = 2 ** 100\nprint(x)\nprint(x % 97)\n",
        [str(2 ** 100), str((2 ** 100) % 97)]),
    "negative_indexing": (
        "a = [10, 20, 30]\nprint(a[-1])\nprint(a[-3])\n"
        "a[-2] = 99\nprint(a)\n",
        ["30", "10", "[10, 99, 30]"]),
    "ternary_expr": (
        "x = 7\nprint('big' if x > 5 else 'small')\n"
        "print('big' if x > 9 else 'small')\n",
        ["big", "small"]),
    "math_module": (
        "print(int(math.sqrt(144)))\nprint(int(math.floor(3.7)))\n"
        "print(int(math.pow(2.0, 8.0)))\n",
        ["12", "3", "256"]),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_cpython_semantics(name):
    source, expected = CASES[name]
    assert guest_output(source, "cpython") == expected


@pytest.mark.parametrize("name", sorted(CASES))
def test_pypy_interp_semantics(name):
    source, expected = CASES[name]
    assert guest_output(source, "pypy", jit=False) == expected


@pytest.mark.parametrize("name", sorted(CASES))
def test_pypy_jit_semantics(name):
    source, expected = CASES[name]
    assert guest_output(source, "pypy", jit=True) == expected


@pytest.mark.parametrize("name", sorted(CASES))
def test_v8_semantics(name):
    source, expected = CASES[name]
    assert guest_output(source, "v8") == expected
