"""The paper's two-stage pipeline: collect once, post-process offline.

Section IV-B: the Pin tool exports statistics files; post-processing
runs separately with the (reusable) interpreter annotations. These tests
prove the same separation works here: a trace saved to disk plus the
site table is sufficient to reproduce breakdowns and timing without the
original VM.
"""

import json

import numpy as np

from conftest import run_source
from repro.categories import OverheadCategory as C
from repro.config import skylake_config
from repro.host.trace import InstructionTrace
from repro.pintool import StatsCollector, resolve_categories
from repro.uarch import SimulatedSystem
from repro.uarch.simple_core import simple_core_cycles
from repro.uarch.cache import simulate_cache_hierarchy

SOURCE = """
g = 3

def work(n):
    table = {}
    total = 0
    for i in range(n):
        table[i % 8] = i * g
        total = total + table[i % 8]
    return total

print(work(60))
"""


def test_trace_roundtrip_preserves_simulation(tmp_path):
    vm, machine = run_source(SOURCE)
    path = tmp_path / "run.npz"
    machine.trace.save(path)
    reloaded = InstructionTrace.load(path)

    system = SimulatedSystem(skylake_config())
    original = system.run(machine.trace, core="ooo")
    offline = system.run(reloaded, core="ooo")
    assert offline.cycles == original.cycles
    assert offline.instructions == original.instructions


def test_offline_breakdown_matches_online(tmp_path):
    vm, machine = run_source(SOURCE)
    trace_path = tmp_path / "run.npz"
    sites_path = tmp_path / "sites.json"
    machine.trace.save(trace_path)
    sites_path.write_text(json.dumps(machine.site_table))

    # Offline: nothing from the VM except the two files.
    reloaded = InstructionTrace.load(trace_path)
    site_table = json.loads(sites_path.read_text())
    config = skylake_config()
    cache_result = simulate_cache_hierarchy(reloaded.arrays(), config)
    cycles = simple_core_cycles(cache_result.dlevel, cache_result.ilevel,
                                config)
    categories = resolve_categories(reloaded, site_table)
    offline_sums = np.bincount(categories, weights=cycles, minlength=32)

    online_categories = resolve_categories(machine.trace,
                                           machine.site_table)
    online_sums = np.bincount(online_categories, weights=cycles,
                              minlength=32)
    assert np.allclose(offline_sums, online_sums)
    assert offline_sums[int(C.DISPATCH)] > 0
    assert offline_sums[int(C.UNRESOLVED)] == 0


def test_collector_export_supports_separate_postprocess(tmp_path):
    vm, machine = run_source(SOURCE)
    config = skylake_config()
    cache_result = simulate_cache_hierarchy(machine.trace.arrays(),
                                            config)
    cycles = simple_core_cycles(cache_result.dlevel, cache_result.ilevel,
                                config)
    collector = StatsCollector()
    collector.collect(machine.trace, cycles)
    stats_path = tmp_path / "stats.json"
    collector.export(stats_path)

    loaded = StatsCollector.load(stats_path)
    assert loaded.total_cycles == collector.total_cycles
    # The lookdict helper's per-origin split survives the round trip —
    # the information post-processing needs for caller-dependent sites.
    lookdict_pc = machine.site_table["dictobject.lookdict"]
    assert loaded.stats[lookdict_pc].by_origin


def test_annotations_are_reusable_across_programs():
    # "We only need to annotate the CPython interpreter once and not for
    # each Python program" — the statically initialized interpreter
    # sites get identical PCs for every guest, so one annotation binding
    # serves any program. (Helper sites interned lazily at first use may
    # differ in PC; the annotation table is keyed by *name* to stay
    # program-independent.)
    vm_a, machine_a = run_source("x = {}\nx['k'] = 1\nprint(x['k'])\n")
    vm_b, machine_b = run_source(SOURCE)
    static_names = [name for name in machine_a.site_table
                    if name.startswith("ceval.")
                    or name.startswith("gcmodule.")
                    or name.startswith("dictobject.")]
    assert "ceval.dispatch" in static_names
    assert len(static_names) > 50  # every bytecode handler and helper
    for name in static_names:
        assert machine_a.site_table[name] == machine_b.site_table[name], \
            name
    # And the caller-dependent resolution works identically on both.
    for machine in (machine_a, machine_b):
        categories = resolve_categories(machine.trace,
                                        machine.site_table)
        assert (categories == int(C.UNRESOLVED)).sum() == 0
