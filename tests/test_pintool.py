"""Pin-analog statistics collection and origin-PC resolution."""

import numpy as np

from conftest import run_source
from repro.categories import OverheadCategory as C
from repro.pintool import (
    StatsCollector,
    compute_breakdown,
    default_annotations,
    resolve_categories,
)


def test_collector_aggregates_per_pc(tmp_path):
    vm, machine = run_source("x = 1 + 2\nprint(x)\n")
    collector = StatsCollector()
    collector.collect(machine.trace)
    assert collector.total_instructions == len(machine.trace)
    # The dispatch site must be among the hottest PCs.
    dispatch_pc = machine.site_table["ceval.dispatch"]
    assert dispatch_pc in collector.stats
    assert collector.stats[dispatch_pc].count > 0


def test_collector_export_load_roundtrip(tmp_path):
    vm, machine = run_source("total = 0\nfor i in range(20):\n"
                             "    total = total + i\nprint(total)\n")
    collector = StatsCollector()
    collector.collect(machine.trace)
    path = tmp_path / "stats.json"
    collector.export(path)
    loaded = StatsCollector.load(path)
    assert loaded.total_instructions == collector.total_instructions
    assert loaded.total_cycles == collector.total_cycles
    sample_pc = next(iter(collector.stats))
    assert loaded.stats[sample_pc].count == \
        collector.stats[sample_pc].count


def test_collector_tracks_origins():
    vm, machine = run_source("x = 1\ny = x + 1\nprint(y)\n")
    collector = StatsCollector()
    collector.collect(machine.trace)
    lookdict_pc = machine.site_table["dictobject.lookdict"]
    entry = collector.stats.get(lookdict_pc)
    assert entry is not None
    assert entry.by_origin  # reached from at least one origin


def test_origin_resolution_is_caller_dependent():
    # The same lookdict helper must resolve to NAME_RESOLUTION when
    # reached from LOAD_GLOBAL and to EXECUTE when reached from a guest
    # dict subscript — the paper's Section IV-B example.
    source = """
g = 5

def f():
    return g + 1

d = {}
d["k"] = 1
x = d["k"]
y = f()
print(x + y)
"""
    vm, machine = run_source(source)
    categories = resolve_categories(machine.trace, machine.site_table)
    assert (categories == int(C.UNRESOLVED)).sum() == 0
    arrays = machine.trace.arrays()
    raw = arrays["category"]
    unresolved = raw == int(C.UNRESOLVED)
    resolved = categories[unresolved]
    origins = arrays["origin"][unresolved]
    load_global = machine.site_table["ceval.handler.LOAD_GLOBAL"]
    subscr = machine.site_table["ceval.handler.BINARY_SUBSCR.dict"]
    assert (resolved[origins == load_global]
            == int(C.NAME_RESOLUTION)).all()
    assert (resolved[origins == subscr] == int(C.EXECUTE)).all()
    assert (origins == load_global).any()
    assert (origins == subscr).any()


def test_unknown_origins_fall_back_to_default():
    annotations = default_annotations()
    vm, machine = run_source("d = {}\nd[1] = 2\nx = d[1]\nprint(x)\n")
    categories = resolve_categories(machine.trace, machine.site_table,
                                    annotations)
    assert (categories == int(C.UNRESOLVED)).sum() == 0


def test_compute_breakdown_totals_match_simple_core():
    vm, machine = run_source("total = 0\nfor i in range(50):\n"
                             "    total = total + i * i\nprint(total)\n")
    breakdown = compute_breakdown(machine.trace, machine)
    assert breakdown.total_cycles > 0
    shares = [breakdown.share(c) for c in C]
    assert abs(sum(shares) - 1.0) < 1e-9
    assert breakdown.share(C.DISPATCH) > 0.02
    assert breakdown.share(C.C_FUNCTION_CALL) > 0.05


def test_breakdown_top_categories():
    vm, machine = run_source("total = 0\nfor i in range(80):\n"
                             "    total = total + i\nprint(total)\n")
    breakdown = compute_breakdown(machine.trace, machine)
    top = breakdown.top_categories(3)
    assert len(top) == 3
    assert all(isinstance(label, str) and 0 < share <= 1
               for label, share in top)


def test_annotation_binding_requires_machine_sites():
    annotations = default_annotations()
    bound = annotations.bind({"ceval.handler.LOAD_GLOBAL": 0x4000})
    assert bound == {0x4000: int(C.NAME_RESOLUTION)}
    assert annotations.bind({}) == {}
