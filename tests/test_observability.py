"""The observability plane: run registry, unified traces, status, perf."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import telemetry
from repro.experiments import perf as perf_mod
from repro.experiments.parallel import fan_out
from repro.experiments.resilience import FAULTS_ENV, RetryPolicy, _decide
from repro.experiments.runner import ExperimentRunner
from repro.experiments.status import render_status, watch_status
from repro.telemetry import TELEMETRY
from repro.telemetry.export import (
    build_chrome_trace,
    load_last_manifest,
    write_manifest,
)
from repro.telemetry.registry import (
    LOCK_NAME,
    MANIFEST_KEEP,
    REGISTRY_DIR_ENV,
    LockTimeout,
    RunRegistry,
    registry_dir,
    summarize_manifest,
)


def _record(kind: str = "run", **extra) -> dict:
    return {"schema": 1, "kind": kind, "created_unix": time.time(),
            "command": "test", **extra}


# ----------------------------------------------------------------------
# Run registry
# ----------------------------------------------------------------------

def test_registry_assigns_monotonic_seqs(tmp_path):
    telemetry.enable()
    registry = RunRegistry(tmp_path / "reg")
    seqs = [registry.append(_record())["seq"] for _ in range(3)]
    assert seqs == [1, 2, 3]
    assert [r["seq"] for r in registry.records()] == [1, 2, 3]
    assert registry.last()["seq"] == 3


def test_registry_last_filters_by_kind(tmp_path):
    telemetry.enable()
    registry = RunRegistry(tmp_path / "reg")
    registry.append(_record(kind="run"))
    registry.append(_record(kind="perf_probe"))
    registry.append(_record(kind="run"))
    assert registry.last(kind="perf_probe")["seq"] == 2
    assert registry.last(kind="figure") is None


def test_registry_disabled_is_zero_cost(tmp_path):
    telemetry.disable()
    registry = RunRegistry(tmp_path / "reg")
    assert registry.append(_record()) is None
    assert not (tmp_path / "reg").exists()
    assert registry.records() == []


def test_registry_tolerates_torn_lines(tmp_path):
    telemetry.enable()
    registry = RunRegistry(tmp_path / "reg")
    registry.append(_record())
    registry.append(_record())
    with open(registry.runs_path, "a", encoding="utf-8") as handle:
        handle.write('{"schema": 1, "kind": "run", "seq"')  # torn write
        handle.write("\n[1, 2]\n")                          # not a record
    assert [r["seq"] for r in registry.records()] == [1, 2]
    # The next append still advances past the valid maximum.
    assert registry.append(_record())["seq"] == 3


def test_registry_prune_drops_oldest(tmp_path):
    telemetry.enable()
    registry = RunRegistry(tmp_path / "reg")
    for _ in range(5):
        registry.append(_record())
    assert registry.prune(max_records=2) == 3
    assert [r["seq"] for r in registry.records()] == [4, 5]
    assert registry.prune(max_records=2) == 0


def test_registry_keeps_newest_manifest_copies(tmp_path):
    telemetry.enable()
    registry = RunRegistry(tmp_path / "reg")
    for i in range(MANIFEST_KEEP + 3):
        registry.append(_record(), manifest={"i": i})
    copies = sorted((tmp_path / "reg").glob("manifest-*.json"),
                    key=RunRegistry._manifest_seq)
    assert len(copies) == MANIFEST_KEEP
    assert RunRegistry._manifest_seq(copies[-1]) == MANIFEST_KEEP + 3


def test_registry_lock_timeout_drops_the_write_not_the_process(tmp_path):
    """A wedged appender elsewhere must bound, not block, this writer:
    the record is dropped, counted, and the next append succeeds."""
    import fcntl
    telemetry.enable()
    telemetry.reset()
    registry = RunRegistry(tmp_path / "reg", lock_timeout=0.2,
                           lock_poll=0.02)
    assert registry.append(_record())["seq"] == 1
    holder = open(tmp_path / "reg" / LOCK_NAME, "a+")
    try:
        fcntl.flock(holder, fcntl.LOCK_EX)  # the wedged "other host"
        start = time.monotonic()
        assert registry.append(_record()) is None
        assert registry.prune(max_records=0) == 0
        assert time.monotonic() - start < 5.0  # bounded, both paths
        with pytest.raises(LockTimeout):
            with registry._locked():
                pass
    finally:
        fcntl.flock(holder, fcntl.LOCK_UN)
        holder.close()
    snapshot = TELEMETRY.metrics.snapshot()
    assert snapshot.get("registry.lock_timeouts", 0) >= 3
    # Reads never needed the lock; writes recover once it frees up.
    assert [r["seq"] for r in registry.records()] == [1]
    assert registry.append(_record())["seq"] == 2


def test_registry_dir_resolution(tmp_path, monkeypatch):
    monkeypatch.setenv(REGISTRY_DIR_ENV, str(tmp_path / "override"))
    assert registry_dir() == tmp_path / "override"
    monkeypatch.delenv(REGISTRY_DIR_ENV)
    # The autouse fixture points REPRO_CACHE_DIR at tmp: the registry
    # lives inside the cache root so one dir holds the whole campaign.
    from repro.experiments.diskcache import cache_root
    assert registry_dir() == cache_root() / "telemetry"


def test_registry_usage_counts_records(tmp_path):
    telemetry.enable()
    registry = RunRegistry(tmp_path / "reg")
    registry.append(_record(), manifest={"x": 1})
    usage = registry.usage()
    assert usage["records"] == 1
    assert usage["entries"] >= 2  # runs.jsonl + manifest copy (+ lock)
    assert usage["bytes"] > 0


def test_summarize_manifest_splits_gauges_and_counters():
    manifest = {
        "command": "run",
        "config": {"cache_key": "abc123", "workload": "chaos"},
        "stats": {"wall_seconds": 1.5, "cycles": 100,
                  "category_cycles": {"DISPATCH": 40, "EXECUTE": 60}},
        "metrics": {
            "guest.instructions_per_second{runtime=cpython}": 5.0,
            "resilience.retries{reason=crash}": 2,
            "cache.quarantined": 1,
            "span.self_seconds": 0.2,  # neither gauge nor counter prefix
        },
        "workers": {"cells": 3, "pids": [11, 12]},
    }
    record = summarize_manifest(manifest, kind="run")
    assert record["cache_key"] == "abc123"
    assert record["gauges"] == {
        "guest.instructions_per_second{runtime=cpython}": 5.0}
    assert record["counters"] == {
        "resilience.retries{reason=crash}": 2, "cache.quarantined": 1}
    assert record["categories"] == {"DISPATCH": 40, "EXECUTE": 60}
    assert record["workers"] == 3
    assert record["stats"]["wall_seconds"] == 1.5


# ----------------------------------------------------------------------
# load_last_manifest: registry sequence beats filesystem mtime
# ----------------------------------------------------------------------

def test_load_last_manifest_orders_by_seq_not_mtime(tmp_path):
    telemetry.enable()
    telemetry.reset()
    write_manifest(command="first")
    write_manifest(command="second")
    # Force identical (coarse) timestamps on every candidate file: mtime
    # ordering would now tie arbitrarily, the seq ordering cannot.
    stamp = time.time() - 60
    for path in registry_dir().glob("manifest-*.json"):
        os.utime(path, (stamp, stamp))
    manifest = load_last_manifest()
    assert manifest is not None
    assert manifest["command"] == "second"


def test_load_last_manifest_falls_back_to_mirror(tmp_path):
    telemetry.disable()
    # Disabled telemetry still mirrors to last_run.json (no registry).
    write_manifest(command="mirror-only")
    assert not registry_dir().joinpath("runs.jsonl").exists()
    manifest = load_last_manifest()
    assert manifest is not None
    assert manifest["command"] == "mirror-only"


def test_write_manifest_survives_readonly_registry(tmp_path, monkeypatch):
    telemetry.enable()
    telemetry.reset()
    # A plain file where the registry dir should go: mkdir raises
    # OSError even for root (chmod-based denial would not).
    blocked = tmp_path / "blocked"
    blocked.write_text("", encoding="utf-8")
    monkeypatch.setenv(REGISTRY_DIR_ENV, str(blocked / "registry"))
    write_manifest(command="still-works")
    assert TELEMETRY.metrics.snapshot().get("registry.write_errors") == 1
    manifest = load_last_manifest()
    assert manifest["command"] == "still-works"


# ----------------------------------------------------------------------
# Cross-worker trace unification
# ----------------------------------------------------------------------

def _square_cell(runner, value):
    time.sleep(0.05)  # long enough that both pool workers take cells
    return value * value


def test_unified_trace_has_worker_lanes_and_cell_instants():
    telemetry.enable()
    telemetry.reset()
    runner = ExperimentRunner()
    results = fan_out(runner, _square_cell, [(v,) for v in range(4)],
                      jobs=2)
    assert results == [0, 1, 4, 9]
    snapshot = TELEMETRY.workers.snapshot()
    assert snapshot["cells"] == 4
    parent = os.getpid()
    assert snapshot["pids"] and parent not in snapshot["pids"]

    trace = build_chrome_trace()
    events = trace["traceEvents"]
    lanes = {e["pid"] for e in events if e["ph"] == "X"}
    assert set(snapshot["pids"]) <= lanes
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert f"repro parent (pid {parent})" in names
    assert any(name.startswith("repro worker") for name in names)
    done = [e for e in events if e["ph"] == "i" and e["name"] == "cell.done"]
    assert len(done) == 4
    # Worker span timestamps are rebased onto the parent's wall clock:
    # every cell span starts after the fan-out began on the parent lane.
    cell_spans = [e for e in events
                  if e["ph"] == "X" and e["name"] == "cell"]
    assert len(cell_spans) == 4
    assert all(e["ts"] >= 0 for e in cell_spans)


def _counting_cell(runner, value):
    TELEMETRY.metrics.counter("obs.cell_executions").inc()
    return value * 10


_FAST = RetryPolicy(max_retries=2, backoff_base=0.005, backoff_max=0.01,
                    max_pool_rebuilds=2)


def test_serial_degrade_merges_telemetry_exactly_once(monkeypatch):
    """Satellite: no double-count when the pool dies and cells rerun
    serial — crashed attempts never ship a payload, and the in-process
    fallback writes straight into the parent registry."""
    telemetry.enable()
    telemetry.reset()
    monkeypatch.setenv(FAULTS_ENV, "worker_crash:p=1")
    runner = ExperimentRunner()
    results = fan_out(runner, _counting_cell, [(v,) for v in range(5)],
                      jobs=2, policy=_FAST)
    assert results == [0, 10, 20, 30, 40]
    snapshot = TELEMETRY.metrics.snapshot()
    # Every crashed worker attempt died before its cell body ran; the
    # only executions that count are the five serial in-parent ones.
    assert snapshot.get("obs.cell_executions") == 5
    assert TELEMETRY.workers.snapshot()["cells"] == 0
    assert snapshot.get("resilience.serial_fallbacks") == 1
    assert snapshot.get("resilience.serial_cells") == 5


def _isolation_sites(n):
    return [f"{_counting_cell.__module__}."
            f"{_counting_cell.__qualname__}#{i}" for i in range(n)]


def test_isolation_rung_ships_worker_telemetry(monkeypatch):
    """After the pool-rebuild budget, cells run isolated (one fresh
    single-worker pool each) — their telemetry still comes back."""
    telemetry.enable()
    telemetry.reset()
    # A seed that crashes >=1 of 4 cells at attempt 0 and none at
    # attempt 1: the isolated retries (attempt 1) must succeed.
    seed = next(
        s for s in range(500)
        if any(_decide(s, "worker_crash", site, 0, 0.5)
               for site in _isolation_sites(4))
        and not any(_decide(s, "worker_crash", site, 1, 0.5)
                    for site in _isolation_sites(4)))
    monkeypatch.setenv(FAULTS_ENV, f"worker_crash:p=0.5,seed={seed}")
    policy = RetryPolicy(max_retries=2, backoff_base=0.005,
                         backoff_max=0.01, max_pool_rebuilds=0)
    runner = ExperimentRunner()
    results = fan_out(runner, _counting_cell, [(v,) for v in range(4)],
                      jobs=2, policy=policy)
    assert results == [0, 10, 20, 30]
    snapshot = TELEMETRY.metrics.snapshot()
    assert snapshot.get("resilience.isolation_fallbacks") == 1
    assert snapshot.get("resilience.isolated_cells", 0) >= 1
    assert snapshot.get("resilience.serial_fallbacks") is None
    # Every cell executed exactly once in some worker, and every
    # payload shipped: harvested from the broken pool or isolated.
    assert snapshot.get("obs.cell_executions") == 4
    assert TELEMETRY.workers.snapshot()["cells"] == 4


# ----------------------------------------------------------------------
# repro status
# ----------------------------------------------------------------------

def test_status_renders_all_three_sections(tmp_path):
    telemetry.enable()
    telemetry.reset()
    TELEMETRY.metrics.counter("runner.disk_cache.hit").inc(3)
    TELEMETRY.metrics.counter("runner.disk_cache.miss").inc()
    write_manifest(command="run chaos")
    text = render_status(checkpoint=tmp_path / "journal")
    assert "campaign" in text
    assert "disk cache" in text
    assert "registry   : 1 records" in text
    assert "seq 1 [run] run chaos" in text
    assert "75.0% hit rate" in text


def test_status_renders_serve_panel_from_the_session_journal(tmp_path):
    from repro.experiments.client import serve_root
    from repro.experiments.server import SessionJournal
    journal = SessionJournal(serve_root())
    journal.append({"type": "request", "key": "answered-1",
                    "tenant": "alice",
                    "spec": {"type": "bench", "cells": 1}})
    journal.append({"type": "result", "key": "answered-1",
                    "tenant": "alice", "status": "ok"})
    journal.append({"type": "request", "key": "pending-1",
                    "tenant": "bob",
                    "spec": {"type": "bench", "cells": 1}})
    text = render_status(checkpoint=tmp_path / "journal")
    assert "serve      : 1 answered, 1 pending" in text
    assert "alice (1)" in text and "bob (1)" in text
    assert "pending-1" in text
    assert "resumed on next serve start" in text


def test_status_is_read_only_when_disabled(tmp_path):
    telemetry.disable()
    text = render_status(checkpoint=tmp_path / "journal")
    assert "registry   : empty" in text
    assert not registry_dir().joinpath("runs.jsonl").exists()
    assert not TELEMETRY.enabled


def test_status_watch_respects_max_iterations(tmp_path):
    frames = []
    watch_status(interval=0.0, checkpoint=tmp_path / "journal",
                 emit=frames.append, clear=False, max_iterations=2)
    assert len(frames) == 2
    assert all("repro campaign status" in frame for frame in frames)


# ----------------------------------------------------------------------
# Perf-regression sentinel
# ----------------------------------------------------------------------

_PROBE = {"kind": "perf_probe", "schema": 1, "command": "perf",
          "created_unix": 0.0,
          "config": {"workload": "deltablue"},
          "gauges": {"guest": 1000.0, "sim.core.ooo": 50000.0},
          "categories": {"dispatch": 0.4, "execute": 0.6}}


def _seed_probe(gauges=None, categories=None):
    record = dict(_PROBE)
    if gauges is not None:
        record["gauges"] = gauges
    if categories is not None:
        record["categories"] = categories
    return RunRegistry().append(record)


def _baseline(tmp_path, gauges, categories):
    path = tmp_path / "perf.json"
    path.write_text(json.dumps({"schema": 1, "config": {},
                                "gauges": gauges,
                                "categories": categories}),
                    encoding="utf-8")
    return path


def test_perf_check_passes_within_threshold(tmp_path):
    telemetry.enable()
    _seed_probe()
    path = _baseline(tmp_path, _PROBE["gauges"], _PROBE["categories"])
    lines = []
    assert perf_mod.check(path, probe=False, emit=lines.append) == 0
    assert any("all gauges within threshold" in line for line in lines)


def test_perf_check_fails_on_2x_gauge_regression(tmp_path):
    telemetry.enable()
    _seed_probe()
    inflated = {name: value * 3 for name, value
                in _PROBE["gauges"].items()}
    path = _baseline(tmp_path, inflated, _PROBE["categories"])
    lines = []
    assert perf_mod.check(path, probe=False, emit=lines.append) == 1
    assert any(line.startswith("FAIL: gauge") for line in lines)


def test_perf_check_fails_on_share_drift(tmp_path):
    telemetry.enable()
    _seed_probe()
    drifted = {"dispatch": 0.8, "execute": 0.2}
    path = _baseline(tmp_path, _PROBE["gauges"], drifted)
    lines = []
    assert perf_mod.check(path, probe=False, emit=lines.append) == 1
    assert any(line.startswith("FAIL: category") for line in lines)


def test_perf_check_threshold_is_tunable(tmp_path):
    telemetry.enable()
    _seed_probe()
    inflated = {name: value * 3 for name, value
                in _PROBE["gauges"].items()}
    path = _baseline(tmp_path, inflated, _PROBE["categories"])
    assert perf_mod.check(path, threshold=4.0, probe=False,
                          emit=lambda *_: None) == 0


def test_perf_check_update_writes_baseline(tmp_path):
    telemetry.enable()
    _seed_probe()
    path = tmp_path / "fresh" / "perf.json"
    assert perf_mod.check(path, update=True, probe=False,
                          emit=lambda *_: None) == 0
    baseline = json.loads(path.read_text(encoding="utf-8"))
    assert baseline["gauges"] == _PROBE["gauges"]
    assert baseline["categories"] == _PROBE["categories"]
    # And the fresh baseline gates green against its own measurement.
    assert perf_mod.check(path, probe=False, emit=lambda *_: None) == 0


def test_perf_check_without_baseline_or_probe(tmp_path):
    telemetry.enable()
    lines = []
    assert perf_mod.check(tmp_path / "none.json", probe=False,
                          emit=lines.append) == 1
    assert any("no perf_probe record" in line for line in lines)
    _seed_probe()
    lines.clear()
    assert perf_mod.check(tmp_path / "none.json", probe=False,
                          emit=lines.append) == 1
    assert any("--update" in line for line in lines)


def test_perf_diff_compares_last_two_probes():
    telemetry.enable()
    lines = []
    assert perf_mod.diff(emit=lines.append) == 0
    assert any("need two perf_probe records" in line for line in lines)
    _seed_probe()
    _seed_probe(gauges={"guest": 2000.0, "sim.core.ooo": 50000.0})
    lines.clear()
    assert perf_mod.diff(emit=lines.append) == 0
    joined = "\n".join(lines)
    assert "seq 1" in joined and "seq 2" in joined
    assert "2.00x" in joined


def test_committed_perf_baseline_is_well_formed():
    """The checked-in baseline must carry every gated gauge."""
    baseline = json.loads(
        perf_mod.DEFAULT_BASELINE.read_text(encoding="utf-8"))
    assert set(baseline["gauges"]) == {"guest", "sim.memory_side",
                                       "sim.core.ooo"}
    assert all(value > 0 for value in baseline["gauges"].values())
    shares = baseline["categories"]
    assert shares and abs(sum(shares.values()) - 1.0) < 0.05


# ----------------------------------------------------------------------
# Zero-cost when disabled
# ----------------------------------------------------------------------

def test_disabled_telemetry_has_null_sinks_and_no_registry():
    telemetry.disable()
    runner = ExperimentRunner()
    results = fan_out(runner, _counting_cell, [(v,) for v in range(3)],
                      jobs=2)
    assert results == [0, 10, 20]
    assert TELEMETRY.metrics.snapshot() == {}
    assert TELEMETRY.workers.snapshot()["cells"] == 0
    assert not registry_dir().joinpath("runs.jsonl").exists()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def test_cli_telemetry_registry_tail(capsys):
    from repro.__main__ import main
    assert main(["telemetry", "--registry"]) == 1
    telemetry.enable()
    RunRegistry().append(_record(command="seeded"))
    telemetry.disable()
    assert main(["telemetry", "--registry", "--tail", "5"]) == 0
    out = capsys.readouterr().out
    record = json.loads(out.strip().splitlines()[-1])
    assert record["command"] == "seeded"
    assert record["seq"] == 1


def test_cli_status_runs(capsys):
    from repro.__main__ import main
    assert main(["status"]) == 0
    assert "repro campaign status" in capsys.readouterr().out
