"""The example scripts must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "CPython model" in out
    assert "PyPy model (JIT)" in out
    assert "JIT speedup" in out
    assert "C function call" in out


def test_nursery_tuning():
    out = run_example("nursery_tuning.py", "tuple_gc")
    assert "recommended nursery" in out
    assert "GC share" in out


def test_interpreter_anatomy():
    out = run_example("interpreter_anatomy.py")
    assert "compiled guest bytecode" in out
    assert "hottest static instructions" in out
    assert "cache sensitivity" in out


def test_regenerate_figures_listing():
    out = run_example("regenerate_figures.py")
    assert "fig10" in out
    assert "table1" in out


def test_regenerate_figures_single():
    out = run_example("regenerate_figures.py", "table2")
    assert "C function call" in out


def test_regenerate_figures_rejects_unknown():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "regenerate_figures.py"),
         "fig99"],
        capture_output=True, text=True, timeout=60)
    assert result.returncode == 1
