"""Builtins and modeled C library modules: semantics and accounting."""

import pytest

from conftest import guest_output, run_source
from repro.categories import OverheadCategory as C
from repro.errors import GuestTypeError, GuestValueError


def test_serializer_roundtrip_mixed():
    out = guest_output("""
data = {}
data["n"] = 42
data["f"] = 2.5
data["s"] = "text"
data["l"] = [1, (2, 3), None, True]
blob = pickle.dumps(data)
back = pickle.loads(blob)
print(back["n"])
print(back["f"])
print(back["s"])
print(back["l"])
print(len(blob) > 10)
""")
    assert out == ["42", "2.5", "text", "[1, (2, 3), None, True]", "True"]


def test_json_matches_pickle_format():
    out = guest_output("""
value = [1, "two", 3.0]
print(pickle.dumps(value) == json.dumps(value))
print(json.loads(json.dumps(value)))
""")
    assert out == ["True", "[1, 'two', 3.0]"]


def test_pickle_rejects_unserializable():
    with pytest.raises(GuestTypeError):
        run_source("""
class X:
    def __init__(self):
        self.a = 1
blob = pickle.dumps(X())
""")


def test_pickle_loads_rejects_corrupt_data():
    with pytest.raises(GuestValueError):
        run_source("x = pickle.loads('i12')\n")  # missing terminator


def test_regex_search_and_findall():
    out = guest_output("""
m = re.search("b+", "aabbbcc")
print(m)
print(re.search("z", "abc") is None)
print(re.findall("[0-9]+", "a1b22c333"))
print(re.match("ab", "abc"))
print(re.match("bc", "abc") is None)
""")
    assert out == ["bbb", "True", "['1', '22', '333']", "ab", "True"]


def test_regex_bad_pattern():
    with pytest.raises(GuestValueError):
        run_source("m = re.search('[unclosed', 'text')\n")


def test_math_functions():
    out = guest_output("""
print(int(math.sqrt(2.0) * 1000))
print(int(math.sin(0.0)))
print(int(math.cos(0.0)))
print(int(math.exp(1.0) * 100))
print(int(math.log(math.exp(3.0))))
print(int(math.atan2(1.0, 1.0) * 4000))
""")
    assert out == ["1414", "0", "1", "271", "3", "3141"]


def test_math_domain_error():
    with pytest.raises(GuestValueError):
        run_source("x = math.sqrt(-1.0)\n")


def test_rnd_determinism():
    source = """
rnd.seed(99)
a = rnd.randint(0, 1000)
b = rnd.randint(0, 1000)
rnd.seed(99)
c = rnd.randint(0, 1000)
print(a == c)
print(a != b)
x = rnd.random()
print(x >= 0.0 and x < 1.0)
"""
    assert guest_output(source) == ["True", "True", "True"]


def test_rnd_matches_native_shim():
    from repro.workloads.native import RndShim
    shim = RndShim()
    shim.seed(7)
    expected = [shim.randint(0, 99) for _ in range(5)]
    out = guest_output("""
rnd.seed(7)
vals = []
for i in range(5):
    vals.append(rnd.randint(0, 99))
print(vals)
""")
    assert out == [str(expected)]


def test_clib_time_is_attributed():
    vm, machine = run_source("""
payload = list(range(200))
for rep in range(5):
    blob = pickle.dumps(payload)
print(len(blob))
""")
    counts = machine.trace.category_counts()
    assert counts[int(C.C_LIBRARY)] > counts.sum() * 0.3


def test_sorted_and_sort_agree():
    out = guest_output("""
a = [5, 3, 9, 1]
b = sorted(a)
a.sort()
print(a == b)
print(b)
""")
    assert out == ["True", "[1, 3, 5, 9]"]


def test_min_max_two_arg_forms():
    assert guest_output("print(min(2, 9))\nprint(max(2, 9))\n") \
        == ["2", "9"]


def test_sum_floats():
    assert guest_output("print(sum([0.5, 0.25, 0.25]))\n") == ["1.0"]


def test_list_conversion_sources():
    out = guest_output("""
print(list("abc"))
print(list((1, 2)))
print(tuple([3, 4]))
d = {}
d["k"] = 1
print(list(d))
""")
    assert out == ["['a', 'b', 'c']", "[1, 2]", "(3, 4)", "['k']"]


def test_builtin_arity_errors():
    with pytest.raises(GuestTypeError):
        run_source("x = len()\n")
    with pytest.raises(GuestTypeError):
        run_source("x = abs(1, 2)\n")
    with pytest.raises(GuestTypeError):
        run_source("x = ord('too long')\n")


def test_dict_methods_return_fresh_lists():
    out = guest_output("""
d = {}
d["a"] = 1
keys = d.keys()
keys.append("z")
print(len(d))
print(len(keys))
""")
    assert out == ["1", "2"]
