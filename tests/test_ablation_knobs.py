"""Unit tests for the ablation knobs (global IC, freelist, devirtualize)."""

from repro.categories import OverheadCategory as C
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.host.isa import InstrKind
from repro.vm.cpython import CPythonVM

GLOBAL_HEAVY = """
limit = 40
total = 0

def work():
    global total
    for i in range(limit):
        total = total + limit - i

work()
print(total)
"""


def run_vm(source, **kwargs):
    program = compile_source(source, "<ablation>")
    machine = HostMachine(AddressSpace(), max_instructions=10_000_000)
    vm = CPythonVM(machine, program, **kwargs)
    vm.run()
    return vm, machine


def test_global_cache_preserves_semantics():
    base_vm, _ = run_vm(GLOBAL_HEAVY)
    cached_vm, _ = run_vm(GLOBAL_HEAVY, global_cache=True)
    assert cached_vm.output == base_vm.output


def test_global_cache_reduces_name_resolution_instructions():
    _, base_machine = run_vm(GLOBAL_HEAVY)
    _, cached_machine = run_vm(GLOBAL_HEAVY, global_cache=True)
    # The cached path also removes lookdict's UNRESOLVED work that would
    # resolve to name resolution, so compare total instructions too.
    assert len(cached_machine.trace) < len(base_machine.trace)
    base = base_machine.trace.category_counts()
    cached = cached_machine.trace.category_counts()
    assert cached[int(C.UNRESOLVED)] < base[int(C.UNRESOLVED)]


def test_freelist_off_preserves_semantics():
    base_vm, _ = run_vm(GLOBAL_HEAVY)
    bump_vm, _ = run_vm(GLOBAL_HEAVY, recycle_freelist=False)
    assert bump_vm.output == base_vm.output


def test_freelist_off_disables_reuse():
    source = """
total = 0
for i in range(200):
    x = i * 997
    total = total + x % 11
print(total)
"""
    recycled_vm, recycled_machine = run_vm(source)
    bump_vm, bump_machine = run_vm(source, recycle_freelist=False)
    assert bump_vm.allocator.reuse_count == 0
    assert recycled_vm.allocator.reuse_count > 0
    assert bump_machine.space.heap.used > recycled_machine.space.heap.used


def test_devirtualize_removes_indirect_calls():
    source = "total = 0\nfor i in range(50):\n    total = total + i\n" \
             "print(total)\n"
    program = compile_source(source, "<devirt>")
    machine = HostMachine(AddressSpace())
    machine.devirtualize = True
    vm = CPythonVM(machine, program)
    vm.run()
    kinds = machine.trace.column("kind")
    assert (kinds == int(InstrKind.ICALL)).sum() == 0
    # Direct calls took their place; the return count is unchanged.
    assert (kinds == int(InstrKind.CALL)).sum() > 0
    assert (kinds == int(InstrKind.CALL)).sum() == \
        (kinds == int(InstrKind.RET)).sum()
