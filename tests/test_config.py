"""Machine/runtime configuration validation and sweep helpers."""

import dataclasses

import pytest

from repro.config import (
    KB,
    MB,
    BranchPredictorConfig,
    CacheConfig,
    GCConfig,
    JITConfig,
    MemoryConfig,
    RuntimeConfig,
    cpython_runtime,
    pypy_runtime,
    scaled_config,
    skylake_config,
    v8_runtime,
)
from repro.errors import ConfigError


def test_table1_defaults():
    config = skylake_config()
    assert config.core.issue_width == 4
    assert config.core.rob_entries == 224
    assert config.l1d.size == 64 * KB
    assert config.l2.size == 256 * KB
    assert config.l3.size == 2 * MB
    assert config.memory.latency == 173
    assert config.branch.l1_entries == 2048
    assert config.branch.l2_entries == 16384


def test_cache_config_validation():
    with pytest.raises(ConfigError):
        CacheConfig("bad", size=0, ways=4)
    with pytest.raises(ConfigError):
        CacheConfig("bad", size=64 * KB, ways=4, line_size=48)
    with pytest.raises(ConfigError):
        CacheConfig("bad", size=64 * KB, ways=4, latency=0)


def test_cache_num_sets():
    cache = CacheConfig("c", size=64 * KB, ways=8, line_size=64)
    assert cache.num_sets == 128


def test_llc_resize_preserves_validity():
    for size in (256 * KB, 512 * KB, 1 * MB, 4 * MB, 16 * MB):
        config = skylake_config().with_llc_size(size)
        assert config.l3.size == size
        assert config.l3.num_sets > 0


def test_line_size_sweep_configs():
    for line in (64, 128, 256, 512, 1024, 2048, 4096):
        config = skylake_config().with_line_size(line)
        for cache in (config.l1i, config.l1d, config.l2, config.l3):
            assert cache.line_size == line


def test_issue_width_and_memory_helpers():
    config = skylake_config().with_issue_width(32)
    assert config.core.issue_width == 32
    assert config.core.rob_entries >= 32
    assert skylake_config().with_memory_latency(50).memory.latency == 50
    assert skylake_config().with_memory_bandwidth(200) \
        .memory.bandwidth_mbps == 200


def test_branch_scale():
    config = skylake_config().with_branch_scale(0.5)
    assert config.branch.scaled_l1_entries == 1024
    assert config.branch.scaled_l2_entries == 8192
    big = skylake_config().with_branch_scale(8.0)
    assert big.branch.scaled_l2_entries == 131072


def test_branch_config_validation():
    with pytest.raises(ConfigError):
        BranchPredictorConfig(history_bits=0)
    with pytest.raises(ConfigError):
        BranchPredictorConfig(scale=-1.0)


def test_memory_bytes_per_cycle():
    memory = MemoryConfig(bandwidth_mbps=19200, frequency_ghz=3.4)
    assert 5.0 < memory.bytes_per_cycle < 6.0


def test_scaled_config_ratios():
    base = skylake_config()
    scaled = scaled_config(3)
    assert scaled.l3.size == base.l3.size // 8
    assert scaled.l2.size == base.l2.size // 8
    assert scaled.l1d.size == base.l1d.size // 8
    with pytest.raises(ConfigError):
        scaled_config(9)


def test_runtime_configs():
    assert cpython_runtime().kind == "cpython"
    assert not cpython_runtime().uses_jit
    assert pypy_runtime(jit=True).uses_jit
    assert not pypy_runtime(jit=False).uses_jit
    assert v8_runtime().uses_jit
    with pytest.raises(ConfigError):
        RuntimeConfig(kind="jython")


def test_gc_config_validation():
    with pytest.raises(ConfigError):
        GCConfig(nursery_size=1024)
    with pytest.raises(ConfigError):
        GCConfig(major_growth_factor=0.5)


def test_jit_config_validation():
    with pytest.raises(ConfigError):
        JITConfig(hot_loop_threshold=0)
    with pytest.raises(ConfigError):
        JITConfig(trace_limit=4)


def test_with_nursery_returns_new_config():
    base = pypy_runtime(nursery_size=1 * MB)
    resized = base.with_nursery(4 * MB)
    assert resized.gc.nursery_size == 4 * MB
    assert base.gc.nursery_size == 1 * MB


def test_configs_are_frozen():
    config = skylake_config()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.core = None  # type: ignore[misc]
