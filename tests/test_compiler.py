"""MiniPy compiler: code generation and rejection of unsupported forms."""

import pytest

from repro.errors import CompileError
from repro.frontend import compile_source, disassemble
from repro.frontend.bytecode import Op


def ops_of(code):
    return [Op(v) for v in code.ops]


def test_module_constants_are_interned():
    program = compile_source("x = 1\ny = 1\nz = 2\n")
    assert program.module.consts.count(1) == 1


def test_const_interning_distinguishes_types():
    program = compile_source("a = 1\nb = 1.0\nc = True\n")
    consts = program.module.consts
    assert 1 in consts and 1.0 in consts and True in consts
    # int 1, float 1.0, and True are all distinct pool entries.
    assert len([c for c in consts if c == 1]) == 3


def test_function_compilation():
    program = compile_source("""
def add(a, b):
    return a + b
""")
    code = program.functions["add"]
    assert code.argcount == 2
    assert code.varnames[:2] == ["a", "b"]
    assert Op.BINARY_ADD in ops_of(code)
    assert ops_of(code)[-1] == Op.RETURN_VALUE


def test_locals_vs_globals():
    program = compile_source("""
g = 5

def f(x):
    y = x + g
    return y
""")
    code = program.functions["f"]
    kinds = ops_of(code)
    assert Op.LOAD_FAST in kinds
    assert Op.LOAD_GLOBAL in kinds
    assert Op.STORE_FAST in kinds


def test_global_declaration():
    program = compile_source("""
counter = 0

def bump():
    global counter
    counter = counter + 1
""")
    code = program.functions["bump"]
    assert Op.STORE_GLOBAL in ops_of(code)
    assert Op.STORE_FAST not in ops_of(code)


def test_while_loop_shape():
    program = compile_source("""
i = 0
while i < 3:
    i = i + 1
""")
    kinds = ops_of(program.module)
    assert Op.SETUP_LOOP in kinds
    assert Op.POP_JUMP_IF_FALSE in kinds
    assert Op.POP_BLOCK in kinds


def test_for_loop_shape():
    program = compile_source("""
total = 0
for i in range(5):
    total = total + i
""")
    kinds = ops_of(program.module)
    assert Op.GET_ITER in kinds
    assert Op.FOR_ITER in kinds


def test_break_and_continue():
    program = compile_source("""
for i in range(10):
    if i == 2:
        continue
    if i == 5:
        break
""")
    kinds = ops_of(program.module)
    assert Op.BREAK_LOOP in kinds
    assert kinds.count(Op.JUMP_ABSOLUTE) >= 2


def test_class_compilation():
    program = compile_source("""
class Point:
    def __init__(self, x):
        self.x = x

    def get(self):
        return self.x
""")
    spec = program.classes["Point"]
    assert set(spec.methods) == {"__init__", "get"}
    assert spec.methods["get"].argcount == 1
    assert Op.LOAD_ATTR in ops_of(spec.methods["get"])
    assert Op.STORE_ATTR in ops_of(spec.methods["__init__"])


def test_method_call_uses_load_method():
    program = compile_source("x = [1]\nx.append(2)\n")
    kinds = ops_of(program.module)
    assert Op.LOAD_METHOD in kinds
    assert Op.CALL_METHOD in kinds


def test_slice_compilation():
    program = compile_source("s = 'hello'\nt = s[1:3]\nu = s[:2]\n")
    kinds = ops_of(program.module)
    assert kinds.count(Op.BUILD_SLICE) == 2


def test_tuple_unpack():
    program = compile_source("a, b = (1, 2)\n")
    assert Op.UNPACK_SEQUENCE in ops_of(program.module)


def test_bool_ops_short_circuit():
    program = compile_source("x = 1\ny = x > 0 and x < 5 or x == 9\n")
    kinds = ops_of(program.module)
    assert Op.JUMP_IF_FALSE_OR_POP in kinds
    assert Op.JUMP_IF_TRUE_OR_POP in kinds


def test_ternary():
    program = compile_source("x = 1 if True else 2\n")
    assert Op.POP_JUMP_IF_FALSE in ops_of(program.module)


def test_augassign():
    program = compile_source("x = 1\nx += 2\n")
    assert Op.BINARY_ADD in ops_of(program.module)


def test_docstrings_are_skipped():
    program = compile_source('''
def f():
    """docstring"""
    return 1
''')
    assert Op.LOAD_CONST in ops_of(program.functions["f"])
    assert "docstring" not in program.functions["f"].consts


@pytest.mark.parametrize("source, fragment", [
    ("def f(*args):\n    pass\n", "positional"),
    ("def f(x=1):\n    pass\n", "positional"),
    ("f = lambda: 1\n", "unsupported expression"),
    ("a = [x for x in range(3)]\n", "unsupported expression"),
    ("a = 1 < 2 < 3\n", "chained"),
    ("try:\n    pass\nexcept Exception:\n    pass\n", "unsupported"),
    ("def outer():\n    def inner():\n        pass\n", "nested"),
    ("class A(object):\n    pass\n", "inheritance"),
    ("x = {**{}}\n", "unpacking"),
    ("while True:\n    pass\nelse:\n    pass\n", "while-else"),
    ("x = 'a' 'b'[::2]\n", "step"),
])
def test_unsupported_constructs_raise(source, fragment):
    with pytest.raises(CompileError) as err:
        compile_source(source)
    assert fragment in str(err.value)


def test_syntax_error_wrapped():
    with pytest.raises(CompileError):
        compile_source("def (:\n")


def test_disassemble_is_readable():
    program = compile_source("""
def f(x):
    if x > 1:
        return x * 2
    return 0
""")
    text = disassemble(program.functions["f"])
    assert "LOAD_FAST" in text
    assert "COMPARE_OP" in text
    assert "(>)" in text


def test_jump_targets_in_range():
    from repro.frontend.bytecode import JUMP_OPS
    program = compile_source("""
def f(n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            total = total + i
        else:
            total = total - 1
    while total > 10:
        total = total // 2
        if total == 13:
            break
    return total
""")
    for code in program.code_objects():
        for op_value, arg in zip(code.ops, code.args):
            if Op(op_value) in JUMP_OPS:
                assert 0 <= arg <= len(code)
