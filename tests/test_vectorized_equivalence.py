"""Vectorized engines must match the scalar references bit for bit.

Property-style checks: randomized traces (hot/cold address mixes,
conditional/indirect branch patterns, dependence forests with long
edges) run through both the scalar and the vectorized cache/branch/OOO
engines, and every output the rest of the pipeline consumes — per-
instruction service levels, mispredict flags, aggregate statistics,
core cycle counts — must be bit-identical for every chunk size and for
single- and batched-config walks alike.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import (
    BranchPredictorConfig,
    MachineConfig,
    scaled_config,
    skylake_config,
)
from repro.host.isa import (
    FLAG_COND,
    FLAG_INDIRECT,
    FLAG_TAKEN,
    KIND_LATENCY,
    InstrKind,
)
from repro.uarch import _ooo_kernel
from repro.uarch.branch import (
    simulate_branches,
    simulate_branches_scalar,
)
from repro.uarch.cache import (
    simulate_cache_hierarchy,
    simulate_cache_hierarchy_scalar,
)
from repro.uarch.ooo_core import (
    KIND_LATENCY_TICKS,
    TICKS,
    ooo_cycles,
    ooo_cycles_many,
    ooo_cycles_scalar,
    ring_size,
)
from repro.uarch.ooo_vector import CHUNK_ENV, ooo_cycles_many_vector

_KINDS = (InstrKind.ALU, InstrKind.LOAD, InstrKind.STORE,
          InstrKind.BRANCH, InstrKind.ICALL, InstrKind.CALL,
          InstrKind.RET, InstrKind.FPU)
_KIND_P = (0.30, 0.25, 0.10, 0.20, 0.05, 0.04, 0.04, 0.02)


def random_trace(seed: int, n: int) -> dict[str, np.ndarray]:
    """A trace with hot and cold addresses and mixed branch behavior."""
    rng = np.random.default_rng(seed)
    kind = rng.choice([int(k) for k in _KINDS], size=n,
                      p=_KIND_P).astype(np.int8)
    # PCs: a small pool so branch sites repeat and predictors can learn,
    # with enough spread to alias on scaled-down tables.
    pc = (0x400000 + 4 * rng.integers(0, 512, size=n)).astype(np.int64)
    # Data addresses: 70% from a hot working set, 30% cold.
    hot = 0x10000 + 64 * rng.integers(0, 64, size=n)
    cold = 0x800000 + 64 * rng.integers(0, 1 << 16, size=n)
    use_hot = rng.random(n) < 0.7
    addr = np.where(use_hot, hot, cold).astype(np.int64)
    is_mem = (kind == int(InstrKind.LOAD)) | (kind == int(InstrKind.STORE))
    addr[~is_mem] = 0
    flags = np.zeros(n, dtype=np.int8)
    is_branch = kind == int(InstrKind.BRANCH)
    cond = is_branch & (rng.random(n) < 0.8)
    # Taken bias per PC: some sites strongly biased, some noisy.
    bias = rng.random(512)[((pc - 0x400000) // 4) % 512]
    taken = rng.random(n) < bias
    flags[cond] |= FLAG_COND
    flags[is_branch & taken] |= FLAG_TAKEN
    is_icall = kind == int(InstrKind.ICALL)
    flags[is_icall] |= FLAG_INDIRECT | FLAG_TAKEN
    # Indirect-call targets: mono- and polymorphic sites.
    addr[is_icall] = (0x500000
                      + 0x1000 * rng.integers(0, 3, size=int(is_icall.sum())))
    return {"pc": pc, "kind": kind, "addr": addr, "flags": flags,
            "size": np.full(n, 8, dtype=np.int8)}


def tiny_config() -> MachineConfig:
    """A deliberately cramped machine: constant evictions and aliasing."""
    return scaled_config(6)


_CONFIGS = {
    "skylake": skylake_config,
    "scaled4": lambda: scaled_config(4),
    "tiny": tiny_config,
}


@pytest.mark.parametrize("backend", ["vector", "auto"])
@pytest.mark.parametrize("config_name", sorted(_CONFIGS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cache_engines_bit_identical(seed, config_name, backend):
    arrays = random_trace(seed, 6000)
    config = _CONFIGS[config_name]()
    ref = simulate_cache_hierarchy_scalar(arrays, config)
    out = simulate_cache_hierarchy(arrays, config, backend=backend)
    assert np.array_equal(ref.dlevel, out.dlevel)
    assert np.array_equal(ref.ilevel, out.ilevel)
    assert ref.mem_lines == out.mem_lines
    assert set(ref.stats) == set(out.stats)
    for name in ref.stats:
        assert ref.stats[name] == out.stats[name], name


@pytest.mark.parametrize("backend", ["vector", "auto"])
@pytest.mark.parametrize("scale", [1.0, 1 / 64])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_branch_engines_bit_identical(seed, scale, backend):
    arrays = random_trace(seed, 6000)
    config = BranchPredictorConfig(scale=scale)
    ref_mis, ref_stats = simulate_branches_scalar(arrays, config)
    out_mis, out_stats = simulate_branches(arrays, config,
                                           backend=backend)
    assert np.array_equal(ref_mis, out_mis)
    assert ref_stats == out_stats


def test_empty_trace_all_backends():
    arrays = random_trace(0, 0)
    config = skylake_config()
    for backend in ("scalar", "vector", "auto"):
        result = simulate_cache_hierarchy(arrays, config, backend=backend)
        assert len(result.dlevel) == 0
        mis, _ = simulate_branches(arrays, config.branch, backend=backend)
        assert len(mis) == 0


# ----------------------------------------------------------------------
# OOO core: scalar reference vs chunked/batched vector engine vs kernel
# ----------------------------------------------------------------------

_LOAD = int(InstrKind.LOAD)
_STORE = int(InstrKind.STORE)


def random_ooo_inputs(seed: int, n: int, max_dep: int = 300):
    """Synthetic OOO-core inputs: dep forests, misses, mispredicts."""
    rng = np.random.default_rng(seed)
    kinds = rng.integers(0, len(InstrKind), n).astype(np.int64)
    dep = rng.integers(0, 4, n).astype(np.int64)
    big = rng.random(n) < 0.03
    dep[big] = rng.integers(1, max_dep, int(big.sum()))
    dl = np.where(rng.random(n) < 0.1,
                  rng.integers(0, 4, n), -1).astype(np.int64)
    kinds[dl >= 0] = _LOAD
    stores = rng.random(n) < 0.05
    kinds[stores] = _STORE
    dl[stores] = np.where(rng.random(int(stores.sum())) < 0.3, 3, 0)
    il = np.where(rng.random(n) < 0.05,
                  rng.integers(1, 4, n), 0).astype(np.int64)
    misp = rng.random(n) < 0.03
    trace = {"pc": np.arange(n, dtype=np.int64), "kind": kinds,
             "dep": dep}
    return trace, dl, il, misp


def _ooo_sweep_configs() -> list[MachineConfig]:
    base = skylake_config()
    small_rob = dataclasses.replace(
        base, core=dataclasses.replace(base.core, rob_entries=64))
    return [base, scaled_config(2), small_rob, base.with_issue_width(8),
            base.with_memory_latency(400),
            base.with_memory_bandwidth(200)]


@pytest.mark.parametrize("chunk", [7, 1000, 16384])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ooo_vector_bit_identical_any_chunk(seed, chunk, monkeypatch):
    """NumPy relaxation path == scalar loop for any chunk size."""
    monkeypatch.setenv(_ooo_kernel.KERNEL_ENV, "off")
    monkeypatch.setenv(CHUNK_ENV, str(chunk))
    configs = _ooo_sweep_configs()
    for n in (1, 3, 17, 1000, 5000):
        trace, dl, il, misp = random_ooo_inputs(seed, n)
        ref = [ooo_cycles_scalar(trace, dl, il, misp, c) for c in configs]
        got = ooo_cycles_many_vector(trace, dl, il, misp, configs)
        assert got == ref, (n, seed, chunk)


def test_ooo_kernel_bit_identical():
    """Compiled kernel path == scalar loop (single and batched)."""
    if not _ooo_kernel.kernel_available():
        pytest.skip("no C compiler available")
    configs = _ooo_sweep_configs()
    for seed, n in ((0, 2500), (1, 5000)):
        trace, dl, il, misp = random_ooo_inputs(seed, n)
        ref = [ooo_cycles_scalar(trace, dl, il, misp, c) for c in configs]
        got = ooo_cycles_many_vector(trace, dl, il, misp, configs)
        assert got == ref
        one = [_ooo_kernel.run_kernel(trace, dl, il, misp, c)
               for c in configs]
        assert one == ref


@pytest.mark.parametrize("backend", ["scalar", "vector", "auto"])
def test_ooo_backend_arg_dispatch(backend):
    trace, dl, il, misp = random_ooo_inputs(3, 4000)
    config = skylake_config()
    ref = ooo_cycles_scalar(trace, dl, il, misp, config)
    assert ooo_cycles(trace, dl, il, misp, config, backend=backend) == ref


def test_ooo_many_configs_matches_per_config_runs():
    """Batched walk == per-config walks, in input order, shared or
    distinct states, mixed ROB sizes included."""

    @dataclasses.dataclass
    class _State:
        dlevel: np.ndarray
        ilevel: np.ndarray
        mispredicted: np.ndarray

    trace, dl, il, misp = random_ooo_inputs(4, 6000)
    shared = _State(dl, il, misp)
    dl2, il2, misp2 = dl.copy(), il.copy(), misp.copy()
    dl2[::7] = 3
    other = _State(dl2, il2, misp2)
    configs = _ooo_sweep_configs()
    states = [shared, shared, shared, other, shared, other]
    for backend in ("scalar", "vector", "auto"):
        ref = [ooo_cycles(trace, s.dlevel, s.ilevel, s.mispredicted, c,
                          backend="scalar")
               for s, c in zip(states, configs)]
        got = ooo_cycles_many(trace, states, configs, backend=backend)
        assert got == ref, backend


def test_ooo_long_dependence_and_large_rob_regression():
    """Dep distances and ROBs beyond the old 4096-slot ring stay exact.

    The seed engine's fixed ring silently dropped dependences >= 4096
    instructions back and corrupted the ROB constraint for
    rob_entries >= 4096; the ring now grows to cover both.
    """
    n = 10_000
    trace, dl, il, misp = random_ooo_inputs(5, n)
    # A slow producer feeding a consumer 6000 instructions later.
    trace["dep"] = trace["dep"].copy()
    trace["kind"][2000] = _LOAD
    dl[2000] = 3
    trace["dep"][8000] = 6000
    assert ring_size(224, trace["dep"]) > 4096
    base = skylake_config()
    huge_rob = dataclasses.replace(
        base, core=dataclasses.replace(base.core, rob_entries=8192))
    assert ring_size(8192, trace["dep"]) > 8192
    for config in (base, huge_rob):
        ref = ooo_cycles_scalar(trace, dl, il, misp, config)
        for backend in ("vector", "auto"):
            assert ooo_cycles(trace, dl, il, misp, config,
                              backend=backend) == ref


def test_kind_latency_table_derived_from_isa():
    """Every InstrKind indexes the tick table at its ISA latency."""
    assert len(KIND_LATENCY_TICKS) == max(int(k) for k in InstrKind) + 1
    for kind in InstrKind:
        assert KIND_LATENCY_TICKS[int(kind)] == KIND_LATENCY[kind] * TICKS


def test_ooo_empty_and_tiny_traces():
    config = skylake_config()
    empty = {"pc": np.zeros(0, dtype=np.int64),
             "kind": np.zeros(0, dtype=np.int64),
             "dep": np.zeros(0, dtype=np.int64)}
    zeros = np.zeros(0, dtype=np.int64)
    assert ooo_cycles_many_vector(empty, zeros, zeros,
                                  zeros.astype(bool), [config]) == [0.0]
    assert ooo_cycles_many_vector(empty, zeros, zeros,
                                  zeros.astype(bool), []) == []
    trace, dl, il, misp = random_ooo_inputs(6, 1)
    ref = ooo_cycles_scalar(trace, dl, il, misp, config)
    assert ooo_cycles_many_vector(trace, dl, il, misp, [config]) == [ref]


def test_real_guest_trace_bit_identical(pypy_run):
    """End-to-end: a real VM trace, not just synthetic columns."""
    _, machine = pypy_run(
        "total = 0\n"
        "for i in range(400):\n"
        "    total = total + i * i\n"
        "print(total)\n")
    arrays = machine.trace.arrays()
    config = skylake_config()
    ref = simulate_cache_hierarchy_scalar(arrays, config)
    out = simulate_cache_hierarchy(arrays, config, backend="vector")
    assert np.array_equal(ref.dlevel, out.dlevel)
    assert np.array_equal(ref.ilevel, out.ilevel)
    for name in ref.stats:
        assert ref.stats[name] == out.stats[name], name
    ref_mis, ref_stats = simulate_branches_scalar(arrays, config.branch)
    out_mis, out_stats = simulate_branches(arrays, config.branch,
                                           backend="vector")
    assert np.array_equal(ref_mis, out_mis)
    assert ref_stats == out_stats
