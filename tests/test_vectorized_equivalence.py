"""Vectorized memory-side engines must match the scalar reference.

Property-style checks: randomized traces (hot/cold address mixes,
conditional/indirect branch patterns) run through both the scalar and
the vectorized cache/branch engines, and every output the rest of the
pipeline consumes — per-instruction service levels, mispredict flags,
aggregate statistics — must be bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    BranchPredictorConfig,
    MachineConfig,
    scaled_config,
    skylake_config,
)
from repro.host.isa import FLAG_COND, FLAG_INDIRECT, FLAG_TAKEN, InstrKind
from repro.uarch.branch import (
    simulate_branches,
    simulate_branches_scalar,
)
from repro.uarch.cache import (
    simulate_cache_hierarchy,
    simulate_cache_hierarchy_scalar,
)

_KINDS = (InstrKind.ALU, InstrKind.LOAD, InstrKind.STORE,
          InstrKind.BRANCH, InstrKind.ICALL, InstrKind.CALL,
          InstrKind.RET, InstrKind.FPU)
_KIND_P = (0.30, 0.25, 0.10, 0.20, 0.05, 0.04, 0.04, 0.02)


def random_trace(seed: int, n: int) -> dict[str, np.ndarray]:
    """A trace with hot and cold addresses and mixed branch behavior."""
    rng = np.random.default_rng(seed)
    kind = rng.choice([int(k) for k in _KINDS], size=n,
                      p=_KIND_P).astype(np.int8)
    # PCs: a small pool so branch sites repeat and predictors can learn,
    # with enough spread to alias on scaled-down tables.
    pc = (0x400000 + 4 * rng.integers(0, 512, size=n)).astype(np.int64)
    # Data addresses: 70% from a hot working set, 30% cold.
    hot = 0x10000 + 64 * rng.integers(0, 64, size=n)
    cold = 0x800000 + 64 * rng.integers(0, 1 << 16, size=n)
    use_hot = rng.random(n) < 0.7
    addr = np.where(use_hot, hot, cold).astype(np.int64)
    is_mem = (kind == int(InstrKind.LOAD)) | (kind == int(InstrKind.STORE))
    addr[~is_mem] = 0
    flags = np.zeros(n, dtype=np.int8)
    is_branch = kind == int(InstrKind.BRANCH)
    cond = is_branch & (rng.random(n) < 0.8)
    # Taken bias per PC: some sites strongly biased, some noisy.
    bias = rng.random(512)[((pc - 0x400000) // 4) % 512]
    taken = rng.random(n) < bias
    flags[cond] |= FLAG_COND
    flags[is_branch & taken] |= FLAG_TAKEN
    is_icall = kind == int(InstrKind.ICALL)
    flags[is_icall] |= FLAG_INDIRECT | FLAG_TAKEN
    # Indirect-call targets: mono- and polymorphic sites.
    addr[is_icall] = (0x500000
                      + 0x1000 * rng.integers(0, 3, size=int(is_icall.sum())))
    return {"pc": pc, "kind": kind, "addr": addr, "flags": flags,
            "size": np.full(n, 8, dtype=np.int8)}


def tiny_config() -> MachineConfig:
    """A deliberately cramped machine: constant evictions and aliasing."""
    return scaled_config(6)


_CONFIGS = {
    "skylake": skylake_config,
    "scaled4": lambda: scaled_config(4),
    "tiny": tiny_config,
}


@pytest.mark.parametrize("backend", ["vector", "auto"])
@pytest.mark.parametrize("config_name", sorted(_CONFIGS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cache_engines_bit_identical(seed, config_name, backend):
    arrays = random_trace(seed, 6000)
    config = _CONFIGS[config_name]()
    ref = simulate_cache_hierarchy_scalar(arrays, config)
    out = simulate_cache_hierarchy(arrays, config, backend=backend)
    assert np.array_equal(ref.dlevel, out.dlevel)
    assert np.array_equal(ref.ilevel, out.ilevel)
    assert ref.mem_lines == out.mem_lines
    assert set(ref.stats) == set(out.stats)
    for name in ref.stats:
        assert ref.stats[name] == out.stats[name], name


@pytest.mark.parametrize("backend", ["vector", "auto"])
@pytest.mark.parametrize("scale", [1.0, 1 / 64])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_branch_engines_bit_identical(seed, scale, backend):
    arrays = random_trace(seed, 6000)
    config = BranchPredictorConfig(scale=scale)
    ref_mis, ref_stats = simulate_branches_scalar(arrays, config)
    out_mis, out_stats = simulate_branches(arrays, config,
                                           backend=backend)
    assert np.array_equal(ref_mis, out_mis)
    assert ref_stats == out_stats


def test_empty_trace_all_backends():
    arrays = random_trace(0, 0)
    config = skylake_config()
    for backend in ("scalar", "vector", "auto"):
        result = simulate_cache_hierarchy(arrays, config, backend=backend)
        assert len(result.dlevel) == 0
        mis, _ = simulate_branches(arrays, config.branch, backend=backend)
        assert len(mis) == 0


def test_real_guest_trace_bit_identical(pypy_run):
    """End-to-end: a real VM trace, not just synthetic columns."""
    _, machine = pypy_run(
        "total = 0\n"
        "for i in range(400):\n"
        "    total = total + i * i\n"
        "print(total)\n")
    arrays = machine.trace.arrays()
    config = skylake_config()
    ref = simulate_cache_hierarchy_scalar(arrays, config)
    out = simulate_cache_hierarchy(arrays, config, backend="vector")
    assert np.array_equal(ref.dlevel, out.dlevel)
    assert np.array_equal(ref.ilevel, out.ilevel)
    for name in ref.stats:
        assert ref.stats[name] == out.stats[name], name
    ref_mis, ref_stats = simulate_branches_scalar(arrays, config.branch)
    out_mis, out_stats = simulate_branches(arrays, config.branch,
                                           backend="vector")
    assert np.array_equal(ref_mis, out_mis)
    assert ref_stats == out_stats
