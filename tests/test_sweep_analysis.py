"""Sweep analysis layer: axis configs, result structure, phases."""

import pytest

from repro.analysis.sweeps import (
    RUNTIME_VARIANTS,
    SWEEP_AXES,
    SweepResult,
    axis_config,
    phase_cpis,
    quick_axes,
    run_sweep,
)
from repro.config import skylake_config
from repro.experiments.runner import ExperimentRunner


def test_axes_match_paper_grids():
    assert SWEEP_AXES["issue_width"][0] == (2, 4, 8, 16, 32)
    assert SWEEP_AXES["branch_scale"][0] == (0.5, 1.0, 2.0, 4.0, 8.0)
    assert len(SWEEP_AXES["cache_size"][0]) == 7      # 256k .. 16M
    assert len(SWEEP_AXES["line_size"][0]) == 7       # 64 .. 4096
    assert SWEEP_AXES["memory_latency"][0] == (50, 100, 200, 400)
    assert len(SWEEP_AXES["memory_bandwidth"][0]) == 8  # 200 .. 25600


def test_axis_config_transforms():
    base = skylake_config()
    assert axis_config(base, "issue_width", 16).core.issue_width == 16
    assert axis_config(base, "cache_size", 512 * 1024).l3.size \
        == 512 * 1024
    assert axis_config(base, "line_size", 256).l1d.line_size == 256
    assert axis_config(base, "memory_latency", 50).memory.latency == 50
    assert axis_config(base, "branch_scale", 4.0).branch.scale == 4.0


def test_runtime_variants():
    labels = [label for label, _, _ in RUNTIME_VARIANTS]
    assert labels == ["cpython", "pypy-nojit", "pypy-jit"]


def test_run_sweep_tiny():
    runner = ExperimentRunner(scale=1)
    axes = {"memory_latency": (50, 400)}
    result = run_sweep(runner, ["sym_sum"], axes=axes)
    assert isinstance(result, SweepResult)
    assert result.axis_values("memory_latency") == (50, 400)
    series = result.series("memory_latency")
    assert set(series) == {"cpython", "pypy-nojit", "pypy-jit"}
    for values in series.values():
        assert len(values) == 2
        assert values[1] >= values[0]  # slower memory never helps


def test_run_sweep_identical_across_backends_and_jobs(monkeypatch):
    """The Figure 7/9 engine: same grid bytes for every backend/jobs.

    Covers the batched ``simulate_many_configs`` path (vector, with and
    without the compiled kernel) against the scalar reference, and the
    ``jobs`` fan-out against the serial loop — all must agree exactly.
    """
    axes = quick_axes()
    results = {}
    for name, backend, kernel in (("scalar", "scalar", "auto"),
                                  ("numpy", "vector", "off"),
                                  ("kernel", "vector", "auto"),
                                  ("auto", "auto", "auto")):
        monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
        monkeypatch.setenv("REPRO_OOO_KERNEL", kernel)
        runner = ExperimentRunner(scale=1)
        results[name] = run_sweep(runner, ["sym_sum"], axes=axes).cpi
    assert results["scalar"] == results["numpy"] == results["kernel"] \
        == results["auto"]
    monkeypatch.setenv("REPRO_SIM_BACKEND", "auto")
    parallel = run_sweep(ExperimentRunner(scale=1), ["sym_sum"],
                         axes=axes, jobs=2)
    assert parallel.cpi == results["auto"]


def test_phase_cpis_cover_execution():
    runner = ExperimentRunner(scale=1)
    handle = runner.run("crypto_pyaes", runtime="pypy", jit=True)
    phases = phase_cpis(handle)
    assert phases["jit_compiled_code"] > 0
    assert phases["garbage_collection"] >= 0
    assert phases["bytecode_interpreter"] > 0
    assert phases["overall"] > 0
    # Overall CPI is a weighted mix, so it lies within phase extremes.
    values = [phases[k] for k in ("bytecode_interpreter",
                                  "garbage_collection",
                                  "jit_compiled_code") if phases[k] > 0]
    assert min(values) <= phases["overall"] <= max(values) * 1.01


def test_interpreter_has_no_compiled_phase():
    runner = ExperimentRunner(scale=1)
    handle = runner.run("sym_sum", runtime="pypy", jit=False)
    phases = phase_cpis(handle)
    assert phases["jit_compiled_code"] == 0.0
