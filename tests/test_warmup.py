"""The paper's warmup protocol (Section III: warm runs, then measure)."""

from repro.categories import OverheadCategory as C
from repro.experiments.runner import ExperimentRunner


def compiled_share(arrays) -> float:
    categories = arrays["category"]
    if len(categories) == 0:
        return 0.0
    return float((categories == int(C.JIT_COMPILED_CODE)).sum()) \
        / len(categories)


def test_warmup_increases_compiled_share():
    runner = ExperimentRunner(scale=1)
    cold = runner.run("chaos", runtime="pypy", jit=True)
    warm = runner.run("chaos", runtime="pypy", jit=True, warmup_runs=2)
    cold_share = compiled_share(cold.trace.arrays())
    warm_share = compiled_share(warm.measured_arrays())
    assert warm_share > cold_share * 1.5


def test_warmup_preserves_output():
    runner = ExperimentRunner(scale=1)
    cold = runner.run("sym_sum", runtime="pypy", jit=True)
    warm = runner.run("sym_sum", runtime="pypy", jit=True, warmup_runs=2)
    assert warm.output == cold.output


def test_measured_window_excludes_warmup():
    runner = ExperimentRunner(scale=1)
    warm = runner.run("sym_sum", runtime="pypy", jit=True, warmup_runs=1)
    assert 0 < warm.measure_start < len(warm.trace)
    window = warm.measured_arrays()
    assert len(window["pc"]) == len(warm.trace) - warm.measure_start


def test_warmed_measured_run_is_smaller():
    # The measured window contains no tracing/compilation of the main
    # loops, so it is much shorter than a cold run.
    runner = ExperimentRunner(scale=1)
    cold = runner.run("crypto_pyaes", runtime="pypy", jit=True)
    warm = runner.run("crypto_pyaes", runtime="pypy", jit=True,
                      warmup_runs=2)
    measured = len(warm.trace) - warm.measure_start
    assert measured < len(cold.trace)


def test_cpython_warmup_is_stable():
    # No JIT: warmup changes nothing about the measured window's rate.
    runner = ExperimentRunner(scale=1)
    cold = runner.run("sym_sum", runtime="cpython")
    warm = runner.run("sym_sum", runtime="cpython", warmup_runs=1)
    measured = len(warm.trace) - warm.measure_start
    assert abs(measured - len(cold.trace)) / len(cold.trace) < 0.05
