"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_run_builtin_workload(capsys):
    assert main(["run", "sym_sum"]) == 0
    captured = capsys.readouterr()
    assert "8 -7" in captured.out
    assert "bytecodes" in captured.err


def test_run_source_file(tmp_path, capsys):
    path = tmp_path / "prog.py"
    path.write_text("print(6 * 7)\n")
    assert main(["run", str(path)]) == 0
    assert "42" in capsys.readouterr().out


def test_run_on_pypy_without_jit(capsys):
    assert main(["run", "sym_sum", "--runtime", "pypy", "--no-jit"]) == 0
    assert "8 -7" in capsys.readouterr().out


def test_breakdown_command(capsys):
    assert main(["breakdown", "nqueens"]) == 0
    out = capsys.readouterr().out
    assert "Dispatch" in out
    assert "C function call" in out
    assert "identified overhead" in out


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "fannkuch" in out
    assert "richards" in out
    assert "splay" in out  # JS suite


def test_figure_command(capsys):
    assert main(["figure", "table1"]) == 0
    assert "2 MB" in capsys.readouterr().out


def test_figure_unknown(capsys):
    assert main(["figure", "fig99"]) == 1
    assert "unknown figure" in capsys.readouterr().err


def test_compile_error_is_reported(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text("x = [i for i in range(3)]\n")
    assert main(["run", str(path)]) == 1
    assert "error:" in capsys.readouterr().err


def test_figures_campaign_runs_and_resumes(tmp_path, capsys):
    journal = tmp_path / "campaign.journal"
    argv = ["figures", "table1", "table2", "--checkpoint", str(journal)]
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "2 run, 0 checkpointed" in captured.out
    assert str(journal) in captured.err
    assert main(argv) == 0
    assert "0 run, 2 checkpointed" in capsys.readouterr().out


def test_figures_requires_names_or_all(capsys):
    assert main(["figures"]) == 1
    assert "--all" in capsys.readouterr().err


def test_figures_interrupt_exits_130(monkeypatch, capsys):
    def interrupt(**_kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.experiments.resilience.run_campaign",
                        interrupt)
    assert main(["figures", "--all"]) == 130
    assert "interrupted" in capsys.readouterr().err


def test_cache_stats_and_gc(capsys):
    assert main(["figure", "table1"]) == 0  # warms the per-test cache
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    assert "disk cache:" in capsys.readouterr().out
    assert main(["cache", "gc", "--max-mb", "0"]) == 0
    assert "remain under" in capsys.readouterr().out


def test_cache_commands_report_disabled_cache(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert main(["cache", "stats"]) == 1
    assert "disabled" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
