"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_run_builtin_workload(capsys):
    assert main(["run", "sym_sum"]) == 0
    captured = capsys.readouterr()
    assert "8 -7" in captured.out
    assert "bytecodes" in captured.err


def test_run_source_file(tmp_path, capsys):
    path = tmp_path / "prog.py"
    path.write_text("print(6 * 7)\n")
    assert main(["run", str(path)]) == 0
    assert "42" in capsys.readouterr().out


def test_run_on_pypy_without_jit(capsys):
    assert main(["run", "sym_sum", "--runtime", "pypy", "--no-jit"]) == 0
    assert "8 -7" in capsys.readouterr().out


def test_breakdown_command(capsys):
    assert main(["breakdown", "nqueens"]) == 0
    out = capsys.readouterr().out
    assert "Dispatch" in out
    assert "C function call" in out
    assert "identified overhead" in out


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "fannkuch" in out
    assert "richards" in out
    assert "splay" in out  # JS suite


def test_figure_command(capsys):
    assert main(["figure", "table1"]) == 0
    assert "2 MB" in capsys.readouterr().out


def test_figure_unknown(capsys):
    assert main(["figure", "fig99"]) == 1
    assert "unknown figure" in capsys.readouterr().err


def test_compile_error_is_reported(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text("x = [i for i in range(3)]\n")
    assert main(["run", str(path)]) == 1
    assert "error:" in capsys.readouterr().err


def test_figures_campaign_runs_and_resumes(tmp_path, capsys):
    journal = tmp_path / "campaign.journal"
    argv = ["figures", "table1", "table2", "--checkpoint", str(journal)]
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "2 run, 0 checkpointed" in captured.out
    assert str(journal) in captured.err
    assert main(argv) == 0
    assert "0 run, 2 checkpointed" in capsys.readouterr().out


def test_figures_requires_names_or_all(capsys):
    assert main(["figures"]) == 1
    assert "--all" in capsys.readouterr().err


def test_figures_interrupt_exits_130(monkeypatch, capsys):
    def interrupt(**_kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.experiments.resilience.run_campaign",
                        interrupt)
    assert main(["figures", "--all"]) == 130
    assert "interrupted" in capsys.readouterr().err


def test_cache_stats_and_gc(capsys):
    assert main(["figure", "table1"]) == 0  # warms the per-test cache
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    assert "disk cache:" in capsys.readouterr().out
    assert main(["cache", "gc", "--max-mb", "0"]) == 0
    assert "remain under" in capsys.readouterr().out


def test_cache_commands_report_disabled_cache(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert main(["cache", "stats"]) == 1
    assert "disabled" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# -- distributed-campaign commands -------------------------------------


def _publish_one_cell(campaign_dir):
    """A one-cell campaign whose fn is this module's `_cli_probe`."""
    from repro.experiments.diskcache import DiskCache
    from repro.experiments.queue import WorkQueue, make_cell
    root = DiskCache().root
    queue = WorkQueue(campaign_dir, ttl=5.0)
    queue.ensure(extra={"cache_dir": str(root)})
    queue.publish([make_cell(_cli_probe, (21,), {"scale": 1})])
    return queue


def _cli_probe(runner, value):
    return value * 2


def test_work_command_drains_a_campaign(tmp_path, capsys):
    campaign_dir = tmp_path / "queue" / "cli-smoke"
    queue = _publish_one_cell(campaign_dir)
    assert main(["work", "--queue", str(campaign_dir),
                 "--max-cells", "1", "--idle-exit", "2"]) == 0
    out = capsys.readouterr().out
    assert "1 cells completed" in out
    assert len(queue.results()) == 1


def test_work_command_idle_exits_on_empty_root(tmp_path, capsys):
    assert main(["work", "--queue", str(tmp_path / "empty"),
                 "--idle-exit", "0.1"]) == 0
    assert "0 cells completed" in capsys.readouterr().out


def test_figures_distributed_degrades_to_local(tmp_path, capsys):
    journal = tmp_path / "campaign.journal"
    queue_dir = tmp_path / "queue" / "solo"
    assert main(["figures", "table1", "--distributed",
                 "--grace-seconds", "0",
                 "--queue", str(queue_dir),
                 "--checkpoint", str(journal)]) == 0
    captured = capsys.readouterr()
    assert "1 run, 0 checkpointed" in captured.out
    assert str(queue_dir) in captured.err


def _warm_cache(workloads=("chaos",)):
    """Store real trace entries in the per-test cache root."""
    from repro.experiments.diskcache import DiskCache
    from repro.experiments.runner import ExperimentRunner
    cache = DiskCache()
    runner = ExperimentRunner(disk_cache=cache)
    for workload in workloads:
        runner.run(workload=workload, runtime="pypy", jit=True,
                   nursery=64 * 1024)
    return cache


def test_cache_verify_command(capsys):
    _warm_cache(("chaos", "nbody"))
    assert main(["cache", "verify"]) == 0
    out = capsys.readouterr().out
    assert "verified 2 entries" in out
    assert "0 checksum mismatches" in out
    assert main(["cache", "verify", "--sample", "1"]) == 0
    assert "not sampled" in capsys.readouterr().out


def test_cache_verify_flags_corruption(capsys):
    cache = _warm_cache()
    payload = next(p for p in (cache.root / "traces").iterdir()
                   if p.suffix in (".rpt", ".npz"))
    payload.write_bytes(payload.read_bytes()[:-5])
    assert main(["cache", "verify"]) == 1
    captured = capsys.readouterr()
    assert "1 checksum mismatches" in captured.out
    assert "quarantine" in captured.err


# -- sweep-server commands ---------------------------------------------


def test_serve_parser_defaults_and_overrides():
    args = build_parser().parse_args(["serve"])
    assert args.socket is None and args.tcp is None
    assert args.tenant_rate == 2.0 and args.tenant_burst == 8.0
    assert args.max_inflight == 16 and args.quantum == 4.0
    assert args.drain_grace == 30.0 and args.default_deadline is None
    args = build_parser().parse_args(
        ["serve", "--tcp", "127.0.0.1:0", "--jobs", "4",
         "--tenant-rate", "0.5", "--tenant-burst", "2",
         "--max-inflight", "3", "--quantum", "8",
         "--drain-grace", "5", "--default-deadline", "60"])
    assert args.tcp == "127.0.0.1:0" and args.jobs == 4
    assert args.tenant_rate == 0.5 and args.tenant_burst == 2.0
    assert args.max_inflight == 3 and args.quantum == 8.0
    assert args.drain_grace == 5.0 and args.default_deadline == 60.0


def test_query_parser_round_trip():
    args = build_parser().parse_args(
        ["query", "fig5", "--tcp", "127.0.0.1:7000", "--tenant",
         "alice", "--key", "k-1", "--full", "--deadline", "30",
         "--timeout", "5"])
    assert args.name == "fig5" and args.tenant == "alice"
    assert args.key == "k-1" and args.full
    assert args.deadline == 30.0 and args.timeout == 5.0
    args = build_parser().parse_args(["query", "--probe", "status"])
    assert args.name is None and args.probe == "status"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["query", "--probe", "bogus"])


def test_query_without_figure_or_probe_errors(capsys):
    assert main(["query"]) == 1
    assert "name a figure" in capsys.readouterr().err


def test_query_against_no_server_reports_unavailable(capsys):
    assert main(["query", "table1", "--tcp", "127.0.0.1:1",
                 "--timeout", "0.2"]) == 1
    assert "no sweep server" in capsys.readouterr().err
