"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_run_builtin_workload(capsys):
    assert main(["run", "sym_sum"]) == 0
    captured = capsys.readouterr()
    assert "8 -7" in captured.out
    assert "bytecodes" in captured.err


def test_run_source_file(tmp_path, capsys):
    path = tmp_path / "prog.py"
    path.write_text("print(6 * 7)\n")
    assert main(["run", str(path)]) == 0
    assert "42" in capsys.readouterr().out


def test_run_on_pypy_without_jit(capsys):
    assert main(["run", "sym_sum", "--runtime", "pypy", "--no-jit"]) == 0
    assert "8 -7" in capsys.readouterr().out


def test_breakdown_command(capsys):
    assert main(["breakdown", "nqueens"]) == 0
    out = capsys.readouterr().out
    assert "Dispatch" in out
    assert "C function call" in out
    assert "identified overhead" in out


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "fannkuch" in out
    assert "richards" in out
    assert "splay" in out  # JS suite


def test_figure_command(capsys):
    assert main(["figure", "table1"]) == 0
    assert "2 MB" in capsys.readouterr().out


def test_figure_unknown(capsys):
    assert main(["figure", "fig99"]) == 1
    assert "unknown figure" in capsys.readouterr().err


def test_compile_error_is_reported(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text("x = [i for i in range(3)]\n")
    assert main(["run", str(path)]) == 1
    assert "error:" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
