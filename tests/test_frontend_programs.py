"""Whole-suite compilation invariants over all 85 benchmark sources."""

import pytest

from repro.frontend import compile_source, disassemble
from repro.frontend.bytecode import JUMP_OPS, NAME_OPS, Op
from repro.vm.v8.workloads import JS_SUITE, js_source
from repro.workloads import PYTHON_SUITE, get_workload


def _all_sources():
    for name in PYTHON_SUITE:
        yield name, get_workload(name).source(1)
    for name in JS_SUITE:
        yield f"js:{name}", js_source(name)


ALL_SOURCES = list(_all_sources())


@pytest.mark.parametrize("name, source", ALL_SOURCES,
                         ids=[n for n, _ in ALL_SOURCES])
def test_compiles_with_valid_structure(name, source):
    program = compile_source(source, name)
    for code in program.code_objects():
        n = len(code)
        assert n > 0
        # Every code object ends with a return.
        assert Op(code.ops[-1]) == Op.RETURN_VALUE
        for op_value, arg in zip(code.ops, code.args):
            op = Op(op_value)
            if op in JUMP_OPS:
                assert 0 <= arg <= n, (name, code.name, op, arg)
            elif op in NAME_OPS:
                assert 0 <= arg < len(code.names)
            elif op is Op.LOAD_CONST:
                assert 0 <= arg < len(code.consts)
            elif op in (Op.LOAD_FAST, Op.STORE_FAST):
                assert 0 <= arg < len(code.varnames)
        # The disassembler must render every instruction.
        listing = disassemble(code)
        assert len(listing.splitlines()) == n + 1


def test_suite_uses_every_major_opcode():
    used = set()
    for name, source in ALL_SOURCES:
        program = compile_source(source, name)
        for code in program.code_objects():
            used.update(Op(v) for v in code.ops)
    expected = {
        Op.LOAD_CONST, Op.LOAD_FAST, Op.STORE_FAST, Op.LOAD_GLOBAL,
        Op.STORE_GLOBAL, Op.BINARY_ADD, Op.BINARY_SUB, Op.BINARY_MUL,
        Op.BINARY_TRUEDIV, Op.BINARY_FLOORDIV, Op.BINARY_MOD,
        Op.BINARY_AND, Op.BINARY_OR, Op.BINARY_XOR, Op.BINARY_LSHIFT,
        Op.BINARY_RSHIFT, Op.UNARY_NEG, Op.UNARY_NOT, Op.COMPARE_OP,
        Op.JUMP_ABSOLUTE, Op.POP_JUMP_IF_FALSE, Op.SETUP_LOOP,
        Op.POP_BLOCK, Op.BREAK_LOOP, Op.GET_ITER, Op.FOR_ITER,
        Op.CALL_FUNCTION, Op.RETURN_VALUE, Op.LOAD_METHOD,
        Op.CALL_METHOD, Op.BUILD_LIST, Op.BUILD_TUPLE, Op.BUILD_MAP,
        Op.BINARY_SUBSCR, Op.STORE_SUBSCR, Op.BUILD_SLICE,
        Op.UNPACK_SEQUENCE, Op.LOAD_ATTR, Op.STORE_ATTR,
    }
    missing = expected - used
    assert not missing, f"suite never exercises: {missing}"
