"""Simulated address space and the CPython-style freelist allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.host.address_space import (
    AddressSpace,
    FreelistAllocator,
    Region,
    align,
)


def test_align():
    assert align(1) == 16
    assert align(16) == 16
    assert align(17) == 32
    assert align(100, 64) == 128


def test_region_bump_and_reset():
    region = Region("r", base=0x1000, size=256)
    first = region.bump(16)
    second = region.bump(16)
    assert first == 0x1000
    assert second == 0x1010
    assert region.used == 32
    region.reset()
    assert region.bump(16) == 0x1000


def test_region_exhaustion():
    region = Region("r", base=0, size=64)
    region.bump(48)
    with pytest.raises(AllocationError):
        region.bump(32)


def test_region_contains():
    region = Region("r", base=0x100, size=0x100)
    assert region.contains(0x100)
    assert region.contains(0x1FF)
    assert not region.contains(0x200)
    assert not region.contains(0xFF)


def test_address_space_regions_disjoint():
    space = AddressSpace(nursery_size=1 << 20)
    regions = [space.code, space.vm_data, space.jit_code, space.heap,
               space.nursery, space.old, space.c_lib]
    spans = sorted((r.base, r.end) for r in regions)
    for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
        assert prev_end <= next_base


def test_region_of():
    space = AddressSpace()
    assert space.region_of(space.heap.base + 64) is space.heap
    assert space.region_of(space.nursery.base) is space.nursery
    assert space.region_of(0x7FFF_0000) is None  # C stack


def test_freelist_reuses_lifo():
    space = AddressSpace()
    allocator = FreelistAllocator(space.heap)
    a = allocator.alloc(32)
    b = allocator.alloc(32)
    allocator.free(a, 32)
    allocator.free(b, 32)
    # LIFO: the most recently freed block comes back first.
    assert allocator.alloc(32) == b
    assert allocator.alloc(32) == a
    assert allocator.reuse_count == 2


def test_freelist_size_classes_are_separate():
    allocator = FreelistAllocator(AddressSpace().heap)
    small = allocator.alloc(16)
    allocator.free(small, 16)
    big = allocator.alloc(256)
    assert big != small


def test_freelist_large_objects_bump():
    allocator = FreelistAllocator(AddressSpace().heap)
    a = allocator.alloc(10_000)
    allocator.free(a, 10_000)
    b = allocator.alloc(10_000)
    assert b != a  # no freelist for very large blocks


@given(st.lists(st.integers(min_value=1, max_value=512), min_size=1,
                max_size=50))
@settings(max_examples=50, deadline=None)
def test_freelist_alloc_addresses_are_aligned_and_disjoint(sizes):
    allocator = FreelistAllocator(AddressSpace().heap)
    live = {}
    for size in sizes:
        addr = allocator.alloc(size)
        assert addr % 16 == 0
        # A live block must never be handed out twice.
        assert addr not in live
        live[addr] = size
    for addr, size in live.items():
        allocator.free(addr, size)
