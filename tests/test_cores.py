"""Simple and OOO core timing models."""

import numpy as np

from repro.categories import OverheadCategory as C
from repro.config import skylake_config
from repro.host import AddressSpace, HostMachine
from repro.uarch.cache import simulate_cache_hierarchy
from repro.uarch.ooo_core import ooo_cycles
from repro.uarch.simple_core import (
    attribute_cycles,
    simple_core_cycles,
)
from repro.uarch.system import SimulatedSystem


def build_machine(n_ops=2000, serial=True, loads=False):
    m = HostMachine(AddressSpace())
    site = m.site("kernel")
    for i in range(n_ops):
        if loads and i % 4 == 0:
            m.load(site, int(C.EXECUTE), addr=0x2000_0000 + 64 * i,
                   dep=1 if serial else 0)
        else:
            m.alu(site, int(C.EXECUTE), dep=1 if serial else 0)
    return m


def test_simple_core_one_cycle_per_hit():
    m = build_machine(100)
    config = skylake_config()
    result = simulate_cache_hierarchy(m.trace.arrays(), config)
    cycles = simple_core_cycles(result.dlevel, result.ilevel, config)
    # ALU instructions on warm I-cache lines cost exactly one cycle.
    assert cycles[50] == 1.0


def test_simple_core_adds_miss_penalties():
    m = build_machine(400, loads=True)
    config = skylake_config()
    result = simulate_cache_hierarchy(m.trace.arrays(), config)
    cycles = simple_core_cycles(result.dlevel, result.ilevel, config)
    # Cold streaming loads pay the full memory penalty. (Median, not all:
    # the very first instruction also pays an instruction-fetch miss.)
    load_cycles = cycles[result.dlevel == 3]
    expected = 1 + config.l2.latency + config.l3.latency \
        + config.memory.latency
    assert np.median(load_cycles) == expected


def test_attribute_cycles_sums_to_total():
    m = build_machine(300, loads=True)
    config = skylake_config()
    result = simulate_cache_hierarchy(m.trace.arrays(), config)
    cycles = simple_core_cycles(result.dlevel, result.ilevel, config)
    buckets = attribute_cycles(m.trace.column("category"), cycles)
    assert np.isclose(buckets.sum(), cycles.sum())
    assert buckets[int(C.EXECUTE)] > 0


def _run_ooo(machine, config):
    arrays = machine.trace.arrays()
    cache = simulate_cache_hierarchy(arrays, config)
    mispredicted = np.zeros(len(arrays["pc"]), dtype=bool)
    return ooo_cycles(arrays, cache.dlevel, cache.ilevel, mispredicted,
                      config)


def test_serial_chain_is_issue_insensitive():
    m = build_machine(3000, serial=True)
    narrow = _run_ooo(m, skylake_config().with_issue_width(2))
    wide = _run_ooo(m, skylake_config().with_issue_width(16))
    # A dep-1 chain executes one op per cycle regardless of width.
    assert abs(narrow - wide) / narrow < 0.02


def test_independent_stream_scales_with_width():
    m = build_machine(3000, serial=False)
    narrow = _run_ooo(m, skylake_config().with_issue_width(2))
    wide = _run_ooo(m, skylake_config().with_issue_width(8))
    # Width 8 is fetch-limited at 4 instructions/cycle (16B fetch), so
    # the best case over width 2 is ~2x.
    assert wide < narrow * 0.6


def test_memory_latency_hurts_dependent_loads():
    m = build_machine(2000, serial=True, loads=True)
    fast = _run_ooo(m, skylake_config().with_memory_latency(50))
    slow = _run_ooo(m, skylake_config().with_memory_latency(400))
    assert slow > fast * 1.5


def test_bandwidth_throttles_streams():
    m = HostMachine(AddressSpace())
    site = m.site("stream")
    for i in range(4000):
        m.store(site, int(C.EXECUTE), addr=0x2000_0000 + 64 * i, dep=0)
    fat = _run_ooo(m, skylake_config().with_memory_bandwidth(25600))
    thin = _run_ooo(m, skylake_config().with_memory_bandwidth(200))
    assert thin > fat * 2


def test_mispredicts_add_cycles():
    m = build_machine(2000)
    config = skylake_config()
    arrays = m.trace.arrays()
    cache = simulate_cache_hierarchy(arrays, config)
    none = np.zeros(len(arrays["pc"]), dtype=bool)
    some = none.copy()
    some[::10] = True
    clean = ooo_cycles(arrays, cache.dlevel, cache.ilevel, none, config)
    dirty = ooo_cycles(arrays, cache.dlevel, cache.ilevel, some, config)
    assert dirty > clean


def test_system_run_both_cores():
    m = build_machine(500, loads=True)
    system = SimulatedSystem()
    simple = system.run(m.trace, core="simple")
    ooo = system.run(m.trace, core="ooo")
    assert simple.cpi > 0
    assert ooo.cpi > 0
    assert simple.core_model == "simple"
    assert ooo.core_model == "ooo"
    assert simple.category_cycles is not None
    # The simple core never reorders, so it is at least as slow.
    assert simple.cycles >= ooo.cycles * 0.9


def test_empty_trace():
    m = HostMachine(AddressSpace())
    system = SimulatedSystem()
    result = system.run(m.trace, core="ooo")
    assert result.cycles == 0.0
    assert result.cpi == 0.0
