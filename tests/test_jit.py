"""Tracing JIT: hot detection, compilation, replay, deoptimization."""

import dataclasses

from repro.config import pypy_runtime
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.vm.pypy import PyPyVM

HOT_LOOP = """
total = 0
for i in range(500):
    total = total + i * 2
print(total)
"""


def run_jit(source, nursery=1 << 20, **jit_overrides):
    program = compile_source(source, "<jit-test>")
    machine = HostMachine(AddressSpace(nursery_size=nursery),
                          max_instructions=40_000_000)
    config = pypy_runtime(jit=True, nursery_size=nursery)
    if jit_overrides:
        config = dataclasses.replace(
            config, jit=dataclasses.replace(config.jit, **jit_overrides))
    vm = PyPyVM(machine, program, config)
    vm.run()
    return vm, machine


def test_hot_loop_gets_compiled():
    vm, _ = run_jit(HOT_LOOP)
    assert vm.stats.traces_compiled >= 1
    assert vm.output == [str(sum(i * 2 for i in range(500)))]


def test_cold_code_is_not_compiled():
    vm, _ = run_jit("total = 0\nfor i in range(5):\n"
                    "    total = total + i\nprint(total)\n")
    assert vm.stats.traces_compiled == 0


def test_jit_reduces_instruction_count():
    program_src = HOT_LOOP
    jit_vm, jit_machine = run_jit(program_src)
    program = compile_source(program_src, "<nojit>")
    machine = HostMachine(AddressSpace(nursery_size=1 << 20))
    nojit_vm = PyPyVM(machine, program, pypy_runtime(jit=False))
    nojit_vm.run()
    assert nojit_vm.output == jit_vm.output
    assert len(jit_machine.trace) < len(machine.trace) / 2


def test_compiled_code_uses_jit_region():
    from repro.categories import OverheadCategory as C
    vm, machine = run_jit(HOT_LOOP)
    arrays = machine.trace.arrays()
    compiled_mask = arrays["category"] == int(C.JIT_COMPILED_CODE)
    assert compiled_mask.any()
    pcs = arrays["pc"][compiled_mask]
    jit_region = machine.space.jit_code
    assert ((pcs >= jit_region.base) & (pcs < jit_region.end)).all()


def test_compilation_cost_is_charged():
    from repro.categories import OverheadCategory as C
    vm, machine = run_jit(HOT_LOOP)
    counts = machine.trace.category_counts()
    assert counts[int(C.JIT_COMPILING)] > 0


def test_loop_exit_deoptimizes_once():
    vm, _ = run_jit(HOT_LOOP)
    # The single loop exit diverges from the trace exactly once.
    assert vm.stats.deopts == 1


def test_repeated_guard_failures_get_bridged():
    # A branch alternating inside a hot loop fails its guard every other
    # iteration; after guard_bridge_threshold failures it becomes a
    # cheap bridge, not a deopt.
    source = """
total = 0
for i in range(600):
    if i % 2 == 0:
        total = total + 1
    else:
        total = total + 2
print(total)
"""
    vm, _ = run_jit(source, guard_bridge_threshold=10)
    assert vm.output == ["900"]
    assert vm.stats.deopts <= 11


def test_trace_limit_blacklists():
    # A loop body exceeding the trace limit must abort recording and
    # never compile.
    body = "\n".join(f"    total = total + {i}" for i in range(80))
    source = f"total = 0\nfor i in range(300):\n{body}\nprint(total)\n"
    vm, _ = run_jit(source, trace_limit=64)
    assert vm.stats.traces_compiled == 0
    expected = sum(range(80)) * 300
    assert vm.output == [str(expected)]


def test_bridge_is_compiled_for_flapping_guard():
    source = """
total = 0
for i in range(2000):
    if i % 2 == 0:
        total = total + 1
    else:
        total = total + 2
print(total)
"""
    vm, machine = run_jit(source, guard_bridge_threshold=8)
    assert vm.output == ["3000"]
    assert vm.stats.bridges_compiled >= 1
    # Once the bridge exists, deopts stop: both paths run compiled.
    assert vm.stats.deopts <= 9
    from repro.categories import OverheadCategory as C
    counts = machine.trace.category_counts()
    compiled_share = counts[int(C.JIT_COMPILED_CODE)] / counts.sum()
    assert compiled_share > 0.5


def test_bridge_rejoins_parent_loop():
    # After the bridge's side path ends at the loop back-edge, execution
    # must continue in the parent trace (no interpreter round-trips).
    source = """
total = 0
for i in range(1500):
    if i % 3 == 0:
        total = total + i
    else:
        total = total - 1
print(total)
"""
    vm, _ = run_jit(source, guard_bridge_threshold=5)
    expected = sum(i if i % 3 == 0 else -1 for i in range(1500))
    assert vm.output == [str(expected)]
    assert vm.stats.bridges_compiled >= 1


def test_hot_function_gets_traced():
    source = """
def work(x):
    return x * 3 + 1

total = 0
i = 0
while i < 300:
    total = total + work(i)
    i = i + 1
print(total)
"""
    vm, _ = run_jit(source, hot_call_threshold=40)
    assert vm.output == [str(sum(i * 3 + 1 for i in range(300)))]
    assert vm.stats.traces_compiled >= 1


def test_inlined_calls_replay_inside_trace():
    source = """
def helper(a, b):
    return a * b + 1

total = 0
for i in range(400):
    total = total + helper(i, 3)
print(total)
"""
    vm, _ = run_jit(source)
    assert vm.output == [str(sum(i * 3 + 1 for i in range(400)))]
    assert vm.stats.traces_compiled >= 1
    # Most bytecodes should have executed via the compiled trace.
    assert vm.stats.deopts < 30


def test_jit_preserves_gc_interaction():
    source = """
keep = []
for i in range(1200):
    keep.append((i, i * 2))
    if len(keep) > 16:
        keep.pop(0)
total = 0
for pair in keep:
    a, b = pair
    total = total + b
print(total)
"""
    vm, _ = run_jit(source, nursery=64 * 1024)
    expected = sum(2 * i for i in range(1184, 1200))
    assert vm.output == [str(expected)]
    assert vm.stats.minor_gcs > 0
    assert vm.stats.traces_compiled >= 1


def test_suppression_is_balanced_after_run():
    vm, machine = run_jit(HOT_LOOP)
    assert machine.suppressed is False
    assert machine.clib_depth == 0
    assert machine.c_call_depth == 0
