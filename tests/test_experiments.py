"""Experiment runner and figure harnesses (tiny configurations)."""

import pytest

from repro.analysis.nursery import (
    best_nursery_improvement,
    normalized,
    nursery_sweep,
    paper_equivalent_label,
)
from repro.analysis.report import format_percent, render_series, render_table
from repro.analysis.sweeps import SWEEP_AXES, axis_config, quick_axes
from repro.config import scaled_config, skylake_config
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentRunner
from repro.experiments import figures


def test_runner_caches_traces():
    runner = ExperimentRunner(scale=1)
    first = runner.run("sym_sum", runtime="cpython")
    second = runner.run("sym_sum", runtime="cpython")
    assert first is second


def test_runner_distinguishes_runtime_params():
    runner = ExperimentRunner(scale=1)
    interp = runner.run("sym_sum", runtime="pypy", jit=False)
    jit = runner.run("sym_sum", runtime="pypy", jit=True)
    assert interp is not jit
    assert len(jit.trace) < len(interp.trace)


def test_runner_rejects_unknown_runtime():
    runner = ExperimentRunner()
    with pytest.raises(ExperimentError):
        runner.run("sym_sum", runtime="jython")


def test_memory_side_reuse():
    runner = ExperimentRunner(scale=1)
    handle = runner.run("sym_sum", runtime="cpython")
    config = skylake_config()
    a = runner.memory_side(handle, config)
    b = runner.memory_side(handle, config)
    assert a is b
    other = runner.memory_side(handle, config.with_llc_size(512 * 1024))
    assert other is not a


def test_simulate_cores():
    runner = ExperimentRunner(scale=1)
    handle = runner.run("sym_sum", runtime="cpython")
    simple = runner.simulate(handle, skylake_config(), core="simple")
    ooo = runner.simulate(handle, skylake_config(), core="ooo")
    # The models charge different events (the OOO core pays branch
    # mispredicts and load-to-use latency; the simple core only cache
    # misses), so only sanity bounds are meaningful here.
    assert simple.cycles > 0 and ooo.cycles > 0
    assert 0.2 < ooo.cycles / simple.cycles < 5.0


def test_simulate_many_configs_matches_serial():
    runner = ExperimentRunner(scale=1)
    handle = runner.run("sym_sum", runtime="cpython")
    base = skylake_config()
    # Mixed memory geometries: some configs share a memory-side state
    # (issue width / latency), some need their own (LLC / line size).
    configs = [base, base.with_issue_width(8),
               base.with_memory_latency(400),
               base.with_llc_size(512 * 1024), base.with_line_size(128),
               base.with_memory_bandwidth(200)]
    serial = [runner.simulate(handle, config, core="ooo")
              for config in configs]
    batched = runner.simulate_many_configs(handle, configs, core="ooo")
    assert [sim.cycles for sim in batched] \
        == [sim.cycles for sim in serial]
    assert [sim.cpi for sim in batched] == [sim.cpi for sim in serial]


def test_ensure_cache_capacity_grow_only_and_capped():
    from repro import telemetry
    telemetry.enable()
    telemetry.reset()
    runner = ExperimentRunner(scale=1)
    before_traces = runner._trace_cache_size
    runner.ensure_cache_capacity(traces=before_traces + 8,
                                 states=before_traces + 40)
    assert runner._trace_cache_size == before_traces + 8
    # Growth only: a smaller figure never shrinks another figure's grid.
    runner.ensure_cache_capacity(traces=2, states=2)
    assert runner._trace_cache_size == before_traces + 8
    # Capped: huge grids degrade to LRU instead of unbounded memory.
    runner.ensure_cache_capacity(traces=10_000, states=10_000)
    assert runner._trace_cache_size == ExperimentRunner.TRACE_CACHE_CAP
    assert runner._state_cache_size == ExperimentRunner.STATE_CACHE_CAP
    snapshot = telemetry.TELEMETRY.metrics.snapshot()
    assert snapshot["runner.trace_cache.capacity"] \
        == ExperimentRunner.TRACE_CACHE_CAP
    assert snapshot["runner.state_cache.capacity"] \
        == ExperimentRunner.STATE_CACHE_CAP
    telemetry.disable()


def test_adaptive_capacity_keeps_grid_resident():
    """A grid bigger than the default cache stays hot once grown.

    Telemetry hit counters prove it: with capacity sized to the grid, a
    second pass over the same (workload, nursery) points re-misses
    nothing — the regression the nursery figures would otherwise hit.
    """
    from repro import telemetry
    runner = ExperimentRunner(scale=1, trace_cache_size=2)
    nurseries = [64 * 1024 * (i + 1) for i in range(4)]
    runner.ensure_cache_capacity(traces=len(nurseries),
                                 states=len(nurseries))
    first = [runner.run("sym_sum", runtime="pypy", jit=True, nursery=nb)
             for nb in nurseries]
    telemetry.enable()
    telemetry.reset()
    second = [runner.run("sym_sum", runtime="pypy", jit=True, nursery=nb)
              for nb in nurseries]
    assert all(a is b for a, b in zip(first, second))
    snapshot = telemetry.TELEMETRY.metrics.snapshot()
    misses = sum(v for k, v in snapshot.items()
                 if k.startswith("runner.trace_cache.miss"))
    hits = sum(v for k, v in snapshot.items()
               if k.startswith("runner.trace_cache.hit"))
    assert misses == 0 and hits == len(nurseries)
    telemetry.disable()


def test_axis_config_errors():
    with pytest.raises(ExperimentError):
        axis_config(skylake_config(), "voltage", 1.0)


def test_quick_axes_trim():
    axes = quick_axes()
    assert set(axes) == set(SWEEP_AXES)
    for axis, values in axes.items():
        full = SWEEP_AXES[axis][0]
        assert values[0] == full[0]
        assert values[-1] == full[-1]
        assert len(values) <= 3


def test_nursery_sweep_points():
    runner = ExperimentRunner(scale=1)
    config = scaled_config(5)
    points = nursery_sweep(runner, "tuple_gc", jit=False,
                           ratios=(0.25, 1.0), config=config)
    assert [p.ratio for p in points] == [0.25, 1.0]
    assert points[0].minor_gcs >= points[1].minor_gcs
    assert all(p.simple_cycles > 0 for p in points)
    assert all(p.gc_cycles + p.nongc_cycles == p.simple_cycles
               for p in points)


def test_normalized_baseline():
    runner = ExperimentRunner(scale=1)
    points = nursery_sweep(runner, "sym_sum", jit=False,
                           ratios=(0.25, 0.5, 1.0),
                           config=scaled_config(5))
    norm = normalized(points, baseline_ratio=0.5)
    assert norm[1] == 1.0


def test_best_nursery_improvement_summary():
    runner = ExperimentRunner(scale=1)
    sweeps = {
        "tuple_gc": nursery_sweep(runner, "tuple_gc", jit=True,
                                  ratios=(0.25, 0.5, 1.0),
                                  config=scaled_config(5)),
    }
    summary = best_nursery_improvement(sweeps)
    assert 0.0 <= summary["per_workload"]["tuple_gc"] <= 1.001
    assert summary["best_improvement"] >= summary.get(
        "max_nursery_improvement", -1.0) - 1e-9


def test_paper_equivalent_labels():
    assert paper_equivalent_label(0.25) == "512k"
    assert paper_equivalent_label(0.5) == "1M"
    assert paper_equivalent_label(1.0) == "2M"
    assert paper_equivalent_label(64.0) == "128M"


def test_report_rendering():
    table = render_table(["a", "b"], [["x", 1], ["yy", 22]], title="T")
    assert "T" in table and "yy" in table
    series = render_series("S", ["1", "2"], {"s1": [0.5, 1.5]})
    assert "s1" in series and "1.500" in series
    assert format_percent(0.123) == "12.3%"


def test_tables_render():
    t1 = figures.table1()
    assert "2 MB" in t1.rendered
    assert "DDR4" in t1.rendered
    t2 = figures.table2()
    assert "C function call" in t2.rendered
    assert "NEW" in t2.rendered


def test_all_figures_registry():
    assert set(figures.ALL_FIGURES) == {
        "table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17"}
