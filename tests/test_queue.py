"""Lease-based distributed work queue: protocol, executor, chaos."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro import telemetry
from repro.errors import ExperimentError
from repro.experiments.diskcache import CACHE_DIR_ENV, DiskCache, cache_root
from repro.experiments.parallel import active_executor, fan_out, use_executor
from repro.experiments.queue import (
    DEFAULT_TTL,
    QueueExecutor,
    WorkQueue,
    _HeartbeatThread,
    campaign_id,
    decode_result,
    discover_campaigns,
    fn_spec,
    make_cell,
    queue_root,
    queue_usage,
    resolve_fn,
    seeded_jitter,
    sweep_queues,
    work_loop,
)
from repro.experiments.resilience import (
    FaultPlan,
    FaultSpec,
    _decide,
    parse_faults,
    run_campaign,
)
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY

_SRC = str(Path(repro.__file__).resolve().parents[1])


def counter_sum(prefix: str) -> float:
    snapshot = TELEMETRY.metrics.snapshot()
    return sum(v for k, v in snapshot.items() if k.startswith(prefix))


def _double_cell(runner, value):
    return value * 2


def _slow_cell(runner, value):
    time.sleep(0.05)
    return value + 100


def _failing_cell(runner, value):
    raise ValueError(f"cell {value} is broken")


_PARAMS = {"scale": 1}


def _queue(tmp_path, **kwargs) -> WorkQueue:
    return WorkQueue(tmp_path / "queue" / "camp", **kwargs).ensure()


def _cells(n, fn=_double_cell):
    return [make_cell(fn, (i,), _PARAMS) for i in range(n)]


def _backdate(path: Path, seconds: float) -> None:
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


# ----------------------------------------------------------------------
# Identity: campaigns, cells, fn specs
# ----------------------------------------------------------------------

def test_campaign_id_is_deterministic_and_order_insensitive():
    a = campaign_id(["fig5", "fig6"], quick=True)
    assert a == campaign_id(["fig6", "fig5"], quick=True)
    assert a != campaign_id(["fig5", "fig6"], quick=False)
    assert a != campaign_id(["fig5"], quick=True)


def test_cell_id_covers_fn_args_and_runner_params():
    base = make_cell(_double_cell, (1,), _PARAMS)
    assert base == make_cell(_double_cell, (1,), _PARAMS)
    assert base["cell"] != make_cell(_double_cell, (2,), _PARAMS)["cell"]
    assert base["cell"] != make_cell(_slow_cell, (1,), _PARAMS)["cell"]
    assert base["cell"] != make_cell(_double_cell, (1,),
                                     {"scale": 2})["cell"]
    assert base["generation"] == 0


def test_fn_spec_round_trip():
    spec = fn_spec(_double_cell)
    assert resolve_fn(spec) is _double_cell


@pytest.mark.parametrize("spec", [
    "no-colon", "missing:", ":missing", "repro.experiments.queue:nope",
    "repro.experiments.queue:WorkQueue.claim",  # nested qualname
    "repro.experiments.queue:QUEUE_SCHEMA",     # not callable
])
def test_resolve_fn_rejects_bad_specs(spec):
    with pytest.raises((ExperimentError, ModuleNotFoundError)):
        resolve_fn(spec)


# ----------------------------------------------------------------------
# Claim / complete protocol
# ----------------------------------------------------------------------

def test_publish_claim_complete_round_trip(tmp_path):
    queue = _queue(tmp_path)
    cells = _cells(3)
    assert queue.publish(cells) == 3
    assert queue.counts()["pending"] == 3

    claim = queue.claim("w1")
    assert claim is not None
    assert queue.counts() == {"pending": 2, "leased": 1,
                              "reclaiming": 0, "done": 0, "poison": 0}
    assert claim.lease_path.exists()

    queue.complete(claim, {"answer": 42}, "w1", wall_seconds=0.5)
    records = queue.results()
    assert decode_result(records[claim.cell_id]["result"]) == \
        {"answer": 42}
    assert records[claim.cell_id]["worker"] == "w1"
    assert queue.counts()["done"] == 1
    assert not claim.lease_path.exists()

    # Drain the rest; a fourth claim finds nothing.
    assert queue.claim("w1") is not None
    assert queue.claim("w1") is not None
    assert queue.claim("w1") is None


def test_publish_is_idempotent_across_states(tmp_path):
    queue = _queue(tmp_path)
    cells = _cells(2)
    assert queue.publish(cells) == 2
    assert queue.publish(cells) == 0          # still pending
    claim = queue.claim("w1")
    assert queue.publish(cells) == 0          # one leased
    queue.complete(claim, 0, "w1")
    assert queue.publish(cells) == 0          # journaled + done marker


def test_claim_has_exactly_one_winner(tmp_path):
    queue_a = _queue(tmp_path)
    queue_b = WorkQueue(queue_a.directory)
    queue_a.publish(_cells(1))
    first = queue_a.claim("a")
    second = queue_b.claim("b")
    assert first is not None
    assert second is None


def test_results_journal_tolerates_torn_tail_and_dedups(tmp_path):
    queue = _queue(tmp_path)
    queue.append_result({"cell": "abc", "result": "Z0Y=", "worker": "w1"})
    queue.append_result({"cell": "abc", "result": "Z0Y=", "worker": "w2"})
    with open(queue.journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"cell": "torn')   # no newline: a crashed append
    records = queue.results()
    assert set(records) == {"abc"}
    assert records["abc"]["worker"] == "w1"  # first completion wins
    # The torn tail is not consumed; finishing the line surfaces it.
    with open(queue.journal_path, "a", encoding="utf-8") as handle:
        handle.write('", "result": "Z0Y="}\n')
    assert set(queue.results()) == {"abc", "torn"}


def test_claim_settles_cell_already_done(tmp_path):
    """A republished cell whose done marker exists is not re-run."""
    queue = _queue(tmp_path)
    cell = _cells(1)[0]
    queue.publish([cell])
    claim = queue.claim("w1")
    queue.complete(claim, 7, "w1")
    # Simulate a reclaim race republishing the same id.
    (queue.directory / "pending" / f"{cell['cell']}.json").write_text(
        json.dumps(cell), encoding="utf-8")
    assert queue.claim("w2") is None
    assert queue.counts()["pending"] == 0


def test_settle_moves_journaled_cells_to_done(tmp_path):
    queue = _queue(tmp_path)
    cell = _cells(1)[0]
    queue.publish([cell])
    queue.append_result({"cell": cell["cell"], "result": "Z0Y="})
    assert queue.settle([cell["cell"]]) == 1
    assert queue.counts() == {"pending": 0, "leased": 0,
                              "reclaiming": 0, "done": 1, "poison": 0}
    assert queue.settle([cell["cell"]]) == 0


# ----------------------------------------------------------------------
# Heartbeats, lease expiry, reclamation, poison
# ----------------------------------------------------------------------

def test_heartbeats_track_liveness(tmp_path):
    queue = _queue(tmp_path, ttl=5.0)
    queue.register_worker("w1")
    assert "w1" in queue.live_workers()
    _backdate(queue.directory / "heartbeats" / "w1.json", 10.0)
    assert queue.live_workers() == {}
    assert "w1" in queue.worker_ages()           # stale but listed
    assert queue.sweep_heartbeats(max_age=5.0) == 1
    assert queue.worker_ages() == {}


def test_heartbeat_touches_held_leases(tmp_path):
    queue = _queue(tmp_path, ttl=5.0)
    queue.publish(_cells(1))
    claim = queue.claim("w1")
    _backdate(claim.leased_path, 10.0)
    queue.heartbeat("w1", held=(claim.leased_path,))
    assert queue.reclaim_expired() == {"reclaimed": 0, "poisoned": 0,
                                       "healed": 0}


def test_reclaim_expired_bumps_generation(tmp_path):
    queue = _queue(tmp_path, ttl=1.0)
    queue.publish(_cells(1))
    claim = queue.claim("dead-worker")
    assert queue.reclaim_expired()["reclaimed"] == 0  # lease still fresh
    _backdate(claim.leased_path, 5.0)
    stats = queue.reclaim_expired()
    assert stats["reclaimed"] == 1
    assert queue.counts()["pending"] == 1
    assert not claim.lease_path.exists()
    reclaimed = queue.claim("w2")
    assert reclaimed.generation == 1
    history = reclaimed.cell["reclaim_history"]
    assert history[0]["worker"] == "dead-worker"


def test_reclaim_poisons_after_max_generations(tmp_path):
    queue = _queue(tmp_path, ttl=1.0, max_generations=1)
    queue.publish(_cells(1))
    for round_ in range(2):
        claim = queue.claim(f"w{round_}")
        assert claim is not None
        _backdate(claim.leased_path, 5.0)
        queue.reclaim_expired()
    assert queue.counts()["poison"] == 1
    assert queue.claim("w9") is None
    (record,) = queue.poisoned().values()
    assert "reclaim generations" in record["reason"]
    assert len(record["reclaim_history"]) == 2


def test_reclaim_heals_stuck_reclaiming_entries(tmp_path):
    queue = _queue(tmp_path, ttl=1.0)
    cell = _cells(1)[0]
    staging = queue.directory / "reclaiming" / f"{cell['cell']}.999"
    staging.write_text(json.dumps(cell), encoding="utf-8")
    _backdate(staging, 5.0)
    assert queue.reclaim_expired()["healed"] == 1
    assert queue.counts()["pending"] == 1


def test_completion_after_reclaim_is_deduplicated(tmp_path):
    """A slow-but-alive worker finishing a reclaimed cell is harmless."""
    queue = _queue(tmp_path, ttl=1.0)
    queue.publish(_cells(1))
    slow = queue.claim("slow")
    _backdate(slow.leased_path, 5.0)
    queue.reclaim_expired()                      # cell back in pending
    queue.complete(slow, "slow-result", "slow")  # journal lands anyway
    fast = queue.claim("fast")
    queue.complete(fast, "fast-result", "fast")
    (record,) = queue.results().values()
    assert decode_result(record["result"]) == "slow-result"  # first wins
    assert queue.settle([fast.cell_id]) == 0     # done marker present


def test_unreadable_cell_spec_is_poisoned_on_claim(tmp_path):
    queue = _queue(tmp_path)
    (queue.directory / "pending" / "garbage.json").write_text(
        "{not json", encoding="utf-8")
    assert queue.claim("w1") is None
    assert queue.counts()["poison"] == 1


# ----------------------------------------------------------------------
# Clock skew: future mtimes on leases and heartbeats
# ----------------------------------------------------------------------

def test_near_future_lease_is_not_reclaimed_early(tmp_path):
    """A lease half a TTL *ahead* of the reclaimer's clock is ordinary
    inter-host skew: the live worker keeps its cell."""
    queue = _queue(tmp_path, ttl=4.0)
    queue.publish(_cells(1))
    claim = queue.claim("skewed")
    _backdate(claim.leased_path, -2.0)
    assert queue.reclaim_expired()["reclaimed"] == 0
    assert queue.counts()["leased"] == 1


def test_far_future_lease_is_reclaimed_not_wedged(tmp_path):
    """A lease many TTLs in the future can never age out naturally —
    it must be treated as stale now, or the campaign wedges forever."""
    queue = _queue(tmp_path, ttl=1.0)
    queue.publish(_cells(1))
    claim = queue.claim("time-traveler")
    _backdate(claim.leased_path, -10.0)
    assert queue.reclaim_expired()["reclaimed"] == 1
    assert queue.counts()["pending"] == 1
    reclaimed = queue.claim("w2")
    assert reclaimed is not None
    assert reclaimed.generation == 1


def test_far_future_reclaiming_entry_heals(tmp_path):
    queue = _queue(tmp_path, ttl=1.0)
    cell = _cells(1)[0]
    staging = queue.directory / "reclaiming" / f"{cell['cell']}.999"
    staging.write_text(json.dumps(cell), encoding="utf-8")
    _backdate(staging, -10.0)
    assert queue.reclaim_expired()["healed"] == 1
    assert queue.counts()["pending"] == 1


def test_far_future_heartbeat_does_not_read_as_live(tmp_path):
    queue = _queue(tmp_path, ttl=5.0)
    queue.register_worker("near")
    queue.register_worker("far")
    _backdate(queue.directory / "heartbeats" / "near.json", -2.0)
    _backdate(queue.directory / "heartbeats" / "far.json", -50.0)
    live = queue.live_workers()
    assert "near" in live                 # within one TTL of skew
    assert "far" not in live              # not "live forever"
    assert "far" in queue.worker_ages()   # still listed for operators


# ----------------------------------------------------------------------
# Deterministic worker jitter (heartbeats + idle polls)
# ----------------------------------------------------------------------

def test_seeded_jitter_is_deterministic_bounded_and_spread():
    first = seeded_jitter("worker-1", "heartbeat", 0.6, 1.0)
    assert first == seeded_jitter("worker-1", "heartbeat", 0.6, 1.0)
    assert 0.6 <= first < 1.0
    fleet = {seeded_jitter(f"worker-{i}", "heartbeat", 0.6, 1.0)
             for i in range(16)}
    assert len(fleet) == 16               # the herd does not thunder
    assert seeded_jitter("worker-1", "idle-poll", 0.75, 1.25) != first


def test_heartbeat_interval_carries_per_worker_jitter():
    a = _HeartbeatThread({}, "w-a", 30.0, FaultPlan())
    b = _HeartbeatThread({}, "w-b", 30.0, FaultPlan())
    expected = max(0.05, 30.0 / 3.0
                   * seeded_jitter("w-a", "heartbeat", 0.6, 1.0))
    assert a.interval == expected
    assert a.interval != b.interval
    # Jitter points *downward* so renewals never outrun the TTL.
    assert 0.6 * 10.0 <= a.interval <= 10.0


# ----------------------------------------------------------------------
# Executor: fan_out delegation, merge order, degrade, poison errors
# ----------------------------------------------------------------------

class _RecordingExecutor:
    def __init__(self):
        self.calls = []

    def run(self, runner, fn, items):
        self.calls.append((fn, items))
        return [fn(runner, *args) for args in items]


def test_fan_out_delegates_to_active_executor():
    executor = _RecordingExecutor()
    runner = ExperimentRunner()
    assert active_executor() is None
    with use_executor(executor):
        assert active_executor() is executor
        results = fan_out(runner, _double_cell,
                          [(1,), (2,), (3,)], jobs=1)
    assert results == [2, 4, 6]
    assert len(executor.calls) == 1
    assert active_executor() is None


def test_use_executor_none_restores_local_path():
    outer = _RecordingExecutor()
    runner = ExperimentRunner()
    with use_executor(outer):
        with use_executor(None):
            assert fan_out(runner, _double_cell, [(5,)]) == [10]
    assert outer.calls == []


def test_executor_degrades_to_local_run_without_workers(tmp_path):
    telemetry.enable()
    telemetry.reset()
    queue = _queue(tmp_path, ttl=1.0)
    executor = QueueExecutor(queue, grace_seconds=0.0,
                             poll_seconds=0.01)
    runner = ExperimentRunner()
    results = executor.run(runner, _double_cell, [(i,) for i in range(4)])
    assert results == [0, 2, 4, 6]
    assert counter_sum("queue.degraded_cells") == 4
    # Results were journaled: a resumed coordinator replays, not re-runs.
    executor2 = QueueExecutor(queue, grace_seconds=0.0,
                              poll_seconds=0.01)
    assert executor2.run(runner, _double_cell,
                         [(i,) for i in range(4)]) == [0, 2, 4, 6]
    assert counter_sum("queue.degraded_cells") == 4  # unchanged


def test_executor_raises_clear_error_on_poisoned_cell(tmp_path):
    queue = _queue(tmp_path, ttl=1.0, max_generations=0)
    executor = QueueExecutor(queue, grace_seconds=120.0,
                             poll_seconds=0.01)
    runner = ExperimentRunner()

    def doom_first_claim():
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            claim = queue.claim("doomed")
            if claim is not None:
                _backdate(claim.leased_path, 5.0)
                queue.register_worker("doomed")  # keep grace alive
                return
            time.sleep(0.005)

    thread = threading.Thread(target=doom_first_claim)
    thread.start()
    try:
        with pytest.raises(ExperimentError) as err:
            executor.run(runner, _double_cell, [(1,)])
    finally:
        thread.join()
    message = str(err.value)
    assert "poisoned" in message
    assert queue.campaign in message


def test_worker_loop_completes_cells_in_process(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    queue = WorkQueue(queue_root() / "camp-a", ttl=5.0).ensure()
    queue.publish(_cells(3))
    report = work_loop(campaign="camp-a", worker_id="wA",
                       poll_seconds=0.01, max_cells=3,
                       idle_exit_seconds=5.0,
                       faults=FaultPlan(), emit=lambda *_: None)
    assert report.completed == 3
    assert report.campaigns == ["camp-a"]
    assert report.reason == "max-cells"
    records = queue.results()
    assert sorted(decode_result(r["result"])
                  for r in records.values()) == [0, 2, 4]


def test_worker_loop_ignores_closed_campaigns(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    queue = WorkQueue(queue_root() / "camp-b", ttl=5.0).ensure()
    queue.publish(_cells(1))
    queue.close("complete")
    report = work_loop(worker_id="wB", poll_seconds=0.01,
                       idle_exit_seconds=0.05,
                       faults=FaultPlan(), emit=lambda *_: None)
    assert report.completed == 0
    assert report.reason == "no campaigns"


def test_worker_survives_failing_cell_and_lease_recovers(tmp_path,
                                                         monkeypatch):
    """A cell that raises must not kill the worker; its lease expires
    and reclaim accounting (eventually poison) takes over."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    telemetry.enable()
    telemetry.reset()
    queue = WorkQueue(queue_root() / "camp-c", ttl=0.2,
                      max_generations=0).ensure()
    queue.publish([make_cell(_failing_cell, (1,), _PARAMS),
                   make_cell(_double_cell, (2,), _PARAMS)])
    report = work_loop(campaign="camp-c", worker_id="wC",
                       ttl=0.2, poll_seconds=0.01, max_cells=2,
                       idle_exit_seconds=0.5,
                       faults=FaultPlan(), emit=lambda *_: None)
    assert report.completed == 1          # the healthy cell
    assert report.claims == 2
    assert counter_sum("queue.cell_errors") == 1
    # The failed cell's lease expires; reclaim accounting poisons it
    # (max_generations=0) whether the worker or this sweep gets there.
    time.sleep(0.3)
    queue.reclaim_expired()
    assert queue.counts()["poison"] == 1


# ----------------------------------------------------------------------
# Fault kinds: lease_stall and heartbeat_stop semantics
# ----------------------------------------------------------------------

def test_new_fault_kinds_parse():
    specs = parse_faults("worker_exit:p=1;lease_stall:p=0.5,sleep=1;"
                         "heartbeat_stop:p=1,seed=3")
    assert specs["worker_exit"].probability == 1.0
    assert specs["lease_stall"].sleep_seconds == 1.0
    assert specs["heartbeat_stop"].seed == 3


def test_lease_stall_abandons_then_reclaim_recovers(tmp_path,
                                                    monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    telemetry.enable()
    telemetry.reset()
    queue = WorkQueue(queue_root() / "camp-d", ttl=0.2).ensure()
    cell = make_cell(_double_cell, (21,), _PARAMS)
    queue.publish([cell])
    # Deterministic single stall: fires at generation 0, not at 1.
    seed = next(
        s for s in range(500)
        if _decide(s, "lease_stall", cell["cell"], 0, 0.5)
        and not _decide(s, "lease_stall", cell["cell"], 1, 0.5))
    plan = FaultPlan({"lease_stall": FaultSpec(
        "lease_stall", 0.5, seed=seed, sleep_seconds=0.01)})
    report = work_loop(campaign="camp-d", worker_id="wD",
                       ttl=0.2, poll_seconds=0.01, max_cells=1,
                       idle_exit_seconds=10.0, faults=plan,
                       emit=lambda *_: None)
    assert report.stalled == 1
    assert report.completed == 1
    (record,) = queue.results().values()
    assert record["generation"] == 1       # recovered via reclamation
    assert decode_result(record["result"]) == 42
    assert counter_sum("queue.stalls_injected") == 1


def test_heartbeat_stop_freezes_renewals(tmp_path):
    from repro.experiments.queue import _HeartbeatThread
    telemetry.enable()
    telemetry.reset()
    queue = _queue(tmp_path, ttl=5.0)
    queue.register_worker("wE")
    beat_path = queue.directory / "heartbeats" / "wE.json"
    _backdate(beat_path, 60.0)
    stopped = FaultPlan({"heartbeat_stop": FaultSpec(
        "heartbeat_stop", 1.0)})
    heart = _HeartbeatThread({"camp": queue}, "wE", ttl=5.0,
                             faults=stopped)
    heart.beat_once()
    assert heart.frozen
    assert queue.live_workers() == {}            # never renewed
    assert counter_sum("queue.heartbeats_frozen") == 1
    healthy = _HeartbeatThread({"camp": queue}, "wE", ttl=5.0,
                               faults=FaultPlan())
    healthy.beat_once()
    assert "wE" in queue.live_workers()


# ----------------------------------------------------------------------
# Maintenance: sweeping and usage
# ----------------------------------------------------------------------

def test_sweep_queues_removes_closed_and_heals_live(tmp_path):
    root = tmp_path / "cache"
    closed = WorkQueue(root / "queue" / "closed", ttl=1.0).ensure()
    closed.close("complete")
    live = WorkQueue(root / "queue" / "live", ttl=1.0).ensure()
    live.publish(_cells(1))
    claim = live.claim("dead")
    _backdate(claim.leased_path, 5.0)
    live.register_worker("dead")
    _backdate(live.directory / "heartbeats" / "dead.json", 500.0)
    (root / "queue" / "not-a-campaign").mkdir()

    stats = sweep_queues(root)
    assert stats["campaigns_removed"] == 2   # closed + manifest-less
    assert stats["leases_reclaimed"] == 1
    assert stats["heartbeats_removed"] == 1
    assert not closed.directory.exists()
    assert live.counts()["pending"] == 1     # reclaimed, not deleted


def test_sweep_queues_removes_idle_campaigns(tmp_path):
    root = tmp_path / "cache"
    stale = WorkQueue(root / "queue" / "stale", ttl=1.0).ensure()
    for path in [stale.directory, *stale.directory.rglob("*")]:
        _backdate(path, 100.0)
    assert sweep_queues(root, max_age=50.0)["campaigns_removed"] == 1
    assert not stale.directory.exists()


def test_queue_usage_counts_campaigns_and_cells(tmp_path):
    root = tmp_path / "cache"
    assert queue_usage(root) == {"campaigns": 0, "cells": 0, "bytes": 0}
    queue = WorkQueue(root / "queue" / "camp", ttl=1.0).ensure()
    queue.publish(_cells(2))
    usage = queue_usage(root)
    assert usage["campaigns"] == 1
    assert usage["cells"] == 2
    assert usage["bytes"] > 0


def test_gc_sweeps_queue_tree(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    queue = WorkQueue(queue_root() / "old", ttl=1.0).ensure()
    queue.close("complete")
    stats = DiskCache().gc(max_bytes=1 << 30)
    assert stats["queue_campaigns_removed"] == 1
    assert not queue.directory.exists()


def test_discover_campaigns_filters(tmp_path):
    root = tmp_path / "queues"
    WorkQueue(root / "a", ttl=1.0).ensure()
    b = WorkQueue(root / "b", ttl=1.0).ensure()
    b.close("complete")
    found = discover_campaigns(root)
    assert [p.name for p in found] == ["a"]
    found = discover_campaigns(root, active_only=False)
    assert [p.name for p in found] == ["a", "b"]
    assert discover_campaigns(root, campaign="b",
                              active_only=False)[0].name == "b"
    assert discover_campaigns(tmp_path / "missing") == []


def test_status_renders_queue_panel(tmp_path, monkeypatch):
    from repro.experiments.status import render_status
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    queue = WorkQueue(queue_root() / "deadbeef0123", ttl=30.0).ensure()
    queue.publish(_cells(2))
    queue.claim("w1")
    queue.register_worker("w1")
    text = render_status()
    assert "deadbeef0123" in text
    assert "1 pending, 1 leased" in text
    assert "w1" in text


# ----------------------------------------------------------------------
# Distributed campaign: coordinator + subprocess worker fleet
# ----------------------------------------------------------------------

def _spawn_worker(queue_dir: Path, *, faults: str = "", ttl: str = "2",
                  extra_env: dict | None = None) -> subprocess.Popen:
    env = {**os.environ,
           "PYTHONPATH": _SRC + (os.pathsep + os.environ["PYTHONPATH"]
                                 if os.environ.get("PYTHONPATH") else ""),
           "REPRO_QUEUE_TTL": ttl}
    if faults:
        env["REPRO_FAULTS"] = faults
    else:
        env.pop("REPRO_FAULTS", None)
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "work",
         "--queue", str(queue_dir), "--idle-exit", "120"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def test_fig5_campaign_survives_killing_every_worker(tmp_path,
                                                     monkeypatch):
    """Acceptance: 3 workers all die (worker_exit:p=1) right after
    claiming; respawned heartbeat-stopped workers finish via lease
    reclamation; the figure bytes match the serial run exactly."""
    from repro.experiments.figures import fig5
    serial = fig5(ExperimentRunner(), quick=True, jobs=1)

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "dist-cache"))
    telemetry.enable()
    telemetry.reset()
    queue = WorkQueue(queue_root() / campaign_id(["fig5"], True),
                      ttl=2.0).ensure(
        extra={"cache_dir": str(cache_root())})

    doomed = [_spawn_worker(queue.directory, faults="worker_exit:p=1")
              for _ in range(3)]
    outcome = {}

    def coordinate():
        executor = QueueExecutor(queue, grace_seconds=300.0,
                                 poll_seconds=0.05)
        with use_executor(executor):
            outcome["figure"] = fig5(ExperimentRunner(), quick=True,
                                     jobs=1)

    coordinator = threading.Thread(target=coordinate)
    coordinator.start()
    fleet = []
    try:
        # Every doomed worker must die mid-claim (exit 23), at least
        # once each — that is the acceptance condition.
        for proc in doomed:
            assert proc.wait(timeout=120) == 23
        # The respawned fleet also runs with frozen heartbeats: cells
        # may be reclaimed out from under live workers, and the journal
        # dedups the duplicate completions.
        fleet = [_spawn_worker(queue.directory,
                               faults="heartbeat_stop:p=1")
                 for _ in range(3)]
        coordinator.join(timeout=240)
        assert not coordinator.is_alive()
    finally:
        for proc in doomed + fleet:
            if proc.poll() is None:
                proc.terminate()
        for proc in fleet:
            proc.wait(timeout=30)

    assert outcome["figure"].rendered == serial.rendered
    assert outcome["figure"].data == serial.data
    # Recovery actually happened: at least one journaled completion
    # carries a bumped reclaim generation.
    generations = [record.get("generation", 0)
                   for record in queue.results().values()]
    assert max(generations) >= 1
    assert counter_sum("queue.reclaimed") >= 1
    assert queue.counts()["poison"] == 0


def test_distributed_campaign_degrades_without_workers(tmp_path,
                                                       monkeypatch):
    """No fleet ever shows up: the coordinator finishes alone and the
    run is byte-identical to a serial campaign."""
    from repro.experiments.figures import fig5
    serial = fig5(ExperimentRunner(), quick=True, jobs=1)
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "solo-cache"))
    telemetry.enable()
    telemetry.reset()
    lines = []
    report = run_campaign(names=["fig5"], quick=True, distributed=True,
                          grace_seconds=0.0, emit=lines.append)
    assert report.completed == ["fig5"]
    assert report.failed == []
    assert report.queue_dir
    assert counter_sum("queue.degraded_cells") > 0
    assert serial.rendered in "\n".join(lines)
    # The campaign closed its queue; gc reaps the directory.
    queue = WorkQueue(report.queue_dir)
    assert not queue.is_active()
    stats = DiskCache().gc(max_bytes=1 << 30)
    assert stats["queue_campaigns_removed"] == 1


def test_distributed_campaign_reports_poisoned_figure(tmp_path,
                                                      monkeypatch):
    """A figure whose cells poison is recorded as failed, loudly, and
    does not stall the rest of the campaign."""
    from repro.experiments import figures as figures_mod
    from repro.experiments import resilience as resilience_mod

    def bad_figure(runner, quick=True, jobs=None):
        return fan_out(runner, _double_cell, [(1,)], jobs=jobs)

    def good_figure(runner, quick=True, jobs=None):
        return fan_out(runner, _double_cell, [(2,)], jobs=jobs)

    monkeypatch.setattr(figures_mod, "ALL_FIGURES",
                        {"bad": bad_figure, "good": good_figure})
    monkeypatch.setattr(figures_mod, "FIGURE_SCALES",
                        {"bad": 1, "good": 1})
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))

    real_executor_run = QueueExecutor.run

    def sabotaged_run(self, runner, fn, items):
        if items == [(1,)]:
            cell = make_cell(fn, (1,), runner.queue_params())
            self.queue.ensure()
            self.queue._poison_file(
                self.queue.directory / "pending" / "nonexistent.json",
                reason="synthetic", cell=cell)
        return real_executor_run(self, runner, fn, items)

    monkeypatch.setattr(QueueExecutor, "run", sabotaged_run)
    lines = []
    report = run_campaign(names=["bad", "good"], quick=True,
                          distributed=True, grace_seconds=0.0,
                          checkpoint=tmp_path / "journal",
                          emit=lines.append)
    assert report.failed == ["bad"]
    assert report.completed == ["good"]
    assert any("FAILED" in line and "poisoned" in line
               for line in lines)
    # The failed figure was not checkpointed: a rerun retries it.
    from repro.experiments.resilience import load_checkpoint
    assert set(load_checkpoint(tmp_path / "journal")) == {"good"}
