"""Fault injection, supervised fan-out recovery, and checkpoint/resume."""

from __future__ import annotations

import os
import pickle

import pytest

from repro import telemetry
from repro.errors import ExperimentError
from repro.experiments import figures as figures_mod
from repro.experiments.diskcache import CACHE_DIR_ENV
from repro.experiments.parallel import (
    fan_out,
    jobs_cap,
    resolve_jobs,
)
from repro.experiments.resilience import (
    FAULTS_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    CampaignReport,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    _decide,
    append_checkpoint,
    load_checkpoint,
    parse_faults,
    run_campaign,
)
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY


def counter_sum(prefix: str) -> float:
    """Total of every metric whose key starts with ``prefix``."""
    snapshot = TELEMETRY.metrics.snapshot()
    return sum(v for k, v in snapshot.items() if k.startswith(prefix))


# ----------------------------------------------------------------------
# Fault grammar
# ----------------------------------------------------------------------

def test_parse_faults_full_grammar():
    specs = parse_faults("worker_crash:p=0.3,seed=7;"
                         "cell_timeout:p=0.2,seed=2,sleep=5;"
                         "cache_corrupt:p=1")
    assert specs["worker_crash"] == FaultSpec("worker_crash", 0.3, seed=7)
    assert specs["cell_timeout"].sleep_seconds == 5.0
    assert specs["cell_timeout"].seed == 2
    assert specs["cache_corrupt"].probability == 1.0
    assert specs["cache_corrupt"].seed == 0  # default


def test_parse_faults_tolerates_whitespace_and_empty_clauses():
    specs = parse_faults("  worker_crash : p=1 , seed=3 ; ;")
    assert specs == {"worker_crash": FaultSpec("worker_crash", 1.0,
                                               seed=3)}
    assert parse_faults("") == {}
    assert parse_faults("  ;  ") == {}


@pytest.mark.parametrize("text", [
    "disk_on_fire:p=1",            # unknown kind
    "worker_crash:p=1,foo=2",      # unknown parameter
    "worker_crash:seed=1",         # p is required
    "worker_crash:p=nope",         # p must be a float
    "worker_crash:p=1.5",          # p out of range
    "worker_crash:p=-0.1",
    "worker_crash:p=1,seed=x",     # seed must be an int
    "cell_timeout:p=1,sleep=soon",
    "worker_crash:p",              # not key=value
])
def test_parse_faults_rejects_bad_grammar(text):
    with pytest.raises(ExperimentError):
        parse_faults(text)


def test_fault_plan_from_env(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    assert not FaultPlan.from_env()
    monkeypatch.setenv(FAULTS_ENV, "worker_crash:p=0.5,seed=9")
    plan = FaultPlan.from_env()
    assert plan
    assert plan.spec("worker_crash").seed == 9
    assert plan.spec("cell_timeout") is None


def test_fault_plan_pickles():
    plan = FaultPlan({"worker_crash": FaultSpec("worker_crash", 0.25,
                                                seed=4)})
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert clone.should_fire("worker_crash", "site", 0) \
        == plan.should_fire("worker_crash", "site", 0)


def test_decide_is_deterministic_with_exact_edges():
    assert not _decide(0, "worker_crash", "s", 0, 0.0)
    assert _decide(0, "worker_crash", "s", 0, 1.0)
    first = _decide(3, "worker_crash", "cell#0", 0, 0.5)
    assert _decide(3, "worker_crash", "cell#0", 0, 0.5) == first
    # With p=0.5 some attempt must fire and some must not: a retried
    # cell makes progress instead of re-hitting the same injection.
    outcomes = {_decide(3, "worker_crash", "cell#0", attempt, 0.5)
                for attempt in range(64)}
    assert outcomes == {True, False}


def test_should_fire_defaults_to_false_without_spec():
    assert not FaultPlan().should_fire("worker_crash", "anywhere")


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

def test_backoff_grows_exponentially_and_saturates():
    policy = RetryPolicy(backoff_base=0.1, backoff_max=0.5)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.4)
    assert policy.backoff(4) == pytest.approx(0.5)  # capped
    assert policy.backoff(40) == pytest.approx(0.5)


def test_retry_policy_from_env(monkeypatch):
    monkeypatch.delenv(TIMEOUT_ENV, raising=False)
    monkeypatch.delenv(RETRIES_ENV, raising=False)
    assert RetryPolicy.from_env() == RetryPolicy()
    monkeypatch.setenv(TIMEOUT_ENV, "2.5")
    monkeypatch.setenv(RETRIES_ENV, "5")
    policy = RetryPolicy.from_env()
    assert policy.timeout == 2.5
    assert policy.max_retries == 5
    monkeypatch.setenv(TIMEOUT_ENV, "0")  # 0 = unlimited
    assert RetryPolicy.from_env().timeout is None
    monkeypatch.setenv(TIMEOUT_ENV, "soon")
    with pytest.raises(ExperimentError):
        RetryPolicy.from_env()
    monkeypatch.setenv(TIMEOUT_ENV, "1")
    monkeypatch.setenv(RETRIES_ENV, "lots")
    with pytest.raises(ExperimentError):
        RetryPolicy.from_env()


def test_resolve_jobs_rejects_fork_bombs():
    cap = jobs_cap()
    assert resolve_jobs(cap) == cap
    with pytest.raises(ExperimentError, match="sane cap"):
        resolve_jobs(cap + 1)


# ----------------------------------------------------------------------
# Supervised fan-out
# ----------------------------------------------------------------------

_FAST = RetryPolicy(max_retries=2, backoff_base=0.005, backoff_max=0.01,
                    max_pool_rebuilds=2)


def _tenfold_cell(runner, value):
    return value * 10


def _crash_sites(n):
    return [f"{_tenfold_cell.__module__}.{_tenfold_cell.__qualname__}#{i}"
            for i in range(n)]


def _seed_with_single_round_of_crashes(kind, n, probability):
    """A seed where >=1 cell faults at attempt 0 and none at attempt 1.

    Exists because decisions are a pure hash; searching for it keeps the
    test meaningful (a crash definitely happens) yet guaranteed to
    recover in exactly one pool rebuild.
    """
    for seed in range(500):
        plan = FaultPlan({kind: FaultSpec(kind, probability, seed=seed,
                                          sleep_seconds=5.0)})
        fires = [[plan.should_fire(kind, site, attempt)
                  for site in _crash_sites(n)] for attempt in (0, 1)]
        if any(fires[0]) and not any(fires[1]):
            return seed
    raise AssertionError("no suitable seed in range")


def test_fan_out_recovers_lost_cells_after_worker_crash(monkeypatch):
    telemetry.enable()
    telemetry.reset()
    seed = _seed_with_single_round_of_crashes("worker_crash", 4, 0.5)
    monkeypatch.setenv(FAULTS_ENV, f"worker_crash:p=0.5,seed={seed}")
    runner = ExperimentRunner()
    results = fan_out(runner, _tenfold_cell, [(v,) for v in range(4)],
                      jobs=2, policy=_FAST)
    assert results == [0, 10, 20, 30]
    assert counter_sum("resilience.pool_rebuilds") == 1
    assert counter_sum("resilience.retries{reason=crash}") >= 1
    assert counter_sum("resilience.serial_fallbacks") == 0


def test_fan_out_degrades_to_serial_when_pool_keeps_dying(monkeypatch):
    telemetry.enable()
    telemetry.reset()
    monkeypatch.setenv(FAULTS_ENV, "worker_crash:p=1")
    runner = ExperimentRunner()
    results = fan_out(runner, _tenfold_cell, [(v,) for v in range(5)],
                      jobs=2, policy=_FAST)
    assert results == [0, 10, 20, 30, 40]
    assert counter_sum("resilience.serial_fallbacks") == 1
    assert counter_sum("resilience.serial_cells") == 5
    assert counter_sum("resilience.pool_rebuilds") \
        == _FAST.max_pool_rebuilds + 1


def test_fan_out_retries_hung_cell_after_timeout(monkeypatch):
    telemetry.enable()
    telemetry.reset()
    seed = _seed_with_single_round_of_crashes("cell_timeout", 2, 0.5)
    monkeypatch.setenv(FAULTS_ENV,
                       f"cell_timeout:p=0.5,seed={seed},sleep=30")
    policy = RetryPolicy(max_retries=2, backoff_base=0.005,
                         backoff_max=0.01, timeout=0.5)
    runner = ExperimentRunner()
    results = fan_out(runner, _tenfold_cell, [(v,) for v in range(2)],
                      jobs=2, policy=policy)
    assert results == [0, 10]
    assert counter_sum("resilience.timeouts") == 1
    assert counter_sum("resilience.retries{reason=timeout}") == 1


def test_fan_out_gives_up_after_timeout_budget(monkeypatch):
    telemetry.enable()
    telemetry.reset()
    monkeypatch.setenv(FAULTS_ENV, "cell_timeout:p=1,sleep=30")
    policy = RetryPolicy(max_retries=1, backoff_base=0.005,
                         backoff_max=0.01, timeout=0.2)
    runner = ExperimentRunner()
    with pytest.raises(ExperimentError, match="timeout"):
        fan_out(runner, _tenfold_cell, [(v,) for v in range(2)],
                jobs=2, policy=policy)
    assert counter_sum("resilience.timeouts") == 2


_RECOVERY_FLAGS = {}


def _flaky_cell(runner, value, flag_dir):
    flag = os.path.join(flag_dir, f"attempted-{value}")
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8"):
            pass
        raise ValueError(f"transient failure for {value}")
    return value * 10


def test_fan_out_retries_cell_exceptions_with_backoff(tmp_path):
    telemetry.enable()
    telemetry.reset()
    runner = ExperimentRunner()
    items = [(v, str(tmp_path)) for v in range(3)]
    results = fan_out(runner, _flaky_cell, items, jobs=2, policy=_FAST)
    assert results == [0, 10, 20]
    assert counter_sum("resilience.retries{reason=error}") == 3
    assert counter_sum("resilience.cell_failures") == 0


def _doomed_cell(runner, value):
    raise ValueError(f"cell {value} always fails")


def test_fan_out_gives_up_after_retry_budget():
    telemetry.enable()
    telemetry.reset()
    runner = ExperimentRunner()
    with pytest.raises(ExperimentError, match="giving up"):
        fan_out(runner, _doomed_cell, [(v,) for v in range(2)],
                jobs=2, policy=_FAST)
    assert counter_sum("resilience.cell_failures") == 1


def _interrupting_cell(runner, value):
    if value == 1:
        raise KeyboardInterrupt
    return value


def test_fan_out_propagates_keyboard_interrupt():
    telemetry.enable()
    telemetry.reset()
    runner = ExperimentRunner()
    with pytest.raises(KeyboardInterrupt):
        fan_out(runner, _interrupting_cell, [(v,) for v in range(4)],
                jobs=2, policy=_FAST)
    assert counter_sum("resilience.interrupted") == 1


def test_faulted_figure_matches_fault_free_serial_run(monkeypatch,
                                                      tmp_path):
    """Acceptance: crashes + corruption leave figure output unchanged."""
    from repro.experiments.figures import _breakdown_cell, fig5
    telemetry.enable()
    telemetry.reset()
    serial = fig5(ExperimentRunner(), quick=True, jobs=1)
    sites = [f"{_breakdown_cell.__module__}."
             f"{_breakdown_cell.__qualname__}#{i}" for i in range(8)]
    seed = next(
        s for s in range(500)
        if any(_decide(s, "worker_crash", site, 0, 0.5)
               for site in sites)
        and not any(_decide(s, "worker_crash", site, 1, 0.5)
                    for site in sites))
    # A fresh cache root so the faulted run stores (and corrupts) its
    # own entries instead of hitting the serial run's clean ones.
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "faulted-cache"))
    monkeypatch.setenv(FAULTS_ENV, f"worker_crash:p=0.5,seed={seed};"
                                   "cache_corrupt:p=1")
    monkeypatch.setenv(RETRIES_ENV, "3")
    faulted = fig5(ExperimentRunner(), quick=True, jobs=2)
    assert faulted.rendered == serial.rendered
    assert faulted.data["shares"] == serial.data["shares"]
    assert faulted.data["average"] == serial.data["average"]
    assert counter_sum("resilience.pool_rebuilds") == 1
    assert counter_sum("resilience.retries{reason=crash}") >= 1
    assert counter_sum("cache.faults_injected") >= 1


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------

def test_checkpoint_round_trip(tmp_path):
    path = tmp_path / "figures.journal"
    assert load_checkpoint(path) == {}
    append_checkpoint(path, {"figure": "fig5", "quick": True,
                             "wall_seconds": 1.25})
    append_checkpoint(path, {"figure": "fig6", "quick": False,
                             "wall_seconds": 2.0})
    records = load_checkpoint(path)
    assert set(records) == {"fig5", "fig6"}
    assert records["fig5"]["quick"] is True
    assert records["fig6"]["wall_seconds"] == 2.0


def test_checkpoint_tolerates_torn_and_foreign_lines(tmp_path):
    path = tmp_path / "figures.journal"
    append_checkpoint(path, {"figure": "fig5", "quick": True})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"figure": "fig6", "quick": true, "schema"')  # torn
        handle.write("\n[1, 2, 3]\n")              # not a record
        handle.write('{"figure": "fig7", "schema": 999}\n')  # future schema
    records = load_checkpoint(path)
    assert set(records) == {"fig5"}


def test_checkpoint_keeps_latest_record_per_figure(tmp_path):
    path = tmp_path / "figures.journal"
    append_checkpoint(path, {"figure": "fig5", "quick": True,
                             "wall_seconds": 1.0})
    append_checkpoint(path, {"figure": "fig5", "quick": False,
                             "wall_seconds": 9.0})
    records = load_checkpoint(path)
    assert records["fig5"]["quick"] is False


# ----------------------------------------------------------------------
# Figure campaign (checkpoint/resume driver)
# ----------------------------------------------------------------------

@pytest.fixture
def fake_figures(monkeypatch):
    """Replace the figure registry with two instant fakes."""
    calls = []
    monkeypatch.setattr(figures_mod, "ALL_FIGURES", {
        "fakeA": lambda: calls.append("fakeA") or "A rendered",
        "fakeB": lambda: calls.append("fakeB") or "B rendered",
    })
    monkeypatch.setattr(figures_mod, "FIGURE_SCALES",
                        {"fakeA": None, "fakeB": None})
    return calls


def test_campaign_runs_then_resumes_from_checkpoint(tmp_path,
                                                    fake_figures):
    journal = tmp_path / "campaign.journal"
    report = run_campaign(checkpoint=journal, emit=lambda *_: None)
    assert report.completed == ["fakeA", "fakeB"]
    assert report.skipped == []
    again = run_campaign(checkpoint=journal, emit=lambda *_: None)
    assert again.completed == []
    assert again.skipped == ["fakeA", "fakeB"]
    assert fake_figures == ["fakeA", "fakeB"]  # each ran exactly once


def test_campaign_resumes_after_interrupt(tmp_path, monkeypatch,
                                          fake_figures):
    journal = tmp_path / "campaign.journal"
    registry = dict(figures_mod.ALL_FIGURES)

    def dies_first_time():
        if not (tmp_path / "survived").exists():
            (tmp_path / "survived").touch()
            raise KeyboardInterrupt
        fake_figures.append("fakeB")
        return "B rendered"

    registry["fakeB"] = dies_first_time
    monkeypatch.setattr(figures_mod, "ALL_FIGURES", registry)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(checkpoint=journal, emit=lambda *_: None)
    assert set(load_checkpoint(journal)) == {"fakeA"}
    report = run_campaign(checkpoint=journal, emit=lambda *_: None)
    assert report.skipped == ["fakeA"]
    assert report.completed == ["fakeB"]
    assert fake_figures == ["fakeA", "fakeB"]


def test_campaign_quick_and_full_checkpoints_are_distinct(tmp_path,
                                                          fake_figures):
    journal = tmp_path / "campaign.journal"
    run_campaign(quick=True, checkpoint=journal, emit=lambda *_: None)
    report = run_campaign(quick=False, checkpoint=journal,
                          emit=lambda *_: None)
    assert report.completed == ["fakeA", "fakeB"]  # not skipped
    assert report.skipped == []


def test_campaign_fresh_discards_checkpoint(tmp_path, fake_figures):
    journal = tmp_path / "campaign.journal"
    run_campaign(checkpoint=journal, emit=lambda *_: None)
    report = run_campaign(checkpoint=journal, fresh=True,
                          emit=lambda *_: None)
    assert report.completed == ["fakeA", "fakeB"]
    assert fake_figures == ["fakeA", "fakeB"] * 2


def test_campaign_flags_over_budget_figures(tmp_path, fake_figures):
    telemetry.enable()
    telemetry.reset()
    journal = tmp_path / "campaign.journal"
    report = run_campaign(names=["fakeA"], checkpoint=journal,
                          budget_seconds=0.0, emit=lambda *_: None)
    assert report.over_budget == ["fakeA"]
    assert counter_sum("campaign.over_budget") == 1
    rows = report.summary_rows()
    assert rows[0][1] == "over budget"


def test_campaign_rejects_unknown_figures(tmp_path, fake_figures):
    with pytest.raises(ExperimentError, match="unknown figure"):
        run_campaign(names=["fakeA", "fig99"],
                     checkpoint=tmp_path / "j", emit=lambda *_: None)


def test_campaign_report_summary_rows():
    report = CampaignReport(completed=["fig5"], skipped=["table1"],
                            wall_seconds={"fig5": 1.234})
    rows = report.summary_rows()
    assert rows[0] == ["table1", "checkpointed", "-"]
    assert rows[1] == ["fig5", "done", "1.2s"]


def test_parse_faults_accepts_queue_fault_kinds():
    specs = parse_faults("worker_exit:p=1,seed=3;"
                         "lease_stall:p=0.5,sleep=2;"
                         "heartbeat_stop:p=1")
    assert set(specs) == {"worker_exit", "lease_stall", "heartbeat_stop"}
    assert specs["worker_exit"].seed == 3
    assert specs["lease_stall"].sleep_seconds == 2.0
    assert specs["heartbeat_stop"].probability == 1.0


def test_campaign_report_summary_rows_lists_failed_figures():
    report = CampaignReport(completed=["fig5"], failed=["fig6"],
                            wall_seconds={"fig5": 1.0, "fig6": 2.5})
    rows = report.summary_rows()
    assert ["fig6", "failed (poisoned cells)", "2.5s"] in rows
