"""Parallel fan-out: jobs semantics, determinism, telemetry merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.config import skylake_config
from repro.errors import ExperimentError
from repro.experiments.figures import fig5
from repro.experiments.parallel import JOBS_ENV, fan_out, resolve_jobs
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TELEMETRY

_64K = 64 * 1024

_REQUESTS = (
    {"workload": "chaos", "runtime": "pypy", "jit": True,
     "nursery": _64K},
    {"workload": "nbody", "runtime": "pypy", "jit": True,
     "nursery": _64K},
    {"workload": "chaos", "runtime": "cpython"},
)


def test_resolve_jobs_defaults_and_env(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv(JOBS_ENV, "5")
    assert resolve_jobs(None) == 5
    assert resolve_jobs(2) == 2  # explicit wins over the env
    assert resolve_jobs(0) >= 1  # 0 = one per CPU
    monkeypatch.setenv(JOBS_ENV, "many")
    with pytest.raises(ExperimentError):
        resolve_jobs(None)
    with pytest.raises(ExperimentError):
        resolve_jobs(-2)


def _square_cell(runner, value):
    return value * value


def test_fan_out_preserves_submission_order():
    runner = ExperimentRunner()
    items = [(v,) for v in range(8)]
    assert fan_out(runner, _square_cell, items, jobs=1) \
        == fan_out(runner, _square_cell, items, jobs=3) \
        == [v * v for v in range(8)]


def test_run_many_matches_serial_runs():
    serial = ExperimentRunner()
    expected = [serial.run(**request) for request in _REQUESTS]
    parallel = ExperimentRunner()
    handles = parallel.run_many(_REQUESTS, jobs=2)
    assert len(handles) == len(expected)
    for want, got in zip(expected, handles):
        for name, column in want.trace.arrays().items():
            assert np.array_equal(column, got.trace.arrays()[name]), name
        assert want.output == got.output
        assert want.minor_gcs == got.minor_gcs
    # The handles were adopted: a repeat run() is a memory-cache hit.
    again = parallel.run(**_REQUESTS[0])
    assert again is handles[0]


def test_simulate_many_matches_serial_simulation():
    config = skylake_config()
    serial = ExperimentRunner()
    expected = [serial.simulate(serial.run(**request), config,
                                core="ooo").cycles
                for request in _REQUESTS]
    parallel = ExperimentRunner()
    cells = [(request, config) for request in _REQUESTS]
    results = parallel.simulate_many(cells, core="ooo", jobs=2)
    assert [r.cycles for r in results] == expected


def test_worker_metrics_merge_into_parent():
    telemetry.enable()
    telemetry.reset()
    runner = ExperimentRunner()
    runner.run_many(_REQUESTS, jobs=2)
    snapshot = TELEMETRY.metrics.snapshot()
    guest = {k: v for k, v in snapshot.items()
             if k.startswith("guest.instructions")}
    assert guest, snapshot
    assert sum(guest.values()) > 0


def test_figure_output_identical_across_jobs():
    runner_serial = ExperimentRunner()
    serial = fig5(runner_serial, quick=True, jobs=1)
    runner_parallel = ExperimentRunner()
    parallel = fig5(runner_parallel, quick=True, jobs=2)
    assert serial.rendered == parallel.rendered
    assert serial.data["shares"] == parallel.data["shares"]
    assert serial.data["average"] == parallel.data["average"]
