"""Branch predictor: learning, aliasing, BTB, sweep scaling."""

import numpy as np

from repro.config import BranchPredictorConfig
from repro.host.isa import FLAG_COND, FLAG_INDIRECT, FLAG_TAKEN, InstrKind
from repro.uarch.branch import BranchPredictor, simulate_branches


def test_always_taken_is_learned():
    predictor = BranchPredictor(BranchPredictorConfig())
    mispredicts = sum(predictor.predict_conditional(0x400000, True)
                      for _ in range(100))
    assert mispredicts <= 2


def test_alternating_pattern_is_learned_by_history():
    predictor = BranchPredictor(BranchPredictorConfig())
    outcomes = [bool(i % 2) for i in range(400)]
    mispredicts = sum(predictor.predict_conditional(0x400000, t)
                      for t in outcomes)
    # A 2-level predictor learns strict alternation almost perfectly.
    assert mispredicts < 40


def test_loop_exit_pattern():
    predictor = BranchPredictor(BranchPredictorConfig())
    # taken x7 then not-taken, repeated: history captures the period.
    outcomes = ([True] * 7 + [False]) * 60
    mispredicts = sum(predictor.predict_conditional(0x400100, t)
                      for t in outcomes)
    assert mispredicts / len(outcomes) < 0.15


def test_btb_monomorphic_indirect():
    predictor = BranchPredictor(BranchPredictorConfig())
    first = predictor.predict_indirect(0x400000, 0x500000)
    rest = sum(predictor.predict_indirect(0x400000, 0x500000)
               for _ in range(50))
    assert first is True
    assert rest == 0


def test_btb_polymorphic_indirect_mispredicts():
    predictor = BranchPredictor(BranchPredictorConfig())
    targets = [0x500000, 0x600000]
    mispredicts = sum(predictor.predict_indirect(0x400000, targets[i % 2])
                      for i in range(100))
    assert mispredicts > 90


def test_tiny_tables_alias():
    big = BranchPredictor(BranchPredictorConfig())
    tiny = BranchPredictor(BranchPredictorConfig(scale=1 / 256))
    # Many branch sites with conflicting biases: the tiny table aliases.
    big_miss = tiny_miss = 0
    for i in range(2000):
        pc = 0x400000 + 4 * (i % 64)
        taken = (i % 64) % 2 == 0
        big_miss += big.predict_conditional(pc, taken)
        tiny_miss += tiny.predict_conditional(pc, taken)
    assert tiny_miss > big_miss


def test_simulate_branches_alignment():
    n = 6
    arrays = {
        "pc": np.arange(n, dtype=np.int64) * 4,
        "kind": np.array([int(InstrKind.ALU), int(InstrKind.BRANCH),
                          int(InstrKind.BRANCH), int(InstrKind.ICALL),
                          int(InstrKind.ALU), int(InstrKind.BRANCH)],
                         dtype=np.int8),
        "flags": np.array([0, FLAG_COND | FLAG_TAKEN, FLAG_COND,
                           FLAG_TAKEN | FLAG_INDIRECT, 0,
                           FLAG_COND | FLAG_TAKEN], dtype=np.int8),
        "addr": np.array([0, 0, 0, 0x500000, 0, 0], dtype=np.int64),
    }
    mispredicted, stats = simulate_branches(arrays,
                                            BranchPredictorConfig())
    assert len(mispredicted) == n
    assert not mispredicted[0] and not mispredicted[4]
    assert stats.conditional == 3
    assert stats.indirect == 1


def test_unconditional_direct_branches_are_free():
    arrays = {
        "pc": np.zeros(4, dtype=np.int64),
        "kind": np.full(4, int(InstrKind.BRANCH), dtype=np.int8),
        "flags": np.full(4, FLAG_TAKEN, dtype=np.int8),  # not FLAG_COND
        "addr": np.zeros(4, dtype=np.int64),
    }
    mispredicted, stats = simulate_branches(arrays,
                                            BranchPredictorConfig())
    assert stats.conditional == 0
    assert stats.total_mispredicts == 0
    assert not mispredicted.any()


def test_stats_accuracy_properties():
    predictor = BranchPredictor(BranchPredictorConfig())
    for i in range(50):
        predictor.predict_conditional(0x400000, True)
    stats = predictor.stats
    assert 0.9 <= stats.conditional_accuracy <= 1.0
    assert stats.indirect_accuracy == 1.0
