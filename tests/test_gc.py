"""Generational GC: collection triggering, copying, barriers, safety."""

from conftest import run_source
from repro.config import pypy_runtime
from repro.frontend import compile_source
from repro.host import AddressSpace, HostMachine
from repro.vm.pypy import PyPyVM


ALLOC_HEAVY = """
keep = []
total = 0
for i in range(3000):
    item = (i, i * 2, str(i))
    if i % 100 == 0:
        keep.append(item)
    total = total + item[1]
print(str(total) + " " + str(len(keep)))
"""


def run_pypy_vm(source, nursery=64 * 1024, jit=False):
    program = compile_source(source, "<gc-test>")
    machine = HostMachine(AddressSpace(nursery_size=nursery),
                          max_instructions=30_000_000)
    vm = PyPyVM(machine, program,
                pypy_runtime(jit=jit, nursery_size=nursery))
    vm.run()
    return vm, machine


def test_minor_gc_triggers_when_nursery_fills():
    vm, _ = run_pypy_vm(ALLOC_HEAVY, nursery=64 * 1024)
    assert vm.stats.minor_gcs > 0


def test_bigger_nursery_means_fewer_gcs():
    small_vm, _ = run_pypy_vm(ALLOC_HEAVY, nursery=64 * 1024)
    big_vm, _ = run_pypy_vm(ALLOC_HEAVY, nursery=1024 * 1024)
    assert small_vm.stats.minor_gcs > 2 * max(1, big_vm.stats.minor_gcs)


def test_gc_preserves_semantics():
    expected_total = sum(2 * i for i in range(3000))
    vm, _ = run_pypy_vm(ALLOC_HEAVY, nursery=64 * 1024)
    assert vm.output == [f"{expected_total} 30"]


def test_survivors_move_to_old_space():
    vm, machine = run_pypy_vm(ALLOC_HEAVY, nursery=64 * 1024)
    # The long-lived list survived many collections; its storage must
    # have been promoted out of the nursery. (Items appended after the
    # final collection may legitimately still be young.)
    keep = vm.globals["keep"]
    assert machine.space.old.contains(keep.addr)
    promoted = sum(1 for item in keep.items
                   if machine.space.old.contains(item.addr))
    assert promoted >= len(keep.items) // 2


def test_nursery_resets_after_collection():
    vm, machine = run_pypy_vm(ALLOC_HEAVY, nursery=64 * 1024)
    assert machine.space.nursery.used < machine.space.nursery.size


def test_gc_emits_collection_work():
    from repro.categories import OverheadCategory as C
    vm, machine = run_pypy_vm(ALLOC_HEAVY, nursery=64 * 1024)
    counts = machine.trace.category_counts()
    assert counts[int(C.GARBAGE_COLLECTION)] > 0


def test_write_barrier_tracks_old_to_young():
    # After `keep` is promoted, appending young tuples must put it in
    # the remembered set so survivors stay reachable.
    source = """
keep = []
for i in range(1500):
    keep.append((i, i))
    if len(keep) > 8:
        keep.pop(0)
total = 0
for pair in keep:
    a, b = pair
    total = total + a
print(total)
"""
    vm, machine = run_pypy_vm(source, nursery=64 * 1024)
    expected = sum(range(1492, 1500))
    assert vm.output == [str(expected)]
    assert vm.stats.minor_gcs > 0


def test_large_objects_go_straight_to_old():
    source = "big = [0] * 5000\nprint(len(big))\n"
    vm, machine = run_pypy_vm(source, nursery=64 * 1024)
    assert vm.output == ["5000"]
    big = vm.globals["big"]
    assert not machine.space.nursery.contains(big.buffer_addr)


def test_major_gc_runs_when_old_grows():
    program_source = """
junk = []
total = 0
for i in range(4000):
    junk.append((i, i, i, i))
    if len(junk) > 400:
        junk = []
    total = total + 1
print(total)
"""
    program = compile_source(program_source, "<major>")
    nursery = 64 * 1024
    machine = HostMachine(AddressSpace(nursery_size=nursery),
                          max_instructions=60_000_000)
    config = pypy_runtime(jit=False, nursery_size=nursery)
    import dataclasses
    config = dataclasses.replace(
        config, gc=dataclasses.replace(config.gc,
                                       major_initial_threshold=256 * 1024))
    vm = PyPyVM(machine, program, config)
    vm.run()
    assert vm.output == ["4000"]
    assert vm.stats.major_gcs >= 1


def test_frames_survive_collection():
    # A deep call chain alive across a GC keeps valid frame storage.
    source = """
def build(depth):
    if depth == 0:
        chunk = []
        for i in range(3000):
            chunk.append((i, i))
        return len(chunk)
    return build(depth - 1) + 1

print(build(12))
"""
    vm, _ = run_pypy_vm(source, nursery=64 * 1024)
    assert vm.output == ["3012"]
    assert vm.stats.minor_gcs > 0
