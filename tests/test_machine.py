"""HostMachine: sites, emission, C calling convention, scopes."""

import pytest

from repro.categories import OverheadCategory as C
from repro.errors import VMError
from repro.host import AddressSpace, HostMachine
from repro.host.isa import FLAG_INDIRECT, FLAG_TAKEN, InstrKind


def machine():
    return HostMachine(AddressSpace())


def test_sites_are_stable_and_distinct():
    m = machine()
    a = m.site("ceval.dispatch")
    b = m.site("ceval.stack")
    assert a != b
    assert m.site("ceval.dispatch") == a
    assert m.site_table["ceval.dispatch"] == a


def test_jit_sites_are_not_deduplicated():
    m = machine()
    a = m.jit_site("trace.1", 64)
    b = m.jit_site("trace.1", 64)
    assert b > a
    assert m.space.jit_code.contains(a)


def test_emission_kinds_and_categories():
    m = machine()
    site = m.site("x")
    m.alu(site, int(C.DISPATCH), n=2)
    m.load(site, int(C.STACK), addr=0x1000)
    m.store(site, int(C.STACK), addr=0x1008)
    m.branch(site, int(C.RICH_CONTROL_FLOW), taken=True)
    arrays = m.trace.arrays()
    assert arrays["kind"].tolist() == [
        int(InstrKind.ALU), int(InstrKind.ALU), int(InstrKind.LOAD),
        int(InstrKind.STORE), int(InstrKind.BRANCH)]
    assert arrays["category"][0] == int(C.DISPATCH)
    assert arrays["flags"][4] & FLAG_TAKEN


def test_c_call_balances_stack_and_tags_category():
    m = machine()
    sp_before = m.sp
    with m.c_call("caller", "callee", indirect=True, args=2, saves=2):
        m.alu(m.site("callee.body"), int(C.EXECUTE))
    assert m.sp == sp_before
    assert m.c_call_depth == 0
    arrays = m.trace.arrays()
    categories = set(arrays["category"].tolist())
    assert int(C.C_FUNCTION_CALL) in categories
    assert int(C.EXECUTE) in categories
    # Exactly one indirect call instruction.
    icalls = (arrays["kind"] == int(InstrKind.ICALL)).sum()
    assert icalls == 1
    assert arrays["flags"][(arrays["kind"] ==
                            int(InstrKind.ICALL)).argmax()] & FLAG_INDIRECT
    # The call is paired with exactly one return.
    assert (arrays["kind"] == int(InstrKind.RET)).sum() == 1


def test_c_call_exit_without_enter():
    m = machine()
    with pytest.raises(VMError):
        m.c_call_exit(0)


def test_c_call_unwinds_on_exception():
    m = machine()
    with pytest.raises(RuntimeError):
        with m.c_call("a", "b"):
            raise RuntimeError("guest failure")
    assert m.c_call_depth == 0


def test_touch_range_granularity():
    m = machine()
    site = m.site("t")
    m.touch_range(site, int(C.GARBAGE_COLLECTION), addr=0x1000,
                  nbytes=256, write=True)
    arrays = m.trace.arrays()
    assert len(arrays["pc"]) == 4  # 256 bytes / 64-byte granularity
    assert all(k == int(InstrKind.STORE) for k in arrays["kind"])
    assert m.trace.column("addr").tolist() == [0x1000, 0x1040, 0x1080,
                                               0x10C0]


def test_touch_range_unaligned_covers_all_bytes():
    m = machine()
    m.touch_range(m.site("t"), 0, addr=0x103F, nbytes=2)
    addrs = m.trace.column("addr").tolist()
    assert addrs == [0x1000, 0x1040]


def test_suppression():
    m = machine()
    site = m.site("x")
    m.suppressed = True
    m.alu(site, 0, n=5)
    assert len(m.trace) == 0
    with m.unsuppressed():
        m.alu(site, 0, n=2)
    assert len(m.trace) == 2
    assert m.suppressed


def test_clib_scope_retags_emissions():
    m = machine()
    site = m.site("x")
    with m.clib_scope():
        m.alu(site, int(C.OBJECT_ALLOCATION), n=1)
        m.alu(site, int(C.GARBAGE_COLLECTION), n=1)
    m.alu(site, int(C.OBJECT_ALLOCATION), n=1)
    categories = m.trace.column("category").tolist()
    # Allocation inside C library code counts as C library time; the
    # collector keeps its own category; outside, normal tagging resumes.
    assert categories == [int(C.C_LIBRARY), int(C.GARBAGE_COLLECTION),
                          int(C.OBJECT_ALLOCATION)]


def test_instruction_budget():
    m = HostMachine(AddressSpace(), max_instructions=10)
    site = m.site("x")
    m.alu(site, 0, n=20)
    with pytest.raises(VMError):
        m.check_budget()


def test_origin_recorded():
    m = machine()
    m.origin = 0xBEEF
    m.alu(m.site("x"), 0)
    assert m.trace.column("origin")[0] == 0xBEEF
