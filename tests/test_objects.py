"""Guest object model: sizes, hashing, traversal, rendering."""

import pytest

from repro.errors import GuestTypeError
from repro.objects.model import (
    FALSE,
    NONE,
    TRUE,
    PyBool,
    PyDict,
    PyFloat,
    PyInstance,
    PyInt,
    PyClass,
    PyFunc,
    PyList,
    PyRange,
    PyStr,
    PyTuple,
    gc_children,
    guest_repr,
    raw_key,
)


def test_sizes_scale_with_payload():
    assert PyStr("").size_bytes() < PyStr("x" * 100).size_bytes()
    assert PyTuple(()).size_bytes() < \
        PyTuple((NONE, NONE, NONE)).size_bytes()
    small = PyList([])
    big = PyList([NONE] * 100)
    assert big.buffer_bytes() > small.buffer_bytes()


def test_dict_table_grows_with_slots():
    d = PyDict()
    base = d.table_bytes()
    d.table_slots *= 4
    assert d.table_bytes() == base * 4


def test_truthiness():
    assert PyInt(1).is_truthy() and not PyInt(0).is_truthy()
    assert PyFloat(0.5).is_truthy() and not PyFloat(0.0).is_truthy()
    assert PyStr("a").is_truthy() and not PyStr("").is_truthy()
    assert PyList([NONE]).is_truthy() and not PyList([]).is_truthy()
    assert not NONE.is_truthy()
    assert TRUE.is_truthy() and not FALSE.is_truthy()
    assert PyRange(0, 3).is_truthy() and not PyRange(3, 3).is_truthy()


def test_range_len():
    assert len(PyRange(0, 10)) == 10
    assert len(PyRange(2, 10, 3)) == 3
    assert len(PyRange(10, 0, -3)) == 4
    assert len(PyRange(5, 5)) == 0


def test_raw_key_identity_semantics():
    assert raw_key(PyInt(5)) == 5
    assert raw_key(PyStr("a")) == "a"
    assert raw_key(TRUE) == 1  # bool/int key unification, like Python
    assert raw_key(NONE) is None
    assert raw_key(PyTuple((PyInt(1), PyStr("b")))) == (1, "b")


def test_raw_key_unhashable():
    with pytest.raises(GuestTypeError):
        raw_key(PyList([]))
    with pytest.raises(GuestTypeError):
        raw_key(PyDict())


def test_gc_children_coverage():
    inner = PyInt(1)
    lst = PyList([inner])
    tup = PyTuple((lst,))
    d = PyDict()
    d.entries["k"] = (PyStr("k"), tup)
    cls = PyClass("C", {"m": PyFunc(None)})
    inst = PyInstance(cls)
    inst.attrs["x"] = d
    reachable = set()
    queue = [inst]
    while queue:
        obj = queue.pop()
        if id(obj) in reachable:
            continue
        reachable.add(id(obj))
        queue.extend(gc_children(obj))
    assert id(inner) in reachable
    assert id(lst) in reachable
    assert id(d) in reachable
    assert id(cls) in reachable


def test_guest_repr_matches_python():
    lst = PyList([PyInt(1), PyStr("a"), PyBool(True), NONE])
    assert guest_repr(lst) == "[1, 'a', True, None]"
    tup = PyTuple((PyFloat(1.5),))
    assert guest_repr(tup) == "(1.5)" or guest_repr(tup) == "(1.5,)"
    d = PyDict()
    d.entries[1] = (PyInt(1), PyStr("one"))
    assert guest_repr(d) == "{1: 'one'}"


def test_instance_type_name_is_class_name():
    cls = PyClass("Widget", {})
    inst = PyInstance(cls)
    assert inst.type_name == "Widget"
