"""Cache hierarchy: LRU behavior, service levels, miss accounting."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MachineConfig, skylake_config
from repro.host.isa import InstrKind
from repro.uarch.cache import (
    SERVICE_L1,
    SERVICE_L2,
    SERVICE_L3,
    SERVICE_MEM,
    SERVICE_NONE,
    CacheHierarchy,
    _Level,
    simulate_cache_hierarchy,
)


def small_level(size=1024, ways=2, line=64):
    return _Level(CacheConfig("t", size=size, ways=ways, line_size=line))


def test_cold_miss_then_hit():
    level = small_level()
    assert level.access(5, False) is False
    assert level.access(5, False) is True
    assert level.stats.accesses == 2
    assert level.stats.misses == 1


def test_lru_eviction_order():
    # 2-way set: third distinct line in one set evicts the least recent.
    level = small_level(size=1024, ways=2, line=64)  # 8 sets
    a, b, c = 0, 8, 16  # all map to set 0
    level.access(a, False)
    level.access(b, False)
    level.access(a, False)         # a is now MRU
    level.access(c, False)         # evicts b
    assert level.access(a, False) is True
    assert level.access(b, False) is False


def test_dirty_eviction_counts_writeback():
    level = small_level(size=1024, ways=2, line=64)
    level.access(0, True)          # dirty
    level.access(8, False)
    level.access(16, False)        # evicts line 0 (dirty)
    assert level.stats.writebacks == 1


def test_hierarchy_service_levels():
    hierarchy = CacheHierarchy(skylake_config())
    line = 0x1234
    assert hierarchy.data_access(line, False) == SERVICE_MEM
    assert hierarchy.data_access(line, False) == SERVICE_L1
    # Touch enough lines to push it out of L1 but not out of L2.
    l1_lines = hierarchy.l1d.config.size // 64
    for i in range(l1_lines * 2):
        hierarchy.data_access(0x100000 + i, False)
    assert hierarchy.data_access(line, False) in (SERVICE_L2, SERVICE_L3)


def make_mem_trace(addrs, write=False):
    arrays = {
        "pc": np.arange(len(addrs), dtype=np.int64) * 4 + 0x400000,
        "kind": np.full(len(addrs),
                        int(InstrKind.STORE if write else InstrKind.LOAD),
                        dtype=np.int8),
        "addr": np.array(addrs, dtype=np.int64),
    }
    return arrays


def test_simulate_assigns_dlevel_only_to_memory_ops():
    arrays = {
        "pc": np.array([0x400000, 0x400004], dtype=np.int64),
        "kind": np.array([int(InstrKind.ALU), int(InstrKind.LOAD)],
                         dtype=np.int8),
        "addr": np.array([0, 0x10000], dtype=np.int64),
    }
    result = simulate_cache_hierarchy(arrays, skylake_config())
    assert result.dlevel[0] == SERVICE_NONE
    assert result.dlevel[1] == SERVICE_MEM


def test_working_set_that_fits_hits():
    # Repeatedly touching 128 lines (8 kB) must be nearly all L1 hits.
    addrs = [0x100000 + 64 * (i % 128) for i in range(2048)]
    result = simulate_cache_hierarchy(make_mem_trace(addrs),
                                      skylake_config())
    hits = (result.dlevel == SERVICE_L1).sum()
    assert hits >= 2048 - 128


def test_streaming_misses_when_larger_than_llc():
    config = skylake_config().with_llc_size(256 * 1024)
    # Stream 4 MB twice: the second pass must still miss the 256 kB LLC.
    lines = (4 * 1024 * 1024) // 64
    addrs = [0x2000_0000 + 64 * i for i in range(lines)] * 2
    result = simulate_cache_hierarchy(make_mem_trace(addrs), config)
    assert result.stats["L3"].miss_rate > 0.9


def test_instruction_fetch_line_sharing():
    # 16 sequential PCs on one line cost a single I-cache access.
    arrays = {
        "pc": np.arange(16, dtype=np.int64) * 4 + 0x400000,
        "kind": np.full(16, int(InstrKind.ALU), dtype=np.int8),
        "addr": np.zeros(16, dtype=np.int64),
    }
    result = simulate_cache_hierarchy(arrays, skylake_config())
    assert result.stats["L1I"].accesses == 1


def test_larger_llc_reduces_misses():
    lines = (1024 * 1024) // 64
    addrs = [0x2000_0000 + 64 * i for i in range(lines)] * 3
    small = simulate_cache_hierarchy(
        make_mem_trace(addrs), skylake_config().with_llc_size(256 * 1024))
    big = simulate_cache_hierarchy(
        make_mem_trace(addrs), skylake_config().with_llc_size(4 * 1024 * 1024))
    assert big.stats["L3"].misses < small.stats["L3"].misses


def test_larger_lines_help_sequential_streams():
    addrs = [0x3000_0000 + 64 * i for i in range(4096)]
    base = simulate_cache_hierarchy(make_mem_trace(addrs),
                                    skylake_config())
    wide = simulate_cache_hierarchy(make_mem_trace(addrs),
                                    skylake_config().with_line_size(256))
    assert wide.stats["L1D"].misses < base.stats["L1D"].misses


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_miss_invariants(line_ids):
    level = small_level(size=2048, ways=4, line=64)
    for line in line_ids:
        level.access(line, False)
    stats = level.stats
    assert 0 <= stats.misses <= stats.accesses
    assert stats.misses >= len(set(line_ids)) - level.config.num_sets \
        * level.ways
    # Evictions can never exceed fills (= misses).
    assert stats.evictions <= stats.misses
