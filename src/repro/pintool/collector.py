"""Per-PC statistics collection (the Pin-tool half of Section IV-B.1).

The paper's Pin tool exports, for each static instruction of interest,
the total execution time at that PC, plus the origin PC for functions
annotated at function granularity. :class:`StatsCollector` reproduces
that export from a finished trace; the result can be serialized and fed
to post-processing separately, mirroring the paper's two-stage pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..host.trace import InstructionTrace


@dataclass
class PCStats:
    """Aggregate statistics for one static instruction."""

    pc: int
    count: int = 0
    cycles: float = 0.0
    #: cycles attributed per origin PC (caller-dependent sites only).
    by_origin: dict[int, float] = field(default_factory=dict)


class StatsCollector:
    """Aggregates a trace into per-PC statistics."""

    def __init__(self, track_origins: bool = True) -> None:
        self.track_origins = track_origins
        self.stats: dict[int, PCStats] = {}
        self.total_instructions = 0
        self.total_cycles = 0.0

    def collect(self, trace: InstructionTrace,
                cycles: np.ndarray | None = None) -> None:
        """Aggregate one trace; ``cycles`` defaults to one per instruction."""
        arrays = trace.arrays()
        pcs = arrays["pc"]
        n = len(pcs)
        if n == 0:
            return
        if cycles is None:
            cycles = np.ones(n, dtype=np.float64)
        if len(cycles) != n:
            raise ValueError("cycles array must match trace length")
        self.total_instructions += n
        self.total_cycles += float(cycles.sum())

        unique_pcs, inverse = np.unique(pcs, return_inverse=True)
        counts = np.bincount(inverse)
        cycle_sums = np.bincount(inverse, weights=cycles)
        for pc, count, cyc in zip(unique_pcs.tolist(), counts.tolist(),
                                  cycle_sums.tolist()):
            entry = self.stats.get(pc)
            if entry is None:
                entry = PCStats(pc=pc)
                self.stats[pc] = entry
            entry.count += count
            entry.cycles += cyc

        if self.track_origins:
            origins = arrays["origin"]
            keys = (pcs.astype(np.int64) << 20) ^ origins.astype(np.int64)
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            key_cycles = np.bincount(inverse, weights=cycles)
            first_idx = np.zeros(len(unique_keys), dtype=np.int64)
            seen: dict[int, int] = {}
            keys_list = keys.tolist()
            for i, key in enumerate(keys_list):
                if key not in seen:
                    seen[key] = i
            for j, key in enumerate(unique_keys.tolist()):
                first_idx[j] = seen[key]
            for j in range(len(unique_keys)):
                i = int(first_idx[j])
                pc = int(pcs[i])
                origin = int(origins[i])
                entry = self.stats[pc]
                entry.by_origin[origin] = (
                    entry.by_origin.get(origin, 0.0)
                    + float(key_cycles[j]))

    def export(self, path: str | Path) -> None:
        """Serialize the per-PC statistics (the Pin tool's output file)."""
        payload = {
            "total_instructions": self.total_instructions,
            "total_cycles": self.total_cycles,
            "pcs": [
                {
                    "pc": entry.pc,
                    "count": entry.count,
                    "cycles": entry.cycles,
                    "by_origin": {str(k): v
                                  for k, v in entry.by_origin.items()},
                }
                for entry in self.stats.values()
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "StatsCollector":
        """Reload an exported statistics file."""
        payload = json.loads(Path(path).read_text())
        collector = cls()
        collector.total_instructions = payload["total_instructions"]
        collector.total_cycles = payload["total_cycles"]
        for item in payload["pcs"]:
            entry = PCStats(pc=item["pc"], count=item["count"],
                            cycles=item["cycles"])
            entry.by_origin = {int(k): v
                               for k, v in item["by_origin"].items()}
            collector.stats[entry.pc] = entry
        return collector
