"""Annotation tables for the interpreter binary.

Most interpreter instructions carry their category directly in the trace
(the "instruction granularity" case of Section IV-B). Functions whose
category depends on the *caller* — the paper's example is the dictionary
lookup used both for variable name resolution and for guest-program map
operations — are emitted with the UNRESOLVED category plus an origin PC,
and resolved here.

The table is keyed on site *names*; at post-processing time it is bound
to the concrete PCs of a particular :class:`~repro.host.HostMachine`,
mirroring how the paper matches source lines to PC values via debug info.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..categories import OverheadCategory

_NAME = OverheadCategory.NAME_RESOLUTION
_EXEC = OverheadCategory.EXECUTE


@dataclass
class AnnotationTable:
    """Origin-dependent category rules for function-granularity sites."""

    #: origin site name -> category for UNRESOLVED instructions reached
    #: from that origin.
    origin_rules: dict[str, OverheadCategory] = field(default_factory=dict)
    #: Category when no origin rule matches.
    default_category: OverheadCategory = _EXEC

    def bind(self, site_table: dict[str, int]) -> dict[int, int]:
        """Map concrete origin PCs to category values for one machine.

        Site names are interned to PC blocks per machine, so the binding
        must be redone for each :class:`HostMachine` — exactly once, like
        the paper's one-time interpreter annotation.
        """
        bound: dict[int, int] = {}
        for name, category in self.origin_rules.items():
            pc = site_table.get(name)
            if pc is not None:
                bound[pc] = int(category)
        return bound


def default_annotations() -> AnnotationTable:
    """The annotation table for the modeled CPython/PyPy interpreters.

    ``lookdict`` reached from name-binding opcodes is name resolution;
    reached from guest map operations it is part of the program's own
    work (EXECUTE) — the caller-dependent case of Section IV-B.
    """
    return AnnotationTable(origin_rules={
        "ceval.handler.LOAD_GLOBAL": _NAME,
        "ceval.handler.STORE_GLOBAL": _NAME,
        "ceval.handler.LOAD_METHOD": _NAME,
        "ceval.handler.LOAD_ATTR": _NAME,
        "ceval.handler.STORE_ATTR": _NAME,
        "ceval.handler.BINARY_SUBSCR.dict": _EXEC,
        "ceval.handler.STORE_SUBSCR.dict": _EXEC,
        "ceval.handler.COMPARE_OP.contains": _EXEC,
    }, default_category=_EXEC)
