"""Pin-analog instrumentation and post-processing (Section IV-B).

The paper instruments the interpreter binary once — annotating each
static instruction (or whole function) with an overhead category — and
reuses the annotation for every guest program. This package mirrors that
pipeline:

* :mod:`~repro.pintool.collector` aggregates per-PC statistics from a
  trace, including origin PCs for caller-dependent functions.
* :mod:`~repro.pintool.annotate` holds the annotation tables: category
  rules per site name and the origin-dependent rules for shared helpers
  such as ``lookdict``.
* :mod:`~repro.pintool.postprocess` resolves function-granularity
  (UNRESOLVED) instructions using the origin rules and produces the final
  per-category cycle attribution.
"""

from .annotate import AnnotationTable, default_annotations
from .collector import PCStats, StatsCollector
from .postprocess import Breakdown, compute_breakdown, resolve_categories

__all__ = [
    "AnnotationTable", "default_annotations", "PCStats", "StatsCollector",
    "Breakdown", "compute_breakdown", "resolve_categories",
]
