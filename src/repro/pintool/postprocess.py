"""Post-processing: origin resolution and breakdown assembly (IV-B.3).

Takes a finished trace plus the machine's site table, resolves every
UNRESOLVED instruction to a concrete category using the annotation
table's origin rules, attributes simple-core cycles per category, and
returns a :class:`Breakdown` — the data behind Figures 4, 5, 6, 11 and
13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..categories import (
    C_LIBRARY_SHARE_CATEGORIES,
    LANGUAGE_FEATURE_CATEGORIES,
    INTERPRETER_CATEGORIES,
    OVERHEAD_CATEGORIES,
    OverheadCategory,
    label_of,
)
from ..config import MachineConfig, skylake_config
from ..host.machine import HostMachine
from ..host.trace import InstructionTrace
from ..uarch.cache import simulate_cache_hierarchy
from ..uarch.simple_core import simple_core_cycles
from .annotate import AnnotationTable, default_annotations

_UNRESOLVED = int(OverheadCategory.UNRESOLVED)


def resolve_categories(trace: InstructionTrace,
                       site_table: dict[str, int],
                       annotations: AnnotationTable | None = None,
                       ) -> np.ndarray:
    """Return the category column with UNRESOLVED entries resolved.

    Resolution uses the recorded origin PC and the annotation table, the
    way the paper's post-processing maps (function, origin PC) pairs to
    categories.
    """
    if annotations is None:
        annotations = default_annotations()
    arrays = trace.arrays()
    categories = arrays["category"].astype(np.int64).copy()
    unresolved = categories == _UNRESOLVED
    if not unresolved.any():
        return categories
    bound = annotations.bind(site_table)
    origins = arrays["origin"][unresolved]
    resolved = np.full(len(origins), int(annotations.default_category),
                       dtype=np.int64)
    for origin_pc, category in bound.items():
        resolved[origins == origin_pc] = category
    categories[unresolved] = resolved
    return categories


@dataclass
class Breakdown:
    """Per-category cycle attribution for one run."""

    runtime: str
    workload: str
    cycles: dict[OverheadCategory, float] = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    def share(self, category: OverheadCategory) -> float:
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.cycles.get(category, 0.0) / total

    def group_share(self, categories) -> float:
        total = self.total_cycles
        if total == 0:
            return 0.0
        return sum(self.cycles.get(c, 0.0) for c in categories) / total

    @property
    def overhead_share(self) -> float:
        """Fraction of cycles in Table II overhead categories."""
        return self.group_share(OVERHEAD_CATEGORIES)

    @property
    def language_share(self) -> float:
        """Figure 4(a): additional + dynamic language features."""
        return self.group_share(LANGUAGE_FEATURE_CATEGORIES)

    @property
    def interpreter_share(self) -> float:
        """Figure 4(b): interpreter operations."""
        return self.group_share(INTERPRETER_CATEGORIES)

    @property
    def c_library_share(self) -> float:
        return self.group_share(C_LIBRARY_SHARE_CATEGORIES)

    @property
    def c_function_call_share(self) -> float:
        return self.share(OverheadCategory.C_FUNCTION_CALL)

    @property
    def gc_share(self) -> float:
        return self.share(OverheadCategory.GARBAGE_COLLECTION)

    def top_categories(self, n: int = 5) -> list[tuple[str, float]]:
        ranked = sorted(self.cycles.items(), key=lambda kv: -kv[1])
        return [(label_of(cat), self.share(cat)) for cat, _ in ranked[:n]]


def compute_breakdown(trace: InstructionTrace, machine: HostMachine,
                      config: MachineConfig | None = None,
                      runtime: str = "cpython",
                      workload: str = "<unknown>",
                      annotations: AnnotationTable | None = None,
                      ) -> Breakdown:
    """Full pipeline: cache sim, simple-core cycles, origin resolution."""
    if config is None:
        config = skylake_config()
    arrays = trace.arrays()
    cache_result = simulate_cache_hierarchy(arrays, config)
    cycles = simple_core_cycles(cache_result.dlevel, cache_result.ilevel,
                                config)
    categories = resolve_categories(trace, machine.site_table, annotations)
    sums = np.bincount(categories, weights=cycles, minlength=32)
    breakdown = Breakdown(runtime=runtime, workload=workload)
    for category in OverheadCategory:
        value = float(sums[int(category)])
        if value > 0:
            breakdown.cycles[category] = value
    return breakdown
