"""Machine and run-time configuration (Table I of the paper).

The defaults mirror the paper's ZSim configuration, which mimics an Intel
Skylake processor: a 4-way out-of-order core at 3.4 GHz, a 2-level 2-bit
branch predictor, 64 kB L1 caches, a 256 kB L2, a 2 MB last-level cache
slice (one quarter of the 8 MB shared L3), and DDR4-2400 memory.

All configuration objects are frozen dataclasses; experiment sweeps create
modified copies with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .errors import ConfigError

KB = 1024
MB = 1024 * KB


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: size, associativity, line size, and hit latency."""

    name: str
    size: int
    ways: int
    line_size: int = 64
    latency: int = 4

    def __post_init__(self) -> None:
        _require(self.size > 0, f"{self.name}: size must be positive")
        _require(self.ways > 0, f"{self.name}: ways must be positive")
        _require(_is_pow2(self.line_size),
                 f"{self.name}: line size must be a power of two")
        _require(self.size % (self.ways * self.line_size) == 0,
                 f"{self.name}: size must be divisible by ways * line size")
        _require(_is_pow2(self.num_sets),
                 f"{self.name}: number of sets must be a power of two")
        _require(self.latency >= 1, f"{self.name}: latency must be >= 1")

    @property
    def num_sets(self) -> int:
        return self.size // (self.ways * self.line_size)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Two-level branch predictor with 2-bit counters, plus a BTB.

    Table I: "2-level 2-bit BP with 2048x18b L1, 16384x2b L2". The ``scale``
    knob multiplies both table sizes, matching the relative sweep axis of
    Figure 7(b) (0.5x .. 8x).
    """

    l1_entries: int = 2048
    history_bits: int = 18
    l2_entries: int = 16384
    btb_entries: int = 4096
    mispredict_penalty: int = 17
    scale: float = 1.0

    def __post_init__(self) -> None:
        _require(self.l1_entries > 0, "BP: l1_entries must be positive")
        _require(self.l2_entries > 0, "BP: l2_entries must be positive")
        _require(0 < self.history_bits <= 32,
                 "BP: history_bits must be in (0, 32]")
        _require(self.scale > 0, "BP: scale must be positive")
        _require(self.mispredict_penalty >= 1,
                 "BP: mispredict penalty must be >= 1")

    @property
    def scaled_l1_entries(self) -> int:
        return max(4, int(self.l1_entries * self.scale))

    @property
    def scaled_l2_entries(self) -> int:
        return max(16, int(self.l2_entries * self.scale))

    @property
    def scaled_btb_entries(self) -> int:
        return max(16, int(self.btb_entries * self.scale))

    def scaled(self, factor: float) -> "BranchPredictorConfig":
        """Return a copy with the sweep scale set to ``factor``."""
        return dataclasses.replace(self, scale=factor)


@dataclass(frozen=True)
class MemoryConfig:
    """DDR4-2400-like main memory: fixed latency plus finite bandwidth."""

    latency: int = 173
    bandwidth_mbps: int = 19200
    frequency_ghz: float = 3.4

    def __post_init__(self) -> None:
        _require(self.latency >= 1, "memory: latency must be >= 1")
        _require(self.bandwidth_mbps > 0,
                 "memory: bandwidth must be positive")
        _require(self.frequency_ghz > 0,
                 "memory: core frequency must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """Sustainable memory bytes per CPU cycle at the core frequency."""
        bytes_per_second = self.bandwidth_mbps * 1e6
        cycles_per_second = self.frequency_ghz * 1e9
        return bytes_per_second / cycles_per_second


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table I)."""

    issue_width: int = 4
    fetch_bytes: int = 16
    rob_entries: int = 224
    load_queue: int = 72
    store_queue: int = 56

    def __post_init__(self) -> None:
        _require(self.issue_width >= 1, "core: issue width must be >= 1")
        _require(self.fetch_bytes >= 4, "core: fetch bytes must be >= 4")
        _require(self.rob_entries >= self.issue_width,
                 "core: ROB must hold at least one issue group")
        _require(self.load_queue >= 1, "core: load queue must be >= 1")
        _require(self.store_queue >= 1, "core: store queue must be >= 1")


@dataclass(frozen=True)
class MachineConfig:
    """Complete simulated machine: core, predictor, caches, memory."""

    core: CoreConfig = CoreConfig()
    branch: BranchPredictorConfig = BranchPredictorConfig()
    l1i: CacheConfig = CacheConfig("L1I", 64 * KB, 8, latency=4)
    l1d: CacheConfig = CacheConfig("L1D", 64 * KB, 8, latency=4)
    l2: CacheConfig = CacheConfig("L2", 256 * KB, 4, latency=12)
    l3: CacheConfig = CacheConfig("L3", 2 * MB, 16, latency=42)
    memory: MemoryConfig = MemoryConfig()

    def __post_init__(self) -> None:
        line = self.l1d.line_size
        for cache in (self.l1i, self.l2, self.l3):
            _require(cache.line_size == line,
                     "all cache levels must share one line size")

    def with_llc_size(self, size: int) -> "MachineConfig":
        """Return a copy with the last-level cache resized (Fig 7c)."""
        ways = self.l3.ways
        while size % (ways * self.l3.line_size) != 0 and ways > 1:
            ways //= 2
        return dataclasses.replace(
            self, l3=dataclasses.replace(self.l3, size=size, ways=ways))

    def with_line_size(self, line_size: int) -> "MachineConfig":
        """Return a copy with every cache level using ``line_size`` (Fig 7d)."""
        def resize(cache: CacheConfig) -> CacheConfig:
            ways = cache.ways
            while cache.size % (ways * line_size) != 0 and ways > 1:
                ways //= 2
            sets = cache.size // (ways * line_size)
            while sets & (sets - 1):  # force power-of-two sets
                ways *= 2
                sets = cache.size // (ways * line_size)
            return dataclasses.replace(cache, line_size=line_size, ways=ways)

        return dataclasses.replace(
            self, l1i=resize(self.l1i), l1d=resize(self.l1d),
            l2=resize(self.l2), l3=resize(self.l3))

    def with_memory_latency(self, latency: int) -> "MachineConfig":
        """Return a copy with a different memory latency (Fig 7e)."""
        return dataclasses.replace(
            self, memory=dataclasses.replace(self.memory, latency=latency))

    def with_memory_bandwidth(self, mbps: int) -> "MachineConfig":
        """Return a copy with a different memory bandwidth (Fig 7f)."""
        return dataclasses.replace(
            self,
            memory=dataclasses.replace(self.memory, bandwidth_mbps=mbps))

    def with_issue_width(self, width: int) -> "MachineConfig":
        """Return a copy with a different issue width (Fig 7a)."""
        rob = max(self.core.rob_entries, width)
        return dataclasses.replace(
            self, core=dataclasses.replace(
                self.core, issue_width=width, rob_entries=rob))

    def with_branch_scale(self, scale: float) -> "MachineConfig":
        """Return a copy with branch predictor tables scaled (Fig 7b)."""
        return dataclasses.replace(self, branch=self.branch.scaled(scale))


def skylake_config() -> MachineConfig:
    """The paper's baseline machine (Table I).

    The 2 MB L3 models the one-quarter slice of the 8 MB shared LLC that
    the paper assumes is available to each physical core.
    """
    return MachineConfig()


def scaled_config(shift: int = 0) -> MachineConfig:
    """Table I machine with every cache level scaled down by ``2**shift``.

    The memory-management experiments (Figures 10-17) depend only on the
    *ratio* between nursery and cache sizes, so scaled runs keep the
    paper's shapes while shrinking simulation volume. ``shift=0`` is the
    full Table I machine; ``shift=3`` gives an 8 kB L1 / 32 kB L2 /
    256 kB LLC machine whose "paper-equivalent" nursery axis is scaled
    the same way by the experiment harness.
    """
    if shift < 0 or shift > 6:
        raise ConfigError("scaled_config shift must be in [0, 6]")
    base = MachineConfig()

    def scale(cache: CacheConfig) -> CacheConfig:
        size = cache.size >> shift
        ways = cache.ways
        while size < ways * cache.line_size:
            ways //= 2
        return dataclasses.replace(cache, size=size, ways=max(1, ways))

    return dataclasses.replace(
        base, l1i=scale(base.l1i), l1d=scale(base.l1d),
        l2=scale(base.l2), l3=scale(base.l3))


@dataclass(frozen=True)
class GCConfig:
    """Generational GC parameters for the PyPy-model runtime.

    ``nursery_size`` is the swept axis of Figures 10-17. The paper's
    baseline statically sizes the nursery at half the LLC (1 MB for the
    2 MB cache).
    """

    nursery_size: int = 1 * MB
    #: Minor collections promote objects that survived this many minor GCs.
    promotion_age: int = 1
    #: A major (old-space) collection runs when the old space has grown by
    #: this factor since the last major collection.
    major_growth_factor: float = 1.82
    #: Initial old-space threshold before the first major collection.
    major_initial_threshold: int = 16 * MB

    def __post_init__(self) -> None:
        _require(self.nursery_size >= 16 * KB,
                 "GC: nursery must be at least 16 kB")
        _require(self.promotion_age >= 1, "GC: promotion age must be >= 1")
        _require(self.major_growth_factor > 1.0,
                 "GC: major growth factor must exceed 1.0")


@dataclass(frozen=True)
class JITConfig:
    """Tracing-JIT parameters for the PyPy-model runtime."""

    enabled: bool = True
    #: A loop header becomes hot after this many executions.
    hot_loop_threshold: int = 30
    #: A function becomes hot after this many calls.
    hot_call_threshold: int = 60
    #: A guard that fails this many times triggers a bridge compilation.
    guard_bridge_threshold: int = 20
    #: Abort tracing beyond this many recorded operations.
    trace_limit: int = 4000
    #: Host instructions of compiler work modeled per recorded operation.
    compile_cost_per_op: int = 60

    def __post_init__(self) -> None:
        _require(self.hot_loop_threshold >= 1,
                 "JIT: hot loop threshold must be >= 1")
        _require(self.hot_call_threshold >= 1,
                 "JIT: hot call threshold must be >= 1")
        _require(self.guard_bridge_threshold >= 1,
                 "JIT: guard bridge threshold must be >= 1")
        _require(self.trace_limit >= 16, "JIT: trace limit must be >= 16")
        _require(self.compile_cost_per_op >= 1,
                 "JIT: compile cost must be >= 1")


@dataclass(frozen=True)
class RuntimeConfig:
    """Which runtime to model, and with what parameters.

    ``kind`` selects between the CPython-model interpreter, the PyPy model
    (with the JIT enabled or disabled), and the V8-analog runtime.
    """

    kind: str = "cpython"
    gc: GCConfig = GCConfig()
    jit: JITConfig = JITConfig()

    _KINDS = ("cpython", "pypy", "v8")

    def __post_init__(self) -> None:
        _require(self.kind in self._KINDS,
                 f"runtime kind must be one of {self._KINDS}")

    @property
    def uses_jit(self) -> bool:
        return self.kind in ("pypy", "v8") and self.jit.enabled

    def with_nursery(self, nursery_size: int) -> "RuntimeConfig":
        """Return a copy with a different nursery size (Figs 10-17)."""
        return dataclasses.replace(
            self, gc=dataclasses.replace(self.gc, nursery_size=nursery_size))

    def with_jit(self, enabled: bool) -> "RuntimeConfig":
        """Return a copy with the JIT toggled (PyPy w/ vs w/o JIT)."""
        return dataclasses.replace(
            self, jit=dataclasses.replace(self.jit, enabled=enabled))


def cpython_runtime() -> RuntimeConfig:
    """The CPython 2.7-model interpreter-only runtime."""
    return RuntimeConfig(kind="cpython")


def pypy_runtime(jit: bool = True, nursery_size: int = 1 * MB,
                 ) -> RuntimeConfig:
    """The PyPy 5.3-model runtime, with or without JIT."""
    return RuntimeConfig(
        kind="pypy",
        gc=GCConfig(nursery_size=nursery_size),
        jit=JITConfig(enabled=jit))


def v8_runtime(nursery_size: int = 1 * MB) -> RuntimeConfig:
    """The V8 4.2-analog JavaScript runtime.

    V8's CrankShaft-era compiler is method-oriented: functions get hot
    faster than PyPy's loops do, and per-op compile cost is higher.
    """
    return RuntimeConfig(
        kind="v8",
        gc=GCConfig(nursery_size=nursery_size),
        jit=JITConfig(hot_loop_threshold=50, hot_call_threshold=20,
                      compile_cost_per_op=80))
