"""Execution-time breakdowns (Figures 4, 5, 6 and the C-library split).

Breakdowns use the simple core model so that every cycle belongs to one
instruction and hence one category (Section IV-B.2), and resolve
caller-dependent sites through the pintool's origin rules.
"""

from __future__ import annotations

import numpy as np

from ..categories import OverheadCategory
from ..config import MachineConfig, skylake_config
from ..host.isa import InstrKind
from ..pintool.annotate import AnnotationTable
from ..pintool.postprocess import Breakdown, resolve_categories
from ..uarch.cache import simulate_cache_hierarchy
from ..uarch.simple_core import simple_core_cycles
from ..experiments.runner import ExperimentRunner, RunHandle

_CCALL = int(OverheadCategory.C_FUNCTION_CALL)


def breakdown_for_run(handle: RunHandle,
                      config: MachineConfig | None = None,
                      annotations: AnnotationTable | None = None,
                      ) -> Breakdown:
    """Category breakdown of one finished run."""
    if config is None:
        config = skylake_config()
    arrays = handle.trace.arrays()
    cache_result = simulate_cache_hierarchy(arrays, config)
    cycles = simple_core_cycles(cache_result.dlevel, cache_result.ilevel,
                                config)
    categories = resolve_categories(handle.trace, handle.site_table,
                                    annotations)
    sums = np.bincount(categories, weights=cycles, minlength=32)
    breakdown = Breakdown(runtime=handle.runtime, workload=handle.workload)
    for category in OverheadCategory:
        value = float(sums[int(category)])
        if value > 0:
            breakdown.cycles[category] = value
    return breakdown


def suite_breakdowns(runner: ExperimentRunner, workloads,
                     runtime: str = "cpython", jit: bool = True,
                     nursery: int = 1024 * 1024,
                     config: MachineConfig | None = None,
                     ) -> dict[str, Breakdown]:
    """Breakdowns for a list of workloads on one runtime."""
    results: dict[str, Breakdown] = {}
    for name in workloads:
        handle = runner.run(name, runtime=runtime, jit=jit,
                            nursery=nursery)
        results[name] = breakdown_for_run(handle, config)
    return results


def average_shares(breakdowns: dict[str, Breakdown],
                   ) -> dict[OverheadCategory, float]:
    """Arithmetic mean of per-workload category shares (paper style)."""
    if not breakdowns:
        return {}
    totals: dict[OverheadCategory, float] = {}
    for breakdown in breakdowns.values():
        for category in OverheadCategory:
            totals[category] = totals.get(category, 0.0) \
                + breakdown.share(category)
    count = len(breakdowns)
    return {category: value / count for category, value in totals.items()
            if value > 0}


def indirect_call_fraction(handle: RunHandle,
                           config: MachineConfig | None = None) -> tuple:
    """(indirect share of C-call cycles, indirect share of all cycles).

    Section IV-C.1 reports indirect calls as 11.9% of the C function
    call overhead and ~1.9% of overall execution on average.
    """
    if config is None:
        config = skylake_config()
    arrays = handle.trace.arrays()
    cache_result = simulate_cache_hierarchy(arrays, config)
    cycles = simple_core_cycles(cache_result.dlevel, cache_result.ilevel,
                                config)
    categories = arrays["category"]
    kinds = arrays["kind"]
    ccall_mask = categories == _CCALL
    indirect_mask = ccall_mask & (kinds == int(InstrKind.ICALL))
    ccall_cycles = float(cycles[ccall_mask].sum())
    indirect_cycles = float(cycles[indirect_mask].sum())
    total = float(cycles.sum())
    if ccall_cycles == 0 or total == 0:
        return 0.0, 0.0
    return indirect_cycles / ccall_cycles, indirect_cycles / total
