"""Nursery-size studies (Figures 10 through 17).

The paper sweeps the PyPy nursery from 512 kB to 128 MB against a 2 MB
LLC. Simulating those absolute sizes under double interpretation is
intractable, and the trade-off depends only on the *ratio* between
nursery, LLC, and allocation volume — so the harness runs on a
proportionally scaled Table I machine (:func:`repro.config.
scaled_config`) and reports each point with its paper-equivalent label
(ratio x 2 MB). EXPERIMENTS.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..categories import OverheadCategory
from ..config import MachineConfig, scaled_config
from ..uarch.simple_core import simple_core_cycles
from ..experiments.runner import ExperimentRunner

MB = 1024 * 1024

#: Nursery sizes as fractions/multiples of the LLC. Against the paper's
#: 2 MB LLC these are exactly its 512k .. 128M axis.
NURSERY_RATIOS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Trimmed ratio axis for quick runs: keeps both sides of the crossover.
QUICK_RATIOS = (0.25, 0.5, 1.0, 2.0, 8.0)

_GC = int(OverheadCategory.GARBAGE_COLLECTION)


def paper_equivalent_label(ratio: float) -> str:
    """Label a ratio point in the paper's units (ratio x 2 MB LLC)."""
    bytes_equiv = ratio * 2 * MB
    if bytes_equiv >= MB:
        value = bytes_equiv / MB
        return f"{value:g}M"
    return f"{bytes_equiv / 1024:g}k"


@dataclass
class NurseryPoint:
    """Measurements at one nursery size."""

    ratio: float
    nursery_bytes: int
    label: str
    llc_miss_rate: float
    ooo_cycles: float
    simple_cycles: float
    gc_cycles: float
    nongc_cycles: float
    minor_gcs: int
    major_gcs: int

    @property
    def gc_fraction(self) -> float:
        if self.simple_cycles == 0:
            return 0.0
        return self.gc_cycles / self.simple_cycles


def sweep_memo_key(workload: str, jit: bool = True, runtime: str = "pypy",
                   ratios=NURSERY_RATIOS,
                   config: MachineConfig | None = None,
                   shift: int = 4,
                   ratio_base: int | None = None) -> tuple:
    """Memo key of one :func:`nursery_sweep` call (same signature).

    Exposed so the parallel figure harness can seed the runner's memo
    with worker-computed sweeps before the serial aggregation loops run.
    """
    if config is None:
        config = scaled_config(shift)
    llc = ratio_base if ratio_base is not None else config.l3.size
    return (workload, jit, runtime, tuple(ratios), llc,
            config.l3.size, config.l2.size, config.l1d.size)


def sweep_memo(runner: ExperimentRunner) -> dict:
    """The runner's nursery-sweep memo, created on first use."""
    cache = getattr(runner, "_nursery_sweeps", None)
    if cache is None:
        cache = {}
        runner._nursery_sweeps = cache
    return cache


def nursery_sweep(runner: ExperimentRunner, workload: str,
                  jit: bool = True, runtime: str = "pypy",
                  ratios=NURSERY_RATIOS,
                  config: MachineConfig | None = None,
                  shift: int = 4,
                  ratio_base: int | None = None) -> list[NurseryPoint]:
    """Run one workload across nursery sizes on a scaled machine.

    ``shift`` selects the machine scale (see
    :func:`repro.config.scaled_config`); nursery sizes are ratios of the
    scaled LLC so the paper's 512k..128M axis maps one-to-one.
    ``ratio_base`` overrides the LLC size the ratios refer to — used
    when sweeping *cache sizes* at fixed nursery points (Figs 12, 16).
    """
    if config is None:
        config = scaled_config(shift)
    llc = ratio_base if ratio_base is not None else config.l3.size
    # Figures 10/11/14/17 request identical sweeps; cache on the runner.
    cache = sweep_memo(runner)
    key = sweep_memo_key(workload, jit, runtime, ratios, config, shift,
                         ratio_base)
    cached = cache.get(key)
    if cached is not None:
        return cached
    points: list[NurseryPoint] = []
    for ratio in ratios:
        nursery = max(16 * 1024, int(llc * ratio))
        handle = runner.run(workload, runtime=runtime, jit=jit,
                            nursery=nursery)
        state = runner.memory_side(handle, config)
        ooo = runner.simulate(handle, config, core="ooo")
        arrays = handle.trace.arrays()
        per_instr = simple_core_cycles(state.dlevel, state.ilevel, config)
        categories = arrays["category"]
        gc_cycles = float(per_instr[categories == _GC].sum())
        simple_total = float(per_instr.sum())
        points.append(NurseryPoint(
            ratio=ratio, nursery_bytes=nursery,
            label=paper_equivalent_label(ratio),
            llc_miss_rate=state.llc_miss_rate,
            ooo_cycles=ooo.cycles,
            simple_cycles=simple_total,
            gc_cycles=gc_cycles,
            nongc_cycles=simple_total - gc_cycles,
            minor_gcs=handle.minor_gcs,
            major_gcs=handle.major_gcs))
    cache[key] = points
    return points


def normalized(points: list[NurseryPoint], baseline_ratio: float = 0.5,
               metric: str = "ooo_cycles") -> list[float]:
    """Execution time normalized to the half-LLC nursery (paper baseline:
    1 MB nursery for the 2 MB cache)."""
    baseline = None
    for point in points:
        if point.ratio == baseline_ratio:
            baseline = getattr(point, metric)
            break
    if baseline is None or baseline == 0:
        baseline = getattr(points[0], metric)
    return [getattr(p, metric) / baseline for p in points]


def best_nursery_improvement(sweeps: dict[str, list[NurseryPoint]],
                             baseline_ratio: float = 0.5) -> dict:
    """Figure 17: pick the best nursery per application.

    Returns per-workload normalized best times plus the two aggregate
    numbers the paper reports: average improvement from per-app best
    sizing, and from simply using the maximum nursery everywhere.
    """
    per_workload: dict[str, float] = {}
    max_ratio_times: list[float] = []
    for name, points in sweeps.items():
        norm = normalized(points, baseline_ratio)
        per_workload[name] = min(norm)
        max_ratio_times.append(norm[-1])
    n = len(per_workload) or 1
    best_avg = sum(per_workload.values()) / n
    max_avg = sum(max_ratio_times) / n
    return {
        "per_workload": per_workload,
        "best_improvement": 1.0 - best_avg,
        "max_nursery_improvement": 1.0 - max_avg,
    }
