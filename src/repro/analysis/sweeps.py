"""Microarchitecture parameter sweeps (Figures 7, 8, 9).

Each axis modifies one Table I parameter; CPI is measured on the
approximate OOO core. PyPy-with-JIT runs are additionally broken into
execution phases (bytecode interpreter / garbage collection / JIT
compiled code) using the category column, the way the paper annotates
PyPy at function granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..categories import OverheadCategory
from ..config import MachineConfig, skylake_config
from ..errors import ExperimentError
from ..uarch.simple_core import simple_core_cycles
from ..experiments.runner import ExperimentRunner, RunHandle

KB = 1024
MB = 1024 * KB

#: Figure 7 sweep axes: name -> (x values, config transform).
SWEEP_AXES: dict[str, tuple] = {
    "issue_width": (
        (2, 4, 8, 16, 32),
        lambda base, v: base.with_issue_width(v)),
    "branch_scale": (
        (0.5, 1.0, 2.0, 4.0, 8.0),
        lambda base, v: base.with_branch_scale(v)),
    "cache_size": (
        (256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB),
        lambda base, v: base.with_llc_size(v)),
    "line_size": (
        (64, 128, 256, 512, 1024, 2048, 4096),
        lambda base, v: base.with_line_size(v)),
    "memory_latency": (
        (50, 100, 200, 400),
        lambda base, v: base.with_memory_latency(v)),
    "memory_bandwidth": (
        (200, 400, 800, 1600, 3200, 6400, 12800, 25600),
        lambda base, v: base.with_memory_bandwidth(v)),
}

#: The three run-time variants compared throughout Figure 7.
RUNTIME_VARIANTS = (
    ("cpython", "cpython", False),
    ("pypy-nojit", "pypy", False),
    ("pypy-jit", "pypy", True),
)

_GC = int(OverheadCategory.GARBAGE_COLLECTION)
_JIT_CODE = int(OverheadCategory.JIT_COMPILED_CODE)
_JIT_COMPILING = int(OverheadCategory.JIT_COMPILING)


@dataclass
class SweepResult:
    """CPI grids: axis -> variant -> list of CPI values along the axis."""

    axes: dict[str, tuple] = field(default_factory=dict)
    cpi: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def axis_values(self, axis: str) -> tuple:
        return self.axes[axis]

    def series(self, axis: str) -> dict[str, list[float]]:
        return self.cpi[axis]


def axis_config(base: MachineConfig, axis: str, value) -> MachineConfig:
    entry = SWEEP_AXES.get(axis)
    if entry is None:
        raise ExperimentError(
            f"unknown sweep axis {axis!r}; known: {sorted(SWEEP_AXES)}")
    return entry[1](base, value)


def quick_axes(points: int = 3) -> dict[str, tuple]:
    """Trimmed axes (first/middle/last values) for fast runs."""
    trimmed = {}
    for axis, (values, _) in SWEEP_AXES.items():
        if len(values) <= points:
            trimmed[axis] = values
        else:
            middle = values[len(values) // 2]
            trimmed[axis] = (values[0], middle, values[-1])
    return trimmed


def _variant_cell(runner: ExperimentRunner, label: str, runtime: str,
                  jit: bool, workload: str, axes: dict, base: MachineConfig,
                  nursery: int) -> dict[tuple, float]:
    """One (runtime variant, workload) sweep cell: CPI per axis point.

    The guest trace is generated once and reused across every axis
    point. Module-level so the parallel fan-out can pickle it.
    """
    handle = runner.run(workload, runtime=runtime, jit=jit,
                        nursery=nursery)
    points = [(axis, value)
              for axis, values in axes.items() for value in values]
    configs = [axis_config(base, axis, value) for axis, value in points]
    sims = runner.simulate_many_configs(handle, configs, core="ooo")
    return {(axis, label, value): sim.cpi
            for (axis, value), sim in zip(points, sims)}


def run_sweep(runner: ExperimentRunner, workloads,
              variants=RUNTIME_VARIANTS,
              axes: dict[str, tuple] | None = None,
              base: MachineConfig | None = None,
              nursery: int = 1 * MB,
              jobs: int | None = None) -> SweepResult:
    """Average CPI for each (axis value, runtime variant) pair.

    Independent (variant, workload) cells either run serially
    (workload-outer, so each guest trace is generated once and reused
    across every axis point) or fan out over ``jobs`` processes; the
    per-key accumulation order is identical either way, so the result
    is bit-for-bit independent of ``jobs``.
    """
    if base is None:
        base = skylake_config()
    if axes is None:
        axes = {name: values for name, (values, _) in SWEEP_AXES.items()}
    from ..experiments.parallel import fan_out
    from ..experiments.runner import memory_side_key
    result = SweepResult(axes=dict(axes))
    cells = [(label, runtime, jit, workload, dict(axes), base, nursery)
             for label, runtime, jit in variants
             for workload in workloads]
    # Size the runner's caches to this sweep's own grid: one trace per
    # (variant, workload) cell, one memory-side state per distinct
    # memory geometry the axes touch (latency/width axes share one).
    mem_keys = {memory_side_key(axis_config(base, axis, value))
                for axis, values in axes.items() for value in values}
    runner.ensure_cache_capacity(
        traces=len(cells), states=len(cells) * len(mem_keys))
    sums: dict[tuple, float] = {}
    for cell_cpis in fan_out(runner, _variant_cell, cells, jobs):
        for key, cpi in cell_cpis.items():
            sums[key] = sums.get(key, 0.0) + cpi
    n = len(list(workloads))
    for axis, values in axes.items():
        result.cpi[axis] = {}
        for label, _, _ in variants:
            result.cpi[axis][label] = [
                sums[(axis, label, value)] / n for value in values]
    return result


def phase_cpis(handle: RunHandle, config: MachineConfig | None = None,
               ) -> dict[str, float]:
    """Simple-core CPI per PyPy execution phase (Figure 7 legend).

    Phases follow the paper: the bytecode interpreter (including the
    meta-interpreter/tracing work), the garbage collector, and JIT
    compiled code.
    """
    if config is None:
        config = skylake_config()
    from ..uarch.cache import simulate_cache_hierarchy
    arrays = handle.trace.arrays()
    cache_result = simulate_cache_hierarchy(arrays, config)
    cycles = simple_core_cycles(cache_result.dlevel, cache_result.ilevel,
                                config)
    categories = arrays["category"]
    gc_mask = categories == _GC
    jit_mask = categories == _JIT_CODE
    interp_mask = ~(gc_mask | jit_mask)
    phases = {}
    for name, mask in (("bytecode_interpreter", interp_mask),
                       ("garbage_collection", gc_mask),
                       ("jit_compiled_code", jit_mask)):
        count = int(mask.sum())
        phases[name] = float(cycles[mask].sum()) / count if count else 0.0
    phases["overall"] = float(cycles.sum()) / max(1, len(categories))
    return phases
