"""Plain-text rendering shared by the figure harnesses and benches.

Figures are regenerated as aligned ASCII tables and series — the same
rows/columns the paper plots, printed rather than drawn.
"""

from __future__ import annotations


def format_percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def render_table(headers: list[str], rows: list[list[object]],
                 title: str = "") -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(title: str, x_labels: list[str],
                  series: dict[str, list[float]],
                  value_format: str = "{:.3f}") -> str:
    """One row per named series, one column per x value."""
    headers = ["series"] + list(x_labels)
    rows = []
    for name, values in series.items():
        rows.append([name] + [value_format.format(v) for v in values])
    return render_table(headers, rows, title=title)


def _format_ms(value_us: float) -> str:
    return f"{value_us / 1000.0:.2f}"


def render_span_tree(spans: list[dict], title: str = "span tree") -> str:
    """ASCII self-time tree for a telemetry span forest.

    ``spans`` is the nested-dict form produced by
    :meth:`repro.telemetry.tracing.Tracer.tree` (or read back from a
    run manifest). Each line shows total and self time in
    milliseconds plus the span's attributes.
    """
    rows: list[list[str]] = []

    def visit(span: dict, depth: int) -> None:
        attrs = span.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
        rows.append(["  " * depth + span["name"],
                     _format_ms(span.get("duration_us", 0.0)),
                     _format_ms(span.get("self_us", 0.0)),
                     attr_text])
        for child in span.get("children", ()):
            visit(child, depth + 1)

    for root in spans:
        visit(root, 0)
    if not rows:
        return f"{title}\n(no spans recorded)"
    return render_table(["span", "total ms", "self ms", "attrs"], rows,
                        title=title)
