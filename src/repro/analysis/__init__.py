"""Analysis layer: breakdowns, parameter sweeps, nursery studies."""

from .report import render_table, render_series, format_percent
from .breakdown import (
    breakdown_for_run,
    suite_breakdowns,
    average_shares,
    indirect_call_fraction,
)
from .sweeps import SWEEP_AXES, SweepResult, run_sweep, phase_cpis
from .nursery import (
    NURSERY_RATIOS,
    NurseryPoint,
    nursery_sweep,
    paper_equivalent_label,
)

__all__ = [
    "render_table", "render_series", "format_percent",
    "breakdown_for_run", "suite_breakdowns", "average_shares",
    "indirect_call_fraction",
    "SWEEP_AXES", "SweepResult", "run_sweep", "phase_cpis",
    "NURSERY_RATIOS", "NurseryPoint", "nursery_sweep",
    "paper_equivalent_label",
]
