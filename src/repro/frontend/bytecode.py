"""MiniPy bytecode: opcodes and code objects.

The instruction set mirrors CPython 2.7's stack machine closely enough
that every overhead category of Table II has its natural home: a dispatch
loop with a switch, explicit stack traffic, const loads from ``co_consts``,
global lookups through a map, a block stack for loops (rich control flow),
and C-function calls for every helper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.IntEnum):
    """MiniPy opcodes. Values are stable across the package."""

    # Stack / constants
    LOAD_CONST = 1          # arg: index into co_consts
    POP_TOP = 2
    DUP_TOP = 3
    ROT_TWO = 4

    # Variables
    LOAD_FAST = 10          # arg: local slot
    STORE_FAST = 11
    LOAD_GLOBAL = 12        # arg: index into co_names
    STORE_GLOBAL = 13

    # Arithmetic / logic (binary ops pop two, push one)
    BINARY_ADD = 20
    BINARY_SUB = 21
    BINARY_MUL = 22
    BINARY_TRUEDIV = 23
    BINARY_FLOORDIV = 24
    BINARY_MOD = 25
    BINARY_POW = 26
    BINARY_AND = 27
    BINARY_OR = 28
    BINARY_XOR = 29
    BINARY_LSHIFT = 30
    BINARY_RSHIFT = 31
    UNARY_NEG = 32
    UNARY_NOT = 33
    COMPARE_OP = 34         # arg: index into COMPARE_OPS

    # Control flow
    JUMP_ABSOLUTE = 40      # arg: target index
    POP_JUMP_IF_FALSE = 41
    POP_JUMP_IF_TRUE = 42
    JUMP_IF_FALSE_OR_POP = 43
    JUMP_IF_TRUE_OR_POP = 44
    SETUP_LOOP = 45         # arg: loop-exit target (block stack push)
    POP_BLOCK = 46
    BREAK_LOOP = 47
    GET_ITER = 48
    FOR_ITER = 49           # arg: loop-exit target

    # Calls and functions
    CALL_FUNCTION = 60      # arg: positional arg count
    RETURN_VALUE = 61
    LOAD_METHOD = 62        # arg: index into co_names
    CALL_METHOD = 63        # arg: positional arg count

    # Containers
    BUILD_LIST = 70         # arg: element count
    BUILD_TUPLE = 71
    BUILD_MAP = 72          # arg: pair count (pairs already on stack)
    BINARY_SUBSCR = 73
    STORE_SUBSCR = 74
    BUILD_SLICE = 75        # arg: 2 (start, stop) or 3 (with step)
    UNPACK_SEQUENCE = 76    # arg: element count

    # Attributes / objects
    LOAD_ATTR = 80          # arg: index into co_names
    STORE_ATTR = 81


#: Comparison operators, indexed by COMPARE_OP's argument.
COMPARE_OPS = ("<", "<=", "==", "!=", ">", ">=", "in", "not in", "is",
               "is not")

#: Opcodes whose argument is a bytecode index (for the disassembler).
JUMP_OPS = frozenset({
    Op.JUMP_ABSOLUTE, Op.POP_JUMP_IF_FALSE, Op.POP_JUMP_IF_TRUE,
    Op.JUMP_IF_FALSE_OR_POP, Op.JUMP_IF_TRUE_OR_POP, Op.SETUP_LOOP,
    Op.FOR_ITER,
})

#: Opcodes whose argument names something in co_names.
NAME_OPS = frozenset({
    Op.LOAD_GLOBAL, Op.STORE_GLOBAL, Op.LOAD_METHOD, Op.LOAD_ATTR,
    Op.STORE_ATTR,
})


@dataclass
class CodeObject:
    """A compiled MiniPy function (or module) body."""

    name: str
    #: Parallel arrays: opcode values and integer arguments.
    ops: list[int] = field(default_factory=list)
    args: list[int] = field(default_factory=list)
    #: Constant pool (raw Python values: int, float, str, bool, None).
    consts: list[object] = field(default_factory=list)
    #: Names referenced by NAME_OPS.
    names: list[str] = field(default_factory=list)
    #: Local variable names; parameters come first.
    varnames: list[str] = field(default_factory=list)
    argcount: int = 0
    #: Source line per instruction (diagnostics only).
    linenos: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def add_const(self, value: object) -> int:
        """Intern ``value`` in the constant pool and return its index."""
        for i, existing in enumerate(self.consts):
            if type(existing) is type(value) and existing == value:
                return i
        self.consts.append(value)
        return len(self.consts) - 1

    def add_name(self, name: str) -> int:
        """Intern ``name`` and return its index."""
        try:
            return self.names.index(name)
        except ValueError:
            self.names.append(name)
            return len(self.names) - 1

    def local_slot(self, name: str) -> int:
        """Slot of local variable ``name``, creating it if new."""
        try:
            return self.varnames.index(name)
        except ValueError:
            self.varnames.append(name)
            return len(self.varnames) - 1

    def emit(self, op: Op, arg: int = 0, lineno: int = 0) -> int:
        """Append one instruction; returns its index (for jump patching)."""
        self.ops.append(int(op))
        self.args.append(arg)
        self.linenos.append(lineno)
        return len(self.ops) - 1

    def patch(self, index: int, target: int) -> None:
        """Set the jump target of the instruction at ``index``."""
        self.args[index] = target


def disassemble(code: CodeObject) -> str:
    """Human-readable listing of a code object (debugging aid)."""
    lines = [f"code {code.name!r} ({code.argcount} args, "
             f"{len(code.varnames)} locals)"]
    for i, (op_value, arg) in enumerate(zip(code.ops, code.args)):
        op = Op(op_value)
        detail = ""
        if op in JUMP_OPS:
            detail = f" -> {arg}"
        elif op in NAME_OPS:
            detail = f" ({code.names[arg]})"
        elif op is Op.LOAD_CONST:
            detail = f" ({code.consts[arg]!r})"
        elif op in (Op.LOAD_FAST, Op.STORE_FAST):
            detail = f" ({code.varnames[arg]})"
        elif op is Op.COMPARE_OP:
            detail = f" ({COMPARE_OPS[arg]})"
        elif op in (Op.CALL_FUNCTION, Op.CALL_METHOD, Op.BUILD_LIST,
                    Op.BUILD_TUPLE, Op.BUILD_MAP, Op.UNPACK_SEQUENCE,
                    Op.BUILD_SLICE):
            detail = f" ({arg})"
        lines.append(f"  {i:4d}  {op.name:<22s}{detail}")
    return "\n".join(lines)
