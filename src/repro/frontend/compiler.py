"""Compile MiniPy source (real Python syntax) to MiniPy bytecode.

The compiler accepts the Python subset the 48 benchmark programs are
written in: module-level functions and simple classes, the full statement
and expression repertoire of a typical interpreter benchmark, positional
arguments only. Unsupported constructs raise :class:`CompileError` rather
than miscompiling.

Semantic note: augmented assignment to subscripts and attributes
(``a[i] += v``) is compiled by evaluating the target expression twice;
MiniPy code must not rely on side effects inside such targets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..errors import CompileError
from .bytecode import COMPARE_OPS, CodeObject, Op

_BINOP_TABLE = {
    ast.Add: Op.BINARY_ADD,
    ast.Sub: Op.BINARY_SUB,
    ast.Mult: Op.BINARY_MUL,
    ast.Div: Op.BINARY_TRUEDIV,
    ast.FloorDiv: Op.BINARY_FLOORDIV,
    ast.Mod: Op.BINARY_MOD,
    ast.Pow: Op.BINARY_POW,
    ast.BitAnd: Op.BINARY_AND,
    ast.BitOr: Op.BINARY_OR,
    ast.BitXor: Op.BINARY_XOR,
    ast.LShift: Op.BINARY_LSHIFT,
    ast.RShift: Op.BINARY_RSHIFT,
}

_CMP_TABLE = {
    ast.Lt: "<", ast.LtE: "<=", ast.Eq: "==", ast.NotEq: "!=",
    ast.Gt: ">", ast.GtE: ">=", ast.In: "in", ast.NotIn: "not in",
    ast.Is: "is", ast.IsNot: "is not",
}


@dataclass
class ClassSpec:
    """A compiled MiniPy class: a name and its method code objects."""

    name: str
    methods: dict[str, CodeObject] = field(default_factory=dict)


@dataclass
class Program:
    """A fully compiled MiniPy program."""

    name: str
    module: CodeObject
    functions: dict[str, CodeObject] = field(default_factory=dict)
    classes: dict[str, ClassSpec] = field(default_factory=dict)

    def code_objects(self) -> list[CodeObject]:
        """All code objects: module, functions, then methods."""
        result = [self.module]
        result.extend(self.functions.values())
        for cls in self.classes.values():
            result.extend(cls.methods.values())
        return result


class _FunctionCompiler:
    """Compiles one function (or the module body) to a CodeObject."""

    def __init__(self, name: str, is_module: bool) -> None:
        self.code = CodeObject(name=name)
        self.is_module = is_module
        self.local_names: set[str] = set()
        self.global_decls: set[str] = set()
        #: Stack of (continue_target, break_patch_indices) per loop.
        self.loop_stack: list[tuple[int, list[int]]] = []

    # -- scope ---------------------------------------------------------

    def collect_locals(self, body: list[ast.stmt]) -> None:
        """Pre-scan for assigned names: they become locals."""
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)):
                self.local_names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                raise CompileError(
                    "nested function/class definitions are not supported",
                    node.lineno)
        self.local_names -= self.global_decls

    def is_local(self, name: str) -> bool:
        return not self.is_module and name in self.local_names

    # -- statements ------------------------------------------------------

    def compile_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.compile_stmt(stmt)

    def compile_stmt(self, node: ast.stmt) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise CompileError(
                f"unsupported statement: {type(node).__name__}",
                getattr(node, "lineno", None))
        method(node)

    def _stmt_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Constant):
            return  # docstring or bare literal: no code
        self.compile_expr(node.value)
        self.code.emit(Op.POP_TOP, lineno=node.lineno)

    def _stmt_Pass(self, node: ast.Pass) -> None:
        pass

    def _stmt_Global(self, node: ast.Global) -> None:
        pass  # handled in collect_locals

    def _stmt_Return(self, node: ast.Return) -> None:
        if self.is_module:
            raise CompileError("return outside function", node.lineno)
        if node.value is None:
            self.code.emit(Op.LOAD_CONST, self.code.add_const(None),
                           lineno=node.lineno)
        else:
            self.compile_expr(node.value)
        self.code.emit(Op.RETURN_VALUE, lineno=node.lineno)

    def _stmt_Assign(self, node: ast.Assign) -> None:
        self.compile_expr(node.value)
        for i, target in enumerate(node.targets):
            if i < len(node.targets) - 1:
                self.code.emit(Op.DUP_TOP, lineno=node.lineno)
            self.compile_store(target)

    def _stmt_AugAssign(self, node: ast.AugAssign) -> None:
        op = _BINOP_TABLE.get(type(node.op))
        if op is None:
            raise CompileError(
                f"unsupported augmented op: {type(node.op).__name__}",
                node.lineno)
        # Compile as load-op-store; the target is evaluated twice.
        load_equiv = ast.copy_location(
            _to_load(node.target), node.target)
        self.compile_expr(load_equiv)
        self.compile_expr(node.value)
        self.code.emit(op, lineno=node.lineno)
        self.compile_store(node.target)

    def compile_store(self, target: ast.expr) -> None:
        lineno = getattr(target, "lineno", 0)
        if isinstance(target, ast.Name):
            name = target.id
            if self.is_local(name):
                self.code.emit(Op.STORE_FAST, self.code.local_slot(name),
                               lineno=lineno)
            else:
                self.code.emit(Op.STORE_GLOBAL, self.code.add_name(name),
                               lineno=lineno)
        elif isinstance(target, ast.Subscript):
            # Stack: value. Need: obj, index, value order for STORE_SUBSCR.
            self.compile_expr(target.value)
            self.compile_subscript_index(target)
            self.code.emit(Op.STORE_SUBSCR, lineno=lineno)
        elif isinstance(target, ast.Attribute):
            self.compile_expr(target.value)
            self.code.emit(Op.STORE_ATTR,
                           self.code.add_name(target.attr), lineno=lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            self.code.emit(Op.UNPACK_SEQUENCE, len(target.elts),
                           lineno=lineno)
            for element in target.elts:
                self.compile_store(element)
        else:
            raise CompileError(
                f"unsupported assignment target: {type(target).__name__}",
                lineno)

    def _stmt_If(self, node: ast.If) -> None:
        self.compile_expr(node.test)
        jump_false = self.code.emit(Op.POP_JUMP_IF_FALSE,
                                    lineno=node.lineno)
        self.compile_body(node.body)
        if node.orelse:
            jump_end = self.code.emit(Op.JUMP_ABSOLUTE)
            self.code.patch(jump_false, len(self.code))
            self.compile_body(node.orelse)
            self.code.patch(jump_end, len(self.code))
        else:
            self.code.patch(jump_false, len(self.code))

    def _stmt_While(self, node: ast.While) -> None:
        if node.orelse:
            raise CompileError("while-else is not supported", node.lineno)
        setup = self.code.emit(Op.SETUP_LOOP, lineno=node.lineno)
        start = len(self.code)
        self.loop_stack.append((start, []))
        is_infinite = (isinstance(node.test, ast.Constant) and
                       node.test.value is True)
        jump_exit = None
        if not is_infinite:
            self.compile_expr(node.test)
            jump_exit = self.code.emit(Op.POP_JUMP_IF_FALSE)
        self.compile_body(node.body)
        self.code.emit(Op.JUMP_ABSOLUTE, start)
        if jump_exit is not None:
            self.code.patch(jump_exit, len(self.code))
        self.code.emit(Op.POP_BLOCK)
        end = len(self.code)
        self.code.patch(setup, end)
        _, break_jumps = self.loop_stack.pop()
        for index in break_jumps:
            self.code.patch(index, end)

    def _stmt_For(self, node: ast.For) -> None:
        if node.orelse:
            raise CompileError("for-else is not supported", node.lineno)
        setup = self.code.emit(Op.SETUP_LOOP, lineno=node.lineno)
        self.compile_expr(node.iter)
        self.code.emit(Op.GET_ITER)
        start = len(self.code)
        self.loop_stack.append((start, []))
        for_iter = self.code.emit(Op.FOR_ITER)
        self.compile_store(node.target)
        self.compile_body(node.body)
        self.code.emit(Op.JUMP_ABSOLUTE, start)
        self.code.patch(for_iter, len(self.code))
        self.code.emit(Op.POP_BLOCK)
        end = len(self.code)
        self.code.patch(setup, end)
        _, break_jumps = self.loop_stack.pop()
        for index in break_jumps:
            self.code.patch(index, end)

    def _stmt_Break(self, node: ast.Break) -> None:
        if not self.loop_stack:
            raise CompileError("break outside loop", node.lineno)
        # BREAK_LOOP unwinds via the VM block stack; the exit target is
        # recorded in the SETUP_LOOP block, so no patching is needed here.
        self.code.emit(Op.BREAK_LOOP, lineno=node.lineno)

    def _stmt_Continue(self, node: ast.Continue) -> None:
        if not self.loop_stack:
            raise CompileError("continue outside loop", node.lineno)
        start, _ = self.loop_stack[-1]
        self.code.emit(Op.JUMP_ABSOLUTE, start, lineno=node.lineno)

    # -- expressions ----------------------------------------------------

    def compile_expr(self, node: ast.expr) -> None:
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is None:
            raise CompileError(
                f"unsupported expression: {type(node).__name__}",
                getattr(node, "lineno", None))
        method(node)

    def _expr_Constant(self, node: ast.Constant) -> None:
        value = node.value
        if not isinstance(value, (int, float, str, bool, type(None))):
            raise CompileError(
                f"unsupported constant type: {type(value).__name__}",
                node.lineno)
        self.code.emit(Op.LOAD_CONST, self.code.add_const(value),
                       lineno=node.lineno)

    def _expr_Name(self, node: ast.Name) -> None:
        name = node.id
        if self.is_local(name):
            self.code.emit(Op.LOAD_FAST, self.code.local_slot(name),
                           lineno=node.lineno)
        else:
            self.code.emit(Op.LOAD_GLOBAL, self.code.add_name(name),
                           lineno=node.lineno)

    def _expr_BinOp(self, node: ast.BinOp) -> None:
        op = _BINOP_TABLE.get(type(node.op))
        if op is None:
            raise CompileError(
                f"unsupported binary op: {type(node.op).__name__}",
                node.lineno)
        self.compile_expr(node.left)
        self.compile_expr(node.right)
        self.code.emit(op, lineno=node.lineno)

    def _expr_UnaryOp(self, node: ast.UnaryOp) -> None:
        if isinstance(node.op, ast.USub):
            self.compile_expr(node.operand)
            self.code.emit(Op.UNARY_NEG, lineno=node.lineno)
        elif isinstance(node.op, ast.Not):
            self.compile_expr(node.operand)
            self.code.emit(Op.UNARY_NOT, lineno=node.lineno)
        elif isinstance(node.op, ast.UAdd):
            self.compile_expr(node.operand)
        else:
            raise CompileError(
                f"unsupported unary op: {type(node.op).__name__}",
                node.lineno)

    def _expr_BoolOp(self, node: ast.BoolOp) -> None:
        jump_op = (Op.JUMP_IF_FALSE_OR_POP if isinstance(node.op, ast.And)
                   else Op.JUMP_IF_TRUE_OR_POP)
        jumps = []
        for i, value in enumerate(node.values):
            self.compile_expr(value)
            if i < len(node.values) - 1:
                jumps.append(self.code.emit(jump_op, lineno=node.lineno))
        end = len(self.code)
        for index in jumps:
            self.code.patch(index, end)

    def _expr_Compare(self, node: ast.Compare) -> None:
        if len(node.ops) != 1:
            raise CompileError(
                "chained comparisons are not supported", node.lineno)
        symbol = _CMP_TABLE.get(type(node.ops[0]))
        if symbol is None:
            raise CompileError(
                f"unsupported comparison: {type(node.ops[0]).__name__}",
                node.lineno)
        self.compile_expr(node.left)
        self.compile_expr(node.comparators[0])
        self.code.emit(Op.COMPARE_OP, COMPARE_OPS.index(symbol),
                       lineno=node.lineno)

    def _expr_IfExp(self, node: ast.IfExp) -> None:
        self.compile_expr(node.test)
        jump_false = self.code.emit(Op.POP_JUMP_IF_FALSE,
                                    lineno=node.lineno)
        self.compile_expr(node.body)
        jump_end = self.code.emit(Op.JUMP_ABSOLUTE)
        self.code.patch(jump_false, len(self.code))
        self.compile_expr(node.orelse)
        self.code.patch(jump_end, len(self.code))

    def _expr_Call(self, node: ast.Call) -> None:
        if node.keywords:
            raise CompileError(
                "keyword arguments are not supported", node.lineno)
        if isinstance(node.func, ast.Attribute):
            self.compile_expr(node.func.value)
            self.code.emit(Op.LOAD_METHOD,
                           self.code.add_name(node.func.attr),
                           lineno=node.lineno)
            for arg in node.args:
                self.compile_expr(arg)
            self.code.emit(Op.CALL_METHOD, len(node.args),
                           lineno=node.lineno)
        else:
            self.compile_expr(node.func)
            for arg in node.args:
                self.compile_expr(arg)
            self.code.emit(Op.CALL_FUNCTION, len(node.args),
                           lineno=node.lineno)

    def _expr_List(self, node: ast.List) -> None:
        for element in node.elts:
            self.compile_expr(element)
        self.code.emit(Op.BUILD_LIST, len(node.elts), lineno=node.lineno)

    def _expr_Tuple(self, node: ast.Tuple) -> None:
        for element in node.elts:
            self.compile_expr(element)
        self.code.emit(Op.BUILD_TUPLE, len(node.elts), lineno=node.lineno)

    def _expr_Dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if key is None:
                raise CompileError("dict unpacking is not supported",
                                   node.lineno)
            self.compile_expr(key)
            self.compile_expr(value)
        self.code.emit(Op.BUILD_MAP, len(node.keys), lineno=node.lineno)

    def _expr_Subscript(self, node: ast.Subscript) -> None:
        self.compile_expr(node.value)
        self.compile_subscript_index(node)
        self.code.emit(Op.BINARY_SUBSCR, lineno=node.lineno)

    def compile_subscript_index(self, node: ast.Subscript) -> None:
        index = node.slice
        if isinstance(index, ast.Slice):
            if index.step is not None:
                raise CompileError("slice steps are not supported",
                                   node.lineno)
            for bound in (index.lower, index.upper):
                if bound is None:
                    self.code.emit(Op.LOAD_CONST,
                                   self.code.add_const(None))
                else:
                    self.compile_expr(bound)
            self.code.emit(Op.BUILD_SLICE, 2)
        else:
            self.compile_expr(index)

    def _expr_Attribute(self, node: ast.Attribute) -> None:
        self.compile_expr(node.value)
        self.code.emit(Op.LOAD_ATTR, self.code.add_name(node.attr),
                       lineno=node.lineno)

    # -- finish -----------------------------------------------------------

    def finish(self) -> CodeObject:
        """Append the implicit ``return None`` and return the code."""
        self.code.emit(Op.LOAD_CONST, self.code.add_const(None))
        self.code.emit(Op.RETURN_VALUE)
        return self.code


def _to_load(target: ast.expr) -> ast.expr:
    """Clone an assignment target as a Load-context expression."""
    clone = ast.parse(ast.unparse(target), mode="eval").body
    return clone


def _compile_function(node: ast.FunctionDef) -> CodeObject:
    if node.args.defaults or node.args.kwonlyargs or node.args.vararg or \
            node.args.kwarg or node.args.posonlyargs:
        raise CompileError(
            f"function {node.name}: only plain positional parameters are "
            "supported", node.lineno)
    if node.decorator_list:
        raise CompileError(
            f"function {node.name}: decorators are not supported",
            node.lineno)
    compiler = _FunctionCompiler(node.name, is_module=False)
    for arg in node.args.args:
        compiler.code.local_slot(arg.arg)
        compiler.local_names.add(arg.arg)
    compiler.code.argcount = len(node.args.args)
    compiler.collect_locals(node.body)
    compiler.compile_body(node.body)
    return compiler.finish()


def _compile_class(node: ast.ClassDef) -> ClassSpec:
    if node.bases or node.keywords or node.decorator_list:
        raise CompileError(
            f"class {node.name}: inheritance and decorators are not "
            "supported", node.lineno)
    spec = ClassSpec(name=node.name)
    for item in node.body:
        if isinstance(item, ast.FunctionDef):
            code = _compile_function(item)
            code.name = f"{node.name}.{item.name}"
            spec.methods[item.name] = code
        elif isinstance(item, ast.Expr) and \
                isinstance(item.value, ast.Constant):
            continue  # docstring
        elif isinstance(item, ast.Pass):
            continue
        else:
            raise CompileError(
                f"class {node.name}: only method definitions are "
                "supported in a class body", item.lineno)
    return spec


def compile_source(source: str, name: str = "<program>") -> Program:
    """Compile MiniPy source text into a :class:`Program`."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise CompileError(f"syntax error: {exc.msg}", exc.lineno) from exc
    module_compiler = _FunctionCompiler("<module>", is_module=True)
    program = Program(name=name, module=module_compiler.code)
    module_statements: list[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            program.functions[node.name] = _compile_function(node)
        elif isinstance(node, ast.ClassDef):
            program.classes[node.name] = _compile_class(node)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            # Imports are resolved by the run-time's builtin table; the
            # statement itself compiles to nothing.
            continue
        else:
            module_statements.append(node)
    module_compiler.compile_body(module_statements)
    module_compiler.finish()
    return program


def compile_program(source: str, name: str = "<program>") -> Program:
    """Alias of :func:`compile_source` kept for API symmetry."""
    return compile_source(source, name)
