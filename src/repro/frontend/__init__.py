"""MiniPy: the guest language the modeled run-times execute.

MiniPy is a substantial subset of Python — functions, classes, lists,
dicts, tuples, strings, the full numeric tower the benchmarks need —
compiled from real Python syntax (via :mod:`ast`) to a CPython-2.7-style
stack bytecode. Guest programs are the 48 workloads of
:mod:`repro.workloads` plus anything a user writes.
"""

from .bytecode import Op, CodeObject, disassemble
from .compiler import compile_source, compile_program, Program

__all__ = [
    "Op", "CodeObject", "disassemble",
    "compile_source", "compile_program", "Program",
]
