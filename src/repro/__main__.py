"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        execute a MiniPy file on a modeled runtime, print its output
breakdown  Table II overhead breakdown for a MiniPy file
workloads  list the built-in benchmark suites
figure     regenerate one of the paper's tables/figures
figures    regenerate many figures with checkpoint/resume (``--all``);
           ``--distributed`` coordinates a lease-based work queue
work       claim and execute queue cells published by a distributed
           campaign (any number of peers, any host sharing the cache)
cache      disk-cache maintenance (``gc``, ``stats``, ``verify``)
telemetry  dump the last run's telemetry manifest
status     one-shot (or ``--watch``) campaign progress view
perf       perf-regression sentinel (``check``, ``diff``)
serve      long-lived multi-tenant sweep server (admission control,
           fair-share scheduling, deadlines, crash-safe session
           journal, SIGTERM graceful drain)
query      client for ``serve``: figure queries and health probes

``run``, ``breakdown``, ``figure``, ``figures``, and ``perf`` execute
with telemetry enabled and write a per-run manifest (mirrored to
``.repro-telemetry/last_run.json``; ``--metrics-out PATH`` adds an
explicit copy, ``--trace-out PATH`` writes the unified Chrome trace
with per-worker lanes) that the ``telemetry`` command reads back; each
manifest is also summarized into the run registry under
``<cache-root>/telemetry/``.

``figures --all`` journals each completed figure to a checkpoint file
(default: ``<cache-root>/figures.journal``); an interrupted campaign —
Ctrl-C exits with status 130 after flushing telemetry — resumes where
it died and skips every figure the journal already records.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import telemetry
from .analysis.report import format_percent, render_span_tree, render_table
from .categories import OverheadCategory, label_of
from .config import pypy_runtime, v8_runtime
from .errors import ReproError
from .frontend import compile_source
from .host import AddressSpace, HostMachine
from .pintool import compute_breakdown
from .telemetry import TELEMETRY
from .telemetry.export import (
    load_last_manifest,
    write_chrome_trace,
    write_manifest,
)
from .uarch import SimulatedSystem
from .vm.cpython import CPythonVM
from .vm.pypy import PyPyVM
from .vm.v8 import V8VM
from .vm.v8.workloads import JS_SUITE
from .workloads import PYTHON_SUITE, get_workload

_MB = 1024 * 1024

#: Subcommands that run guest code: telemetry is enabled around them
#: and a manifest is written when they finish.
_TELEMETRY_COMMANDS = frozenset({"run", "breakdown", "figure", "figures",
                                 "work", "perf", "serve"})

#: Conventional exit status for SIGINT (128 + 2).
EXIT_INTERRUPTED = 130


def _build_vm(runtime: str, machine: HostMachine, program,
              jit: bool, nursery: int):
    if runtime == "cpython":
        return CPythonVM(machine, program)
    if runtime == "pypy":
        return PyPyVM(machine, program,
                      pypy_runtime(jit=jit, nursery_size=nursery))
    if runtime == "v8":
        return V8VM(machine, program, v8_runtime(nursery_size=nursery))
    raise ReproError(f"unknown runtime {runtime!r}")


def _load_program(path: str):
    if path in PYTHON_SUITE:
        return compile_source(get_workload(path).source(1), path)
    with open(path, "r", encoding="utf-8") as handle:
        return compile_source(handle.read(), path)


def cmd_run(args) -> int:
    program = _load_program(args.file)
    machine = HostMachine(AddressSpace(nursery_size=args.nursery * _MB))
    with TELEMETRY.tracer.span("guest.run", workload=args.file,
                               runtime=args.runtime,
                               jit=not args.no_jit):
        vm = _build_vm(args.runtime, machine, program,
                       jit=not args.no_jit, nursery=args.nursery * _MB)
        vm.run()
    TELEMETRY.metrics.counter(
        "guest.instructions", runtime=args.runtime).inc(len(machine.trace))
    for line in vm.output:
        print(line)
    system = SimulatedSystem()
    # Memory-side state is core-independent: compute it once and share
    # it between the OOO timing run and the simple-core attribution run.
    with TELEMETRY.tracer.span("sim.memory_side", workload=args.file):
        state = system.memory_side(machine.trace)
    with TELEMETRY.tracer.span("sim.core", workload=args.file,
                               core="ooo"):
        timing = system.run(machine.trace, core="ooo", state=state)
    with TELEMETRY.tracer.span("sim.core", workload=args.file,
                               core="simple"):
        attribution = system.run(machine.trace, core="simple",
                                 state=state)
    args._manifest_stats = vm.stats.as_dict()
    args._manifest_stats["host_instructions"] = len(machine.trace)
    args._manifest_stats["cycles"] = timing.cycles
    args._manifest_stats["category_cycles"] = {
        label_of(OverheadCategory(i)): float(cycles)
        for i, cycles in enumerate(attribution.category_cycles)
        if cycles > 0}
    print(f"-- {args.runtime}: {vm.stats.bytecodes} bytecodes, "
          f"{len(machine.trace)} host instructions, "
          f"{timing.cycles:.0f} cycles (CPI {timing.cpi:.2f})",
          file=sys.stderr)
    return 0


def cmd_breakdown(args) -> int:
    program = _load_program(args.file)
    machine = HostMachine(AddressSpace(nursery_size=args.nursery * _MB))
    with TELEMETRY.tracer.span("guest.run", workload=args.file,
                               runtime=args.runtime,
                               jit=not args.no_jit):
        vm = _build_vm(args.runtime, machine, program,
                       jit=not args.no_jit, nursery=args.nursery * _MB)
        vm.run()
    args._manifest_stats = vm.stats.as_dict()
    with TELEMETRY.tracer.span("analysis.breakdown", workload=args.file):
        breakdown = compute_breakdown(machine.trace, machine,
                                      runtime=args.runtime,
                                      workload=args.file)
    rows = [[label, format_percent(share)]
            for label, share in breakdown.top_categories(20)]
    print(render_table(["category", "share of cycles"], rows,
                       title=f"Overhead breakdown: {args.file} "
                             f"on {args.runtime}"))
    print(f"\nidentified overhead: "
          f"{format_percent(breakdown.overhead_share)}"
          f" (C library: {format_percent(breakdown.c_library_share)})")
    return 0


def cmd_workloads(_args) -> int:
    rows = [[name, get_workload(name).tag,
             get_workload(name).description]
            for name in PYTHON_SUITE]
    print(render_table(["workload", "class", "description"], rows,
                       title="Python suite (48 benchmarks)"))
    print(f"\nJetStream-analog suite (37): {', '.join(JS_SUITE)}")
    return 0


def cmd_figure(args) -> int:
    from .experiments.figures import ALL_FIGURES
    func = ALL_FIGURES.get(args.name)
    if func is None:
        print(f"unknown figure {args.name!r}; "
              f"choose from {', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 1
    if args.name.startswith("table"):
        print(func())
    else:
        print(func(quick=not args.full, jobs=args.jobs))
    return 0


def cmd_figures(args) -> int:
    from .analysis.report import render_table as _render
    from .experiments.resilience import run_campaign
    if not args.all and not args.names:
        print("figures: name at least one figure or pass --all",
              file=sys.stderr)
        return 1
    report = run_campaign(
        names=args.names or None, quick=not args.full, jobs=args.jobs,
        checkpoint=args.checkpoint, fresh=args.fresh,
        budget_seconds=args.budget_seconds,
        distributed=args.distributed, queue_dir=args.queue,
        grace_seconds=args.grace_seconds)
    rows = report.summary_rows()
    total = sum(report.wall_seconds.values())
    summary = (f"{len(report.completed)} run, "
               f"{len(report.skipped)} checkpointed")
    if report.failed:
        summary += f", {len(report.failed)} failed"
    rows.append(["TOTAL", summary, f"{total:.1f}s"])
    print(_render(["figure", "status", "wall clock"], rows,
                  title="figure campaign summary"))
    print(f"checkpoint journal: {report.checkpoint}", file=sys.stderr)
    if report.queue_dir:
        print(f"queue directory: {report.queue_dir}", file=sys.stderr)
    return 1 if report.failed else 0


def cmd_work(args) -> int:
    from .experiments.queue import work_loop
    root = None
    campaign = args.campaign
    if args.queue:
        queue_dir = args.queue
        if os.path.isfile(os.path.join(queue_dir, "manifest.json")):
            # A campaign directory was named directly.
            root = os.path.dirname(os.path.abspath(queue_dir)) or "."
            campaign = os.path.basename(os.path.abspath(queue_dir))
        else:
            root = queue_dir
    report = work_loop(
        root=root, campaign=campaign, worker_id=args.worker_id,
        ttl=args.ttl, max_cells=args.max_cells,
        idle_exit_seconds=args.idle_exit)
    print(f"-- worker {report.worker_id}: {report.completed} cells "
          f"completed over {len(report.campaigns)} campaign(s)"
          + (f" (exit: {report.reason})" if report.reason else ""))
    args._manifest_stats = {
        "completed": report.completed,
        "claims": report.claims,
        "campaigns": len(report.campaigns),
    }
    return 0


def cmd_cache(args) -> int:
    from .experiments.diskcache import DiskCache
    cache = DiskCache(args.dir if args.dir else "auto")
    if not cache.enabled:
        print("disk cache is disabled (REPRO_CACHE=off)", file=sys.stderr)
        return 1
    if args.action == "gc":
        stats = cache.gc(max_bytes=int(args.max_mb * 1024 * 1024))
        print(f"evicted {stats['evicted']} entries "
              f"({stats['bytes_freed'] / 1e6:.1f} MB), "
              f"swept {stats['tmp_removed']} tmp files "
              f"and {stats['spill_removed']} dead spill files; "
              f"{stats['kept_entries']} entries "
              f"({stats['kept_bytes'] / 1e6:.1f} MB) remain "
              f"under {cache.root}")
        # The registry is never size-evicted with the artifacts; its
        # retention is an explicit record-count prune here.
        from .telemetry.registry import RunRegistry
        registry = RunRegistry(cache.root / "telemetry")
        pruned = registry.prune(max_records=args.max_registry_records)
        if pruned:
            print(f"pruned {pruned} registry records "
                  f"(keeping newest {args.max_registry_records})")
        if stats["queue_campaigns_removed"] \
                or stats["queue_leases_reclaimed"] \
                or stats["queue_heartbeats_removed"]:
            print(f"queue: removed "
                  f"{stats['queue_campaigns_removed']} dead campaigns, "
                  f"reclaimed {stats['queue_leases_reclaimed']} expired "
                  f"leases, swept {stats['queue_heartbeats_removed']} "
                  "orphaned heartbeats")
        return 0
    if args.action == "verify":
        stats = cache.verify_entries(sample=args.sample)
        print(f"verified {stats['checked']} entries: {stats['ok']} ok "
              f"({stats['unkeyed']} without recorded key params), "
              f"{stats['checksum_mismatches']} checksum mismatches, "
              f"{stats['key_mismatches']} key mismatches"
              + (f"; {stats['skipped']} entries not sampled"
                 if stats["skipped"] else ""))
        bad = stats["checksum_mismatches"] + stats["key_mismatches"]
        if bad:
            print(f"{bad} corrupt entries quarantined under "
                  f"{cache.root}/quarantine", file=sys.stderr)
        return 1 if bad else 0
    usage = cache.usage()
    rows = [[kind,
             str(usage.get(kind, {}).get("entries", 0)),
             f"{usage.get(kind, {}).get('bytes', 0) / 1e6:.1f} MB"]
            for kind in ("traces", "states", "spill", "telemetry")]
    queue = usage.get("queue", {})
    rows.append(["queue",
                 f"{queue.get('campaigns', 0)} campaigns / "
                 f"{queue.get('cells', 0)} cells",
                 f"{queue.get('bytes', 0) / 1e6:.1f} MB"])
    rows.append(["quarantined files", str(usage["quarantined_files"]),
                 ""])
    print(render_table(["kind", "entries", "size"], rows,
                       title=f"disk cache: {usage['root']}"))
    traces = usage.get("traces", {})
    if traces.get("rows"):
        formats = traces.get("formats", {})
        formatted = ", ".join(f"{fmt}: {count}"
                              for fmt, count in sorted(formats.items()))
        print(f"trace codec: {formatted or 'none'}; "
              f"{traces['rows']} instructions in "
              f"{traces['payload_bytes'] / 1e6:.1f} MB "
              f"({traces['bytes_per_instruction']:.2f} B/instr, "
              f"{traces['compression_ratio']:.1f}x vs canonical "
              "columns)")
    return 0


def cmd_status(args) -> int:
    from .experiments.status import render_status, watch_status
    if args.watch:
        watch_status(interval=args.interval,
                     checkpoint=args.checkpoint)
        return 0
    print(render_status(args.checkpoint))
    return 0


def cmd_perf(args) -> int:
    from .experiments.perf import check, diff
    if args.action == "diff":
        return diff()
    return check(baseline_path=args.baseline,
                 threshold=args.threshold, update=args.update,
                 probe=not args.no_probe)


def cmd_serve(args) -> int:
    import signal

    from .experiments.server import SweepServer
    server = SweepServer(
        socket_path=args.socket, tcp=args.tcp, jobs=args.jobs,
        tenant_rate=args.tenant_rate, tenant_burst=args.tenant_burst,
        max_inflight=args.max_inflight, quantum=args.quantum,
        drain_grace=args.drain_grace,
        default_deadline=args.default_deadline)
    server.start()
    print(f"-- serve: listening on {server.endpoint} "
          f"(journal: {server.journal.path})", flush=True)
    signal.signal(signal.SIGTERM,
                  lambda *_: server.request_drain("SIGTERM"))
    try:
        server.wait_for_drain_request()
    except KeyboardInterrupt:
        server.request_drain("SIGINT")
    rc = server.drain()
    stats = server.stats_snapshot()
    print(f"-- serve: drained ({stats['served']} served, "
          f"{stats['journal_hits']} journal hits, "
          f"{stats['rejected']} shed, {stats['resumed']} resumed)",
          flush=True)
    args._manifest_stats = stats
    return rc


def cmd_query(args) -> int:
    from .experiments.client import ServeClient
    client = ServeClient(socket_path=args.socket, tcp=args.tcp,
                         timeout=args.timeout, tenant=args.tenant)
    if args.probe:
        response = client.probe(args.probe)
    elif args.drain:
        response = client.drain()
    elif args.name:
        response = client.query_figure(
            args.name, quick=not args.full, key=args.key,
            deadline_seconds=args.deadline)
    else:
        print("query: name a figure or pass --probe/--drain",
              file=sys.stderr)
        return 1
    if response is None:
        # The client_disconnect fault dropped the connection on
        # purpose; the server still finishes and journals the work.
        print("-- query: disconnected after send (injected fault); "
              "re-ask by key for the journaled answer",
              file=sys.stderr)
        return 0
    if response.get("ok"):
        rendered = response.get("rendered")
        if rendered is not None:
            print(rendered)
        else:
            print(json.dumps(response, sort_keys=True))
        return 0
    print(f"error: {response.get('error')}: "
          f"{response.get('message', '')}", file=sys.stderr)
    if response.get("error") == "RETRY_AFTER":
        print(f"retry after {response.get('retry_after')}s "
              f"(reason: {response.get('reason')}, "
              f"key: {response.get('key')})", file=sys.stderr)
        # EX_TEMPFAIL: shed load is a retryable condition, not a bug.
        return 75
    return 1


def cmd_telemetry(args) -> int:
    if args.registry:
        from .telemetry.registry import RunRegistry
        records = RunRegistry().tail(args.tail)
        if not records:
            print("run registry is empty", file=sys.stderr)
            return 1
        for record in records:
            print(json.dumps(record, sort_keys=True))
        return 0
    manifest = load_last_manifest()
    if manifest is None:
        print("no telemetry manifest found; run a command first "
              "(e.g. `python -m repro run chaos`)", file=sys.stderr)
        return 1
    if args.chrome_out:
        path = write_chrome_trace(args.chrome_out, manifest)
        print(f"wrote Chrome trace-event JSON to {path} "
              "(load it in chrome://tracing)")
        return 0
    if args.tree:
        print(render_span_tree(manifest.get("spans", []),
                               title="span self-time tree (last run)"))
        return 0
    json.dump(manifest, sys.stdout, indent=2)
    print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantitative overhead analysis for Python "
                    "(IISWC 2018 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func in (("run", cmd_run), ("breakdown", cmd_breakdown)):
        p = sub.add_parser(name)
        p.add_argument("file",
                       help="MiniPy source file or built-in workload name")
        p.add_argument("--runtime", default="cpython",
                       choices=("cpython", "pypy", "v8"))
        p.add_argument("--no-jit", action="store_true",
                       help="disable the JIT (pypy runtime)")
        p.add_argument("--nursery", type=int, default=1,
                       help="nursery size in MB (pypy/v8)")
        p.add_argument("--metrics-out", metavar="PATH",
                       help="write the telemetry manifest (JSON) here")
        p.add_argument("--trace-out", metavar="PATH",
                       help="write the unified Chrome trace-event "
                            "JSON here")
        p.set_defaults(func=func)

    p = sub.add_parser("workloads")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("figure")
    p.add_argument("name", help="table1, table2, fig4 ... fig17")
    p.add_argument("--full", action="store_true",
                   help="full grids instead of quick ones")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for independent cells "
                        "(default: $REPRO_JOBS or 1; 0 = all cores)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the telemetry manifest (JSON) here")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the unified Chrome trace-event JSON "
                        "here (per-worker lanes, resilience markers)")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser(
        "figures",
        help="regenerate many figures with checkpoint/resume")
    p.add_argument("names", nargs="*",
                   help="figure ids (default: --all)")
    p.add_argument("--all", action="store_true",
                   help="regenerate every table and figure")
    p.add_argument("--full", action="store_true",
                   help="full grids instead of quick ones")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for independent cells "
                        "(default: $REPRO_JOBS or 1; 0 = all cores)")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="journal file (default: "
                        "<cache-root>/figures.journal)")
    p.add_argument("--fresh", action="store_true",
                   help="discard the checkpoint journal and start over")
    p.add_argument("--budget-seconds", type=float, default=None,
                   help="per-figure wall-clock budget; exceeding it is "
                        "flagged, not fatal")
    p.add_argument("--distributed", action="store_true",
                   help="coordinate a lease-based work queue under "
                        "<cache-root>/queue; peers run `repro work`")
    p.add_argument("--queue", metavar="DIR", default=None,
                   help="--distributed: explicit campaign queue "
                        "directory (default: derived from the figure "
                        "set under <cache-root>/queue)")
    p.add_argument("--grace-seconds", type=float, default=None,
                   help="--distributed: degrade to in-process fan-out "
                        "after this long without a live worker "
                        "(default: $REPRO_QUEUE_GRACE or 20)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the telemetry manifest (JSON) here")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the unified Chrome trace-event JSON "
                        "here (per-worker lanes, resilience markers)")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser(
        "work",
        help="execute queue cells for distributed campaigns")
    p.add_argument("--queue", metavar="DIR", default=None,
                   help="queue root, or one campaign directory "
                        "(default: <cache-root>/queue)")
    p.add_argument("--campaign", metavar="ID", default=None,
                   help="serve only this campaign id")
    p.add_argument("--worker-id", metavar="NAME", default=None,
                   help="stable worker name (default: host-pid)")
    p.add_argument("--ttl", type=float, default=None,
                   help="lease/heartbeat TTL seconds "
                        "(default: $REPRO_QUEUE_TTL or 30)")
    p.add_argument("--max-cells", type=int, default=None,
                   help="exit after completing this many cells")
    p.add_argument("--idle-exit", type=float, default=None,
                   help="exit after this long with nothing claimable "
                        "(default: run until interrupted)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the telemetry manifest (JSON) here")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the unified Chrome trace-event "
                        "JSON here")
    p.set_defaults(func=cmd_work)

    p = sub.add_parser(
        "cache",
        help="disk-cache maintenance: size-bounded gc, usage stats, "
             "cross-host key/content verification")
    p.add_argument("action", choices=("gc", "stats", "verify"))
    p.add_argument("--max-mb", type=float, default=2048.0,
                   help="gc: keep at most this many megabytes "
                        "(default: 2048)")
    p.add_argument("--dir", metavar="PATH", default=None,
                   help="cache root (default: $REPRO_CACHE_DIR or "
                        ".repro-cache)")
    p.add_argument("--max-registry-records", type=int, default=4096,
                   help="gc: keep at most this many run-registry "
                        "records (default: 4096)")
    p.add_argument("--sample", type=int, default=None,
                   help="verify: audit a deterministic sample of at "
                        "most N entries (default: all)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "status",
        help="campaign progress: journal + cache + registry, joined")
    p.add_argument("--watch", action="store_true",
                   help="redraw until interrupted")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between --watch redraws (default: 2)")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="journal file (default: "
                        "<cache-root>/figures.journal)")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "perf",
        help="perf-regression sentinel against checked-in baselines")
    p.add_argument("action", choices=("check", "diff"))
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="baseline JSON (default: "
                        "benchmarks/baselines/perf.json)")
    p.add_argument("--threshold", type=float, default=2.0,
                   help="check: fail when a gauge drops below "
                        "baseline/threshold (default: 2.0)")
    p.add_argument("--update", action="store_true",
                   help="check: rewrite the baseline from this "
                        "machine's measurement")
    p.add_argument("--no-probe", action="store_true",
                   help="check: reuse the registry's last probe "
                        "instead of measuring")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser(
        "serve",
        help="long-lived multi-tenant sweep server over a Unix/TCP "
             "socket (drain with SIGTERM)")
    p.add_argument("--socket", metavar="PATH", default=None,
                   help="Unix socket path (default: "
                        "<cache-root>/serve/serve.sock)")
    p.add_argument("--tcp", metavar="HOST:PORT", default=None,
                   help="listen on TCP instead (port 0 = ephemeral)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes per request's cells "
                        "(default: serial in-process)")
    p.add_argument("--tenant-rate", type=float, default=2.0,
                   help="admission tokens per second per tenant "
                        "(default: 2)")
    p.add_argument("--tenant-burst", type=float, default=8.0,
                   help="admission token-bucket burst per tenant "
                        "(default: 8)")
    p.add_argument("--max-inflight", type=int, default=16,
                   help="bound on accepted-but-unfinished requests "
                        "before shedding with RETRY_AFTER "
                        "(default: 16)")
    p.add_argument("--quantum", type=float, default=4.0,
                   help="deficit-round-robin quantum in cells "
                        "(default: 4)")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   help="seconds to let the in-flight request finish "
                        "on drain before cancelling between cells "
                        "(default: 30)")
    p.add_argument("--default-deadline", type=float, default=None,
                   help="deadline_seconds applied to requests that "
                        "carry none (default: unlimited)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the telemetry manifest (JSON) here")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the unified Chrome trace-event JSON "
                        "here")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "query",
        help="query a running sweep server")
    p.add_argument("name", nargs="?", default=None,
                   help="figure id to request (table1, fig4, ...)")
    p.add_argument("--socket", metavar="PATH", default=None,
                   help="Unix socket path (default: "
                        "<cache-root>/serve/serve.sock)")
    p.add_argument("--tcp", metavar="HOST:PORT", default=None,
                   help="connect over TCP instead")
    p.add_argument("--tenant", default="default",
                   help="tenant name for admission/fair-share "
                        "accounting (default: default)")
    p.add_argument("--key", default=None,
                   help="idempotency key (default: derived from "
                        "tenant + request; reuse it to re-ask)")
    p.add_argument("--full", action="store_true",
                   help="full grids instead of quick ones")
    p.add_argument("--deadline", type=float, default=None,
                   help="deadline_seconds for this request")
    p.add_argument("--timeout", type=float, default=None,
                   help="socket timeout in seconds (default: wait)")
    p.add_argument("--probe", choices=("ping", "ready", "status"),
                   default=None,
                   help="health/readiness/status probe instead of a "
                        "figure query")
    p.add_argument("--drain", action="store_true",
                   help="ask the server to drain (same as SIGTERM)")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "telemetry",
        help="dump the last run's telemetry manifest")
    p.add_argument("--tree", action="store_true",
                   help="print the ASCII span self-time tree instead")
    p.add_argument("--chrome-out", metavar="PATH",
                   help="write the Chrome trace-event JSON here")
    p.add_argument("--registry", action="store_true",
                   help="print run-registry records (JSONL) instead")
    p.add_argument("--tail", type=int, default=10,
                   help="--registry: newest N records (default: 10)")
    p.set_defaults(func=cmd_telemetry)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    with_telemetry = args.command in _TELEMETRY_COMMANDS
    if with_telemetry:
        telemetry.enable()
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # fan_out has already cancelled its futures and terminated its
        # workers on the way up; the finally block below still flushes
        # the telemetry manifest, so a checkpointed campaign resumes
        # cleanly after Ctrl-C.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # `repro status | head` and friends: the reader went away.
        # Point stdout at devnull so the interpreter's exit flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if with_telemetry:
            config = {k: v for k, v in vars(args).items()
                      if not k.startswith("_") and k != "func"}
            write_manifest(getattr(args, "metrics_out", None) or None,
                           command=args.command, config=config,
                           stats=getattr(args, "_manifest_stats", None))
            trace_out = getattr(args, "trace_out", None)
            if trace_out:
                # Written in the finally block so even an interrupted
                # campaign leaves its unified trace behind.
                write_chrome_trace(trace_out)
            telemetry.disable()


if __name__ == "__main__":
    raise SystemExit(main())
