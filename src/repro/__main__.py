"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        execute a MiniPy file on a modeled runtime, print its output
breakdown  Table II overhead breakdown for a MiniPy file
workloads  list the built-in benchmark suites
figure     regenerate one of the paper's tables/figures
"""

from __future__ import annotations

import argparse
import sys

from .analysis.report import format_percent, render_table
from .config import pypy_runtime, v8_runtime
from .errors import ReproError
from .frontend import compile_source
from .host import AddressSpace, HostMachine
from .pintool import compute_breakdown
from .uarch import SimulatedSystem
from .vm.cpython import CPythonVM
from .vm.pypy import PyPyVM
from .vm.v8 import V8VM
from .vm.v8.workloads import JS_SUITE
from .workloads import PYTHON_SUITE, get_workload

_MB = 1024 * 1024


def _build_vm(runtime: str, machine: HostMachine, program,
              jit: bool, nursery: int):
    if runtime == "cpython":
        return CPythonVM(machine, program)
    if runtime == "pypy":
        return PyPyVM(machine, program,
                      pypy_runtime(jit=jit, nursery_size=nursery))
    if runtime == "v8":
        return V8VM(machine, program, v8_runtime(nursery_size=nursery))
    raise ReproError(f"unknown runtime {runtime!r}")


def _load_program(path: str):
    if path in PYTHON_SUITE:
        return compile_source(get_workload(path).source(1), path)
    with open(path, "r", encoding="utf-8") as handle:
        return compile_source(handle.read(), path)


def cmd_run(args) -> int:
    program = _load_program(args.file)
    machine = HostMachine(AddressSpace(nursery_size=args.nursery * _MB))
    vm = _build_vm(args.runtime, machine, program,
                   jit=not args.no_jit, nursery=args.nursery * _MB)
    vm.run()
    for line in vm.output:
        print(line)
    timing = SimulatedSystem().run(machine.trace, core="ooo")
    print(f"-- {args.runtime}: {vm.stats.bytecodes} bytecodes, "
          f"{len(machine.trace)} host instructions, "
          f"{timing.cycles:.0f} cycles (CPI {timing.cpi:.2f})",
          file=sys.stderr)
    return 0


def cmd_breakdown(args) -> int:
    program = _load_program(args.file)
    machine = HostMachine(AddressSpace(nursery_size=args.nursery * _MB))
    vm = _build_vm(args.runtime, machine, program,
                   jit=not args.no_jit, nursery=args.nursery * _MB)
    vm.run()
    breakdown = compute_breakdown(machine.trace, machine,
                                  runtime=args.runtime,
                                  workload=args.file)
    rows = [[label, format_percent(share)]
            for label, share in breakdown.top_categories(20)]
    print(render_table(["category", "share of cycles"], rows,
                       title=f"Overhead breakdown: {args.file} "
                             f"on {args.runtime}"))
    print(f"\nidentified overhead: "
          f"{format_percent(breakdown.overhead_share)}"
          f" (C library: {format_percent(breakdown.c_library_share)})")
    return 0


def cmd_workloads(_args) -> int:
    rows = [[name, get_workload(name).tag,
             get_workload(name).description]
            for name in PYTHON_SUITE]
    print(render_table(["workload", "class", "description"], rows,
                       title="Python suite (48 benchmarks)"))
    print(f"\nJetStream-analog suite (37): {', '.join(JS_SUITE)}")
    return 0


def cmd_figure(args) -> int:
    from .experiments.figures import ALL_FIGURES
    func = ALL_FIGURES.get(args.name)
    if func is None:
        print(f"unknown figure {args.name!r}; "
              f"choose from {', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 1
    if args.name.startswith("table"):
        print(func())
    else:
        print(func(quick=not args.full))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantitative overhead analysis for Python "
                    "(IISWC 2018 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func in (("run", cmd_run), ("breakdown", cmd_breakdown)):
        p = sub.add_parser(name)
        p.add_argument("file",
                       help="MiniPy source file or built-in workload name")
        p.add_argument("--runtime", default="cpython",
                       choices=("cpython", "pypy", "v8"))
        p.add_argument("--no-jit", action="store_true",
                       help="disable the JIT (pypy runtime)")
        p.add_argument("--nursery", type=int, default=1,
                       help="nursery size in MB (pypy/v8)")
        p.set_defaults(func=func)

    p = sub.add_parser("workloads")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("figure")
    p.add_argument("name", help="table1, table2, fig4 ... fig17")
    p.add_argument("--full", action="store_true",
                   help="full grids instead of quick ones")
    p.set_defaults(func=cmd_figure)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
