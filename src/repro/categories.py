"""Overhead taxonomy from Table II of the paper.

The paper attributes every host (interpreter-level) instruction to one of
fourteen overhead categories, organized in three groups, plus the
``EXECUTE`` category for the instructions that perform the guest program's
real work and ``C_LIBRARY`` for time spent inside C library code (Section
IV-C.1 reports C library time separately from the overhead categories).

Categories marked *new* in Table II (error check, reg transfer, C function
call) were first identified by this paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Group(enum.Enum):
    """Table II groups the overhead categories into three rows."""

    ADDITIONAL_LANGUAGE = "Additional Language Features"
    DYNAMIC_LANGUAGE = "Dynamic Language Features"
    INTERPRETER = "Interpreter Operations"
    #: Not an overhead: the useful work of the guest program itself.
    CORE = "Core Computation"


class OverheadCategory(enum.IntEnum):
    """One label per host instruction, following Table II.

    The integer values are stable and are stored directly in instruction
    traces, so they must never be renumbered.
    """

    # -- Core computation (not overhead) ----------------------------------
    EXECUTE = 0
    #: Time spent inside modeled C library code (e.g. pickle, regex).
    C_LIBRARY = 1

    # -- Additional language features --------------------------------------
    ERROR_CHECK = 2
    GARBAGE_COLLECTION = 3
    RICH_CONTROL_FLOW = 4

    # -- Dynamic language features ------------------------------------------
    TYPE_CHECK = 5
    BOXING_UNBOXING = 6
    NAME_RESOLUTION = 7
    FUNCTION_RESOLUTION = 8
    FUNCTION_SETUP_CLEANUP = 9

    # -- Interpreter operations ----------------------------------------------
    DISPATCH = 10
    STACK = 11
    CONST_LOAD = 12
    OBJECT_ALLOCATION = 13
    REG_TRANSFER = 14
    C_FUNCTION_CALL = 15

    # -- Sentinel used by function-granularity annotation sites --------------
    #: The pintool resolves UNRESOLVED instructions during post-processing
    #: using the annotation table and the recorded origin PC (Section IV-B).
    UNRESOLVED = 16

    # -- JIT-runtime phases (Figure 7 breaks PyPy execution into phases) ------
    JIT_COMPILING = 17
    JIT_COMPILED_CODE = 18


@dataclass(frozen=True)
class CategoryInfo:
    """Human-readable metadata for one Table II row."""

    category: OverheadCategory
    group: Group
    label: str
    description: str
    #: True for the three sources first identified by this paper.
    new_in_paper: bool = False


_INFOS = [
    CategoryInfo(
        OverheadCategory.EXECUTE, Group.CORE, "Execute",
        "Instructions performing the guest program's real computation."),
    CategoryInfo(
        OverheadCategory.C_LIBRARY, Group.CORE, "C library",
        "Time spent inside C library code called from the guest program."),
    CategoryInfo(
        OverheadCategory.ERROR_CHECK, Group.ADDITIONAL_LANGUAGE,
        "Error check",
        "Check for overflow, out-of-bounds, and other errors.",
        new_in_paper=True),
    CategoryInfo(
        OverheadCategory.GARBAGE_COLLECTION, Group.ADDITIONAL_LANGUAGE,
        "Garbage collection",
        "Automatically freeing unused memory."),
    CategoryInfo(
        OverheadCategory.RICH_CONTROL_FLOW, Group.ADDITIONAL_LANGUAGE,
        "Rich control flow",
        "Support for more condition cases and control structures."),
    CategoryInfo(
        OverheadCategory.TYPE_CHECK, Group.DYNAMIC_LANGUAGE, "Type check",
        "Checking variable type to determine operation."),
    CategoryInfo(
        OverheadCategory.BOXING_UNBOXING, Group.DYNAMIC_LANGUAGE,
        "Boxing/unboxing",
        "Wrapping or unwrapping integer or float types."),
    CategoryInfo(
        OverheadCategory.NAME_RESOLUTION, Group.DYNAMIC_LANGUAGE,
        "Name resolution",
        "Looking up a variable in a map."),
    CategoryInfo(
        OverheadCategory.FUNCTION_RESOLUTION, Group.DYNAMIC_LANGUAGE,
        "Function resolution",
        "Dereferencing function pointers to perform an operation."),
    CategoryInfo(
        OverheadCategory.FUNCTION_SETUP_CLEANUP, Group.DYNAMIC_LANGUAGE,
        "Function setup/cleanup",
        "Setting up for a function call and cleaning up when finished."),
    CategoryInfo(
        OverheadCategory.DISPATCH, Group.INTERPRETER, "Dispatch",
        "Reading and decoding a bytecode instruction."),
    CategoryInfo(
        OverheadCategory.STACK, Group.INTERPRETER, "Stack",
        "Reading, writing, and managing the VM stack."),
    CategoryInfo(
        OverheadCategory.CONST_LOAD, Group.INTERPRETER, "Const load",
        "Reading constants."),
    CategoryInfo(
        OverheadCategory.OBJECT_ALLOCATION, Group.INTERPRETER,
        "Object allocation",
        "Inefficient deallocation followed by allocation of objects."),
    CategoryInfo(
        OverheadCategory.REG_TRANSFER, Group.INTERPRETER, "Reg transfer",
        "Calculating the address of VM storage.",
        new_in_paper=True),
    CategoryInfo(
        OverheadCategory.C_FUNCTION_CALL, Group.INTERPRETER,
        "C function call",
        "Following the C calling convention in the interpreter.",
        new_in_paper=True),
    CategoryInfo(
        OverheadCategory.UNRESOLVED, Group.CORE, "Unresolved",
        "Function-granularity site pending origin-PC resolution."),
    CategoryInfo(
        OverheadCategory.JIT_COMPILING, Group.CORE, "JIT compilation",
        "Time spent running the just-in-time compiler."),
    CategoryInfo(
        OverheadCategory.JIT_COMPILED_CODE, Group.CORE, "JIT compiled code",
        "Guest work executed as JIT-compiled machine code."),
]

CATEGORY_INFO: dict[OverheadCategory, CategoryInfo] = {
    info.category: info for info in _INFOS
}

#: Categories plotted in Figure 4(a): language features, both groups.
LANGUAGE_FEATURE_CATEGORIES = tuple(
    info.category for info in _INFOS
    if info.group in (Group.ADDITIONAL_LANGUAGE, Group.DYNAMIC_LANGUAGE)
)

#: Categories plotted in Figure 4(b): interpreter operations.
INTERPRETER_CATEGORIES = tuple(
    info.category for info in _INFOS if info.group is Group.INTERPRETER
)

#: All overhead categories from Table II (excludes EXECUTE / C_LIBRARY /
#: bookkeeping sentinels).
OVERHEAD_CATEGORIES = LANGUAGE_FEATURE_CATEGORIES + INTERPRETER_CATEGORIES

#: Categories introduced by this paper (Table II "NEW" rows).
NEW_CATEGORIES = tuple(
    info.category for info in _INFOS if info.new_in_paper
)

#: Categories counted as "time in C library code" (Section IV-C.1).
C_LIBRARY_SHARE_CATEGORIES = (OverheadCategory.C_LIBRARY,)


def group_of(category: OverheadCategory) -> Group:
    """Return the Table II group a category belongs to."""
    return CATEGORY_INFO[category].group


def label_of(category: OverheadCategory) -> str:
    """Return the human-readable label used in the paper's figures."""
    return CATEGORY_INFO[category].label


def is_overhead(category: OverheadCategory) -> bool:
    """True if the category counts toward the paper's overhead total."""
    return category in OVERHEAD_CATEGORIES
