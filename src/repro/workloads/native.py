"""Run workload sources under the host Python for semantic verification.

Every MiniPy workload is valid Python. Executing it natively — with shim
modules whose semantics match the modeled C library exactly — gives a
ground-truth output to compare the VM's output against. The test suite
uses this to prove that all 48 benchmarks compute the same results on
the host interpreter, the CPython model, and the PyPy model.
"""

from __future__ import annotations

import math
import re as host_re

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class RndShim:
    """Matches the guest ``rnd`` module bit for bit."""

    def __init__(self) -> None:
        self._state = 0x9E3779B97F4A7C15

    def seed(self, value: int) -> None:
        self._state = (value ^ 0x9E3779B97F4A7C15) & _LCG_MASK

    def _step(self) -> int:
        self._state = (self._state * _LCG_A + _LCG_C) & _LCG_MASK
        return self._state

    def random(self) -> float:
        return (self._step() >> 11) / float(1 << 53)

    def randint(self, low: int, high: int) -> int:
        return low + self._step() % (high - low + 1)


def _serialize(obj, out: list) -> None:
    if isinstance(obj, bool):
        out.append("b1" if obj else "b0")
    elif isinstance(obj, int):
        out.append(f"i{obj};")
    elif isinstance(obj, float):
        out.append(f"f{obj!r};")
    elif isinstance(obj, str):
        out.append(f"s{len(obj)};{obj}")
    elif obj is None:
        out.append("n")
    elif isinstance(obj, (list, tuple)):
        tag = "l" if isinstance(obj, list) else "t"
        out.append(f"{tag}{len(obj)};")
        for item in obj:
            _serialize(item, out)
    elif isinstance(obj, dict):
        out.append(f"d{len(obj)};")
        for key, value in obj.items():
            _serialize(key, out)
            _serialize(value, out)
    else:
        raise TypeError(f"cannot serialize {type(obj).__name__}")


class _NativeParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def take_until(self, terminator: str) -> str:
        end = self.text.index(terminator, self.pos)
        piece = self.text[self.pos:end]
        self.pos = end + 1
        return piece

    def parse(self):
        tag = self.text[self.pos]
        self.pos += 1
        if tag == "b":
            flag = self.text[self.pos]
            self.pos += 1
            return flag == "1"
        if tag == "i":
            return int(self.take_until(";"))
        if tag == "f":
            return float(self.take_until(";"))
        if tag == "n":
            return None
        if tag == "s":
            length = int(self.take_until(";"))
            piece = self.text[self.pos:self.pos + length]
            self.pos += length
            return piece
        if tag in ("l", "t"):
            count = int(self.take_until(";"))
            items = [self.parse() for _ in range(count)]
            return items if tag == "l" else tuple(items)
        if tag == "d":
            count = int(self.take_until(";"))
            result = {}
            for _ in range(count):
                key = self.parse()
                result[key] = self.parse()
            return result
        raise ValueError(f"unknown tag {tag!r}")


class SerializerShim:
    """Matches guest ``pickle``/``json`` (same wire format)."""

    @staticmethod
    def dumps(obj) -> str:
        out: list = []
        _serialize(obj, out)
        return "".join(out)

    @staticmethod
    def loads(text: str):
        return _NativeParser(text).parse()


class ReShim:
    """Matches guest ``re``: search/match return group(0) or None."""

    @staticmethod
    def search(pattern: str, text: str):
        match = host_re.search(pattern, text)
        return match.group(0) if match else None

    @staticmethod
    def match(pattern: str, text: str):
        match = host_re.match(pattern, text)
        return match.group(0) if match else None

    @staticmethod
    def findall(pattern: str, text: str) -> list:
        found = host_re.findall(pattern, text)
        return [f if isinstance(f, str) else f[0] for f in found]


def run_native(source: str) -> list[str]:
    """Execute workload source under the host Python; return print lines."""
    output: list[str] = []

    def capture_print(*args) -> None:
        output.append(" ".join(str(a) for a in args))

    namespace = {
        "math": math,
        "rnd": RndShim(),
        "pickle": SerializerShim(),
        "json": SerializerShim(),
        "re": ReShim(),
        "print": capture_print,
        "__builtins__": __builtins__,
    }
    exec(compile(source, "<workload>", "exec"), namespace)
    return output
