"""The benchmark suite: 48 MiniPy workloads named after the paper's.

The paper evaluates 48 benchmarks from the official Python performance
suite and the PyPy suite. Each workload here reproduces the *workload
class* of its namesake — numeric kernel, object-oriented application,
C-library-bound program, or allocation-heavy GC stressor — as a real
MiniPy program with a deterministic checksum, sized so a full run stays
tractable under double interpretation.
"""

from .registry import (
    WorkloadSpec,
    get_workload,
    workload_names,
    PYTHON_SUITE,
    SWEEP_BENCHMARKS,
    NURSERY_BENCHMARKS,
    BREAKDOWN_QUICK_SUITE,
)

__all__ = [
    "WorkloadSpec", "get_workload", "workload_names", "PYTHON_SUITE",
    "SWEEP_BENCHMARKS", "NURSERY_BENCHMARKS", "BREAKDOWN_QUICK_SUITE",
]
