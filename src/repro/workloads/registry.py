"""Workload registry: all 48 Python-suite benchmarks, with metadata.

Figure subsets follow the paper: Figure 8 sweeps eight benchmarks on
PyPy with JIT; Figures 14/15 sweep eight benchmarks across nursery
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import WorkloadError
from .programs import clib, gc_heavy, numeric, objects, strings


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark: a name, a class tag, and a source builder."""

    name: str
    tag: str
    builder: Callable[[int], str]
    description: str

    def source(self, scale: int = 1) -> str:
        if scale < 1:
            raise WorkloadError(f"{self.name}: scale must be >= 1")
        return self.builder(scale)


def _spec(name: str, tag: str, builder, description: str) -> WorkloadSpec:
    return WorkloadSpec(name=name, tag=tag, builder=builder,
                        description=description)


_WORKLOADS = [
    # -- numeric kernels -----------------------------------------------
    _spec("float", "numeric", numeric.float_bench,
          "Point objects with float attribute arithmetic"),
    _spec("nbody", "numeric", numeric.nbody,
          "planetary n-body simulation over float lists"),
    _spec("fannkuch", "numeric", numeric.fannkuch,
          "pancake-flip permutation kernel"),
    _spec("pidigits", "numeric", numeric.pidigits,
          "spigot pi-digit generation with big integers"),
    _spec("spectral_norm", "numeric", numeric.spectral_norm,
          "matrix-free spectral norm power iteration"),
    _spec("scimark_fft", "numeric", numeric.scimark_fft,
          "radix-2 FFT over a flat float list"),
    _spec("scimark_lu", "numeric", numeric.scimark_lu,
          "LU factorization with partial pivoting"),
    _spec("scimark_sor", "numeric", numeric.scimark_sor,
          "successive over-relaxation stencil"),
    _spec("scimark_sparse", "numeric", numeric.scimark_sparse,
          "CSR sparse matrix-vector products"),
    _spec("scimark_monte", "numeric", numeric.scimark_monte,
          "Monte Carlo pi estimation"),
    _spec("telco", "numeric", numeric.telco,
          "telephone billing integer arithmetic"),
    _spec("crypto_pyaes", "numeric", numeric.crypto_pyaes,
          "AES-like S-box/shift/mix rounds"),
    _spec("meteor_contest", "numeric", numeric.meteor_contest,
          "bitboard piece-placement search"),
    _spec("nqueens", "numeric", numeric.nqueens,
          "recursive N-queens backtracking"),
    _spec("pyflate", "numeric", numeric.pyflate,
          "bit-stream decoding with run-length expansion"),
    _spec("go", "numeric", numeric.go_bench,
          "9x9 go random playout with captures"),
    _spec("hexiom", "numeric", numeric.hexiom,
          "hex puzzle brute-force search"),
    # -- C-library bound -------------------------------------------------
    _spec("pickle", "clib", clib.pickle_bench,
          "serialize/deserialize mixed objects"),
    _spec("pickle_dict", "clib", clib.pickle_dict,
          "serialize a string-keyed dict"),
    _spec("pickle_list", "clib", clib.pickle_list,
          "serialize/deserialize an int list"),
    _spec("unpickle", "clib", clib.unpickle,
          "deserialize a mixed dict repeatedly"),
    _spec("unpickle_list", "clib", clib.unpickle_list,
          "deserialize an int list repeatedly"),
    _spec("json_dumps", "clib", clib.json_dumps,
          "JSON-encode nested documents"),
    _spec("json_loads", "clib", clib.json_loads,
          "JSON-decode nested documents"),
    _spec("regex_compile", "clib", clib.regex_compile,
          "many small patterns over short subjects"),
    _spec("regex_dna", "clib", clib.regex_dna,
          "DNA motif alternation search"),
    _spec("regex_effbot", "clib", clib.regex_effbot,
          "word/number scanning patterns"),
    _spec("regex_v8", "clib", clib.regex_v8,
          "log-scanning patterns"),
    # -- object-oriented applications -----------------------------------
    _spec("richards", "oo", objects.richards,
          "OS task scheduler simulation"),
    _spec("deltablue", "oo", objects.deltablue,
          "one-way constraint propagation chains"),
    _spec("chaos", "oo", objects.chaos,
          "chaos-game fractal with vector objects"),
    _spec("raytrace", "oo", objects.raytrace,
          "sphere ray casting with vector objects"),
    _spec("rietveld", "oo", objects.rietveld,
          "LCS diff over synthetic code reviews"),
    _spec("dulwich_log", "oo", objects.dulwich_log,
          "commit-graph log walk"),
    # -- template / string processing ------------------------------------
    _spec("chameleon", "string", strings.chameleon,
          "HTML table rendering via join"),
    _spec("mako", "string", strings.mako,
          "template substitution via replace"),
    _spec("spitfire", "string", strings.spitfire,
          "row rendering with buffered join"),
    _spec("spitfire_cstringio", "string", strings.spitfire_cstringio,
          "row rendering with string concatenation"),
    _spec("html5lib", "string", strings.html5lib,
          "HTML tokenizer over a synthetic document"),
    _spec("logging_format", "string", strings.logging_format,
          "log record formatting with level filtering"),
    # -- allocation / GC heavy --------------------------------------------
    _spec("eparse", "gc", gc_heavy.eparse,
          "recursive-descent expression parser building AST nodes"),
    _spec("pyxl_bench", "gc", gc_heavy.pyxl_bench,
          "element-tree construction and rendering"),
    _spec("sym_expand", "gc", gc_heavy.sym_expand,
          "symbolic product expansion over expression trees"),
    _spec("sym_integrate", "gc", gc_heavy.sym_integrate,
          "polynomial term integration"),
    _spec("sym_str", "gc", gc_heavy.sym_str,
          "symbolic expression stringification"),
    _spec("sym_sum", "gc", gc_heavy.sym_sum,
          "symbolic sum simplification"),
    _spec("tuple_gc", "gc", gc_heavy.tuple_gc,
          "sliding-window tuple churn"),
    _spec("unpack_seq", "gc", gc_heavy.unpack_seq,
          "tuple build/unpack in a tight loop"),
]

_REGISTRY: dict[str, WorkloadSpec] = {spec.name: spec
                                      for spec in _WORKLOADS}

#: Every benchmark of the Python suite (paper Section III: 48 programs).
PYTHON_SUITE = tuple(spec.name for spec in _WORKLOADS)

#: Figure 8 per-benchmark sweep set.
SWEEP_BENCHMARKS = ("go", "float", "eparse", "spitfire", "regex_v8",
                    "richards", "unpack_seq", "sym_integrate")

#: Figure 14/15 nursery sweep set.
NURSERY_BENCHMARKS = ("eparse", "fannkuch", "html5lib", "logging_format",
                      "pyxl_bench", "spitfire", "telco", "unpack_seq")

#: A small mixed subset for quick runs (one per workload class).
BREAKDOWN_QUICK_SUITE = ("float", "richards", "pickle_list", "mako",
                         "tuple_gc", "regex_dna", "eparse", "nqueens")


def workload_names(tag: str | None = None) -> tuple[str, ...]:
    """All workload names, optionally filtered by class tag."""
    if tag is None:
        return PYTHON_SUITE
    return tuple(spec.name for spec in _WORKLOADS if spec.tag == tag)


def get_workload(name: str) -> WorkloadSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(PYTHON_SUITE)}")
    return spec
