"""Numeric-kernel workloads: float arithmetic, linear algebra, bit work.

These stress boxing/unboxing, arithmetic dispatch, and error (overflow)
checks — the categories that dominate compute-bound rows of Figure 4.
"""

from __future__ import annotations


def float_bench(scale: int = 1) -> str:
    n = 60 * scale
    return f"""
class Point:
    def __init__(self, i):
        self.x = math.sin(i)
        self.y = math.cos(i) * 3.0
        self.z = (self.x * self.x) / 2.0

    def normalize(self):
        norm = math.sqrt(self.x * self.x + self.y * self.y
                         + self.z * self.z)
        self.x = self.x / norm
        self.y = self.y / norm
        self.z = self.z / norm

    def maximize(self, other):
        if other.x > self.x:
            self.x = other.x
        if other.y > self.y:
            self.y = other.y
        if other.z > self.z:
            self.z = other.z
        return self

def benchmark(n):
    points = []
    for i in range(n):
        points.append(Point(float(i)))
    for p in points:
        p.normalize()
    result = points[0]
    for p in points:
        result = result.maximize(p)
    return result

res = benchmark({n})
print(str(int(res.x * 1000)) + " " + str(int(res.y * 1000)))
"""


def nbody(scale: int = 1) -> str:
    steps = 25 * scale
    return f"""
def advance(bodies, dt, steps):
    n = len(bodies)
    for s in range(steps):
        for i in range(n):
            bi = bodies[i]
            for j in range(i + 1, n):
                bj = bodies[j]
                dx = bi[0] - bj[0]
                dy = bi[1] - bj[1]
                dz = bi[2] - bj[2]
                d2 = dx * dx + dy * dy + dz * dz
                mag = dt / (d2 * math.sqrt(d2))
                bmj = bj[6] * mag
                bi[3] = bi[3] - dx * bmj
                bi[4] = bi[4] - dy * bmj
                bi[5] = bi[5] - dz * bmj
                bmi = bi[6] * mag
                bj[3] = bj[3] + dx * bmi
                bj[4] = bj[4] + dy * bmi
                bj[5] = bj[5] + dz * bmi
        for i in range(n):
            b = bodies[i]
            b[0] = b[0] + dt * b[3]
            b[1] = b[1] + dt * b[4]
            b[2] = b[2] + dt * b[5]

def energy(bodies):
    e = 0.0
    n = len(bodies)
    for i in range(n):
        bi = bodies[i]
        e = e + 0.5 * bi[6] * (bi[3] * bi[3] + bi[4] * bi[4]
                               + bi[5] * bi[5])
        for j in range(i + 1, n):
            bj = bodies[j]
            dx = bi[0] - bj[0]
            dy = bi[1] - bj[1]
            dz = bi[2] - bj[2]
            e = e - (bi[6] * bj[6]) / math.sqrt(dx * dx + dy * dy
                                                + dz * dz)
    return e

bodies = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 39.47],
    [4.84, -1.16, -0.1, 0.6, 2.8, -0.02, 0.037],
    [8.34, 4.12, -0.4, -1.0, 1.8, 0.008, 0.011],
    [12.89, -15.11, -0.22, 1.08, 0.86, -0.01, 0.0017],
    [15.38, -25.92, 0.18, 0.98, 0.59, -0.03, 0.0002],
]
advance(bodies, 0.01, {steps})
print(int(energy(bodies) * 100000))
"""


def fannkuch(scale: int = 1) -> str:
    n = 6 if scale < 4 else 7
    return f"""
def fannkuch(n):
    perm1 = []
    for i in range(n):
        perm1.append(i)
    count = [0] * n
    max_flips = 0
    checksum = 0
    r = n
    sign = 1
    while True:
        if perm1[0] != 0:
            perm = perm1[0:n]
            flips = 0
            k = perm[0]
            while k != 0:
                i = 0
                j = k
                while i < j:
                    t = perm[i]
                    perm[i] = perm[j]
                    perm[j] = t
                    i = i + 1
                    j = j - 1
                flips = flips + 1
                k = perm[0]
            if flips > max_flips:
                max_flips = flips
            checksum = checksum + sign * flips
        sign = -sign
        r = 1
        while True:
            if r == n:
                return (checksum, max_flips)
            perm0 = perm1[0]
            i = 0
            while i < r:
                perm1[i] = perm1[i + 1]
                i = i + 1
            perm1[r] = perm0
            count[r] = count[r] + 1
            if count[r] <= r:
                break
            count[r] = 0
            r = r + 1

cs, mf = fannkuch({n})
print(str(cs) + " " + str(mf))
"""


def pidigits(scale: int = 1) -> str:
    digits = 40 * scale
    return f"""
def pi_digits(n):
    q = 1
    r = 0
    t = 1
    k = 1
    m = 3
    x = 3
    out = []
    while len(out) < n:
        if 4 * q + r - t < m * t:
            out.append(m)
            q2 = 10 * q
            r2 = 10 * (r - m * t)
            m2 = (10 * (3 * q + r)) // t - 10 * m
            q = q2
            r = r2
            m = m2
        else:
            q2 = q * k
            r2 = (2 * q + r) * x
            t2 = t * x
            k2 = k + 1
            m2 = (q * (7 * k + 2) + r * x) // (t * x)
            x2 = x + 2
            q = q2
            r = r2
            t = t2
            k = k2
            m = m2
            x = x2
    return out

ds = pi_digits({digits})
total = 0
for i in range(len(ds)):
    total = total + ds[i] * (i + 1)
print(total)
"""


def spectral_norm(scale: int = 1) -> str:
    n = 12 * scale
    return f"""
def eval_a(i, j):
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1)

def times(v, n, transpose):
    out = []
    for i in range(n):
        total = 0.0
        for j in range(n):
            if transpose:
                total = total + eval_a(j, i) * v[j]
            else:
                total = total + eval_a(i, j) * v[j]
        out.append(total)
    return out

def times_both(v, n):
    return times(times(v, n, False), n, True)

n = {n}
u = [1.0] * n
v = []
for it in range(6):
    v = times_both(u, n)
    u = times_both(v, n)
vbv = 0.0
vv = 0.0
for i in range(n):
    vbv = vbv + u[i] * v[i]
    vv = vv + v[i] * v[i]
print(int(math.sqrt(vbv / vv) * 1000000))
"""


def scimark_fft(scale: int = 1) -> str:
    reps = 2 * scale
    return f"""
def bit_reverse(data, n):
    j = 0
    for i in range(n - 1):
        if i < j:
            tr = data[2 * i]
            ti = data[2 * i + 1]
            data[2 * i] = data[2 * j]
            data[2 * i + 1] = data[2 * j + 1]
            data[2 * j] = tr
            data[2 * j + 1] = ti
        k = n // 2
        while k <= j:
            j = j - k
            k = k // 2
        j = j + k

def fft(data, n):
    bit_reverse(data, n)
    size = 2
    while size <= n:
        half = size // 2
        step = n // size
        for i in range(0, n, size):
            for j in range(half):
                angle = -3.141592653589793 * 2.0 * j * step / n
                wr = math.cos(angle)
                wi = math.sin(angle)
                a = i + j
                b = i + j + half
                tr = wr * data[2 * b] - wi * data[2 * b + 1]
                ti = wr * data[2 * b + 1] + wi * data[2 * b]
                data[2 * b] = data[2 * a] - tr
                data[2 * b + 1] = data[2 * a + 1] - ti
                data[2 * a] = data[2 * a] + tr
                data[2 * a + 1] = data[2 * a + 1] + ti
        size = size * 2

total = 0
for rep in range({reps}):
    n = 64
    data = []
    for i in range(2 * n):
        data.append(float((i * 7 + rep) % 13) / 13.0)
    fft(data, n)
    total = total + int(abs(data[2]) * 1000)
print(total)
"""


def scimark_lu(scale: int = 1) -> str:
    reps = 3 * scale
    return f"""
def lu_factor(a, n):
    pivots = [0] * n
    for j in range(n):
        jp = j
        t = abs(a[j][j])
        for i in range(j + 1, n):
            ab = abs(a[i][j])
            if ab > t:
                jp = i
                t = ab
        pivots[j] = jp
        if jp != j:
            tmp = a[j]
            a[j] = a[jp]
            a[jp] = tmp
        if a[j][j] != 0.0:
            recp = 1.0 / a[j][j]
            for k in range(j + 1, n):
                a[k][j] = a[k][j] * recp
        if j < n - 1:
            for ii in range(j + 1, n):
                aii = a[ii]
                aj = a[j]
                mult = aii[j]
                for kk in range(j + 1, n):
                    aii[kk] = aii[kk] - mult * aj[kk]
    return pivots

total = 0
for rep in range({reps}):
    n = 10
    a = []
    for i in range(n):
        row = []
        for j in range(n):
            row.append(float((i * n + j + rep) % 17) + 1.0)
        a.append(row)
    lu_factor(a, n)
    total = total + int(abs(a[n - 1][n - 1]) * 100)
print(total)
"""


def scimark_sor(scale: int = 1) -> str:
    iters = 8 * scale
    return f"""
def sor(grid, n, m, omega, iters):
    for it in range(iters):
        for i in range(1, n - 1):
            gi = grid[i]
            gim = grid[i - 1]
            gip = grid[i + 1]
            for j in range(1, m - 1):
                gi[j] = omega * 0.25 * (gim[j] + gip[j] + gi[j - 1]
                                        + gi[j + 1]) \\
                    + (1.0 - omega) * gi[j]

n = 14
m = 14
grid = []
for i in range(n):
    row = []
    for j in range(m):
        row.append(float((i * m + j) % 11))
    grid.append(row)
sor(grid, n, m, 1.25, {iters})
total = 0.0
for i in range(n):
    for j in range(m):
        total = total + grid[i][j]
print(int(total * 1000))
"""


def scimark_sparse(scale: int = 1) -> str:
    iters = 5 * scale
    return f"""
def sparse_matmult(y, val, row, col, x, iters):
    n = len(y)
    for it in range(iters):
        for r in range(n):
            total = 0.0
            for i in range(row[r], row[r + 1]):
                total = total + x[col[i]] * val[i]
            y[r] = total

n = 80
nz = 5
row = [0]
col = []
val = []
for r in range(n):
    for k in range(nz):
        col.append((r * 7 + k * 13) % n)
        val.append(float(k + 1))
    row.append(len(col))
x = [1.0] * n
y = [0.0] * n
sparse_matmult(y, val, row, col, x, {iters})
total = 0.0
for r in range(n):
    total = total + y[r]
print(int(total))
"""


def scimark_monte(scale: int = 1) -> str:
    samples = 1500 * scale
    return f"""
rnd.seed(42)
inside = 0
n = {samples}
for i in range(n):
    x = rnd.random()
    y = rnd.random()
    if x * x + y * y <= 1.0:
        inside = inside + 1
print(inside)
"""


def telco(scale: int = 1) -> str:
    calls = 400 * scale
    return f"""
rnd.seed(7)
total_cents = 0
basic_tax = 0
dist_tax = 0
for i in range({calls}):
    duration = rnd.randint(1, 7200)
    rate = 9
    if i % 3 == 0:
        rate = 13
    price = duration * rate // 100
    btax = price * 9 // 100
    total_cents = total_cents + price + btax
    basic_tax = basic_tax + btax
    if i % 3 == 0:
        dtax = price * 62 // 1000
        total_cents = total_cents + dtax
        dist_tax = dist_tax + dtax
print(str(total_cents) + " " + str(basic_tax) + " " + str(dist_tax))
"""


def crypto_pyaes(scale: int = 1) -> str:
    rounds = 60 * scale
    return f"""
def make_sbox():
    sbox = []
    for i in range(256):
        v = i
        v = (v * 7 + 99) % 256
        v = v ^ (v // 16)
        sbox.append(v % 256)
    return sbox

def encrypt_block(state, sbox, rounds):
    for r in range(rounds):
        for i in range(16):
            state[i] = sbox[state[i]]
        t = state[0]
        for i in range(15):
            state[i] = state[i + 1]
        state[15] = t
        for i in range(0, 16, 4):
            a = state[i] ^ state[i + 1]
            b = state[i + 2] ^ state[i + 3]
            state[i] = (state[i] + a) % 256
            state[i + 2] = (state[i + 2] + b) % 256
    return state

sbox = make_sbox()
state = []
for i in range(16):
    state.append((i * 17 + 3) % 256)
state = encrypt_block(state, sbox, {rounds})
total = 0
for i in range(16):
    total = total + state[i] * (i + 1)
print(total)
"""


def meteor_contest(scale: int = 1) -> str:
    limit = 220 * scale
    return f"""
def count_bits(x):
    n = 0
    while x:
        x = x & (x - 1)
        n = n + 1
    return n

def solve(width, height, limit):
    full = (1 << (width * height)) - 1
    pieces = [3, 6, 12, 15, 51, 85]
    solutions = 0
    tried = 0
    stack = [(0, 0)]
    while len(stack) > 0 and tried < limit:
        board, idx = stack.pop()
        tried = tried + 1
        if board == full:
            solutions = solutions + 1
            continue
        if idx >= len(pieces):
            continue
        piece = pieces[idx]
        for shift in range(width * height):
            placed = piece << shift
            if placed > full:
                break
            if (board & placed) == 0:
                stack.append((board | placed, idx + 1))
        stack.append((board, idx + 1))
    return (solutions, tried)

s, t = solve(4, 4, {limit})
print(str(s) + " " + str(t))
"""


def nqueens(scale: int = 1) -> str:
    n = 6 if scale < 3 else 7
    return f"""
def solve(n, row, cols, diag1, diag2):
    if row == n:
        return 1
    count = 0
    for col in range(n):
        d1 = row + col
        d2 = row - col + n
        if cols[col] == 0 and diag1[d1] == 0 and diag2[d2] == 0:
            cols[col] = 1
            diag1[d1] = 1
            diag2[d2] = 1
            count = count + solve(n, row + 1, cols, diag1, diag2)
            cols[col] = 0
            diag1[d1] = 0
            diag2[d2] = 0
    return count

n = {n}
print(solve(n, 0, [0] * n, [0] * (2 * n), [0] * (2 * n)))
"""


def pyflate(scale: int = 1) -> str:
    length = 700 * scale
    return f"""
def build_data(n):
    data = []
    x = 11
    for i in range(n):
        x = (x * 1103515245 + 12345) % 2147483648
        data.append(x % 256)
    return data

def bit_stream_decode(data):
    out = []
    acc = 0
    nbits = 0
    for byte in data:
        acc = acc | (byte << nbits)
        nbits = nbits + 8
        while nbits >= 5:
            code = acc & 31
            acc = acc >> 5
            nbits = nbits - 5
            if code < 16:
                out.append(code)
            else:
                run = code - 14
                if len(out) > 0:
                    last = out[len(out) - 1]
                else:
                    last = 0
                for r in range(run):
                    out.append(last)
    return out

data = build_data({length})
out = bit_stream_decode(data)
total = 0
for i in range(len(out)):
    total = total + out[i]
print(str(len(out)) + " " + str(total))
"""


def go_bench(scale: int = 1) -> str:
    moves = 160 * scale
    return f"""
rnd.seed(123)

def neighbors(pos, size):
    result = []
    x = pos % size
    y = pos // size
    if x > 0:
        result.append(pos - 1)
    if x < size - 1:
        result.append(pos + 1)
    if y > 0:
        result.append(pos - size)
    if y < size - 1:
        result.append(pos + size)
    return result

def count_liberties(board, pos, size):
    libs = 0
    for n in neighbors(pos, size):
        if board[n] == 0:
            libs = libs + 1
    return libs

def playout(size, moves):
    board = [0] * (size * size)
    captures = 0
    color = 1
    for m in range(moves):
        pos = rnd.randint(0, size * size - 1)
        if board[pos] == 0:
            board[pos] = color
            for n in neighbors(pos, size):
                if board[n] != 0 and board[n] != color:
                    if count_liberties(board, n, size) == 0:
                        board[n] = 0
                        captures = captures + 1
        color = 3 - color
    stones = 0
    for v in board:
        if v != 0:
            stones = stones + 1
    return (stones, captures)

s, c = playout(9, {moves})
print(str(s) + " " + str(c))
"""


def hexiom(scale: int = 1) -> str:
    limit = 350 * scale
    return f"""
def hexiom_solve(cells, limit):
    n = len(cells)
    best = -1
    tried = 0
    stack = [(0, 0, [])]
    while len(stack) > 0 and tried < limit:
        idx, score, used = stack.pop()
        tried = tried + 1
        if idx == n:
            if score > best:
                best = score
            continue
        target = cells[idx]
        for value in range(3):
            if not value in used or len(used) > 4:
                gain = 0
                if value == target:
                    gain = value + 1
                nu = used[0:len(used)]
                nu.append(value)
                stack.append((idx + 1, score + gain, nu))
    return (best, tried)

cells = [2, 0, 1, 2, 1, 0, 2, 1]
b, t = hexiom_solve(cells, {limit})
print(str(b) + " " + str(t))
"""
