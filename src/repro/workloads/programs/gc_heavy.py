"""Allocation-heavy workloads: parsers, trees, symbolic math, churn.

These are the benchmarks whose nursery-size behavior Figures 10-17
study: eparse and the ``sym_*`` family build large object graphs,
``tuple_gc`` and ``unpack_seq`` churn short-lived objects, and
``pyxl_bench`` builds and renders an element tree.
"""

from __future__ import annotations


def eparse(scale: int = 1) -> str:
    reps = 12 * scale
    return f"""
class Node:
    def __init__(self, kind, value, left, right):
        self.kind = kind
        self.value = value
        self.left = left
        self.right = right

class Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return ""

    def next(self):
        tok = self.peek()
        self.pos = self.pos + 1
        return tok

    def parse_expr(self):
        node = self.parse_term()
        while self.peek() == "+" or self.peek() == "-":
            op = self.next()
            right = self.parse_term()
            node = Node("op", op, node, right)
        return node

    def parse_term(self):
        node = self.parse_atom()
        while self.peek() == "*":
            op = self.next()
            right = self.parse_atom()
            node = Node("op", op, node, right)
        return node

    def parse_atom(self):
        tok = self.next()
        if tok == "(":
            node = self.parse_expr()
            self.next()
            return node
        return Node("num", tok, None, None)

def evaluate(node):
    if node.kind == "num":
        return int(node.value)
    a = evaluate(node.left)
    b = evaluate(node.right)
    if node.value == "+":
        return a + b
    if node.value == "-":
        return a - b
    return a * b

def tokenize(expr):
    tokens = []
    for ch in expr:
        if ch != " ":
            tokens.append(ch)
    return tokens

exprs = ["1 + 2 * 3", "( 4 + 5 ) * ( 6 - 2 )", "7 * 8 + 9 * 2",
         "( 1 + ( 2 + ( 3 + 4 ) ) ) * 5", "9 - 3 + 2 * 6"]
total = 0
for rep in range({reps}):
    for e in exprs:
        parser = Parser(tokenize(e))
        tree = parser.parse_expr()
        total = total + evaluate(tree)
print(total)
"""


def pyxl_bench(scale: int = 1) -> str:
    nodes = 60 * scale
    return f"""
class Element:
    def __init__(self, tag):
        self.tag = tag
        self.children = []
        self.attrs = {{}}

    def append(self, child):
        self.children.append(child)
        return child

    def render(self):
        parts = ["<" + self.tag]
        for key in self.attrs.keys():
            parts.append(" " + key + "=" + str(self.attrs[key]))
        parts.append(">")
        for child in self.children:
            parts.append(child.render())
        parts.append("</" + self.tag + ">")
        return "".join(parts)

def build_tree(n):
    root = Element("html")
    body = root.append(Element("body"))
    for i in range(n):
        div = body.append(Element("div"))
        div.attrs["id"] = i
        span = div.append(Element("span"))
        span.attrs["class"] = "item"
    return root

root = build_tree({nodes})
html = root.render()
print(len(html))
"""


def sym_expand(scale: int = 1) -> str:
    reps = 6 * scale
    return f"""
class Sym:
    def __init__(self, kind, name, args):
        self.kind = kind
        self.name = name
        self.args = args

def sym(name):
    return Sym("var", name, [])

def add(a, b):
    return Sym("add", "", [a, b])

def mul(a, b):
    return Sym("mul", "", [a, b])

def expand(node):
    if node.kind == "var":
        return node
    a = expand(node.args[0])
    b = expand(node.args[1])
    if node.kind == "mul":
        if a.kind == "add":
            return add(expand(mul(a.args[0], b)),
                       expand(mul(a.args[1], b)))
        if b.kind == "add":
            return add(expand(mul(a, b.args[0])),
                       expand(mul(a, b.args[1])))
    return Sym(node.kind, node.name, [a, b])

def count_terms(node):
    if node.kind == "add":
        return count_terms(node.args[0]) + count_terms(node.args[1])
    return 1

total = 0
for rep in range({reps}):
    e = mul(add(sym("a"), sym("b")),
            mul(add(sym("c"), sym("d")), add(sym("e"), sym("f"))))
    expanded = expand(e)
    total = total + count_terms(expanded)
print(total)
"""


def sym_integrate(scale: int = 1) -> str:
    terms = 80 * scale
    return f"""
def integrate(poly):
    out = []
    for term in poly:
        coef, power = term
        out.append((coef, power + 1, power + 1))
    return out

def eval_at(poly, x):
    total = 0.0
    for term in poly:
        coef, power, denom = term
        value = float(coef) / denom
        for p in range(power):
            value = value * x
        total = total + value
    return total

poly = []
for i in range({terms}):
    poly.append((i % 7 + 1, i % 5))
result = integrate(poly)
print(int(eval_at(result, 0.9) * 1000))
"""


def sym_str(scale: int = 1) -> str:
    reps = 20 * scale
    return f"""
def term_to_str(coef, power):
    if power == 0:
        return str(coef)
    if power == 1:
        return str(coef) + "*x"
    return str(coef) + "*x^" + str(power)

def poly_to_str(poly):
    parts = []
    for term in poly:
        coef, power = term
        parts.append(term_to_str(coef, power))
    return " + ".join(parts)

total = 0
for rep in range({reps}):
    poly = []
    for i in range(12):
        poly.append((rep + i, i))
    text = poly_to_str(poly)
    total = total + len(text)
print(total)
"""


def sym_sum(scale: int = 1) -> str:
    terms = 120 * scale
    return f"""
def simplify_sum(terms):
    by_power = {{}}
    for term in terms:
        coef, power = term
        by_power[power] = by_power.get(power, 0) + coef
    out = []
    for power in by_power.keys():
        if by_power[power] != 0:
            out.append((by_power[power], power))
    return out

terms = []
for i in range({terms}):
    coef = i % 11 - 5
    terms.append((coef, i % 9))
result = simplify_sum(terms)
total = 0
for term in result:
    coef, power = term
    total = total + coef * (power + 1)
print(str(len(result)) + " " + str(total))
"""


def tuple_gc(scale: int = 1) -> str:
    iterations = 1200 * scale
    return f"""
window = []
total = 0
for i in range({iterations}):
    item = (i, i * 2, i % 7, "tag-" + str(i % 4))
    window.append(item)
    if len(window) > 32:
        old = window.pop(0)
        total = total + old[2]
print(str(total) + " " + str(len(window)))
"""


def unpack_seq(scale: int = 1) -> str:
    iterations = 1500 * scale
    return f"""
total = 0
for i in range({iterations}):
    triple = (i, i + 1, i + 2)
    a, b, c = triple
    total = total + a + b * 2 + c * 3
    pair = (total % 97, i % 13)
    x, y = pair
    total = total + x - y
print(total)
"""
