"""Object-oriented application workloads: richards, deltablue, chaos,
raytrace, rietveld, dulwich_log.

These stress attribute access (name resolution), method dispatch
(function resolution + setup/cleanup), and instance allocation.
"""

from __future__ import annotations


def richards(scale: int = 1) -> str:
    iterations = 30 * scale
    return f"""
class Packet:
    def __init__(self, link, ident, kind):
        self.link = link
        self.ident = ident
        self.kind = kind
        self.datum = 0

class Task:
    def __init__(self, ident, priority, kind):
        self.ident = ident
        self.priority = priority
        self.kind = kind
        self.queue_len = 0
        self.work_done = 0
        self.holds = 0

    def run_once(self, packet):
        self.work_done = self.work_done + 1
        if packet is None:
            self.holds = self.holds + 1
            return 0
        packet.datum = packet.datum + self.priority
        return packet.datum

def schedule(iterations):
    tasks = []
    tasks.append(Task(0, 3, 0))
    tasks.append(Task(1, 2, 1))
    tasks.append(Task(2, 1, 2))
    tasks.append(Task(3, 4, 1))
    work = 0
    queue = []
    for it in range(iterations):
        for t in tasks:
            if it % (t.priority + 1) == 0:
                p = Packet(None, t.ident, t.kind)
                queue.append(p)
                t.queue_len = t.queue_len + 1
            if len(queue) > 0:
                pkt = queue.pop(0)
                work = work + t.run_once(pkt)
            else:
                work = work + t.run_once(None)
    total_holds = 0
    for t in tasks:
        total_holds = total_holds + t.holds
    return (work, total_holds)

w, h = schedule({iterations})
print(str(w) + " " + str(h))
"""


def deltablue(scale: int = 1) -> str:
    chains = 10 * scale
    return f"""
class Variable:
    def __init__(self, value):
        self.value = value
        self.stay = False
        self.determined_by = None

class EqualityConstraint:
    def __init__(self, a, b, strength):
        self.a = a
        self.b = b
        self.strength = strength
        self.satisfied = False

    def execute(self):
        if self.a.stay:
            self.b.value = self.a.value
            self.b.determined_by = self
        else:
            self.a.value = self.b.value
            self.a.determined_by = self
        self.satisfied = True
        return 1

def chain_test(n):
    total = 0
    for c in range(n):
        variables = []
        for i in range(12):
            variables.append(Variable(i + c))
        variables[0].stay = True
        constraints = []
        for i in range(11):
            constraints.append(
                EqualityConstraint(variables[i], variables[i + 1], i % 3))
        for rounds in range(3):
            for con in constraints:
                total = total + con.execute()
        total = total + variables[11].value
    return total

print(chain_test({chains}))
"""


def chaos(scale: int = 1) -> str:
    points = 250 * scale
    return f"""
class GVector:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def dist(self, other):
        dx = self.x - other.x
        dy = self.y - other.y
        return math.sqrt(dx * dx + dy * dy)

    def scaled(self, factor):
        return GVector(self.x * factor, self.y * factor)

    def plus(self, other):
        return GVector(self.x + other.x, self.y + other.y)

def chaos_game(n):
    rnd.seed(1234)
    corners = [GVector(0.0, 0.0), GVector(1.0, 0.0), GVector(0.5, 0.87)]
    point = GVector(0.25, 0.25)
    total = 0.0
    for i in range(n):
        corner = corners[rnd.randint(0, 2)]
        point = point.plus(corner).scaled(0.5)
        total = total + point.dist(corners[0])
    return total

print(int(chaos_game({points}) * 1000))
"""


def raytrace(scale: int = 1) -> str:
    size = 6 * scale
    return f"""
class Vec:
    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z

    def add(self, o):
        return Vec(self.x + o.x, self.y + o.y, self.z + o.z)

    def sub(self, o):
        return Vec(self.x - o.x, self.y - o.y, self.z - o.z)

    def scale(self, f):
        return Vec(self.x * f, self.y * f, self.z * f)

    def dot(self, o):
        return self.x * o.x + self.y * o.y + self.z * o.z

class Sphere:
    def __init__(self, center, radius):
        self.center = center
        self.radius = radius

    def intersect(self, origin, direction):
        oc = origin.sub(self.center)
        b = 2.0 * oc.dot(direction)
        c = oc.dot(oc) - self.radius * self.radius
        disc = b * b - 4.0 * c
        if disc < 0.0:
            return -1.0
        return (0.0 - b - math.sqrt(disc)) / 2.0

def render(size):
    spheres = [Sphere(Vec(0.0, 0.0, -3.0), 1.0),
               Sphere(Vec(1.5, 0.5, -4.0), 0.8)]
    origin = Vec(0.0, 0.0, 0.0)
    hits = 0
    brightness = 0.0
    for py in range(size):
        for px in range(size):
            dx = (px + 0.5) / size - 0.5
            dy = (py + 0.5) / size - 0.5
            direction = Vec(dx, dy, -1.0)
            norm = math.sqrt(direction.dot(direction))
            direction = direction.scale(1.0 / norm)
            nearest = 1000000.0
            for s in spheres:
                t = s.intersect(origin, direction)
                if t > 0.0 and t < nearest:
                    nearest = t
            if nearest < 1000000.0:
                hits = hits + 1
                brightness = brightness + 1.0 / nearest
    return (hits, brightness)

h, b = render({size})
print(str(h) + " " + str(int(b * 100)))
"""


def rietveld(scale: int = 1) -> str:
    reps = 2 * scale
    return f"""
def make_lines(n, seed):
    lines = []
    x = seed
    for i in range(n):
        x = (x * 1103515245 + 12345) % 2147483648
        lines.append("line-" + str(x % 40))
    return lines

def lcs_length(a, b):
    n = len(a)
    m = len(b)
    prev = [0] * (m + 1)
    for i in range(n):
        cur = [0]
        for j in range(m):
            if a[i] == b[j]:
                cur.append(prev[j] + 1)
            else:
                left = cur[j]
                up = prev[j + 1]
                if left > up:
                    cur.append(left)
                else:
                    cur.append(up)
        prev = cur
    return prev[m]

total = 0
for rep in range({reps}):
    old = make_lines(28, 3 + rep)
    new = make_lines(28, 5 + rep)
    total = total + lcs_length(old, new)
print(total)
"""


def dulwich_log(scale: int = 1) -> str:
    commits = 150 * scale
    return f"""
def build_history(n):
    commits = []
    for i in range(n):
        commit = {{}}
        commit["id"] = i
        commit["author"] = "dev-" + str(i % 7)
        if i == 0:
            commit["parent"] = -1
        else:
            commit["parent"] = i - (1 + i % 3)
            if commit["parent"] < 0:
                commit["parent"] = 0
        commits.append(commit)
    return commits

def walk_log(commits):
    seen = {{}}
    count = 0
    authors = {{}}
    head = len(commits) - 1
    while head >= 0:
        if head in seen:
            break
        seen[head] = True
        commit = commits[head]
        count = count + 1
        name = commit["author"]
        authors[name] = authors.get(name, 0) + 1
        head = commit["parent"]
    return (count, len(authors))

commits = build_history({commits})
c, a = walk_log(commits)
print(str(c) + " " + str(a))
"""
