"""Benchmark program sources, grouped by workload class."""
