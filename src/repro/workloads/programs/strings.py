"""Template-engine and string-processing workloads.

chameleon/mako/spitfire model template rendering (string building and
substitution); html5lib models tokenization; logging_format models
message formatting.
"""

from __future__ import annotations


def chameleon(scale: int = 1) -> str:
    rows = 30 * scale
    return f"""
def render_table(rows, cols):
    parts = ["<table>"]
    for r in range(rows):
        parts.append("<tr>")
        for c in range(cols):
            parts.append("<td>" + str(r * cols + c) + "</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)

html = render_table({rows}, 8)
print(str(len(html)) + " " + str(html.count("<td>")))
"""


def mako(scale: int = 1) -> str:
    reps = 25 * scale
    return f"""
def render(template, context):
    out = template
    for key in context.keys():
        out = out.replace("${{" + key + "}}", str(context[key]))
    return out

template = "<div><h1>${{title}}</h1><p>${{body}}</p>" + \\
           "<span>${{user}}:${{count}}</span></div>"
total = 0
for i in range({reps}):
    context = {{}}
    context["title"] = "Page " + str(i)
    context["body"] = "content-" + str(i * 3)
    context["user"] = "user" + str(i % 5)
    context["count"] = i
    page = render(template, context)
    total = total + len(page)
print(total)
"""


def spitfire(scale: int = 1) -> str:
    rows = 40 * scale
    return f"""
def render_rows(n):
    buffer = []
    for i in range(n):
        row = []
        row.append("<tr>")
        for j in range(10):
            row.append("<td>")
            row.append(str(i * j))
            row.append("</td>")
        row.append("</tr>")
        buffer.append("".join(row))
    return "\\n".join(buffer)

out = render_rows({rows})
print(len(out))
"""


def spitfire_cstringio(scale: int = 1) -> str:
    rows = 18 * scale
    return f"""
def render_concat(n):
    out = ""
    for i in range(n):
        out = out + "<tr>"
        for j in range(10):
            out = out + "<td>" + str(i * j) + "</td>"
        out = out + "</tr>"
    return out

out = render_concat({rows})
print(len(out))
"""


def html5lib(scale: int = 1) -> str:
    length = 40 * scale
    return f"""
def build_document(n):
    parts = []
    for i in range(n):
        parts.append("<div class=box id=" + str(i) + ">text " +
                     str(i * 7) + " more</div>")
    return "".join(parts)

def tokenize(html):
    tokens = []
    i = 0
    n = len(html)
    while i < n:
        ch = html[i]
        if ch == "<":
            end = i
            while end < n and html[end] != ">":
                end = end + 1
            tag = {{}}
            tag["kind"] = "tag"
            tag["data"] = html[i + 1:end]
            tokens.append(tag)
            i = end + 1
        else:
            end = i
            while end < n and html[end] != "<":
                end = end + 1
            text = {{}}
            text["kind"] = "text"
            text["data"] = html[i:end]
            tokens.append(text)
            i = end
    return tokens

doc = build_document({length})
tokens = tokenize(doc)
tags = 0
chars = 0
for t in tokens:
    if t["kind"] == "tag":
        tags = tags + 1
    else:
        chars = chars + len(t["data"])
print(str(len(tokens)) + " " + str(tags) + " " + str(chars))
"""


def logging_format(scale: int = 1) -> str:
    records = 250 * scale
    return f"""
def format_record(level, name, msg, seq):
    parts = []
    parts.append("[")
    parts.append(level)
    parts.append("] ")
    parts.append(name)
    parts.append(" #")
    parts.append(str(seq))
    parts.append(": ")
    parts.append(msg)
    return "".join(parts)

levels = ["DEBUG", "INFO", "WARNING", "ERROR"]
total = 0
dropped = 0
for i in range({records}):
    level = levels[i % 4]
    if level == "DEBUG" and i % 3 != 0:
        dropped = dropped + 1
    else:
        line = format_record(level, "app.module", "event happened", i)
        total = total + len(line)
print(str(total) + " " + str(dropped))
"""
