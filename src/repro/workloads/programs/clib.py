"""C-library-bound workloads: pickle, json, regex families.

The paper reports these spend more than 64% of their time inside C
library code (Section IV-C.1), so most of their emission is the modeled
serializer and regex engine rather than interpreter choreography.
"""

from __future__ import annotations


def pickle_bench(scale: int = 1) -> str:
    reps = 16 * scale
    return f"""
def build_object(i):
    inner = {{}}
    inner["id"] = i
    inner["name"] = "object-" + str(i)
    inner["values"] = [i, i * 2, i * 3, float(i) / 2.0]
    inner["flags"] = (True, False, None)
    inner["history"] = list(range(40))
    return inner

obj = build_object(7)
total = 0
for rep in range({reps}):
    data = pickle.dumps(obj)
    back = pickle.loads(data)
    total = total + len(data) + back["id"]
print(total)
"""


def pickle_dict(scale: int = 1) -> str:
    reps = 18 * scale
    return f"""
table = {{}}
for i in range(40):
    table["key-" + str(i)] = [i, i * i, "value-" + str(i)]
total = 0
for rep in range({reps}):
    data = pickle.dumps(table)
    total = total + len(data)
print(total)
"""


def pickle_list(scale: int = 1) -> str:
    reps = 10 * scale
    return f"""
payload = list(range(300))
total = 0
for rep in range({reps}):
    data = pickle.dumps(payload)
    back = pickle.loads(data)
    total = total + back[rep % len(back)]
print(total)
"""


def unpickle(scale: int = 1) -> str:
    reps = 16 * scale
    return f"""
source = {{}}
for i in range(30):
    source["k" + str(i)] = (i, "text-" + str(i), float(i) * 1.5)
data = pickle.dumps(source)
total = 0
for rep in range({reps}):
    back = pickle.loads(data)
    total = total + len(back)
print(str(total) + " " + str(len(data)))
"""


def unpickle_list(scale: int = 1) -> str:
    reps = 14 * scale
    return f"""
payload = list(range(400))
data = pickle.dumps(payload)
total = 0
for rep in range({reps}):
    back = pickle.loads(data)
    total = total + back[(rep * 13) % len(back)]
print(total)
"""


def json_dumps(scale: int = 1) -> str:
    reps = 18 * scale
    return f"""
def build_doc(i):
    doc = {{}}
    doc["user"] = "user-" + str(i)
    doc["score"] = i * 17 % 101
    doc["tags"] = ["alpha", "beta", "gamma"]
    doc["nested"] = {{}}
    doc["nested"]["depth"] = 2
    doc["nested"]["items"] = list(range(30))
    return doc

doc = build_doc(11)
total = 0
for rep in range({reps}):
    text = json.dumps(doc)
    total = total + len(text)
print(total)
"""


def json_loads(scale: int = 1) -> str:
    reps = 12 * scale
    return f"""
doc = {{}}
doc["records"] = []
for i in range(25):
    rec = {{}}
    rec["id"] = i
    rec["label"] = "rec-" + str(i)
    rec["vals"] = [i, i + 1, i + 2]
    doc["records"].append(rec)
text = json.dumps(doc)
total = 0
for rep in range({reps}):
    back = json.loads(text)
    total = total + len(back["records"])
print(str(total) + " " + str(len(text)))
"""


def regex_compile(scale: int = 1) -> str:
    reps = 10 * scale
    return f"""
parts = ["abc", "a+b", "[xyz]+", "foo|bar", "b?c*d"]
subjects = ["abcabcabc" * 6, "aaabbb" * 6, "xyzzyx" * 6,
            "fooby barby" * 6, "bcdddbcddd" * 6]
total = 0
for rep in range({reps}):
    for i in range(len(parts)):
        for j in range(len(subjects)):
            m = re.search(parts[i], subjects[j])
            if not m is None:
                total = total + len(m)
print(total)
"""


def regex_dna(scale: int = 1) -> str:
    length = 120 * scale
    return f"""
def build_dna(n):
    bases = "acgt"
    out = []
    x = 42
    for i in range(n):
        x = (x * 1103515245 + 12345) % 2147483648
        out.append(bases[x % 4])
    return "".join(out)

dna = build_dna({length}) * 24
patterns = ["agggtaaa|tttaccct", "[cgt]gggtaaa|tttaccc[acg]",
            "a[act]ggtaaa|tttacc[agt]t", "agg[act]taaa|ttta[agt]cct"]
total = 0
for rep in range(3):
    for p in patterns:
        found = re.findall(p, dna)
        total = total + len(found)
short = re.findall("acgt", dna)
print(str(total) + " " + str(len(short)))
"""


def regex_effbot(scale: int = 1) -> str:
    reps = 12 * scale
    return f"""
def build_text(n):
    words = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]
    out = []
    for i in range(n):
        out.append(words[i % 6])
        out.append(str(i))
    return " ".join(out)

text = build_text(40) * 8
total = 0
for rep in range({reps}):
    total = total + len(re.findall("[a-z]+", text))
    total = total + len(re.findall("[0-9]+", text))
    m = re.search("charlie [0-9]+", text)
    if not m is None:
        total = total + len(m)
print(total)
"""


def regex_v8(scale: int = 1) -> str:
    reps = 6 * scale
    return f"""
def build_log(n):
    out = []
    for i in range(n):
        out.append("GET /page/" + str(i) + ".html HTTP/1.1 code=" +
                   str(200 + i % 4))
    return " | ".join(out)

log = build_log(20) * 8
total = 0
for rep in range({reps}):
    hits = re.findall("GET /page/[0-9]+", log)
    total = total + len(hits)
    codes = re.findall("code=[0-9]+", log)
    total = total + len(codes)
    m = re.search("page/7[0-9]*", log)
    if not m is None:
        total = total + len(m)
print(total)
"""
