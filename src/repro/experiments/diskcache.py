"""Persistent content-addressed cache for guest runs and sim states.

The in-memory caches on :class:`~repro.experiments.runner.
ExperimentRunner` are bounded, so the nursery figure family (Figures
10-17), which revisits the same (workload, nursery) grid across several
machine configurations and across *separate* benchmark invocations,
used to re-interpret every evicted guest. This module spills both
artifact kinds to disk:

``traces/``
    one finished guest run per entry: the instruction trace as a
    compressed columnar ``.rpt`` file (:mod:`repro.host.codec`; or a
    compressed ``.npz`` under ``REPRO_TRACE_CODEC=npz``) plus a JSON
    sidecar with the :class:`~repro.experiments.runner.RunHandle`
    metadata (VM stats, site table, captured output, measured window).
    Loads sniff the payload format, so caches written under either
    codec — or by older schema-2 writers — read transparently; hits on
    legacy-schema entries are *lazily migrated*: re-stored under the
    current key and format, the old files deleted
    (``cache.migrated``).

``states/``
    one :class:`~repro.uarch.system.MemorySideState` per entry: service
    level and mispredict arrays in an ``.npz``, cache/branch counters
    in the sidecar.

Entries are content-addressed: the file name is the SHA-256 of the
canonical JSON of every parameter that determines the artifact (run
parameters for traces; run parameters plus the full machine geometry
for states) salted with :data:`CACHE_SCHEMA`. Anything that would
change the bytes changes the key, so there is no invalidation protocol
beyond "bump the schema when the serialized layout changes" and
"delete the directory when the simulator's behavior changes".

**Durability and self-healing.** Each file is written to a per-process
temporary name and renamed into place, the payload is written *first*,
and the JSON sidecar — which carries the payload's SHA-256 (field name
``npz_sha256`` for historical compatibility, whatever the payload
format) — is written *last*: the sidecar is the commit record for the
pair. A SIGKILL at any point therefore leaves either a complete entry
or a payload orphan, which the next load deletes and treats as a miss.
Entries that fail integrity checks on load (unparseable sidecar,
checksum mismatch, truncated/undecodable payload) are *quarantined* —
moved to ``quarantine/`` for post-mortems, never silently retried
forever — counted as ``cache.quarantined``, and recomputed. Stale
``.tmp*`` litter from killed writers is swept by :meth:`sweep_tmp`,
and :meth:`gc` bounds the store's size, evicting least-recently-used
entries (sidecar mtime, refreshed on every hit).

Environment knobs:

``REPRO_CACHE_DIR``
    cache root (default ``.repro-cache`` under the working directory).
``REPRO_CACHE=off``
    disable the disk cache entirely (``0``/``no``/``false`` also work).
``REPRO_CACHE_VERIFY=off``
    skip SHA-256 verification on load (pair-presence and parse checks
    remain); for hot read paths where the checksum cost matters.

Fault injection: when a :class:`~repro.experiments.resilience.
FaultPlan` arms ``cache_corrupt``, the cache deterministically flips
bytes in ``.npz`` files it just stored so tests can prove the
quarantine-and-recompute path end to end.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from ..host import codec as tracecodec
from ..host.trace import InstructionTrace
from ..telemetry import TELEMETRY
from ..uarch.branch import BranchStats
from ..uarch.cache import CacheStats
from ..uarch.system import MemorySideState
from .resilience import FaultPlan

#: Bump when the on-disk layout (or anything it captures) changes shape.
#: 2: sidecars carry the paired payload's SHA-256 (``npz_sha256``).
#: 3: trace payloads use the v2 columnar codec (``.rpt``) by default;
#:    sidecars record ``payload_format`` and the trace ``rows``.
CACHE_SCHEMA = 3

#: Older schemas whose keys are probed on a miss (read-compat): a hit
#: under a legacy key is migrated to the current key and format.
LEGACY_SCHEMAS = (2,)

#: Payload extensions, probe order (v2 codec first, legacy npz second).
_PAYLOAD_EXTS = (".rpt", ".npz")

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_TOGGLE_ENV = "REPRO_CACHE"
CACHE_VERIFY_ENV = "REPRO_CACHE_VERIFY"
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory corrupt entries are moved to (never read back).
QUARANTINE_DIR = "quarantine"

#: Subdirectory live traces memmap their buffers into when they grow
#: past ``REPRO_TRACE_SPILL_MB`` (see :mod:`repro.host.trace`).
SPILL_DIR = "spill"

#: ``sweep_tmp`` default: temp files younger than this may belong to a
#: live writer in another process and are left alone.
TMP_MAX_AGE_SECONDS = 3600.0

_OFF_VALUES = frozenset({"off", "0", "no", "false"})

#: MemorySideState array fields stored in the ``.npz`` entry.
_STATE_ARRAYS = ("dlevel", "ilevel", "mispredicted")

_KINDS = ("traces", "states")


def cache_root() -> Path | None:
    """Resolve the cache directory from the environment (None = off)."""
    toggle = os.environ.get(CACHE_TOGGLE_ENV, "").strip().lower()
    if toggle in _OFF_VALUES:
        return None
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def verify_enabled() -> bool:
    """Is SHA-256 verification on load enabled (the default)?"""
    toggle = os.environ.get(CACHE_VERIFY_ENV, "").strip().lower()
    return toggle not in _OFF_VALUES


def content_key(params: dict, schema: int | None = None) -> str:
    """SHA-256 over the canonical JSON of ``params`` plus the schema.

    ``schema`` defaults to the current layout; loads pass the entries
    of :data:`LEGACY_SCHEMAS` to probe for migratable old entries.
    """
    if schema is None:
        schema = CACHE_SCHEMA
    payload = json.dumps({"schema": schema, **params},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def file_sha256(path: Path) -> str:
    """Streaming SHA-256 of one file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid running (signal-0 probe)?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the process exists but is not ours.
        return True
    return True


def _atomic_write(path: Path, writer) -> None:
    """Write via ``writer(tmp_path)`` then rename into place."""
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        writer(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _write_json(path: Path, payload: dict) -> None:
    def writer(tmp: Path) -> None:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))

    _atomic_write(path, writer)


class DiskCache:
    """Content-addressed trace/state store rooted at one directory."""

    def __init__(self, root: str | Path | None | object = "auto",
                 fault_plan: FaultPlan | None = None) -> None:
        if root == "auto":
            root = cache_root()
        self.root = Path(root) if root is not None else None
        self.fault_plan = fault_plan if fault_plan is not None \
            else FaultPlan.from_env()
        #: (kind, key) -> stores seen; the injection site includes the
        #: occurrence so a recomputed entry is not re-corrupted forever.
        self._store_counts: dict[tuple[str, str], int] = {}

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _payload_ext(self, kind: str) -> str:
        """Extension new payloads of ``kind`` are written with."""
        if kind == "traces" and tracecodec.trace_codec() == "v2":
            return ".rpt"
        return ".npz"

    def _paths(self, kind: str, key: str) -> tuple[Path, Path]:
        """(payload path for a *new* store, sidecar path)."""
        directory = self.root / kind
        return (directory / f"{key}{self._payload_ext(kind)}",
                directory / f"{key}.json")

    def _find_payload(self, kind: str, key: str) -> Path | None:
        """The existing payload for an entry, whatever its format."""
        directory = self.root / kind
        for ext in _PAYLOAD_EXTS:
            path = directory / f"{key}{ext}"
            if path.exists():
                return path
        return None

    def _entry_files(self, kind: str, key: str) -> list[Path]:
        """Every file that may belong to one entry (both payload
        formats plus the sidecar)."""
        directory = self.root / kind
        files = [directory / f"{key}{ext}" for ext in _PAYLOAD_EXTS]
        files.append(directory / f"{key}.json")
        return files

    # ------------------------------------------------------------------
    # Integrity: orphans, quarantine, verification
    # ------------------------------------------------------------------

    def quarantine(self, kind: str, key: str) -> bool:
        """Move a corrupt entry's files to ``quarantine/``.

        Returns True when at least one file was moved; the entry then
        reads as a clean miss, so it is recomputed (and re-stored) at
        most once rather than tripping every future load.
        """
        if not self.enabled:
            return False
        quarantine = self.root / QUARANTINE_DIR
        moved = False
        for path in self._entry_files(kind, key):
            if not path.exists():
                continue
            target = quarantine / f"{kind}-{path.name}"
            serial = 0
            while target.exists():
                serial += 1
                target = quarantine / f"{kind}-{path.name}.{serial}"
            try:
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
                moved = True
            except OSError:
                # Quarantine dir unwritable: deleting still self-heals.
                try:
                    path.unlink(missing_ok=True)
                    moved = True
                except OSError:
                    pass
        if moved:
            TELEMETRY.metrics.counter("cache.quarantined",
                                      kind=kind).inc()
        return moved

    def _drop_orphan(self, kind: str, path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
            TELEMETRY.metrics.counter("cache.orphans_removed",
                                      kind=kind).inc()
        except OSError:
            pass

    def _load_sidecar(self, kind: str,
                      key: str) -> tuple[dict, Path] | None:
        """Read and validate the commit record; heal what it finds.

        Returns ``(meta, payload_path)`` on a committed entry. No
        sidecar + a payload means a writer died between the two writes:
        the orphan is deleted and the entry is a miss.
        """
        payload = self._find_payload(kind, key)
        meta_path = self.root / kind / f"{key}.json"
        if not meta_path.exists():
            if payload is not None:
                self._drop_orphan(kind, payload)
            return None
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError, UnicodeDecodeError):
            self.quarantine(kind, key)
            return None
        if not isinstance(meta, dict):
            self.quarantine(kind, key)
            return None
        if payload is None:
            # Sidecar without payload (quarantined file, manual delete).
            self._drop_orphan(kind, meta_path)
            return None
        if verify_enabled():
            want = meta.get("npz_sha256")
            if want is None or file_sha256(payload) != want:
                TELEMETRY.metrics.counter("cache.checksum_mismatch",
                                          kind=kind).inc()
                self.quarantine(kind, key)
                return None
        return meta, payload

    def _touch(self, kind: str, key: str) -> None:
        """Refresh the sidecar mtime: :meth:`gc` evicts LRU by it."""
        _, meta_path = self._paths(kind, key)
        try:
            os.utime(meta_path)
        except OSError:
            pass

    def _finish_store(self, kind: str, key: str, npz_path: Path,
                      meta_path: Path, meta: dict) -> None:
        """Commit one entry: checksum the payload, then the sidecar."""
        meta["npz_sha256"] = file_sha256(npz_path)
        _write_json(meta_path, meta)
        self._maybe_corrupt(kind, key, npz_path)

    def _maybe_corrupt(self, kind: str, key: str, npz_path: Path) -> None:
        """Injected ``cache_corrupt`` fault: flip bytes post-commit."""
        plan = self.fault_plan
        if not plan or plan.spec("cache_corrupt") is None:
            return
        occurrence = self._store_counts.get((kind, key), 0)
        self._store_counts[(kind, key)] = occurrence + 1
        if not plan.should_fire("cache_corrupt", f"{kind}:{key}",
                                occurrence):
            return
        try:
            size = npz_path.stat().st_size
            with open(npz_path, "r+b") as handle:
                handle.seek(max(0, size // 2))
                handle.write(b"\xde\xad\xbe\xef" * 8)
        except OSError:
            return
        TELEMETRY.metrics.counter("cache.faults_injected",
                                  kind=kind).inc()

    # ------------------------------------------------------------------
    # Guest runs
    # ------------------------------------------------------------------

    def _delete_entry(self, kind: str, key: str) -> None:
        """Remove an entry, sidecar (the commit record) first."""
        files = self._entry_files(kind, key)
        for path in [files[-1]] + files[:-1]:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def load_run(self, key: str, key_params: dict | None = None):
        """Rebuild a RunHandle from disk (None on miss or corruption).

        The returned handle carries ``token=0``; the runner assigns a
        fresh token when it adopts the handle into its caches. When
        ``key_params`` is given, a miss also probes the legacy-schema
        keys and migrates any hit to the current key and payload
        format (deleting the old entry).
        """
        if not self.enabled:
            return None
        handle = self._load_run_at(key)
        if handle is not None or key_params is None:
            return handle
        for schema in LEGACY_SCHEMAS:
            legacy_key = content_key(key_params, schema=schema)
            handle = self._load_run_at(legacy_key)
            if handle is None:
                continue
            self.store_run(key, handle, key_params=key_params)
            self._delete_entry("traces", legacy_key)
            TELEMETRY.metrics.counter("cache.migrated",
                                      kind="traces").inc()
            return handle
        return None

    def _load_run_at(self, key: str):
        from .runner import RunHandle
        loaded = self._load_sidecar("traces", key)
        if loaded is None:
            return None
        meta, payload = loaded
        meta.pop("npz_sha256", None)
        meta.pop("key_params", None)
        meta.pop("payload_format", None)
        meta.pop("rows", None)
        try:
            if tracecodec.sniff(payload) == "v2":
                # Reader-backed lazy trace; late decode failures (e.g.
                # with REPRO_CACHE_VERIFY=off) still quarantine first.
                reader = tracecodec.FrameReader(
                    payload,
                    on_corrupt=lambda: self.quarantine("traces", key))
                trace = InstructionTrace._from_reader(reader)
            else:
                trace = InstructionTrace.load(payload)
            meta["site_table"] = {name: int(pc) for name, pc
                                  in meta.get("site_table", {}).items()}
            handle = RunHandle(trace=trace, token=0, **meta)
        except Exception:
            # Undecodable payload / sidecar shaped wrong for RunHandle:
            # any parse failure means the entry is corrupt, not the
            # caller.
            self.quarantine("traces", key)
            return None
        self._touch("traces", key)
        TELEMETRY.metrics.counter("cache.decode_hits",
                                  kind="traces").inc()
        return handle

    def store_run(self, key: str, handle,
                  key_params: dict | None = None) -> None:
        if not self.enabled:
            return
        payload_path, meta_path = self._paths("traces", key)
        fmt = tracecodec.trace_codec()
        meta = {
            "payload_format": fmt,
            "rows": len(handle.trace),
            "workload": handle.workload,
            "runtime": handle.runtime,
            "jit": handle.jit,
            "nursery": handle.nursery,
            "site_table": dict(handle.site_table),
            "bytecodes": handle.bytecodes,
            "allocations": handle.allocations,
            "allocated_bytes": handle.allocated_bytes,
            "minor_gcs": handle.minor_gcs,
            "major_gcs": handle.major_gcs,
            "traces_compiled": handle.traces_compiled,
            "deopts": handle.deopts,
            "output": list(handle.output),
            "measure_start": handle.measure_start,
            "warmup_runs": handle.warmup_runs,
            "wall_seconds": handle.wall_seconds,
            "host_instructions": handle.host_instructions,
        }
        if key_params is not None:
            # Recorded so ``repro cache verify`` can recompute the key
            # from first principles and assert key/content agreement
            # across the hosts sharing this cache.
            meta["key_params"] = key_params
        try:
            payload_path.parent.mkdir(parents=True, exist_ok=True)
            # v2 writes columnar frames; the npz codec now compresses
            # too (store cost is paid once, reads dominate).
            _atomic_write(
                payload_path,
                lambda tmp: handle.trace.save(tmp, codec=fmt))
            self._finish_store("traces", key, payload_path, meta_path,
                               meta)
            self._drop_sibling_payload("traces", key, payload_path)
            TELEMETRY.metrics.counter("cache.encode_bytes",
                                      kind="traces").inc(
                payload_path.stat().st_size)
            if not self.fault_plan \
                    or self.fault_plan.spec("cache_corrupt") is None:
                # The committed file now holds exactly this trace's
                # bytes: fan-out can pickle the handle by reference.
                handle.trace.attach_cache_ref(payload_path)
        except OSError:
            # A full/readonly disk must not kill the run that computed
            # the artifact; the entry simply stays a miss.
            TELEMETRY.metrics.counter("cache.write_errors",
                                      kind="traces").inc()

    def _drop_sibling_payload(self, kind: str, key: str,
                              payload_path: Path) -> None:
        """Remove the other-format payload after a re-store, so stale
        bytes can never shadow the sidecar's checksum."""
        for ext in _PAYLOAD_EXTS:
            sibling = payload_path.with_suffix(ext)
            if sibling != payload_path:
                try:
                    sibling.unlink(missing_ok=True)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Memory-side states
    # ------------------------------------------------------------------

    def load_state(self, key: str,
                   key_params: dict | None = None,
                   ) -> MemorySideState | None:
        if not self.enabled:
            return None
        state = self._load_state_at(key)
        if state is not None or key_params is None:
            return state
        for schema in LEGACY_SCHEMAS:
            legacy_key = content_key(key_params, schema=schema)
            state = self._load_state_at(legacy_key)
            if state is None:
                continue
            self.store_state(key, state, key_params=key_params)
            self._delete_entry("states", legacy_key)
            TELEMETRY.metrics.counter("cache.migrated",
                                      kind="states").inc()
            return state
        return None

    def _load_state_at(self, key: str) -> MemorySideState | None:
        loaded = self._load_sidecar("states", key)
        if loaded is None:
            return None
        meta, npz_path = loaded
        try:
            with np.load(npz_path) as data:
                arrays = {name: data[name] for name in _STATE_ARRAYS}
            cache_stats = {name: CacheStats(**counts)
                           for name, counts in meta["cache_stats"].items()}
            state = MemorySideState(
                dlevel=arrays["dlevel"],
                ilevel=arrays["ilevel"],
                cache_stats=cache_stats,
                mem_lines=meta["mem_lines"],
                mispredicted=arrays["mispredicted"],
                branch_stats=BranchStats(**meta["branch_stats"]))
        except Exception:
            # Same contract as load_run: parse failure == corruption.
            self.quarantine("states", key)
            return None
        self._touch("states", key)
        TELEMETRY.metrics.counter("cache.decode_hits",
                                  kind="states").inc()
        return state

    def store_state(self, key: str, state: MemorySideState,
                    key_params: dict | None = None) -> None:
        if not self.enabled:
            return
        npz_path, meta_path = self._paths("states", key)
        meta = {
            "mem_lines": state.mem_lines,
            "cache_stats": {name: dataclasses.asdict(stats)
                            for name, stats in state.cache_stats.items()},
            "branch_stats": dataclasses.asdict(state.branch_stats),
        }
        if key_params is not None:
            meta["key_params"] = key_params

        def writer(tmp: Path) -> None:
            with open(tmp, "wb") as handle:
                np.savez(handle, dlevel=state.dlevel, ilevel=state.ilevel,
                         mispredicted=state.mispredicted)

        try:
            npz_path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write(npz_path, writer)
            self._finish_store("states", key, npz_path, meta_path, meta)
        except OSError:
            TELEMETRY.metrics.counter("cache.write_errors",
                                      kind="states").inc()

    # ------------------------------------------------------------------
    # Maintenance: tmp sweeping, size-bounded gc, usage
    # ------------------------------------------------------------------

    def sweep_tmp(self, max_age: float = TMP_MAX_AGE_SECONDS) -> int:
        """Delete ``.tmp*`` litter older than ``max_age`` seconds.

        A writer killed between creating its temp file and the rename
        leaves one behind; anything older than ``max_age`` cannot
        belong to a live writer.
        """
        if not self.enabled:
            return 0
        removed = 0
        now = time.time()
        for kind in _KINDS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            for path in directory.glob("*.tmp*"):
                try:
                    if now - path.stat().st_mtime >= max_age:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue
        if removed:
            TELEMETRY.metrics.counter("cache.tmp_swept").inc(removed)
        return removed

    def sweep_spill(self) -> dict:
        """Govern the live-trace spill directory (``spill/``).

        Spill files are memory-mapped buffers of traces still owned by
        a *running* process (:mod:`repro.host.trace` migrates a growing
        trace there), so size-based LRU does not apply — deleting a
        live file would yank the mapping out from under its writer.
        The sidecar, written last as the commit record, carries the
        writer's pid, and that decides:

        * ``.bin`` without its ``.json`` sidecar: a partial write
          (the writer died mid-spill) — dropped as an orphan.
        * sidecar whose pid is dead or unparseable: the memmap died
          with its process — removed sidecar-first, the same eviction
          order the artifact kinds use.
        * sidecar whose pid is alive: kept and counted.

        Returns ``{"removed", "bytes_freed", "kept", "kept_bytes"}``.
        """
        stats = {"removed": 0, "bytes_freed": 0, "kept": 0,
                 "kept_bytes": 0}
        if not self.enabled:
            return stats
        directory = self.root / SPILL_DIR
        if not directory.is_dir():
            return stats
        sidecars = {p.stem: p for p in directory.glob("*.json")}
        payloads = {p.stem: p for p in directory.glob("*.bin")}
        for stem, path in payloads.items():
            if stem not in sidecars:
                self._drop_orphan("spill", path)
                stats["removed"] += 1
        for stem, meta_path in sorted(sidecars.items()):
            bin_path = payloads.get(stem)
            if bin_path is None:
                self._drop_orphan("spill", meta_path)
                stats["removed"] += 1
                continue
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                pid = int(meta["pid"])
            except (OSError, ValueError, TypeError, KeyError):
                pid = -1
            try:
                size = bin_path.stat().st_size
            except OSError:
                size = 0
            if _pid_alive(pid):
                stats["kept"] += 1
                stats["kept_bytes"] += size
                continue
            try:
                meta_path.unlink(missing_ok=True)
                bin_path.unlink(missing_ok=True)
            except OSError:
                stats["kept"] += 1
                stats["kept_bytes"] += size
                continue
            stats["removed"] += 1
            stats["bytes_freed"] += size
        if stats["removed"]:
            TELEMETRY.metrics.counter("cache.spill_swept").inc(
                stats["removed"])
        return stats

    def _entries(self):
        """All committed pairs: (mtime, bytes, kind, key) per entry.

        Orphans discovered along the way are deleted on the spot.
        """
        entries = []
        for kind in _KINDS:
            directory = self.root / kind
            if not directory.is_dir():
                continue
            sidecars = {p.stem: p for p in directory.glob("*.json")}
            payloads: dict[str, Path] = {}
            for ext in _PAYLOAD_EXTS:
                for path in directory.glob(f"*{ext}"):
                    payloads.setdefault(path.stem, path)
            for stem, path in payloads.items():
                if stem not in sidecars:
                    self._drop_orphan(kind, path)
            for stem, meta_path in sorted(sidecars.items()):
                payload_path = payloads.get(stem)
                if payload_path is None:
                    self._drop_orphan(kind, meta_path)
                    continue
                try:
                    size = meta_path.stat().st_size \
                        + payload_path.stat().st_size
                    mtime = meta_path.stat().st_mtime
                except OSError:
                    continue
                entries.append((mtime, size, kind, stem))
        return entries

    def verify_entries(self, sample: int | None = None) -> dict:
        """Cross-host determinism audit: re-derive keys and checksums.

        For each committed entry (or a deterministic every-N-th sample
        of them), recompute the payload SHA-256 against the sidecar's
        ``npz_sha256``, and — for entries whose sidecar recorded its
        ``key_params`` — recompute :func:`content_key` from those
        parameters and assert it matches the file name. A cache shared
        over NFS by several hosts passes only when every host derives
        identical keys for identical content, which is exactly the
        FNV-1a stable-hashing guarantee this audit gates.

        Corrupt entries found along the way are quarantined (same
        contract as a load). Returns ``{"checked", "ok",
        "checksum_mismatches", "key_mismatches", "unkeyed",
        "skipped"}`` — ``unkeyed`` counts healthy entries from before
        sidecars carried ``key_params``; ``key_mismatches`` counts
        genuine disagreements, which are quarantined too.
        """
        stats = {"checked": 0, "ok": 0, "checksum_mismatches": 0,
                 "key_mismatches": 0, "unkeyed": 0, "skipped": 0}
        if not self.enabled:
            return stats
        entries = sorted((kind, key) for _, _, kind, key
                         in self._entries())
        if sample is not None and sample > 0 \
                and len(entries) > sample:
            stride = len(entries) / sample
            picked = [entries[int(i * stride)] for i in range(sample)]
            stats["skipped"] = len(entries) - len(picked)
            entries = picked
        for kind, key in entries:
            stats["checked"] += 1
            meta_path = self.root / kind / f"{key}.json"
            payload_path = self._find_payload(kind, key)
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                if payload_path is None:
                    raise OSError("payload missing")
                actual = file_sha256(payload_path)
            except (OSError, ValueError, UnicodeDecodeError):
                stats["checksum_mismatches"] += 1
                self.quarantine(kind, key)
                continue
            if not isinstance(meta, dict) \
                    or meta.get("npz_sha256") != actual:
                stats["checksum_mismatches"] += 1
                TELEMETRY.metrics.counter("cache.checksum_mismatch",
                                          kind=kind).inc()
                self.quarantine(kind, key)
                continue
            key_params = meta.get("key_params")
            if not isinstance(key_params, dict):
                stats["unkeyed"] += 1
                stats["ok"] += 1
                continue
            # A not-yet-migrated legacy entry legitimately carries a
            # legacy-schema key; only a key no schema derives is wrong.
            schemas = (CACHE_SCHEMA,) + LEGACY_SCHEMAS
            if all(content_key(key_params, schema=s) != key
                   for s in schemas):
                stats["key_mismatches"] += 1
                TELEMETRY.metrics.counter("cache.key_mismatch",
                                          kind=kind).inc()
                self.quarantine(kind, key)
                continue
            stats["ok"] += 1
        TELEMETRY.metrics.counter("cache.verified").inc(
            stats["checked"])
        return stats

    def gc(self, max_bytes: int) -> dict:
        """Bound the store to ``max_bytes``, evicting LRU entries.

        Also sweeps all ``.tmp*`` litter and deletes orphans. Returns a
        stats dict (``evicted``, ``bytes_freed``, ``kept_entries``,
        ``kept_bytes``, ``tmp_removed``).

        Size-based LRU covers the artifact kinds (``traces/``,
        ``states/``); the live-trace spill dir is governed separately
        by pid-aliveness (:meth:`sweep_spill`, whose ``removed`` count
        surfaces here as ``spill_removed``). The run registry under
        ``telemetry/`` is never evicted by size — its retention is
        record-count based and explicit
        (:meth:`repro.telemetry.registry.RunRegistry.prune`, invoked by
        ``repro cache gc``).
        """
        stats = {"evicted": 0, "bytes_freed": 0, "kept_entries": 0,
                 "kept_bytes": 0, "tmp_removed": 0, "spill_removed": 0,
                 "queue_campaigns_removed": 0,
                 "queue_leases_reclaimed": 0,
                 "queue_heartbeats_removed": 0}
        if not self.enabled:
            return stats
        stats["tmp_removed"] = self.sweep_tmp(max_age=0.0)
        stats["spill_removed"] = self.sweep_spill()["removed"]
        from .queue import sweep_queues
        queue_stats = sweep_queues(self.root)
        stats["queue_campaigns_removed"] = \
            queue_stats["campaigns_removed"]
        stats["queue_leases_reclaimed"] = \
            queue_stats["leases_reclaimed"]
        stats["queue_heartbeats_removed"] = \
            queue_stats["heartbeats_removed"]
        entries = self._entries()
        total = sum(size for _, size, _, _ in entries)
        entries.sort()  # oldest sidecar mtime first
        for mtime, size, kind, key in entries:
            if total <= max_bytes:
                stats["kept_entries"] += 1
                continue
            # Sidecar (the commit record) goes first: a crash
            # mid-eviction leaves an orphan payload, not a
            # valid-looking sidecar pointing at nothing.
            self._delete_entry(kind, key)
            total -= size
            stats["evicted"] += 1
            stats["bytes_freed"] += size
        stats["kept_bytes"] = total
        if stats["evicted"]:
            TELEMETRY.metrics.counter("cache.gc_evicted").inc(
                stats["evicted"])
        return stats

    def usage(self) -> dict:
        """Entry counts and byte totals per kind, plus quarantine."""
        usage = {"root": str(self.root) if self.enabled else None,
                 "entries": 0, "bytes": 0, "quarantined_files": 0}
        if not self.enabled:
            return usage
        for kind in _KINDS:
            count = size = 0
            payload_bytes = rows = 0
            formats: dict[str, int] = {}
            directory = self.root / kind
            if directory.is_dir():
                for meta_path in directory.glob("*.json"):
                    payload_path = self._find_payload(kind,
                                                      meta_path.stem)
                    if payload_path is None:
                        continue
                    count += 1
                    try:
                        pbytes = payload_path.stat().st_size
                        size += meta_path.stat().st_size + pbytes
                    except OSError:
                        continue
                    if kind != "traces":
                        continue
                    payload_bytes += pbytes
                    try:
                        meta = json.loads(
                            meta_path.read_text(encoding="utf-8"))
                        rows += int(meta.get("rows", 0))
                        fmt = meta.get(
                            "payload_format",
                            "npz" if payload_path.suffix == ".npz"
                            else "v2")
                    except (OSError, ValueError, TypeError):
                        fmt = "unknown"
                    formats[fmt] = formats.get(fmt, 0) + 1
            usage[kind] = {"entries": count, "bytes": size}
            if kind == "traces":
                # Codec footprint: payload bytes per traced
                # instruction, and the shrink vs the canonical 35 B/row
                # columnar layout the consumers decode into.
                usage[kind]["payload_bytes"] = payload_bytes
                usage[kind]["rows"] = rows
                usage[kind]["formats"] = formats
                if payload_bytes and rows:
                    usage[kind]["bytes_per_instruction"] = \
                        payload_bytes / rows
                    usage[kind]["compression_ratio"] = \
                        rows * tracecodec.RAW_ROW_BYTES / payload_bytes
            usage["entries"] += count
            usage["bytes"] += size
        spill_dir = self.root / SPILL_DIR
        spill_entries = spill_bytes = 0
        if spill_dir.is_dir():
            for meta_path in spill_dir.glob("*.json"):
                bin_path = meta_path.with_suffix(".bin")
                if not bin_path.exists():
                    continue
                spill_entries += 1
                try:
                    spill_bytes += bin_path.stat().st_size \
                        + meta_path.stat().st_size
                except OSError:
                    continue
        usage["spill"] = {"entries": spill_entries, "bytes": spill_bytes}
        from .queue import queue_usage
        usage["queue"] = queue_usage(self.root)
        quarantine = self.root / QUARANTINE_DIR
        if quarantine.is_dir():
            usage["quarantined_files"] = sum(
                1 for _ in quarantine.iterdir())
        telemetry_dir = self.root / "telemetry"
        if telemetry_dir.is_dir():
            entries = bytes_total = 0
            for path in telemetry_dir.iterdir():
                try:
                    bytes_total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
            usage["telemetry"] = {"entries": entries,
                                  "bytes": bytes_total}
        return usage
