"""Persistent content-addressed cache for guest runs and sim states.

The in-memory caches on :class:`~repro.experiments.runner.
ExperimentRunner` are bounded, so the nursery figure family (Figures
10-17), which revisits the same (workload, nursery) grid across several
machine configurations and across *separate* benchmark invocations,
used to re-interpret every evicted guest. This module spills both
artifact kinds to disk:

``traces/``
    one finished guest run per entry: the instruction trace as an
    uncompressed ``.npz`` plus a JSON sidecar with the
    :class:`~repro.experiments.runner.RunHandle` metadata (VM stats,
    site table, captured output, measured window).

``states/``
    one :class:`~repro.uarch.system.MemorySideState` per entry: service
    level and mispredict arrays in an ``.npz``, cache/branch counters
    in the sidecar.

Entries are content-addressed: the file name is the SHA-256 of the
canonical JSON of every parameter that determines the artifact (run
parameters for traces; run parameters plus the full machine geometry
for states) salted with :data:`CACHE_SCHEMA`. Anything that would
change the bytes changes the key, so there is no invalidation protocol
beyond "bump the schema when the serialized layout changes" and
"delete the directory when the simulator's behavior changes".

Environment knobs:

``REPRO_CACHE_DIR``
    cache root (default ``.repro-cache`` under the working directory).
``REPRO_CACHE=off``
    disable the disk cache entirely (``0``/``no``/``false`` also work).

Writes go to a per-process temporary name followed by ``os.replace``,
so concurrent figure workers sharing one cache directory never observe
half-written entries — at worst two processes race to write identical
bytes and the later rename wins.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from ..host.trace import InstructionTrace
from ..uarch.branch import BranchStats
from ..uarch.cache import CacheStats
from ..uarch.system import MemorySideState

#: Bump when the on-disk layout (or anything it captures) changes shape.
CACHE_SCHEMA = 1

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_TOGGLE_ENV = "REPRO_CACHE"
DEFAULT_CACHE_DIR = ".repro-cache"

_OFF_VALUES = frozenset({"off", "0", "no", "false"})

#: MemorySideState array fields stored in the ``.npz`` entry.
_STATE_ARRAYS = ("dlevel", "ilevel", "mispredicted")


def cache_root() -> Path | None:
    """Resolve the cache directory from the environment (None = off)."""
    toggle = os.environ.get(CACHE_TOGGLE_ENV, "").strip().lower()
    if toggle in _OFF_VALUES:
        return None
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def content_key(params: dict) -> str:
    """SHA-256 over the canonical JSON of ``params`` plus the schema."""
    payload = json.dumps({"schema": CACHE_SCHEMA, **params},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, writer) -> None:
    """Write via ``writer(tmp_path)`` then rename into place."""
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        writer(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _write_json(path: Path, payload: dict) -> None:
    def writer(tmp: Path) -> None:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))

    _atomic_write(path, writer)


class DiskCache:
    """Content-addressed trace/state store rooted at one directory."""

    def __init__(self, root: str | Path | None | object = "auto") -> None:
        if root == "auto":
            root = cache_root()
        self.root = Path(root) if root is not None else None

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _paths(self, kind: str, key: str) -> tuple[Path, Path]:
        directory = self.root / kind
        return directory / f"{key}.npz", directory / f"{key}.json"

    # ------------------------------------------------------------------
    # Guest runs
    # ------------------------------------------------------------------

    def load_run(self, key: str):
        """Rebuild a RunHandle from disk (None on miss or corruption).

        The returned handle carries ``token=0``; the runner assigns a
        fresh token when it adopts the handle into its caches.
        """
        if not self.enabled:
            return None
        from .runner import RunHandle
        npz_path, meta_path = self._paths("traces", key)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            trace = InstructionTrace.load(npz_path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None
        meta["site_table"] = {name: int(pc) for name, pc
                              in meta.get("site_table", {}).items()}
        return RunHandle(trace=trace, token=0, **meta)

    def store_run(self, key: str, handle) -> None:
        if not self.enabled:
            return
        npz_path, meta_path = self._paths("traces", key)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "workload": handle.workload,
            "runtime": handle.runtime,
            "jit": handle.jit,
            "nursery": handle.nursery,
            "site_table": dict(handle.site_table),
            "bytecodes": handle.bytecodes,
            "allocations": handle.allocations,
            "allocated_bytes": handle.allocated_bytes,
            "minor_gcs": handle.minor_gcs,
            "major_gcs": handle.major_gcs,
            "traces_compiled": handle.traces_compiled,
            "deopts": handle.deopts,
            "output": list(handle.output),
            "measure_start": handle.measure_start,
            "warmup_runs": handle.warmup_runs,
            "wall_seconds": handle.wall_seconds,
            "host_instructions": handle.host_instructions,
        }
        _atomic_write(
            npz_path, lambda tmp: handle.trace.save(tmp, compressed=False))
        _write_json(meta_path, meta)

    # ------------------------------------------------------------------
    # Memory-side states
    # ------------------------------------------------------------------

    def load_state(self, key: str) -> MemorySideState | None:
        if not self.enabled:
            return None
        npz_path, meta_path = self._paths("states", key)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            with np.load(npz_path) as data:
                arrays = {name: data[name] for name in _STATE_ARRAYS}
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None
        cache_stats = {name: CacheStats(**counts)
                       for name, counts in meta["cache_stats"].items()}
        return MemorySideState(
            dlevel=arrays["dlevel"],
            ilevel=arrays["ilevel"],
            cache_stats=cache_stats,
            mem_lines=meta["mem_lines"],
            mispredicted=arrays["mispredicted"],
            branch_stats=BranchStats(**meta["branch_stats"]))

    def store_state(self, key: str, state: MemorySideState) -> None:
        if not self.enabled:
            return
        npz_path, meta_path = self._paths("states", key)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "mem_lines": state.mem_lines,
            "cache_stats": {name: dataclasses.asdict(stats)
                            for name, stats in state.cache_stats.items()},
            "branch_stats": dataclasses.asdict(state.branch_stats),
        }

        def writer(tmp: Path) -> None:
            with open(tmp, "wb") as handle:
                np.savez(handle, dlevel=state.dlevel, ilevel=state.ilevel,
                         mispredicted=state.mispredicted)

        _atomic_write(npz_path, writer)
        _write_json(meta_path, meta)
