"""Fault tolerance for long experiment campaigns.

The figure families are multi-minute simulation campaigns; this module
holds the pieces that let them survive crashed workers, hung cells,
corrupt cache entries, and interrupted runs:

* :class:`RetryPolicy` — how the supervised pool in
  :mod:`~repro.experiments.parallel` retries: per-cell timeout, bounded
  retries with exponential backoff, and how many pool rebuilds are
  tolerated before degrading to in-process serial execution.
* :class:`FaultPlan` / :class:`FaultSpec` — the deterministic
  fault-injection harness behind the :data:`FAULTS_ENV` grammar. Tests
  and the resilience smoke bench use it to *prove* every recovery path;
  production runs never set it.
* :func:`run_campaign` — the ``python -m repro figures --all`` driver:
  regenerates every table/figure in one process through the shared
  disk cache, journals per-figure completion to a checkpoint file so an
  interrupted campaign resumes where it died, and records a wall-clock
  budget per figure.

Fault grammar (:data:`FAULTS_ENV`)::

    REPRO_FAULTS=worker_crash:p=0.3,seed=7;cell_timeout:p=0.2,seed=2,sleep=5;cache_corrupt:p=0.25,seed=1

Semicolon-separated fault kinds, each with ``key=value`` parameters:
``p`` (probability, required), ``seed`` (default 0), and ``sleep``
(``cell_timeout`` only: how long the injected hang lasts, seconds).
Injection decisions are *deterministic*: whether a fault fires is a
pure hash of ``(seed, kind, site, attempt)``, so a faulted run is
reproducible and a retried cell makes progress (the retry is a
different ``attempt``). Kinds:

``worker_crash``
    the worker process ``os._exit``\\ s before running its cell,
    breaking the pool (exercises rebuild + lost-cell re-run).
``cell_timeout``
    the worker sleeps ``sleep`` seconds before its cell (exercises the
    per-cell timeout, pool kill, and retry path).
``cache_corrupt``
    :class:`~repro.experiments.diskcache.DiskCache` flips bytes in the
    ``.npz`` it just stored (exercises checksum verification,
    quarantine, and recompute).
``worker_exit``
    a queue worker (``python -m repro work``) ``os._exit``\\ s right
    after claiming a cell — a simulated ``kill -9`` (exercises lease
    expiry + reclamation by a peer). Site is the cell id, attempt the
    cell's reclaim generation.
``lease_stall``
    a queue worker silently abandons a claimed cell without completing
    or heartbeating it, then sleeps ``sleep`` seconds — a hung worker
    whose *process* stays alive (exercises per-lease staleness, not
    just worker death).
``heartbeat_stop``
    a queue worker's heartbeat thread freezes permanently while the
    worker keeps executing (exercises reclamation of live-but-presumed-
    dead workers and journal-level duplicate-completion dedup). Site is
    the worker id, attempt the renewal count.
``server_crash``
    the sweep server (``python -m repro serve``) ``os._exit``\\ s
    between two cells of an accepted request — a simulated ``kill -9``
    mid-campaign (exercises session-journal resume: a restarted server
    re-runs accepted-but-unfinished requests and clients re-ask by
    key). Site is ``<request-key>#<cell-index>``.
``client_disconnect``
    a :class:`~repro.experiments.client.ServeClient` drops its
    connection right after sending a request (exercises the server
    finishing and journaling work whose asker went away; the re-ask by
    key finds the journaled answer). Site is the request key.
``slow_tenant``
    every cell of one tenant's requests sleeps ``sleep`` seconds
    before running on the sweep server (exercises deficit-round-robin
    fairness: the slow tenant must not starve the others). Site is the
    tenant name, so the decision is per-tenant and constant.

Recovery is observable: the supervised pool and the disk cache count
``resilience.retries``, ``resilience.pool_rebuilds``,
``resilience.timeouts``, ``resilience.serial_fallbacks``,
``cache.quarantined``, ``cache.orphans_removed`` and friends into the
telemetry registry, so every manifest shows what was survived.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ExperimentError
from ..telemetry import TELEMETRY

#: Fault-injection grammar (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"
#: Per-cell timeout in seconds for supervised fan-out (unset = none).
TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
#: Retry budget per cell for supervised fan-out.
RETRIES_ENV = "REPRO_CELL_RETRIES"

#: Journal filename for ``figures --all`` (lives under the cache root).
CHECKPOINT_NAME = "figures.journal"
#: Journal record schema; bump on incompatible layout changes.
CHECKPOINT_SCHEMA = 1

_FAULT_KINDS = frozenset({"worker_crash", "cell_timeout", "cache_corrupt",
                          "worker_exit", "lease_stall", "heartbeat_stop",
                          "server_crash", "client_disconnect",
                          "slow_tenant"})


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """One fault kind's injection parameters."""

    kind: str
    probability: float
    seed: int = 0
    #: ``cell_timeout`` / ``lease_stall``: how long the injected hang
    #: sleeps.
    sleep_seconds: float = 30.0


def _decide(seed: int, kind: str, site: str, attempt: int,
            probability: float) -> bool:
    """Pure decision: does this fault fire at this site and attempt?"""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    payload = f"{seed}|{kind}|{site}|{attempt}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64 < probability


class FaultPlan:
    """A parsed :data:`FAULTS_ENV` value: zero or more armed faults."""

    def __init__(self, specs: dict[str, FaultSpec] | None = None) -> None:
        self.specs = dict(specs or {})

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.specs == other.specs

    def __reduce__(self):
        return (FaultPlan, (self.specs,))

    def spec(self, kind: str) -> FaultSpec | None:
        return self.specs.get(kind)

    def should_fire(self, kind: str, site: str, attempt: int = 0) -> bool:
        spec = self.specs.get(kind)
        if spec is None:
            return False
        return _decide(spec.seed, kind, site, attempt, spec.probability)

    @classmethod
    def from_env(cls, text: str | None = None) -> "FaultPlan":
        """Parse ``text`` (default: the :data:`FAULTS_ENV` variable)."""
        if text is None:
            text = os.environ.get(FAULTS_ENV, "")
        return cls(parse_faults(text))


def parse_faults(text: str) -> dict[str, FaultSpec]:
    """Parse the :data:`FAULTS_ENV` grammar into specs (may be empty)."""
    specs: dict[str, FaultSpec] = {}
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, params_text = clause.partition(":")
        kind = kind.strip()
        if kind not in _FAULT_KINDS:
            raise ExperimentError(
                f"{FAULTS_ENV}: unknown fault kind {kind!r} "
                f"(choose from {', '.join(sorted(_FAULT_KINDS))})")
        params: dict[str, str] = {}
        for item in filter(None, (p.strip()
                                  for p in params_text.split(","))):
            name, sep, value = item.partition("=")
            if not sep:
                raise ExperimentError(
                    f"{FAULTS_ENV}: expected key=value in {item!r}")
            params[name.strip()] = value.strip()
        unknown = set(params) - {"p", "seed", "sleep"}
        if unknown:
            raise ExperimentError(
                f"{FAULTS_ENV}: unknown parameter(s) "
                f"{', '.join(sorted(unknown))} for {kind}")
        try:
            probability = float(params.get("p", ""))
        except ValueError:
            raise ExperimentError(
                f"{FAULTS_ENV}: {kind} needs p=<float> "
                f"(got {params.get('p')!r})") from None
        if not 0.0 <= probability <= 1.0:
            raise ExperimentError(
                f"{FAULTS_ENV}: {kind} p must be in [0, 1], "
                f"got {probability}")
        try:
            seed = int(params.get("seed", "0"))
            sleep_seconds = float(params.get("sleep", "30"))
        except ValueError as exc:
            raise ExperimentError(f"{FAULTS_ENV}: {kind}: {exc}") from None
        specs[kind] = FaultSpec(kind=kind, probability=probability,
                                seed=seed, sleep_seconds=sleep_seconds)
    return specs


# ----------------------------------------------------------------------
# Supervision policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How supervised fan-out retries failing cells.

    ``timeout`` is the per-cell wall-clock limit (None = unlimited); a
    timed-out cell's pool is killed and rebuilt, because a process-pool
    worker cannot be cancelled in place. ``max_retries`` bounds retries
    *per cell* for cell exceptions and timeouts; pool crashes are
    instead bounded by ``max_pool_rebuilds``, after which remaining
    cells degrade to in-process serial execution.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    timeout: float | None = None
    max_pool_rebuilds: int = 3

    def backoff(self, attempt: int) -> float:
        """Exponential backoff delay before retry number ``attempt``."""
        return min(self.backoff_base * (2.0 ** max(0, attempt - 1)),
                   self.backoff_max)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Defaults overridden by :data:`TIMEOUT_ENV`/:data:`RETRIES_ENV`."""
        kwargs = {}
        raw = os.environ.get(TIMEOUT_ENV, "").strip()
        if raw:
            try:
                timeout = float(raw)
            except ValueError:
                raise ExperimentError(
                    f"{TIMEOUT_ENV} must be seconds (float), "
                    f"got {raw!r}") from None
            kwargs["timeout"] = timeout if timeout > 0 else None
        raw = os.environ.get(RETRIES_ENV, "").strip()
        if raw:
            try:
                kwargs["max_retries"] = int(raw)
            except ValueError:
                raise ExperimentError(
                    f"{RETRIES_ENV} must be an integer, "
                    f"got {raw!r}") from None
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Checkpointed figure campaign (``python -m repro figures --all``)
# ----------------------------------------------------------------------

def default_checkpoint_path() -> Path:
    """Journal location: under the cache root, or the cwd if cache off."""
    from .diskcache import cache_root
    root = cache_root()
    if root is None:
        return Path(".repro-figures.journal")
    return root / CHECKPOINT_NAME


def load_checkpoint(path: str | Path) -> dict[str, dict]:
    """Read a journal: figure id -> most recent completion record.

    The journal is append-only JSON lines; unreadable lines (from a
    crash mid-append) are skipped, so a torn final record costs at most
    one figure's worth of recomputation.
    """
    path = Path(path)
    records: dict[str, dict] = {}
    if not path.exists():
        return records
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return records
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        if record.get("schema") != CHECKPOINT_SCHEMA:
            continue
        figure = record.get("figure")
        if isinstance(figure, str):
            records[figure] = record
    return records


def append_checkpoint(path: str | Path, record: dict) -> None:
    """Append one completion record (flushed + fsynced: it is the
    commit record an interrupted campaign resumes from)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps({"schema": CHECKPOINT_SCHEMA, **record},
                      sort_keys=True, separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:
            pass


@dataclass
class CampaignReport:
    """What one :func:`run_campaign` invocation did."""

    completed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    over_budget: list[str] = field(default_factory=list)
    #: Distributed mode only: figures abandoned because one of their
    #: cells was poisoned (serial mode raises instead).
    failed: list[str] = field(default_factory=list)
    wall_seconds: dict[str, float] = field(default_factory=dict)
    checkpoint: str = ""
    #: Queue campaign directory when the run was distributed.
    queue_dir: str = ""

    def summary_rows(self) -> list[list[str]]:
        rows = []
        for name in self.skipped:
            rows.append([name, "checkpointed", "-"])
        for name in self.completed:
            status = "over budget" if name in self.over_budget else "done"
            rows.append([name, status,
                         f"{self.wall_seconds.get(name, 0.0):.1f}s"])
        for name in self.failed:
            rows.append([name, "failed (poisoned cells)",
                         f"{self.wall_seconds.get(name, 0.0):.1f}s"])
        return rows


def run_campaign(names=None, quick: bool = True, jobs: int | None = None,
                 checkpoint: str | Path | None = None, fresh: bool = False,
                 budget_seconds: float | None = None,
                 distributed: bool = False,
                 queue_dir: str | Path | None = None,
                 grace_seconds: float | None = None,
                 emit=print) -> CampaignReport:
    """Regenerate figures in one process, checkpointing each completion.

    Completed figures (matching ``quick``) recorded in the journal are
    skipped, so re-running after an interruption (SIGINT, crash, OOM
    kill) resumes where the campaign died — everything the dead run
    *did* finish is also warm in the shared disk cache. ``fresh=True``
    discards the journal first. ``budget_seconds`` is a per-figure
    wall-clock budget: exceeding it does not abort, but is flagged in
    the summary and counted (``campaign.over_budget``).

    ``distributed=True`` turns this process into the *coordinator* of a
    lease-based work queue (see :mod:`~repro.experiments.queue`): every
    fan-out inside the figure functions publishes claimable cells that
    ``python -m repro work`` peers execute; with no live workers for
    ``grace_seconds`` the coordinator finishes cells itself through the
    ordinary supervised pool. A figure whose cells end up poisoned is
    recorded in ``report.failed`` (and not checkpointed) instead of
    aborting the figures that remain.
    """
    from .diskcache import DiskCache
    from .figures import ALL_FIGURES, figure_scale
    names = list(names) if names else list(ALL_FIGURES)
    unknown = [name for name in names if name not in ALL_FIGURES]
    if unknown:
        raise ExperimentError(
            f"unknown figure(s): {', '.join(unknown)}; "
            f"choose from {', '.join(ALL_FIGURES)}")
    path = Path(checkpoint) if checkpoint is not None \
        else default_checkpoint_path()
    if fresh:
        path.unlink(missing_ok=True)
    done = load_checkpoint(path)
    # Self-heal before the long campaign: orphaned .tmp files from a
    # previous kill never age into permanent litter.
    DiskCache().sweep_tmp()
    if distributed:
        return _run_distributed_campaign(
            names, quick, jobs, path, done, budget_seconds,
            queue_dir, grace_seconds, emit)
    metrics = TELEMETRY.metrics
    report = CampaignReport(checkpoint=str(path))
    runners: dict[int, object] = {}
    for name in names:
        if _checkpointed(name, done, quick, report, metrics, emit):
            continue
        _run_one_figure(name, quick, jobs, runners, budget_seconds,
                        path, report, metrics, emit)
    return report


def _checkpointed(name: str, done: dict, quick: bool,
                  report: CampaignReport, metrics, emit) -> bool:
    record = done.get(name)
    if record is None or record.get("quick") != quick:
        return False
    report.skipped.append(name)
    metrics.counter("campaign.figures_skipped").inc()
    TELEMETRY.events.emit("campaign.figure.skipped", figure=name)
    emit(f"-- {name}: done at checkpoint "
         f"({record.get('wall_seconds', 0.0):.1f}s last time), "
         "skipping")
    return True


def _run_one_figure(name: str, quick: bool, jobs: int | None,
                    runners: dict, budget_seconds: float | None,
                    path: Path, report: CampaignReport, metrics,
                    emit) -> None:
    from .figures import ALL_FIGURES, figure_scale
    func = ALL_FIGURES[name]
    scale = figure_scale(name)
    runner = None
    if scale is not None:
        if scale not in runners:
            from .runner import ExperimentRunner
            runners[scale] = ExperimentRunner(scale=scale)
        runner = runners[scale]
    start = time.perf_counter()
    TELEMETRY.events.emit("campaign.figure.begin", figure=name)
    with TELEMETRY.tracer.span("campaign.figure", figure=name):
        if runner is None:
            result = func()
        else:
            result = func(runner, quick=quick, jobs=jobs)
    wall = time.perf_counter() - start
    TELEMETRY.events.emit("campaign.figure.end", figure=name,
                          wall_seconds=round(wall, 3))
    emit(str(result))
    report.completed.append(name)
    report.wall_seconds[name] = wall
    metrics.counter("campaign.figures_run").inc()
    over = budget_seconds is not None and wall > budget_seconds
    if over:
        report.over_budget.append(name)
        metrics.counter("campaign.over_budget").inc()
        emit(f"-- {name}: {wall:.1f}s exceeded the "
             f"{budget_seconds:.1f}s budget")
    append_checkpoint(path, {
        "figure": name,
        "quick": quick,
        "wall_seconds": round(wall, 3),
        "budget_seconds": budget_seconds,
        "over_budget": over,
        "completed_unix": time.time(),
    })
    _register_figure(name, quick, wall)


def _run_distributed_campaign(names, quick: bool, jobs: int | None,
                              path: Path, done: dict,
                              budget_seconds: float | None,
                              queue_dir, grace_seconds,
                              emit) -> CampaignReport:
    """Coordinator side of a distributed campaign: every fan-out in the
    figure functions routes through one :class:`~repro.experiments.
    queue.QueueExecutor` for the campaign's queue directory."""
    from .diskcache import cache_root
    from .parallel import use_executor
    from .queue import (QueueExecutor, WorkQueue, campaign_id,
                        queue_root)
    metrics = TELEMETRY.metrics
    if queue_dir is not None:
        directory = Path(queue_dir)
    else:
        base = queue_root()
        if base is None:
            raise ExperimentError(
                "figures --distributed needs the disk cache (workers "
                "rendezvous under <cache-root>/queue); unset "
                "REPRO_CACHE=off or pass --queue DIR")
        directory = base / campaign_id(names, quick)
    root = cache_root()
    queue = WorkQueue(directory).ensure(
        extra={"cache_dir": str(root) if root else "",
               "figures": sorted(names), "quick": quick})
    executor = QueueExecutor(queue, grace_seconds=grace_seconds,
                             local_jobs=jobs)
    report = CampaignReport(checkpoint=str(path),
                            queue_dir=str(directory))
    runners: dict[int, object] = {}
    emit(f"-- distributed campaign {queue.campaign}: queue at "
         f"{directory} (workers: python -m repro work)")
    TELEMETRY.events.emit("campaign.distributed.begin",
                          campaign=queue.campaign,
                          queue_dir=str(directory))
    try:
        with use_executor(executor):
            for name in names:
                if _checkpointed(name, done, quick, report, metrics,
                                 emit):
                    continue
                try:
                    _run_one_figure(name, quick, jobs, runners,
                                    budget_seconds, path, report,
                                    metrics, emit)
                except ExperimentError as exc:
                    # Poisoned cells (or another dead end) must not
                    # stall the figures that remain; the failure is
                    # loud in the summary and the journal is NOT
                    # checkpointed for this figure.
                    report.failed.append(name)
                    metrics.counter("campaign.figures_failed").inc()
                    TELEMETRY.events.emit("campaign.figure.failed",
                                          figure=name, error=str(exc))
                    emit(f"-- {name}: FAILED: {exc}")
    finally:
        queue.close("failed" if report.failed else "complete")
        TELEMETRY.events.emit("campaign.distributed.end",
                              campaign=queue.campaign,
                              failed=len(report.failed))
    return report


def _register_figure(name: str, quick: bool, wall: float) -> None:
    """Append one per-figure record to the run registry.

    Gated on telemetry: with null sinks nothing touches disk. Registry
    errors never abort a campaign mid-flight.
    """
    if not TELEMETRY.enabled:
        return
    from ..telemetry.registry import RunRegistry, REGISTRY_SCHEMA
    record = {
        "schema": REGISTRY_SCHEMA,
        "kind": "figure",
        "created_unix": time.time(),
        "command": "figures",
        "config": {"figure": name, "quick": quick},
        "stats": {"wall_seconds": round(wall, 3)},
        "counters": TELEMETRY.metrics.filtered_snapshot(
            ("resilience.", "cache.", "runner.", "campaign.")),
    }
    try:
        RunRegistry().append(record)
    except OSError:
        TELEMETRY.metrics.counter("registry.write_errors").inc()
