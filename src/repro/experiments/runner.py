"""Workload execution with trace caching.

Experiments sweep microarchitecture parameters over fixed traces (cache,
branch, and core models re-run; the guest does not), and sweep run-time
parameters (nursery size, JIT on/off) by re-running the guest. The
runner caches a bounded number of recent traces so figure harnesses can
loop workload-outer / config-inner without re-interpreting.

Both in-memory caches are backed by a write-through persistent
:class:`~repro.experiments.diskcache.DiskCache`: every fresh guest run
and memory-side state is also stored on disk, and a memory miss
consults disk before re-computing. Repeated benchmark invocations —
and parallel figure workers, which share the cache directory —
therefore skip double interpretation entirely. ``REPRO_CACHE=off``
restores the purely in-memory behavior.

Disk entries are untrusted input: the cache verifies checksums and
quarantines corrupt entries itself, and the runner additionally
shape-checks loaded memory-side states against the trace they claim to
describe — every failure is a recomputable miss, never an exception.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

from ..config import (
    MachineConfig,
    RuntimeConfig,
    cpython_runtime,
    pypy_runtime,
    v8_runtime,
)
from ..errors import ExperimentError
from ..frontend.compiler import Program, compile_source
from ..host.address_space import AddressSpace
from ..host.machine import HostMachine
from ..host.trace import InstructionTrace
from ..telemetry import TELEMETRY
from ..telemetry.export import write_manifest
from ..uarch.system import MemorySideState, SimulatedSystem
from ..vm.cpython import CPythonVM
from ..vm.pypy import PyPyVM
from ..vm.v8 import V8VM
from ..vm.v8.workloads import js_source
from ..workloads import get_workload
from .diskcache import DiskCache, content_key

_MB = 1024 * 1024


def memory_side_key(config: MachineConfig) -> tuple:
    """Everything a :class:`MemorySideState` depends on.

    The cache simulation reads each level's geometry (size, ways, line
    size) and the branch simulation reads the predictor table shapes;
    latencies, bandwidth, and core parameters only enter the *core*
    models, so they are deliberately excluded — a latency sweep over one
    trace reuses a single memory-side state.
    """
    branch = config.branch
    return tuple(
        (level.size, level.ways, level.line_size)
        for level in (config.l1i, config.l1d, config.l2, config.l3)
    ) + ((branch.l1_entries, branch.history_bits, branch.l2_entries,
          branch.btb_entries, branch.scale),)


@dataclass
class RunHandle:
    """A finished guest run: trace, site table, and run statistics."""

    workload: str
    runtime: str
    jit: bool
    nursery: int
    trace: InstructionTrace
    site_table: dict[str, int]
    bytecodes: int
    allocations: int
    allocated_bytes: int
    minor_gcs: int
    major_gcs: int
    traces_compiled: int
    deopts: int
    output: list[str]
    #: Trace row where the measured (post-warmup) execution begins.
    measure_start: int = 0
    #: Warmup executions that preceded the measured run (disk-cache key).
    warmup_runs: int = 0
    #: Monotonic per-handle token; the runner's state cache keys on it
    #: (``id(trace)`` is unsafe: ids are reused after eviction frees a
    #: trace, which silently aliased MemorySideStates across runs).
    token: int = 0
    #: Host wall-clock seconds the guest run took (warmup included).
    wall_seconds: float = 0.0
    #: Total host instructions emitted (warmup included); benchmarks
    #: derive simulator throughput as host_instructions / wall_seconds.
    host_instructions: int = 0

    def measured_arrays(self):
        """Trace columns restricted to the measured window."""
        return self.trace.slice_view(self.measure_start, len(self.trace))


def _runtime_config(runtime: str, jit: bool, nursery: int) -> RuntimeConfig:
    if runtime == "cpython":
        return cpython_runtime()
    if runtime == "pypy":
        return pypy_runtime(jit=jit, nursery_size=nursery)
    if runtime == "v8":
        return v8_runtime(nursery_size=nursery)
    raise ExperimentError(f"unknown runtime {runtime!r}")


class ExperimentRunner:
    """Runs workloads and caches (trace, memory-side) results."""

    #: Default in-memory cache sizes. The nursery figure family is the
    #: sizing constraint: Figure 12 touches 4 configs x 4 workloads x 5
    #: ratios = up to 20 live traces and 80 states per quick run (the
    #: seed's 4/12 thrashed both caches, see
    #: benchmarks/results/telemetry_smoke.txt).
    TRACE_CACHE_SIZE = 16
    STATE_CACHE_SIZE = 48
    #: Hard ceilings for :meth:`ensure_cache_capacity` — a huge grid
    #: degrades to LRU thrashing rather than unbounded memory use.
    TRACE_CACHE_CAP = 64
    STATE_CACHE_CAP = 256

    def __init__(self, scale: int = 1, max_instructions: int = 120_000_000,
                 trace_cache_size: int = TRACE_CACHE_SIZE,
                 state_cache_size: int = STATE_CACHE_SIZE,
                 metrics_out: str | None = None,
                 jobs: int | None = None,
                 disk_cache: DiskCache | None = None) -> None:
        self.scale = scale
        self.max_instructions = max_instructions
        #: Default worker count for :meth:`run_many`/:meth:`simulate_many`
        #: (None = consult ``REPRO_JOBS``, then serial).
        self.jobs = jobs
        self.disk_cache = disk_cache if disk_cache is not None \
            else DiskCache()
        self._traces: OrderedDict[tuple, RunHandle] = OrderedDict()
        self._states: OrderedDict[tuple, MemorySideState] = OrderedDict()
        self._trace_cache_size = trace_cache_size
        self._state_cache_size = state_cache_size
        self._programs: dict[tuple, Program] = {}
        #: Next RunHandle.token; never reused within a runner.
        self._next_token = 1
        #: id()s of evicted (hence possibly freed) trace objects — used
        #: to count how often a fresh trace reuses one, i.e. how often
        #: the old id()-keyed state cache would have aliased.
        self._retired_trace_ids: set[int] = set()
        #: Disk keys of entries LRU-evicted from the in-memory caches
        #: that survive on disk. A later disk hit on one of these is a
        #: "spill hit": the disk cache acted as an overflow tier for
        #: this runner, not just a cross-invocation store.
        self._spilled_keys: set[str] = set()
        #: In-memory state key -> disk key. A MemorySideState carries
        #: no run parameters, so its eviction can only be attributed to
        #: a disk entry through this map (traces recompute theirs from
        #: the evicted handle).
        self._state_disk_keys: dict[tuple, str] = {}
        #: When set, a manifest is written here after every fresh run.
        self.metrics_out = metrics_out
        self.last_handle: RunHandle | None = None
        #: Content key of the most recent fresh run or disk hit; the
        #: manifest records it so registry entries join against cache
        #: entries.
        self.last_cache_key: str | None = None

    # ------------------------------------------------------------------
    # Guest execution
    # ------------------------------------------------------------------

    def _program(self, workload: str, runtime: str) -> Program:
        key = (workload, runtime == "v8")
        program = self._programs.get(key)
        if program is None:
            if runtime == "v8":
                source = js_source(workload)
            else:
                source = get_workload(workload).source(self.scale)
            program = compile_source(source, workload)
            self._programs[key] = program
        return program

    def run(self, workload: str, runtime: str = "cpython",
            jit: bool = True, nursery: int = 1 * _MB,
            warmup_runs: int = 0) -> RunHandle:
        """Execute (or fetch from cache) one guest run.

        ``warmup_runs`` follows the paper's Section III protocol: the
        program is executed that many extra times on the *same* VM
        before the measured run, so the JIT enters the measured window
        already warm. ``measure_start`` marks where the measured trace
        begins.
        """
        if runtime == "cpython":
            jit = False
            nursery = 0
        key = (workload, runtime, jit, nursery, self.scale, warmup_runs)
        handle = self._traces.get(key)
        metrics = TELEMETRY.metrics
        if handle is not None:
            self._traces.move_to_end(key)
            metrics.counter("runner.trace_cache.hit", runtime=runtime).inc()
            return handle
        trace_params = self._trace_key_params(*key[:4], warmup_runs)
        disk_key = content_key(trace_params)
        cached = self.disk_cache.load_run(disk_key,
                                          key_params=trace_params)
        if cached is not None:
            metrics.counter("runner.trace_cache.hit", runtime=runtime).inc()
            metrics.counter("runner.disk_cache.hit", kind="trace").inc()
            if disk_key in self._spilled_keys:
                metrics.counter("cache.spill_hits", kind="trace").inc()
            self.last_cache_key = disk_key
            return self._adopt_handle(key, cached)
        metrics.counter("runner.trace_cache.miss", runtime=runtime).inc()
        if self.disk_cache.enabled:
            metrics.counter("runner.disk_cache.miss", kind="trace").inc()
        program = self._program(workload, runtime)
        space = AddressSpace(nursery_size=max(nursery, 16 * 1024))
        machine = HostMachine(space, max_instructions=self.max_instructions)
        config = _runtime_config(runtime, jit, max(nursery, 16 * 1024))
        start = time.perf_counter()
        with TELEMETRY.tracer.span("guest.run", workload=workload,
                                   runtime=runtime, jit=jit,
                                   nursery=nursery):
            if runtime == "cpython":
                vm = CPythonVM(machine, program)
            elif runtime == "pypy":
                vm = PyPyVM(machine, program, config)
            else:
                vm = V8VM(machine, program, config)
            for _ in range(warmup_runs):
                vm.run()
                vm.output.clear()
            measure_start = len(machine.trace)
            vm.run()
        wall_seconds = time.perf_counter() - start
        if id(machine.trace) in self._retired_trace_ids:
            # This fresh trace reuses the id of an evicted one: exactly
            # the aliasing the id()-keyed state cache suffered from.
            self._retired_trace_ids.discard(id(machine.trace))
            metrics.counter("runner.state_cache.id_collisions").inc()
        stats = vm.stats
        handle = RunHandle(
            workload=workload, runtime=runtime, jit=jit, nursery=nursery,
            trace=machine.trace, site_table=dict(machine.site_table),
            bytecodes=stats.bytecodes, allocations=stats.allocations,
            allocated_bytes=stats.allocated_bytes,
            minor_gcs=stats.minor_gcs, major_gcs=stats.major_gcs,
            traces_compiled=stats.traces_compiled, deopts=stats.deopts,
            output=list(vm.output), measure_start=measure_start,
            warmup_runs=warmup_runs,
            token=self._next_token, wall_seconds=wall_seconds,
            host_instructions=len(machine.trace))
        self._next_token += 1
        metrics.counter("guest.instructions",
                        runtime=runtime).inc(len(machine.trace))
        if wall_seconds > 0:
            metrics.gauge("guest.instructions_per_second",
                          runtime=runtime).set(
                len(machine.trace) / wall_seconds)
        self.last_cache_key = disk_key
        self._traces[key] = handle
        while len(self._traces) > self._trace_cache_size:
            _, evicted = self._traces.popitem(last=False)
            self._note_trace_eviction(evicted)
        self.last_handle = handle
        self.disk_cache.store_run(
            disk_key, handle,
            key_params=self._trace_key_params(*key[:4], warmup_runs))
        if self.metrics_out is not None:
            self.write_manifest(self.metrics_out)
        return handle

    def _trace_key_params(self, workload: str, runtime: str, jit: bool,
                          nursery: int, warmup_runs: int) -> dict:
        """Disk-cache identity of one guest run (see diskcache docs)."""
        return {
            "kind": "trace", "workload": workload, "runtime": runtime,
            "jit": jit, "nursery": nursery, "scale": self.scale,
            "warmup_runs": warmup_runs,
            "max_instructions": self.max_instructions,
        }

    def _adopt_handle(self, key: tuple, handle: RunHandle) -> RunHandle:
        """Insert an externally produced handle (disk or worker) as if
        this runner had run it: fresh token, normal eviction."""
        handle.token = self._next_token
        self._next_token += 1
        self._traces[key] = handle
        while len(self._traces) > self._trace_cache_size:
            _, evicted = self._traces.popitem(last=False)
            self._note_trace_eviction(evicted)
        self.last_handle = handle
        return handle

    def _note_trace_eviction(self, evicted: RunHandle) -> None:
        """One trace left memory; if it lives on disk, that is a spill."""
        self._retired_trace_ids.add(id(evicted.trace))
        if not self.disk_cache.enabled:
            return
        disk_key = content_key(self._trace_key_params(
            evicted.workload, evicted.runtime, evicted.jit,
            evicted.nursery, evicted.warmup_runs))
        self._spilled_keys.add(disk_key)
        TELEMETRY.metrics.counter("cache.spilled", kind="trace").inc()

    # ------------------------------------------------------------------
    # Microarchitecture simulation
    # ------------------------------------------------------------------

    #: The full memory-side geometry. An earlier revision keyed on a
    #: hand-picked subset (no L1/L2 ways, no history/L2/BTB shapes), so
    #: states silently aliased across configs differing only in those.
    _config_key = staticmethod(memory_side_key)

    def _state_key_params(self, handle: RunHandle,
                          config: MachineConfig) -> dict:
        params = self._trace_key_params(
            handle.workload, handle.runtime, handle.jit, handle.nursery,
            handle.warmup_runs)
        params["kind"] = "state"
        params["machine"] = memory_side_key(config)
        return params

    def memory_side(self, handle: RunHandle, config: MachineConfig,
                    ) -> MemorySideState:
        """Cache + branch simulation for one (run, machine) pair."""
        key = (handle.token, memory_side_key(config))
        state = self._states.get(key)
        metrics = TELEMETRY.metrics
        if state is not None:
            self._states.move_to_end(key)
            metrics.counter("runner.state_cache.hit").inc()
            return state
        state_params = self._state_key_params(handle, config)
        disk_key = content_key(state_params)
        state = self.disk_cache.load_state(disk_key,
                                           key_params=state_params)
        if state is not None and len(state.dlevel) != len(handle.trace):
            # Checksums catch bit rot, not a state that parses cleanly
            # but belongs to a different-length trace (e.g. a cache dir
            # hand-copied across incompatible checkouts). Shape-check
            # against the trace we are about to simulate and quarantine
            # mismatches rather than poisoning the core models.
            metrics.counter("cache.shape_mismatch", kind="states").inc()
            self.disk_cache.quarantine("states", disk_key)
            state = None
        if state is not None:
            metrics.counter("runner.state_cache.hit").inc()
            metrics.counter("runner.disk_cache.hit", kind="state").inc()
            if disk_key in self._spilled_keys:
                metrics.counter("cache.spill_hits", kind="state").inc()
            self._state_disk_keys[key] = disk_key
            self._store_state(key, state)
            return state
        metrics.counter("runner.state_cache.miss").inc()
        if self.disk_cache.enabled:
            metrics.counter("runner.disk_cache.miss", kind="state").inc()
        with TELEMETRY.tracer.span("sim.memory_side",
                                   workload=handle.workload,
                                   runtime=handle.runtime):
            system = SimulatedSystem(config)
            state = system.memory_side(handle.trace)
        self._state_disk_keys[key] = disk_key
        self._store_state(key, state)
        self.disk_cache.store_state(
            disk_key, state,
            key_params=self._state_key_params(handle, config))
        return state

    def _store_state(self, key: tuple, state: MemorySideState) -> None:
        self._states[key] = state
        while len(self._states) > self._state_cache_size:
            evicted_key, _ = self._states.popitem(last=False)
            disk_key = self._state_disk_keys.pop(evicted_key, None)
            if disk_key is not None and self.disk_cache.enabled:
                self._spilled_keys.add(disk_key)
                TELEMETRY.metrics.counter("cache.spilled",
                                          kind="state").inc()

    def simulate(self, handle: RunHandle, config: MachineConfig,
                 core: str = "ooo"):
        """End-to-end timing for one run on one machine configuration."""
        state = self.memory_side(handle, config)
        with TELEMETRY.tracer.span("sim.core", workload=handle.workload,
                                   runtime=handle.runtime, core=core):
            system = SimulatedSystem(config)
            return system.run(handle.trace, core=core, state=state)

    def simulate_many_configs(self, handle: RunHandle, configs,
                              core: str = "ooo") -> list:
        """Timing results for one run under many machine configurations.

        Memory-side states are computed (or fetched) once per distinct
        memory-side geometry, then the whole batch goes through
        :meth:`SimulatedSystem.run_many_configs`, which walks the trace
        once per distinct state instead of once per config. Results are
        bit-identical to per-config :meth:`simulate` calls, in input
        order.
        """
        states = [self.memory_side(handle, config) for config in configs]
        with TELEMETRY.tracer.span("sim.core_batch",
                                   workload=handle.workload,
                                   runtime=handle.runtime, core=core,
                                   configs=len(configs)):
            return SimulatedSystem.run_many_configs(
                handle.trace, configs, states, core=core)

    def ensure_cache_capacity(self, traces: int | None = None,
                              states: int | None = None) -> None:
        """Grow the in-memory caches to fit a figure's grid shape.

        Figure harnesses call this with the number of live traces and
        memory-side states their grid touches, so capacity follows the
        requested grid instead of the fixed defaults. Growth only (a
        running figure never shrinks a cache another figure grew), and
        capped so a huge grid degrades to LRU thrash instead of
        unbounded memory.
        """
        if traces is not None:
            self._trace_cache_size = min(
                max(self._trace_cache_size, traces),
                self.TRACE_CACHE_CAP)
        if states is not None:
            self._state_cache_size = min(
                max(self._state_cache_size, states),
                self.STATE_CACHE_CAP)
        metrics = TELEMETRY.metrics
        metrics.gauge("runner.trace_cache.capacity").set(
            self._trace_cache_size)
        metrics.gauge("runner.state_cache.capacity").set(
            self._state_cache_size)

    # ------------------------------------------------------------------
    # Parallel fan-out
    # ------------------------------------------------------------------

    def spawn_params(self) -> dict:
        """Constructor kwargs for a worker-process clone of this runner.

        ``metrics_out`` is omitted (only the parent writes manifests)
        and the disk cache is shared so worker results persist where the
        parent and later invocations will look for them.
        """
        return {
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "trace_cache_size": self._trace_cache_size,
            "state_cache_size": self._state_cache_size,
            "disk_cache": self.disk_cache,
        }

    def queue_params(self) -> dict:
        """JSON-able clone parameters for a *cross-process* worker.

        Like :meth:`spawn_params` but serializable into a queue cell:
        the disk-cache object is dropped — a queue worker builds its
        own :class:`~repro.experiments.diskcache.DiskCache` rooted at
        the campaign's shared cache directory, which is the whole
        rendezvous mechanism.
        """
        return {
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "trace_cache_size": self._trace_cache_size,
            "state_cache_size": self._state_cache_size,
        }

    def _normalized_key(self, request: dict) -> tuple:
        workload = request["workload"]
        runtime = request.get("runtime", "cpython")
        jit = request.get("jit", True)
        nursery = request.get("nursery", 1 * _MB)
        warmup_runs = request.get("warmup_runs", 0)
        if runtime == "cpython":
            jit = False
            nursery = 0
        return (workload, runtime, jit, nursery, self.scale, warmup_runs)

    def run_many(self, requests, jobs: int | None = None,
                 ) -> list[RunHandle]:
        """Execute many guest runs, fanning out across processes.

        ``requests`` is an iterable of :meth:`run` keyword dicts.
        Returns the handles in request order, adopted into this
        runner's caches exactly as serial :meth:`run` calls would be.
        """
        from .parallel import fan_out
        requests = [dict(request) for request in requests]
        results = fan_out(self, _run_cell, [(r,) for r in requests],
                          jobs if jobs is not None else self.jobs)
        handles = []
        for request, handle in zip(requests, results):
            key = self._normalized_key(request)
            existing = self._traces.get(key)
            if existing is None:
                existing = self._adopt_handle(key, handle)
            handles.append(existing)
        return handles

    def simulate_many(self, cells, core: str = "ooo",
                      jobs: int | None = None) -> list:
        """Timing results for many (run-request, machine-config) cells.

        Each cell is ``(request_dict, MachineConfig)``; results come
        back in cell order, so aggregation code sees the same sequence
        a serial loop would produce.
        """
        from .parallel import fan_out
        items = [(dict(request), config, core)
                 for request, config in cells]
        return fan_out(self, _simulate_cell, items,
                       jobs if jobs is not None else self.jobs)

    # ------------------------------------------------------------------
    # Telemetry export
    # ------------------------------------------------------------------

    def write_manifest(self, path: str | None = None):
        """Write the per-run JSON manifest for the most recent run."""
        handle = self.last_handle
        stats = None
        if handle is not None:
            stats = {
                "workload": handle.workload,
                "runtime": handle.runtime,
                "jit": handle.jit,
                "nursery": handle.nursery,
                "bytecodes": handle.bytecodes,
                "allocations": handle.allocations,
                "allocated_bytes": handle.allocated_bytes,
                "minor_gcs": handle.minor_gcs,
                "major_gcs": handle.major_gcs,
                "traces_compiled": handle.traces_compiled,
                "deopts": handle.deopts,
                "wall_seconds": handle.wall_seconds,
                "host_instructions": handle.host_instructions,
            }
        config = {
            "cache_key": self.last_cache_key,
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "trace_cache_size": self._trace_cache_size,
            "state_cache_size": self._state_cache_size,
            "disk_cache": str(self.disk_cache.root)
            if self.disk_cache.enabled else None,
        }
        return write_manifest(path, command="experiments.runner",
                              config=config, stats=stats)


def _run_cell(runner: ExperimentRunner, request: dict) -> RunHandle:
    """Worker cell for :meth:`ExperimentRunner.run_many`."""
    return runner.run(**request)


def _simulate_cell(runner: ExperimentRunner, request: dict,
                   config: MachineConfig, core: str):
    """Worker cell for :meth:`ExperimentRunner.simulate_many`."""
    handle = runner.run(**request)
    return runner.simulate(handle, config, core=core)
