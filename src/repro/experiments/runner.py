"""Workload execution with trace caching.

Experiments sweep microarchitecture parameters over fixed traces (cache,
branch, and core models re-run; the guest does not), and sweep run-time
parameters (nursery size, JIT on/off) by re-running the guest. The
runner caches a bounded number of recent traces so figure harnesses can
loop workload-outer / config-inner without re-interpreting.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

from ..config import (
    MachineConfig,
    RuntimeConfig,
    cpython_runtime,
    pypy_runtime,
    v8_runtime,
)
from ..errors import ExperimentError
from ..frontend.compiler import Program, compile_source
from ..host.address_space import AddressSpace
from ..host.machine import HostMachine
from ..host.trace import InstructionTrace
from ..telemetry import TELEMETRY
from ..telemetry.export import write_manifest
from ..uarch.system import MemorySideState, SimulatedSystem
from ..vm.cpython import CPythonVM
from ..vm.pypy import PyPyVM
from ..vm.v8 import V8VM
from ..vm.v8.workloads import js_source
from ..workloads import get_workload

_MB = 1024 * 1024


@dataclass
class RunHandle:
    """A finished guest run: trace, site table, and run statistics."""

    workload: str
    runtime: str
    jit: bool
    nursery: int
    trace: InstructionTrace
    site_table: dict[str, int]
    bytecodes: int
    allocations: int
    allocated_bytes: int
    minor_gcs: int
    major_gcs: int
    traces_compiled: int
    deopts: int
    output: list[str]
    #: Trace row where the measured (post-warmup) execution begins.
    measure_start: int = 0
    #: Monotonic per-handle token; the runner's state cache keys on it
    #: (``id(trace)`` is unsafe: ids are reused after eviction frees a
    #: trace, which silently aliased MemorySideStates across runs).
    token: int = 0
    #: Host wall-clock seconds the guest run took (warmup included).
    wall_seconds: float = 0.0
    #: Total host instructions emitted (warmup included); benchmarks
    #: derive simulator throughput as host_instructions / wall_seconds.
    host_instructions: int = 0

    def measured_arrays(self):
        """Trace columns restricted to the measured window."""
        return self.trace.slice_view(self.measure_start, len(self.trace))


def _runtime_config(runtime: str, jit: bool, nursery: int) -> RuntimeConfig:
    if runtime == "cpython":
        return cpython_runtime()
    if runtime == "pypy":
        return pypy_runtime(jit=jit, nursery_size=nursery)
    if runtime == "v8":
        return v8_runtime(nursery_size=nursery)
    raise ExperimentError(f"unknown runtime {runtime!r}")


class ExperimentRunner:
    """Runs workloads and caches (trace, memory-side) results."""

    def __init__(self, scale: int = 1, max_instructions: int = 120_000_000,
                 trace_cache_size: int = 4,
                 state_cache_size: int = 12,
                 metrics_out: str | None = None) -> None:
        self.scale = scale
        self.max_instructions = max_instructions
        self._traces: OrderedDict[tuple, RunHandle] = OrderedDict()
        self._states: OrderedDict[tuple, MemorySideState] = OrderedDict()
        self._trace_cache_size = trace_cache_size
        self._state_cache_size = state_cache_size
        self._programs: dict[tuple, Program] = {}
        #: Next RunHandle.token; never reused within a runner.
        self._next_token = 1
        #: id()s of evicted (hence possibly freed) trace objects — used
        #: to count how often a fresh trace reuses one, i.e. how often
        #: the old id()-keyed state cache would have aliased.
        self._retired_trace_ids: set[int] = set()
        #: When set, a manifest is written here after every fresh run.
        self.metrics_out = metrics_out
        self.last_handle: RunHandle | None = None

    # ------------------------------------------------------------------
    # Guest execution
    # ------------------------------------------------------------------

    def _program(self, workload: str, runtime: str) -> Program:
        key = (workload, runtime == "v8")
        program = self._programs.get(key)
        if program is None:
            if runtime == "v8":
                source = js_source(workload)
            else:
                source = get_workload(workload).source(self.scale)
            program = compile_source(source, workload)
            self._programs[key] = program
        return program

    def run(self, workload: str, runtime: str = "cpython",
            jit: bool = True, nursery: int = 1 * _MB,
            warmup_runs: int = 0) -> RunHandle:
        """Execute (or fetch from cache) one guest run.

        ``warmup_runs`` follows the paper's Section III protocol: the
        program is executed that many extra times on the *same* VM
        before the measured run, so the JIT enters the measured window
        already warm. ``measure_start`` marks where the measured trace
        begins.
        """
        if runtime == "cpython":
            jit = False
            nursery = 0
        key = (workload, runtime, jit, nursery, self.scale, warmup_runs)
        handle = self._traces.get(key)
        metrics = TELEMETRY.metrics
        if handle is not None:
            self._traces.move_to_end(key)
            metrics.counter("runner.trace_cache.hit", runtime=runtime).inc()
            return handle
        metrics.counter("runner.trace_cache.miss", runtime=runtime).inc()
        program = self._program(workload, runtime)
        space = AddressSpace(nursery_size=max(nursery, 16 * 1024))
        machine = HostMachine(space, max_instructions=self.max_instructions)
        config = _runtime_config(runtime, jit, max(nursery, 16 * 1024))
        start = time.perf_counter()
        with TELEMETRY.tracer.span("guest.run", workload=workload,
                                   runtime=runtime, jit=jit,
                                   nursery=nursery):
            if runtime == "cpython":
                vm = CPythonVM(machine, program)
            elif runtime == "pypy":
                vm = PyPyVM(machine, program, config)
            else:
                vm = V8VM(machine, program, config)
            for _ in range(warmup_runs):
                vm.run()
                vm.output.clear()
            measure_start = len(machine.trace)
            vm.run()
        wall_seconds = time.perf_counter() - start
        if id(machine.trace) in self._retired_trace_ids:
            # This fresh trace reuses the id of an evicted one: exactly
            # the aliasing the id()-keyed state cache suffered from.
            self._retired_trace_ids.discard(id(machine.trace))
            metrics.counter("runner.state_cache.id_collisions").inc()
        stats = vm.stats
        handle = RunHandle(
            workload=workload, runtime=runtime, jit=jit, nursery=nursery,
            trace=machine.trace, site_table=dict(machine.site_table),
            bytecodes=stats.bytecodes, allocations=stats.allocations,
            allocated_bytes=stats.allocated_bytes,
            minor_gcs=stats.minor_gcs, major_gcs=stats.major_gcs,
            traces_compiled=stats.traces_compiled, deopts=stats.deopts,
            output=list(vm.output), measure_start=measure_start,
            token=self._next_token, wall_seconds=wall_seconds,
            host_instructions=len(machine.trace))
        self._next_token += 1
        metrics.counter("guest.instructions",
                        runtime=runtime).inc(len(machine.trace))
        self._traces[key] = handle
        while len(self._traces) > self._trace_cache_size:
            _, evicted = self._traces.popitem(last=False)
            self._retired_trace_ids.add(id(evicted.trace))
        self.last_handle = handle
        if self.metrics_out is not None:
            self.write_manifest(self.metrics_out)
        return handle

    # ------------------------------------------------------------------
    # Microarchitecture simulation
    # ------------------------------------------------------------------

    @staticmethod
    def _config_key(config: MachineConfig) -> tuple:
        return (config.l1i.size, config.l1d.size, config.l2.size,
                config.l3.size, config.l1d.line_size, config.l3.ways,
                config.branch.scale, config.branch.l1_entries)

    def memory_side(self, handle: RunHandle, config: MachineConfig,
                    ) -> MemorySideState:
        """Cache + branch simulation for one (run, machine) pair."""
        key = (handle.token, self._config_key(config))
        state = self._states.get(key)
        metrics = TELEMETRY.metrics
        if state is not None:
            self._states.move_to_end(key)
            metrics.counter("runner.state_cache.hit").inc()
            return state
        metrics.counter("runner.state_cache.miss").inc()
        with TELEMETRY.tracer.span("sim.memory_side",
                                   workload=handle.workload,
                                   runtime=handle.runtime):
            system = SimulatedSystem(config)
            state = system.memory_side(handle.trace)
        self._states[key] = state
        while len(self._states) > self._state_cache_size:
            self._states.popitem(last=False)
        return state

    def simulate(self, handle: RunHandle, config: MachineConfig,
                 core: str = "ooo"):
        """End-to-end timing for one run on one machine configuration."""
        state = self.memory_side(handle, config)
        with TELEMETRY.tracer.span("sim.core", workload=handle.workload,
                                   runtime=handle.runtime, core=core):
            system = SimulatedSystem(config)
            return system.run(handle.trace, core=core, state=state)

    # ------------------------------------------------------------------
    # Telemetry export
    # ------------------------------------------------------------------

    def write_manifest(self, path: str | None = None):
        """Write the per-run JSON manifest for the most recent run."""
        handle = self.last_handle
        stats = None
        if handle is not None:
            stats = {
                "workload": handle.workload,
                "runtime": handle.runtime,
                "jit": handle.jit,
                "nursery": handle.nursery,
                "bytecodes": handle.bytecodes,
                "allocations": handle.allocations,
                "allocated_bytes": handle.allocated_bytes,
                "minor_gcs": handle.minor_gcs,
                "major_gcs": handle.major_gcs,
                "traces_compiled": handle.traces_compiled,
                "deopts": handle.deopts,
                "wall_seconds": handle.wall_seconds,
                "host_instructions": handle.host_instructions,
            }
        config = {
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "trace_cache_size": self._trace_cache_size,
            "state_cache_size": self._state_cache_size,
        }
        return write_manifest(path, command="experiments.runner",
                              config=config, stats=stats)
