"""Live campaign view: journal + cache usage + run registry, joined.

``python -m repro status`` renders one snapshot of everything the
observability plane records: how far the figure campaign has gotten
(from the checkpoint journal), what the disk cache holds (from
:meth:`~repro.experiments.diskcache.DiskCache.usage`), and what the run
registry says about the most recent runs (hit rates, resilience
recoveries, throughput gauges). ``--watch`` redraws the same snapshot
on an interval until interrupted.

Everything here is **read-only**: status never enables telemetry,
never appends to the registry, and never touches cache entries — it is
safe to point at a campaign that is mid-flight in another process.
"""

from __future__ import annotations

import time
from pathlib import Path


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"


def _fmt_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s ago"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m ago"
    return f"{seconds / 3600:.1f}h ago"


def _hit_rate(counters: dict, prefix: str) -> float | None:
    """hit / (hit + miss) over every labeled child of one counter pair."""
    hits = sum(value for name, value in counters.items()
               if name.split("{", 1)[0] == f"{prefix}.hit")
    misses = sum(value for name, value in counters.items()
                 if name.split("{", 1)[0] == f"{prefix}.miss")
    total = hits + misses
    return hits / total if total else None


def _campaign_lines(checkpoint: str | Path | None) -> list[str]:
    from .figures import ALL_FIGURES
    from .resilience import default_checkpoint_path, load_checkpoint
    path = Path(checkpoint) if checkpoint is not None \
        else default_checkpoint_path()
    done = load_checkpoint(path)
    total = len(ALL_FIGURES)
    finished = [name for name in ALL_FIGURES if name in done]
    remaining = [name for name in ALL_FIGURES if name not in done]
    lines = [f"campaign   : {len(finished)}/{total} figures "
             f"checkpointed ({path})"]
    if finished:
        walls = [done[name].get("wall_seconds", 0.0) for name in finished]
        mean_wall = sum(walls) / len(walls)
        lines.append(f"  done     : {', '.join(finished)}")
        if remaining:
            eta = mean_wall * len(remaining)
            lines.append(
                f"  remaining: {', '.join(remaining)}")
            lines.append(
                f"  eta      : ~{eta:.0f}s at the observed "
                f"{mean_wall:.1f}s/figure")
        else:
            lines.append("  remaining: none — campaign complete")
    elif remaining:
        lines.append(f"  remaining: all {total}")
    return lines


def _cache_lines() -> list[str]:
    from .diskcache import DiskCache
    usage = DiskCache().usage()
    if usage["root"] is None:
        return ["disk cache : off (REPRO_CACHE=off)"]
    lines = [f"disk cache : {usage['entries']} entries, "
             f"{_fmt_bytes(usage['bytes'])} at {usage['root']}"]
    for kind in ("traces", "states"):
        block = usage.get(kind)
        if block:
            lines.append(f"  {kind:9s}: {block['entries']} entries, "
                         f"{_fmt_bytes(block['bytes'])}")
    traces = usage.get("traces") or {}
    if traces.get("rows"):
        formats = ", ".join(
            f"{count} {fmt}" for fmt, count
            in sorted(traces.get("formats", {}).items()))
        lines.append(
            f"  codec    : {formats}; "
            f"{traces['bytes_per_instruction']:.2f} B/instr, "
            f"{traces['compression_ratio']:.1f}x vs canonical")
    spill = usage.get("spill")
    if spill and spill["entries"]:
        lines.append(f"  spill    : {spill['entries']} live files, "
                     f"{_fmt_bytes(spill['bytes'])}")
    if usage.get("quarantined_files"):
        lines.append(f"  quarantine: {usage['quarantined_files']} files")
    telemetry = usage.get("telemetry")
    if telemetry:
        lines.append(f"  telemetry: {telemetry['entries']} files, "
                     f"{_fmt_bytes(telemetry['bytes'])}")
    return lines


def _queue_lines() -> list[str]:
    """Distributed-campaign panel: cells by state, live workers by
    heartbeat age, reclaim/poison counts. Read-only like the rest."""
    from .queue import WorkQueue, discover_campaigns
    directories = discover_campaigns(active_only=False)
    active = [path for path in directories
              if (WorkQueue(path).manifest() or {}).get("state")
              == "active"]
    if not directories:
        return []
    lines = [f"queue      : {len(active)} active campaign(s), "
             f"{len(directories) - len(active)} closed"]
    for path in directories:
        queue = WorkQueue(path)
        manifest = queue.manifest() or {}
        state = manifest.get("state", "?")
        counts = queue.counts()
        done = len(queue.results())
        lines.append(
            f"  {queue.campaign} [{state}]: "
            f"{counts['pending']} pending, {counts['leased']} leased, "
            f"{done} done, {counts['poison']} poisoned")
        if state != "active":
            continue
        workers = queue.worker_ages()
        ttl = queue.ttl
        if workers:
            parts = []
            for name, age in sorted(workers.items(),
                                    key=lambda item: item[1]):
                tag = "" if age < ttl else " (stale)"
                parts.append(f"{name} {_fmt_age(age)}{tag}")
            lines.append(f"    workers: {', '.join(parts)}")
        else:
            lines.append("    workers: none seen")
        reclaims = queue.total_reclaims()
        if reclaims or counts["poison"]:
            lines.append(f"    recovery: {reclaims} lease reclaim(s), "
                         f"{counts['poison']} poisoned cell(s)")
    return lines


def _serve_lines() -> list[str]:
    """Sweep-server panel: session-journal requests/results by tenant.

    Reads the serve journal the same torn-tail-tolerant way the server
    does on restart; absent journal = no panel. Read-only."""
    from .client import serve_root
    from .server import SessionJournal
    journal = SessionJournal(serve_root())
    if not journal.path.exists():
        return []
    requests, results = journal.load()
    pending = [key for key in requests if key not in results]
    by_status: dict[str, int] = {}
    for record in results.values():
        status = str(record.get("status", "?"))
        by_status[status] = by_status.get(status, 0) + 1
    lines = [f"serve      : {len(results)} answered, "
             f"{len(pending)} pending ({journal.path})"]
    if by_status:
        parts = [f"{count} {status}"
                 for status, count in sorted(by_status.items())]
        lines.append(f"  results  : {', '.join(parts)}")
    tenants: dict[str, int] = {}
    for record in requests.values():
        tenant = str(record.get("tenant", "default"))
        tenants[tenant] = tenants.get(tenant, 0) + 1
    if tenants:
        parts = [f"{name} ({count})"
                 for name, count in sorted(tenants.items())]
        lines.append(f"  tenants  : {', '.join(parts)}")
    if pending:
        lines.append(f"  pending  : {', '.join(sorted(pending)[:8])}"
                     + (" ..." if len(pending) > 8 else "")
                     + " — resumed on next serve start")
    return lines


def _registry_lines() -> list[str]:
    from ..telemetry.registry import RunRegistry
    registry = RunRegistry()
    records = registry.records()
    if not records:
        return [f"registry   : empty ({registry.root})"]
    last = records[-1]
    lines = [f"registry   : {len(records)} records at {registry.root}"]
    created = last.get("created_unix")
    age = f", {_fmt_age(time.time() - created)}" \
        if isinstance(created, (int, float)) else ""
    lines.append(f"  last run : seq {last.get('seq')} "
                 f"[{last.get('kind')}] {last.get('command')}{age}")
    counters = last.get("counters", {}) or {}
    for label, prefix in (("trace cache", "runner.trace_cache"),
                          ("disk cache", "runner.disk_cache"),
                          ("state cache", "runner.state_cache")):
        rate = _hit_rate(counters, prefix)
        if rate is not None:
            lines.append(f"  {label:9s}: {rate:6.1%} hit rate")
    retries = sum(value for name, value in counters.items()
                  if name.startswith("resilience.retries"))
    rebuilds = sum(value for name, value in counters.items()
                   if name.startswith("resilience.pool_rebuilds"))
    if retries or rebuilds:
        lines.append(f"  resilience: {int(retries)} retries, "
                     f"{int(rebuilds)} pool rebuilds")
    gauges = last.get("gauges", {}) or {}
    for name, value in sorted(gauges.items()):
        unit = "B/s" if "bytes_per_second" in name else "instr/s"
        lines.append(f"  {name}: {value:,.0f} {unit}")
    return lines


def render_status(checkpoint: str | Path | None = None) -> str:
    """One status snapshot as printable text."""
    sections = [
        ["repro campaign status — "
         + time.strftime("%Y-%m-%d %H:%M:%S")],
        _campaign_lines(checkpoint),
        _queue_lines(),
        _serve_lines(),
        _cache_lines(),
        _registry_lines(),
    ]
    return "\n".join("\n".join(section)
                     for section in sections if section)


def watch_status(interval: float = 2.0,
                 checkpoint: str | Path | None = None,
                 emit=print, clear: bool = True,
                 max_iterations: int | None = None) -> None:
    """Redraw :func:`render_status` every ``interval`` seconds.

    Runs until ``KeyboardInterrupt`` (or ``max_iterations``, for
    tests). ``clear`` wipes the terminal between frames.
    """
    iterations = 0
    try:
        while True:
            frame = render_status(checkpoint)
            if clear:
                frame = "\x1b[2J\x1b[H" + frame
            emit(frame)
            iterations += 1
            if max_iterations is not None \
                    and iterations >= max_iterations:
                return
            time.sleep(interval)
    except KeyboardInterrupt:
        return
