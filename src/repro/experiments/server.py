"""``python -m repro serve`` — a crash-safe multi-tenant sweep server.

Turns the batch reproduction into a long-lived daemon: clients submit
figure/sweep queries over a Unix or TCP socket (newline-delimited
JSON, see :mod:`~repro.experiments.client` for the protocol), warm
queries are answered straight from the content-addressed disk cache in
milliseconds, and cold cells run through the same
:func:`~repro.experiments.parallel.fan_out` path every other driver
uses. Warm trace hits come back as lazily decoded mmap-backed frames
(:mod:`repro.host.codec`): the runner's loads never materialize the
full row-major buffer, each sweep touches only the columns and row
ranges it consumes, and concurrent tenants hitting the same trace
share the encoded bytes through the page cache. Robustness is the
design center:

**Admission control.** Each tenant owns a token bucket (``rate``
tokens/second up to ``burst``); a request that finds the bucket empty
is shed immediately with a typed ``RETRY_AFTER`` (reason ``quota``)
carrying the exact wait. Total accepted-but-unfinished work is bounded
by ``max_inflight``; past it every tenant gets ``RETRY_AFTER``
(reason ``backpressure``) instead of an unbounded queue.

**Fair-share scheduling.** Accepted requests wait in per-tenant FIFOs
drained by deficit round-robin: each visit grants a tenant ``quantum``
cost units of deficit, and its head request runs only once the deficit
covers the request's cost (estimated in cells). A tenant flooding
hundred-cell sweeps therefore cannot starve a tenant asking for
one-cell probes — the light tenant's requests interleave after at most
a bounded number of heavy cells.

**Deadlines.** A request may carry ``deadline_seconds``; the executor
checks the deadline *between cells* (cooperative cancellation — a cell
is the cancellation grain) and answers ``DEADLINE_EXCEEDED``, which is
journaled as terminal so a re-ask cannot resurrect expired work.

**Crash safety.** Every accepted request is fsynced to an append-only
session journal under ``<cache-root>/serve/`` *before* it is queued,
and every outcome is journaled before it is answered — the same
torn-tail-tolerant JSONL discipline as the work queue's results
journal. A server that is SIGKILLed mid-campaign restarts, replays the
journal, re-enqueues accepted-but-unfinished requests, and clients
simply re-ask by request key: they get the journaled answer, a seat
waiting on the re-run, or at worst a recomputation that is
byte-identical because execution flows through the content-addressed
disk cache.

**Graceful drain.** ``SIGTERM`` (or a ``drain`` request) stops
admission (``RETRY_AFTER`` reason ``draining``), lets the in-flight
request finish within ``drain_grace`` seconds (after which it is
cooperatively aborted between cells), answers queued waiters with
``draining`` — their requests stay journaled and resume on restart —
and exits cleanly so the CLI can flush the telemetry manifest.

Scheduling is single-threaded on purpose: one scheduler thread owns
all execution (and the process-global executor slot in
:mod:`~repro.experiments.parallel`), so results are as deterministic
as the batch drivers; ``--jobs N`` fans each request's cells onto the
supervised pool without changing the one-request-at-a-time order.

Chaos-testability: the :data:`~repro.experiments.resilience.FAULTS_ENV`
kinds ``server_crash`` (``os._exit`` between cells), ``slow_tenant``
(per-tenant cell slowdown), and ``client_disconnect`` (client drops
the connection after sending) let the acceptance tests kill the server
mid-campaign and byte-compare the resumed answers against a serial
in-process run.
"""

from __future__ import annotations

import json
import os
import socket as socketlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ExperimentError
from ..telemetry import TELEMETRY
from .client import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    INTERNAL,
    RETRY_AFTER,
    SERVE_SCHEMA,
    default_socket_path,
    request_key,
    serve_root,
)
from .resilience import FaultPlan

#: Exit status of the injected ``server_crash`` fault (a simulated
#: ``kill -9`` mid-campaign; distinguishable from real failures).
CRASH_EXIT = 43

#: Session journal filename under :func:`~repro.experiments.client.
#: serve_root`.
JOURNAL_NAME = "session.journal"

#: AF_UNIX's sun_path is ~108 bytes; refuse early with a clear message
#: instead of a cryptic bind error.
_MAX_UNIX_PATH = 100

#: Static scheduling weights (in cells) for figure requests — only the
#: *ratio* matters for deficit round-robin; bench requests use their
#: actual cell count.
_TABLE_COST = 1.0
_QUICK_COST = 8.0
_FULL_COST = 48.0


def estimate_cost(spec: dict) -> float:
    """Scheduling weight of one request, in cells."""
    if spec.get("type") == "bench":
        return float(max(1, int(spec.get("cells", 1))))
    name = str(spec.get("figure", ""))
    if name.startswith("table"):
        return _TABLE_COST
    return _QUICK_COST if spec.get("quick", True) else _FULL_COST


class _DeadlineExceeded(Exception):
    """Raised between cells once a request's deadline has passed."""


class _DrainAbort(Exception):
    """Raised between cells when drain gave up waiting on a request."""


def _bench_cell(runner, seconds: float) -> float:
    """One synthetic scheduling-probe cell (no simulation involved)."""
    if seconds > 0:
        time.sleep(seconds)
    return seconds


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``."""

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = max(float(rate), 1e-9)
        self.burst = max(float(burst), 1.0)
        self.tokens = self.burst
        self._updated = time.monotonic()

    def take(self, cost: float = 1.0, now: float | None = None) -> float:
        """Try to take ``cost`` tokens. Returns 0.0 on success, else
        the seconds until enough tokens accrue (nothing is taken)."""
        now = time.monotonic() if now is None else now
        self.tokens = min(self.burst,
                          self.tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


class SessionJournal:
    """Append-only fsynced request/result journal (the commit record
    a restarted server resumes from — same discipline as the work
    queue's results journal, torn tails skipped on read)."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME

    def append(self, record: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"schema": SERVE_SCHEMA, **record},
                          sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:
                pass

    def load(self) -> tuple[dict[str, dict], dict[str, dict]]:
        """Replay the journal: ``(requests, results)`` by key.

        First record per key wins (results are idempotent; a duplicate
        acceptance after a resume changes nothing). Unparseable lines —
        a torn tail from a crash mid-append — are skipped and cost at
        most one request's worth of recomputation.
        """
        requests: dict[str, dict] = {}
        results: dict[str, dict] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return requests, results
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict) \
                    or record.get("schema") != SERVE_SCHEMA:
                continue
            key = record.get("key")
            kind = record.get("type")
            if not isinstance(key, str):
                continue
            if kind == "request":
                requests.setdefault(key, record)
            elif kind == "result":
                results.setdefault(key, record)
        return requests, results


class _Responder:
    """One client connection's write side (thread-safe, failure-soft)."""

    __slots__ = ("conn", "lock", "closed")

    def __init__(self, conn: socketlib.socket) -> None:
        self.conn = conn
        self.lock = threading.Lock()
        self.closed = False

    def send(self, payload: dict) -> bool:
        """Send one response line; False when the client went away."""
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        with self.lock:
            if self.closed:
                return False
            try:
                self.conn.sendall(data)
                return True
            except OSError:
                self.closed = True
                return False


@dataclass
class _Request:
    """One accepted (journaled) compute request."""

    key: str
    tenant: str
    spec: dict
    cost: float
    deadline_unix: float | None
    accepted_unix: float
    resumed: bool = False
    enqueued_monotonic: float = field(default_factory=time.monotonic)
    waiters: list[_Responder] = field(default_factory=list)


class _TenantState:
    """One tenant's admission bucket, FIFO, and DRR deficit."""

    def __init__(self, name: str, rate: float, burst: float) -> None:
        self.name = name
        self.bucket = TokenBucket(rate, burst)
        self.queue: deque[_Request] = deque()
        self.deficit = 0.0


class _RequestExecutor:
    """Fan-out executor for one request: per-cell fault injection,
    deadline checks, drain aborts, and per-tenant cost accounting.

    Installed behind :func:`~repro.experiments.parallel.fan_out` via
    ``use_executor`` for the duration of the figure call, so every
    cold cell of the figure flows through these checkpoints. With
    server ``jobs > 1`` the whole batch is delegated to the ordinary
    supervised pool after the entry checkpoint.
    """

    def __init__(self, server: "SweepServer", request: _Request) -> None:
        self.server = server
        self.request = request
        self.cells = 0

    def run(self, runner, fn, items) -> list:
        jobs = self.server.jobs
        if jobs is not None and jobs > 1 and len(items) > 1:
            from .parallel import fan_out, use_executor
            self.checkpoint(self.cells)
            with use_executor(None):
                values = fan_out(runner, fn, list(items), jobs=jobs)
            self._account(len(items))
            return values
        values = []
        for args in items:
            self.checkpoint(self.cells)
            values.append(fn(runner, *args))
            self._account(1)
        return values

    def checkpoint(self, index: int) -> None:
        """Between-cells checkpoint: faults, drain, deadline."""
        request = self.request
        faults = self.server.faults
        if faults.should_fire("server_crash", f"{request.key}#{index}"):
            # Simulated kill -9 mid-campaign: no journal record lands,
            # so a restarted server re-runs this request from its
            # acceptance record.
            os._exit(CRASH_EXIT)
        spec = faults.spec("slow_tenant")
        if spec is not None and faults.should_fire("slow_tenant",
                                                   request.tenant):
            time.sleep(spec.sleep_seconds)
        if self.server.abort_requested:
            raise _DrainAbort
        if request.deadline_unix is not None \
                and time.time() > request.deadline_unix:
            raise _DeadlineExceeded

    def _account(self, cells: int) -> None:
        self.cells += cells
        TELEMETRY.metrics.counter("serve.cells",
                                  tenant=self.request.tenant).inc(cells)


class SweepServer:
    """The long-lived multi-tenant sweep server (see module docstring).

    Threads: one acceptor, one reader per connection, and exactly one
    scheduler that owns all execution. All shared state is guarded by
    ``self._lock``; journal appends happen under it so acceptance
    order on disk matches acceptance order in memory.
    """

    def __init__(self, socket_path: str | os.PathLike | None = None,
                 tcp: str | None = None, jobs: int | None = None,
                 tenant_rate: float = 2.0, tenant_burst: float = 8.0,
                 max_inflight: int = 16, quantum: float = 4.0,
                 drain_grace: float = 30.0,
                 default_deadline: float | None = None,
                 serve_dir: str | Path | None = None,
                 faults: FaultPlan | None = None) -> None:
        from .client import parse_endpoint
        self.kind, self.address = parse_endpoint(socket_path, tcp)
        self.jobs = jobs
        self.tenant_rate = float(tenant_rate)
        self.tenant_burst = float(tenant_burst)
        self.max_inflight = int(max_inflight)
        self.quantum = max(float(quantum), 1e-9)
        self.drain_grace = float(drain_grace)
        self.default_deadline = default_deadline
        directory = Path(serve_dir) if serve_dir is not None \
            else serve_root()
        self.journal = SessionJournal(directory)
        self.faults = faults if faults is not None else FaultPlan.from_env()

        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}
        self._rr_index = 0
        #: key -> queued-or-running request (the backpressure bound).
        self._known: dict[str, _Request] = {}
        #: key -> journaled result record (loaded + appended).
        self._results: dict[str, dict] = {}
        self._current: _Request | None = None
        self._connections: set[socketlib.socket] = set()
        self._stats = {"served": 0, "errors": 0, "deadline": 0,
                       "resumed": 0, "journal_hits": 0, "rejected": 0,
                       "disconnects": 0}
        self._started_monotonic = time.monotonic()
        self._work = threading.Event()
        self._drain_requested = threading.Event()
        self._draining = False
        self._stopping = False
        self.abort_requested = False
        self._listener: socketlib.socket | None = None
        self._scheduler: threading.Thread | None = None
        self._runners: dict[int, object] = {}

    # -- lifecycle -----------------------------------------------------

    @property
    def endpoint(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.address}"
        host, port = self.address
        return f"tcp:{host}:{port}"

    def start(self) -> "SweepServer":
        """Resume from the journal, bind, and start serving."""
        self._resume_from_journal()
        self._bind()
        self._scheduler = threading.Thread(target=self._scheduler_loop,
                                           name="serve-scheduler",
                                           daemon=True)
        self._scheduler.start()
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="serve-accept", daemon=True)
        acceptor.start()
        TELEMETRY.events.emit("serve.started", endpoint=self.endpoint,
                              resumed=self._stats["resumed"])
        return self

    def _bind(self) -> None:
        if self.kind == "unix":
            path = Path(self.address)
            if len(str(path)) > _MAX_UNIX_PATH:
                raise ExperimentError(
                    f"unix socket path {path} exceeds the AF_UNIX "
                    f"{_MAX_UNIX_PATH}-char limit; pass a shorter "
                    "--socket or use --tcp HOST:PORT")
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists():
                # Stale socket from a crash, or a live peer? Probe it.
                probe = socketlib.socket(socketlib.AF_UNIX,
                                         socketlib.SOCK_STREAM)
                probe.settimeout(0.5)
                try:
                    probe.connect(str(path))
                except OSError:
                    path.unlink(missing_ok=True)
                else:
                    raise ExperimentError(
                        f"a sweep server is already listening on "
                        f"{path}; stop it or pass a different --socket")
                finally:
                    probe.close()
            listener = socketlib.socket(socketlib.AF_UNIX,
                                        socketlib.SOCK_STREAM)
            listener.bind(str(path))
        else:
            host, port = self.address
            listener = socketlib.socket(socketlib.AF_INET,
                                        socketlib.SOCK_STREAM)
            listener.setsockopt(socketlib.SOL_SOCKET,
                                socketlib.SO_REUSEADDR, 1)
            listener.bind((host, port))
            # Port 0 asked the kernel; report what it granted.
            self.address = (host, listener.getsockname()[1])
        listener.listen(64)
        self._listener = listener

    def _resume_from_journal(self) -> None:
        requests, results = self.journal.load()
        self._results = results
        now = time.time()
        for key, record in requests.items():
            if key in results:
                continue
            deadline = record.get("deadline_unix")
            if deadline is not None and now > float(deadline):
                # Too late to honor; make the expiry terminal so a
                # re-ask cannot resurrect it.
                expired = self._result_record(
                    key, str(record.get("tenant", "default")),
                    dict(record.get("spec") or {}), "deadline",
                    rendered=None, error=None, wall=0.0, cells=0)
                self.journal.append(expired)
                self._results[key] = expired
                continue
            request = _Request(
                key=key,
                tenant=str(record.get("tenant", "default")),
                spec=dict(record.get("spec") or {}),
                cost=estimate_cost(dict(record.get("spec") or {})),
                deadline_unix=deadline,
                accepted_unix=float(record.get("accepted_unix", now)),
                resumed=True)
            with self._lock:
                self._enqueue_locked(request)
            self._stats["resumed"] += 1
        if self._stats["resumed"]:
            TELEMETRY.metrics.counter("serve.resumed").inc(
                self._stats["resumed"])
            self._work.set()

    # -- socket plumbing -----------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed: shutting down
            with self._lock:
                if self._stopping:
                    conn.close()
                    return
                self._connections.add(conn)
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _serve_connection(self, conn: socketlib.socket) -> None:
        responder = _Responder(conn)
        buffer = b""
        try:
            while True:
                chunk = conn.recv(1 << 16)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        self._handle_line(line, responder)
        except OSError:
            pass
        finally:
            responder.closed = True
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _handle_line(self, line: bytes, responder: _Responder) -> None:
        try:
            message = json.loads(line.decode("utf-8"))
            if not isinstance(message, dict):
                raise ValueError("not an object")
        except (ValueError, UnicodeDecodeError):
            responder.send({"ok": False, "error": BAD_REQUEST,
                            "message": "each request must be one JSON "
                                       "object per line"})
            return
        rtype = message.get("type")
        TELEMETRY.metrics.counter("serve.requests",
                                  type=str(rtype)).inc()
        if rtype == "ping":
            responder.send({"ok": True, "type": "pong",
                            "pid": os.getpid(),
                            "uptime_seconds": round(
                                time.monotonic()
                                - self._started_monotonic, 3)})
        elif rtype == "ready":
            with self._lock:
                ready = not (self._draining or self._stopping)
            responder.send({"ok": True, "type": "ready", "ready": ready,
                            "draining": not ready})
        elif rtype == "status":
            responder.send(self._status_response())
        elif rtype == "drain":
            self.request_drain("client request")
            responder.send({"ok": True, "type": "drain",
                            "message": "draining"})
        elif rtype in ("figure", "bench"):
            self._admit(message, responder)
        else:
            responder.send({"ok": False, "error": BAD_REQUEST,
                            "message": f"unknown request type {rtype!r} "
                                       "(ping, ready, status, drain, "
                                       "figure, bench)"})

    # -- admission -----------------------------------------------------

    def _normalize_spec(self, message: dict) -> dict:
        if message["type"] == "bench":
            try:
                cells = int(message.get("cells", 1))
                seconds = float(message.get("cell_seconds", 0.0))
            except (TypeError, ValueError):
                raise ExperimentError(
                    "bench needs integer cells and float "
                    "cell_seconds") from None
            if not 1 <= cells <= 100_000 or seconds < 0:
                raise ExperimentError(
                    "bench cells must be in [1, 100000] and "
                    "cell_seconds >= 0")
            return {"type": "bench", "cells": cells,
                    "cell_seconds": seconds}
        from .figures import ALL_FIGURES
        name = message.get("figure")
        if name not in ALL_FIGURES:
            raise ExperimentError(
                f"unknown figure {name!r}; choose from "
                f"{', '.join(ALL_FIGURES)}")
        return {"type": "figure", "figure": name,
                "quick": bool(message.get("quick", True))}

    def _reject(self, responder: _Responder, tenant: str, key: str,
                reason: str, retry_after: float, message: str) -> None:
        self._stats["rejected"] += 1
        TELEMETRY.metrics.counter("serve.rejected", tenant=tenant,
                                  reason=reason).inc()
        responder.send({"ok": False, "error": RETRY_AFTER,
                        "reason": reason, "key": key,
                        "retry_after": round(max(retry_after, 0.0), 3),
                        "message": message})

    def _admit(self, message: dict, responder: _Responder) -> None:
        tenant = str(message.get("tenant") or "default")
        try:
            spec = self._normalize_spec(message)
        except ExperimentError as exc:
            responder.send({"ok": False, "error": BAD_REQUEST,
                            "message": str(exc)})
            return
        key = str(message.get("key") or request_key(tenant, spec))
        deadline_raw = message.get("deadline_seconds",
                                   self.default_deadline)
        try:
            deadline_seconds = None if deadline_raw is None \
                else float(deadline_raw)
        except (TypeError, ValueError):
            responder.send({"ok": False, "error": BAD_REQUEST,
                            "message": "deadline_seconds must be a "
                                       "number"})
            return
        now_unix = time.time()
        with self._lock:
            record = self._results.get(key)
            if record is not None:
                # The idempotent re-ask path: answer from the journal
                # without charging the tenant's bucket or running
                # anything.
                self._stats["journal_hits"] += 1
                TELEMETRY.metrics.counter("serve.journal_hits").inc()
                responder.send(self._response_from_result(record))
                return
            known = self._known.get(key)
            if known is not None:
                # Same key is queued or running: wait on its outcome.
                known.waiters.append(responder)
                return
            if self._draining or self._stopping:
                self._reject(responder, tenant, key, "draining",
                             self.drain_grace,
                             "server is draining; accepted work is "
                             "journaled — re-ask by key after restart")
                return
            if len(self._known) >= self.max_inflight:
                self._reject(responder, tenant, key, "backpressure",
                             1.0,
                             f"{len(self._known)} requests already in "
                             f"flight (bound {self.max_inflight})")
                return
            state = self._tenants.get(tenant)
            if state is None:
                state = _TenantState(tenant, self.tenant_rate,
                                     self.tenant_burst)
                self._tenants[tenant] = state
            wait = state.bucket.take(1.0)
            if wait > 0.0:
                self._reject(responder, tenant, key, "quota", wait,
                             f"tenant {tenant!r} is over its "
                             f"{state.bucket.rate:g}/s admission rate")
                return
            request = _Request(
                key=key, tenant=tenant, spec=spec,
                cost=estimate_cost(spec),
                deadline_unix=(now_unix + deadline_seconds
                               if deadline_seconds is not None else None),
                accepted_unix=now_unix)
            request.waiters.append(responder)
            # Fsync the acceptance before queueing: once the client can
            # observe "accepted", a crash cannot lose the request.
            self.journal.append({
                "type": "request", "key": key, "tenant": tenant,
                "spec": spec, "deadline_unix": request.deadline_unix,
                "accepted_unix": now_unix, "cost": request.cost})
            self._enqueue_locked(request)
            TELEMETRY.metrics.counter("serve.admitted",
                                      tenant=tenant).inc()
        self._work.set()

    def _enqueue_locked(self, request: _Request) -> None:
        state = self._tenants.get(request.tenant)
        if state is None:
            state = _TenantState(request.tenant, self.tenant_rate,
                                 self.tenant_burst)
            self._tenants[request.tenant] = state
        state.queue.append(request)
        self._known[request.key] = request
        TELEMETRY.metrics.gauge("serve.inflight").set(len(self._known))

    # -- deficit round-robin scheduling --------------------------------

    def _pick_locked(self) -> _Request | None:
        """Deficit round-robin over the per-tenant FIFOs.

        Each visit grants a tenant ``quantum`` deficit; its head runs
        once the deficit covers the head's cost. Idle tenants forfeit
        their deficit, so a returning tenant cannot burst past the
        backlog it skipped.
        """
        active = [t for t in self._tenants.values() if t.queue]
        if not active:
            return None
        for state in self._tenants.values():
            if not state.queue:
                state.deficit = 0.0
        rounds = max(int(state.queue[0].cost / self.quantum)
                     for state in active) + 2
        for _ in range(rounds):
            names = list(self._tenants)
            for _ in range(len(names)):
                state = self._tenants[names[self._rr_index % len(names)]]
                self._rr_index += 1
                if not state.queue:
                    continue
                state.deficit += self.quantum
                if state.queue[0].cost <= state.deficit:
                    request = state.queue.popleft()
                    state.deficit -= request.cost
                    if not state.queue:
                        state.deficit = 0.0
                    return request
        # Unreachable with quantum > 0, but never wedge the scheduler.
        for state in active:
            if state.queue:
                return state.queue.popleft()
        return None

    def _scheduler_loop(self) -> None:
        while True:
            self._work.wait(timeout=0.05)
            with self._lock:
                if self._stopping:
                    return
                if self._draining:
                    # Stop starting new work; whatever is still queued
                    # is journaled and resumes on restart.
                    return
                request = self._pick_locked()
                if request is None:
                    self._work.clear()
                    continue
                self._current = request
            try:
                self._execute(request)
            finally:
                with self._lock:
                    self._current = None

    # -- execution -----------------------------------------------------

    def _runner_for(self, scale: int):
        runner = self._runners.get(scale)
        if runner is None:
            from .runner import ExperimentRunner
            runner = ExperimentRunner(scale=scale)
            self._runners[scale] = runner
        return runner

    def _execute(self, request: _Request) -> None:
        metrics = TELEMETRY.metrics
        start = time.perf_counter()
        waited = start - request.enqueued_monotonic \
            if not request.resumed else 0.0
        metrics.histogram("serve.wait_seconds",
                          tenant=request.tenant).observe(max(waited, 0.0))
        executor = _RequestExecutor(self, request)
        status, rendered, error = "ok", None, None
        try:
            executor.checkpoint(0)
            rendered = self._run_spec(request, executor)
        except _DeadlineExceeded:
            status = "deadline"
        except _DrainAbort:
            # Deliberately NOT journaled as a result: the acceptance
            # record makes the restarted server re-run it.
            metrics.counter("serve.aborted",
                            tenant=request.tenant).inc()
            return
        except Exception as exc:  # noqa: BLE001 — one bad request
            # must never take the daemon down with it.
            status, error = "error", repr(exc)
        wall = time.perf_counter() - start
        record = self._result_record(request.key, request.tenant,
                                     request.spec, status, rendered,
                                     error, wall, executor.cells)
        with self._lock:
            self.journal.append(record)
            self._results[request.key] = record
            self._known.pop(request.key, None)
            waiters = list(request.waiters)
            request.waiters.clear()
            metrics.gauge("serve.inflight").set(len(self._known))
        self._stats["served" if status == "ok" else
                    "deadline" if status == "deadline" else
                    "errors"] += 1
        metrics.counter("serve.results", status=status,
                        tenant=request.tenant).inc()
        metrics.counter("serve.wall_seconds",
                        tenant=request.tenant).inc(round(wall, 4))
        response = self._response_from_result(record)
        for responder in waiters:
            if not responder.send(response):
                self._stats["disconnects"] += 1
                metrics.counter("serve.client_disconnects").inc()
        TELEMETRY.events.emit("serve.result", key=request.key,
                              tenant=request.tenant, status=status,
                              cells=executor.cells,
                              wall_seconds=round(wall, 3))

    def _run_spec(self, request: _Request,
                  executor: _RequestExecutor) -> str:
        spec = request.spec
        if spec["type"] == "bench":
            cells = int(spec["cells"])
            seconds = float(spec.get("cell_seconds", 0.0))
            executor.run(None, _bench_cell, [(seconds,)] * cells)
            return f"bench: {cells} cells x {seconds:g}s"
        from .figures import ALL_FIGURES, figure_scale
        from .parallel import use_executor
        name = spec["figure"]
        func = ALL_FIGURES[name]
        scale = figure_scale(name)
        with TELEMETRY.tracer.span("serve.request", key=request.key,
                                   tenant=request.tenant, figure=name):
            if scale is None:
                result = func()
            else:
                runner = self._runner_for(scale)
                with use_executor(executor):
                    result = func(runner,
                                  quick=bool(spec.get("quick", True)),
                                  jobs=1)
        # str(FigureResult) is exactly what `repro figure` prints — the
        # byte-compare target for the chaos acceptance test.
        return str(result)

    def _result_record(self, key: str, tenant: str, spec: dict,
                       status: str, rendered: str | None,
                       error: str | None, wall: float,
                       cells: int) -> dict:
        return {"type": "result", "key": key, "tenant": tenant,
                "spec": spec, "status": status, "rendered": rendered,
                "error": error, "wall_seconds": round(wall, 4),
                "cells": cells, "completed_unix": time.time()}

    def _response_from_result(self, record: dict) -> dict:
        status = record.get("status")
        if status == "ok":
            return {"ok": True, "type": "result",
                    "key": record["key"],
                    "tenant": record.get("tenant"),
                    "spec": record.get("spec"),
                    "rendered": record.get("rendered"),
                    "wall_seconds": record.get("wall_seconds"),
                    "cells": record.get("cells")}
        if status == "deadline":
            return {"ok": False, "error": DEADLINE_EXCEEDED,
                    "key": record["key"],
                    "message": "deadline passed before the request "
                               "finished (terminal for this key)"}
        return {"ok": False, "error": INTERNAL, "key": record["key"],
                "message": str(record.get("error"))}

    # -- status / stats ------------------------------------------------

    def _status_response(self) -> dict:
        with self._lock:
            tenants = {
                name: {"queued": len(state.queue),
                       "deficit": round(state.deficit, 3),
                       "tokens": round(state.bucket.tokens, 3)}
                for name, state in self._tenants.items()}
            return {"ok": True, "type": "status",
                    "endpoint": self.endpoint,
                    "pid": os.getpid(),
                    "draining": self._draining,
                    "inflight": len(self._known),
                    "running": self._current.key
                    if self._current else None,
                    "max_inflight": self.max_inflight,
                    "tenants": tenants,
                    "journal": {"path": str(self.journal.path),
                                "results": len(self._results)},
                    "stats": dict(self._stats)}

    def stats_snapshot(self) -> dict:
        with self._lock:
            return dict(self._stats)

    # -- drain / shutdown ----------------------------------------------

    def request_drain(self, reason: str = "signal") -> None:
        """Flip into draining (idempotent; safe from signal handlers)."""
        with self._lock:
            already = self._draining
            self._draining = True
        if not already:
            TELEMETRY.events.emit("serve.draining", reason=reason)
        self._work.set()
        self._drain_requested.set()

    def wait_for_drain_request(self, timeout: float | None = None) -> bool:
        return self._drain_requested.wait(timeout)

    def drain(self, grace: float | None = None) -> int:
        """Finish the in-flight request (within ``grace`` seconds, then
        abort it between cells), answer queued waiters with
        ``draining``, journal a drain marker, and tear down. Queued
        work stays journaled and resumes on the next start. Returns 0
        on a clean drain, 1 if the scheduler had to be abandoned."""
        grace = self.drain_grace if grace is None else grace
        self.request_drain("drain")
        scheduler = self._scheduler
        clean = True
        if scheduler is not None:
            scheduler.join(timeout=max(grace, 0.0))
            if scheduler.is_alive():
                # Grace expired mid-request: cancel between cells.
                self.abort_requested = True
                self._work.set()
                scheduler.join(timeout=10.0)
                clean = not scheduler.is_alive()
        with self._lock:
            leftovers = list(self._known.values())
            self._known.clear()
            self._stopping = True
        response_base = {
            "ok": False, "error": RETRY_AFTER, "reason": "draining",
            "retry_after": 1.0,
            "message": "server drained before this request ran; it is "
                       "journaled and resumes on restart — re-ask by "
                       "key"}
        for request in leftovers:
            for responder in request.waiters:
                responder.send({**response_base, "key": request.key})
        self.journal.append({"type": "drain", "key": "",
                             "clean": clean,
                             "pending": len(leftovers),
                             "completed_unix": time.time()})
        self._teardown()
        TELEMETRY.events.emit("serve.drained", clean=clean,
                              pending=len(leftovers))
        return 0 if clean else 1

    def _teardown(self) -> None:
        with self._lock:
            self._stopping = True
            connections = list(self._connections)
            self._connections.clear()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        if self.kind == "unix":
            Path(self.address).unlink(missing_ok=True)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass

    def stop(self) -> None:
        """Hard stop for tests: no drain marker, no waiter notices."""
        with self._lock:
            self._stopping = True
        self._work.set()
        self._drain_requested.set()
        self._teardown()
        if self._scheduler is not None:
            self._scheduler.join(timeout=5.0)
