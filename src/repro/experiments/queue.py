"""Crash-safe distributed campaign fabric: a lease-based work queue.

The figure campaigns are embarrassingly parallel, but
:func:`~repro.experiments.parallel.fan_out` dies with its single host
process. This module turns a campaign into *claimable cells* in a
file-based queue living under ``<cache-root>/queue/<campaign-id>/`` so
that any number of peer workers — started at any time, on any host
sharing the cache directory — cooperatively finish it, and none of them
(including the coordinator) is a single point of failure.

Layout of one campaign directory::

    <cache-root>/queue/<campaign-id>/
        manifest.json        # campaign commit record (state, cache root)
        pending/<cell>.json  # published cells waiting for a claimer
        leased/<cell>.json   # cells somebody claimed (the cell spec)
        reclaiming/<cell>.*  # private staging during a reclaim
        done/<cell>.json     # completion markers
        poison/<cell>.json   # cells that burned every reclaim generation
        leases/<cell>.json   # lease metadata (worker, pid, generation)
        heartbeats/<w>.json  # fsynced per-worker liveness files
        results.journal      # append-only JSONL of completed results

Every state transition is an ``os.rename`` of the cell file between
those directories, so exactly one mover wins even on shared
filesystems, and a SIGKILL at any point leaves the cell in a
well-defined state:

* **claim** — rename ``pending/X`` → ``leased/X``; the winner then
  writes fsynced lease metadata. Losers get ``FileNotFoundError`` and
  move on.
* **heartbeat** — each worker renews its own ``heartbeats/<w>.json``
  (atomic replace + fsync) and *touches the lease file of every cell it
  is executing* on the same cadence. A lease is live while its file
  mtime is younger than the TTL; long cells stay safe because their
  leases keep getting touched.
* **reclaim** — anyone who finds an expired lease renames ``leased/X``
  to a private ``reclaiming/`` name (single winner), bumps the cell's
  reclaim ``generation``, and either republishes it to ``pending/`` or
  — once ``max_generations`` is exhausted — quarantines it to
  ``poison/`` so a cell that kills every claimer cannot stall the
  campaign forever. Reclaimers that die mid-move are themselves healed:
  stale ``reclaiming/`` entries are swept back to ``pending/``.
* **complete** — the worker appends the pickled result to the fsynced
  ``results.journal`` *first* (the journal is the commit record; torn
  final lines are skipped on read) and then renames ``leased/X`` →
  ``done/X``. A cell reclaimed out from under a slow-but-alive worker
  may therefore complete twice; execution goes through the
  content-addressed disk cache, so at-least-once still yields
  byte-identical results and the journal's first record per cell wins.

The coordinator side (:class:`QueueExecutor`) plugs in behind the same
``fan_out`` signature the process pool uses: it publishes one cell per
``(fn, args)`` item, waits on the journal, sweeps expired leases while
it waits, and — when no live worker heartbeat has been seen for a grace
period — degrades to the existing in-process supervised fan-out so a
campaign with no fleet behaves exactly like today's ``--jobs`` runs.
A coordinator that crashes resumes from the same queue directory: the
campaign id is a pure function of the work, published cells with
journal records are simply not re-executed.

Chaos-testability: :data:`~repro.experiments.resilience.FAULTS_ENV`
gains three queue fault kinds. ``worker_exit`` makes a worker
``os._exit`` right after claiming (dead-worker reclaim path),
``lease_stall`` makes it silently abandon a claimed cell without
heartbeating it (hung-worker reclaim path, process still alive), and
``heartbeat_stop`` freezes all of a worker's renewals while it keeps
executing (duplicate-completion path). All decisions are the pure
``(seed, kind, site, attempt)`` hash of the existing harness, with the
cell's reclaim generation as the attempt, so a retried cell makes
progress.
"""

from __future__ import annotations

import base64
import hashlib
import importlib
import json
import os
import pickle
import shutil
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ExperimentError
from ..telemetry import TELEMETRY
from .resilience import FaultPlan

#: Bump when the on-disk queue layout changes incompatibly.
QUEUE_SCHEMA = 1

#: Lease/heartbeat time-to-live in seconds (override: CLI / env).
TTL_ENV = "REPRO_QUEUE_TTL"
DEFAULT_TTL = 30.0

#: Coordinator grace period before degrading to in-process fan-out.
GRACE_ENV = "REPRO_QUEUE_GRACE"
DEFAULT_GRACE = 20.0

#: Reclaim generations per cell before it is poisoned.
DEFAULT_MAX_GENERATIONS = 3

#: Campaign directories with no write activity for this long are dead
#: (their coordinator and workers are gone) and swept by ``cache gc``.
CAMPAIGN_MAX_AGE_SECONDS = 24 * 3600.0

_PENDING = "pending"
_LEASED = "leased"
_RECLAIMING = "reclaiming"
_DONE = "done"
_POISON = "poison"
_LEASES = "leases"
_HEARTBEATS = "heartbeats"
_CELL_DIRS = (_PENDING, _LEASED, _RECLAIMING, _DONE, _POISON)

JOURNAL_NAME = "results.journal"
MANIFEST_NAME = "manifest.json"


def default_ttl() -> float:
    raw = os.environ.get(TTL_ENV, "").strip()
    if not raw:
        return DEFAULT_TTL
    try:
        value = float(raw)
    except ValueError:
        raise ExperimentError(
            f"{TTL_ENV} must be seconds (float), got {raw!r}") from None
    if value <= 0:
        raise ExperimentError(f"{TTL_ENV} must be positive, got {value}")
    return value


def default_grace() -> float:
    raw = os.environ.get(GRACE_ENV, "").strip()
    if not raw:
        return DEFAULT_GRACE
    try:
        return max(0.0, float(raw))
    except ValueError:
        raise ExperimentError(
            f"{GRACE_ENV} must be seconds (float), got {raw!r}") from None


def queue_root() -> Path | None:
    """Queue base directory: ``<cache-root>/queue`` (None = cache off)."""
    from .diskcache import cache_root
    root = cache_root()
    if root is None:
        return None
    return root / "queue"


def campaign_id(names, quick: bool) -> str:
    """Deterministic campaign identity: a resumed coordinator (or a
    worker started before it) lands on the same queue directory."""
    payload = json.dumps({"names": sorted(names), "quick": quick},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def _write_json_sync(path: Path, payload: dict) -> None:
    """Atomic-replace JSON write, fsynced: survives SIGKILL mid-write."""
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True,
                      separators=(",", ":"))
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:
                pass
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _read_json(path: Path) -> dict | None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _mtime_age(path: Path, now: float | None = None) -> float | None:
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return None
    return (now if now is not None else time.time()) - mtime


def seeded_jitter(token: str, purpose: str, low: float,
                  high: float) -> float:
    """Deterministic per-worker jitter factor in ``[low, high)``.

    Many workers sharing one cache directory must not synchronize
    their heartbeat fsyncs and idle polls (a thundering herd on NFS);
    hashing the worker id keeps the spread reproducible, so faulted
    chaos runs stay deterministic.
    """
    digest = hashlib.sha256(
        f"{purpose}|{token}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return low + (high - low) * unit


def encode_args(args: tuple) -> str:
    return base64.b64encode(
        pickle.dumps(tuple(args), protocol=4)).decode("ascii")


def decode_args(text: str) -> tuple:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def encode_result(value) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=4)).decode("ascii")


def decode_result(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def fn_spec(fn) -> str:
    """``module:qualname`` of a module-level cell function."""
    return f"{fn.__module__}:{fn.__qualname__}"


def resolve_fn(spec: str):
    """Inverse of :func:`fn_spec` (workers import the coordinator's
    cell functions by name; both sides run the same codebase)."""
    module_name, _, qualname = spec.partition(":")
    if not module_name or not qualname or "." in qualname:
        raise ExperimentError(f"bad cell function spec {spec!r}")
    module = importlib.import_module(module_name)
    fn = getattr(module, qualname, None)
    if fn is None or not callable(fn):
        raise ExperimentError(
            f"cell function {spec!r} does not resolve to a callable")
    return fn


def make_cell(fn, args: tuple, runner_params: dict) -> dict:
    """One claimable cell record. The id is a pure hash of the work, so
    a resumed coordinator republishes identical ids and cells already
    journaled are recognized instead of re-executed."""
    spec = fn_spec(fn)
    encoded = encode_args(args)
    digest = hashlib.sha256()
    digest.update(spec.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(encoded.encode("ascii"))
    digest.update(b"\x00")
    digest.update(json.dumps(runner_params, sort_keys=True,
                             separators=(",", ":")).encode("utf-8"))
    return {
        "schema": QUEUE_SCHEMA,
        "cell": digest.hexdigest()[:24],
        "fn": spec,
        "args": encoded,
        "runner": dict(runner_params),
        "generation": 0,
    }


@dataclass
class Claim:
    """A successfully claimed cell: spec plus the lease we now hold."""

    cell: dict
    lease_path: Path
    leased_path: Path

    @property
    def cell_id(self) -> str:
        return self.cell["cell"]

    @property
    def generation(self) -> int:
        return int(self.cell.get("generation", 0))


class WorkQueue:
    """One campaign's queue directory: publish, claim, complete, heal."""

    def __init__(self, directory: str | Path, ttl: float | None = None,
                 max_generations: int | None = None) -> None:
        self.directory = Path(directory)
        self.campaign = self.directory.name
        # Policy resolution: explicit argument > the manifest the
        # coordinator committed > environment/default. Workers opening
        # an existing campaign therefore enforce the coordinator's TTL
        # and reclaim budget, not their own local defaults.
        manifest = _read_json(self.manifest_path) or {}
        if ttl is None:
            ttl = manifest.get("ttl")
        self.ttl = float(ttl) if ttl is not None else default_ttl()
        if max_generations is None:
            max_generations = manifest.get("max_generations")
        self.max_generations = int(max_generations) \
            if max_generations is not None else DEFAULT_MAX_GENERATIONS
        #: Incremental journal read state: (byte offset, records so far).
        self._journal_offset = 0
        self._journal_records: dict[str, dict] = {}

    # -- paths ---------------------------------------------------------

    def _dir(self, name: str) -> Path:
        return self.directory / name

    def _cell_path(self, state: str, cell_id: str) -> Path:
        return self._dir(state) / f"{cell_id}.json"

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    # -- lifecycle -----------------------------------------------------

    def ensure(self, extra: dict | None = None) -> "WorkQueue":
        """Create the directory skeleton + manifest if absent (opening
        an existing campaign directory is how a coordinator resumes)."""
        for name in _CELL_DIRS + (_LEASES, _HEARTBEATS):
            self._dir(name).mkdir(parents=True, exist_ok=True)
        if not self.manifest_path.exists():
            manifest = {
                "schema": QUEUE_SCHEMA,
                "campaign": self.campaign,
                "state": "active",
                "created_unix": time.time(),
                "coordinator_pid": os.getpid(),
                "coordinator_host": socket.gethostname(),
                "ttl": self.ttl,
                "max_generations": self.max_generations,
            }
            manifest.update(extra or {})
            _write_json_sync(self.manifest_path, manifest)
        return self

    def manifest(self) -> dict | None:
        return _read_json(self.manifest_path)

    @property
    def exists(self) -> bool:
        return self.manifest_path.exists()

    def is_active(self) -> bool:
        manifest = self.manifest()
        return bool(manifest) and manifest.get("state") == "active"

    def close(self, state: str = "complete") -> None:
        """Mark the campaign finished; ``cache gc`` sweeps it later."""
        manifest = self.manifest() or {"schema": QUEUE_SCHEMA,
                                       "campaign": self.campaign}
        manifest["state"] = state
        manifest["closed_unix"] = time.time()
        _write_json_sync(self.manifest_path, manifest)

    def cache_root(self) -> Path:
        """Disk-cache root the campaign's artifacts live in.

        Recorded in the manifest by the coordinator; the directory
        layout (``<cache-root>/queue/<campaign>``) is the fallback so a
        hand-built queue still points somewhere sensible.
        """
        manifest = self.manifest() or {}
        recorded = manifest.get("cache_dir")
        if recorded:
            return Path(recorded)
        return self.directory.parent.parent

    # -- publishing ----------------------------------------------------

    def publish(self, cells) -> int:
        """Enqueue cells that are not already somewhere in the queue.

        Returns how many were actually published. A cell whose id
        already has a journal record, a state file, or a poison marker
        is skipped — that is what makes coordinator resume idempotent.
        """
        journal = self.results()
        published = 0
        for cell in cells:
            cell_id = cell["cell"]
            if cell_id in journal:
                continue
            if any(self._cell_path(state, cell_id).exists()
                   for state in _CELL_DIRS):
                continue
            _write_json_sync(self._cell_path(_PENDING, cell_id), cell)
            published += 1
        if published:
            TELEMETRY.metrics.counter("queue.published").inc(published)
        return published

    # -- worker side ---------------------------------------------------

    def register_worker(self, worker_id: str) -> None:
        self._dir(_HEARTBEATS).mkdir(parents=True, exist_ok=True)
        self.heartbeat(worker_id)

    def heartbeat(self, worker_id: str,
                  held: tuple[Path, ...] = ()) -> None:
        """Renew one worker's liveness file and touch its held leases."""
        _write_json_sync(self._dir(_HEARTBEATS) / f"{worker_id}.json", {
            "schema": QUEUE_SCHEMA,
            "worker": worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "time_unix": time.time(),
        })
        for leased_path in held:
            try:
                os.utime(leased_path)
            except OSError:
                pass

    def claim(self, worker_id: str) -> Claim | None:
        """Claim one pending cell (None when nothing is claimable).

        The rename is the atomic claim; the lease metadata written
        after it only serves observers (status, reclaimers logging who
        died). A cell that already has a done marker — its previous
        claimer completed after being reclaimed — is settled instead of
        re-executed.
        """
        pending = self._dir(_PENDING)
        try:
            names = sorted(p.name for p in pending.glob("*.json"))
        except OSError:
            return None
        for name in names:
            source = pending / name
            target = self._dir(_LEASED) / name
            try:
                os.rename(source, target)
            except OSError:
                continue  # somebody else won this cell
            cell = _read_json(target)
            if cell is None:
                # Unparseable spec: nobody can ever run it.
                self._poison_file(target, reason="unreadable cell spec")
                continue
            cell_id = cell["cell"]
            if self._cell_path(_DONE, cell_id).exists():
                target.unlink(missing_ok=True)
                continue
            lease_path = self._dir(_LEASES) / f"{cell_id}.json"
            _write_json_sync(lease_path, {
                "schema": QUEUE_SCHEMA,
                "cell": cell_id,
                "worker": worker_id,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "generation": cell.get("generation", 0),
                "acquired_unix": time.time(),
            })
            try:
                os.utime(target)  # lease clock starts at the claim
            except OSError:
                pass
            TELEMETRY.metrics.counter("queue.claimed").inc()
            return Claim(cell=cell, lease_path=lease_path,
                         leased_path=target)
        return None

    def complete(self, claim: Claim, result, worker_id: str,
                 wall_seconds: float = 0.0) -> None:
        """Commit one result: journal first, then the done marker.

        The journal append is the commit record — a crash between the
        two leaves a journaled result plus a reclaimable lease, which
        at worst re-executes an idempotent cell.
        """
        self.append_result({
            "schema": QUEUE_SCHEMA,
            "cell": claim.cell_id,
            "worker": worker_id,
            "pid": os.getpid(),
            "generation": claim.generation,
            "wall_seconds": round(wall_seconds, 3),
            "completed_unix": time.time(),
            "result": encode_result(result),
        })
        done = self._cell_path(_DONE, claim.cell_id)
        try:
            os.rename(claim.leased_path, done)
        except OSError:
            # The cell was reclaimed while we executed; whoever holds
            # it now (or the coordinator) will settle the marker. Our
            # journal record already landed, which is what counts.
            pass
        claim.lease_path.unlink(missing_ok=True)
        TELEMETRY.metrics.counter("queue.completed").inc()

    def abandon(self, claim: Claim) -> None:
        """Walk away from a claim without completing it (the lease goes
        stale and reclamation takes over) — the ``lease_stall`` fault."""
        TELEMETRY.metrics.counter("queue.abandoned").inc()

    # -- results journal -----------------------------------------------

    def append_result(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:
                pass

    def results(self) -> dict[str, dict]:
        """Journal records by cell id (first completion wins).

        Reads are incremental (the coordinator polls this) and
        torn-line tolerant: a crash mid-append costs one record, which
        reclamation re-executes.
        """
        try:
            size = self.journal_path.stat().st_size
        except OSError:
            return dict(self._journal_records)
        if size < self._journal_offset:
            # Journal replaced/truncated underneath us: re-read fully.
            self._journal_offset = 0
            self._journal_records = {}
        if size == self._journal_offset:
            return dict(self._journal_records)
        try:
            with open(self.journal_path, "r", encoding="utf-8") as handle:
                handle.seek(self._journal_offset)
                chunk = handle.read()
        except OSError:
            return dict(self._journal_records)
        # Only consume complete lines; a torn tail is re-read (and by
        # then either finished or skipped as garbage).
        consumed = chunk.rfind("\n") + 1
        self._journal_offset += len(
            chunk[:consumed].encode("utf-8"))
        for line in chunk[:consumed].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            cell_id = record.get("cell")
            if isinstance(cell_id, str) \
                    and cell_id not in self._journal_records:
                self._journal_records[cell_id] = record
        return dict(self._journal_records)

    def settle(self, cell_ids) -> int:
        """Move journaled-but-unmarked cells to ``done/``.

        Covers the worker that completed a cell *after* losing its
        lease: the journal has the result but the cell file sits in
        ``pending/`` (or ``leased/``) where it would be claimed again.
        """
        settled = 0
        for cell_id in cell_ids:
            done = self._cell_path(_DONE, cell_id)
            if done.exists():
                continue
            for state in (_PENDING, _LEASED):
                try:
                    os.rename(self._cell_path(state, cell_id), done)
                except OSError:
                    continue
                settled += 1
                break
        return settled

    # -- liveness + reclamation ----------------------------------------

    def live_workers(self, now: float | None = None) -> dict[str, float]:
        """worker id -> heartbeat age (seconds), fresh ones only."""
        now = now if now is not None else time.time()
        workers: dict[str, float] = {}
        directory = self._dir(_HEARTBEATS)
        if not directory.is_dir():
            return workers
        for path in directory.glob("*.json"):
            age = _mtime_age(path, now)
            # Symmetric window: a slightly-ahead clock still counts as
            # live, but a far-future heartbeat (> one TTL ahead) is as
            # untrustworthy as a stale one — it must not read as "live
            # forever".
            if age is not None and -self.ttl < age < self.ttl:
                workers[path.stem] = age
        return workers

    def worker_ages(self) -> dict[str, float]:
        """Every registered worker's heartbeat age (stale ones too)."""
        ages: dict[str, float] = {}
        directory = self._dir(_HEARTBEATS)
        if not directory.is_dir():
            return ages
        now = time.time()
        for path in directory.glob("*.json"):
            age = _mtime_age(path, now)
            if age is not None:
                ages[path.stem] = age
        return ages

    def _lease_stale(self, path: Path, now: float) -> bool:
        """Clock-skew-tolerant staleness test on a lease/staging file.

        A *near*-future mtime (less than one TTL ahead) is ordinary
        skew between hosts sharing the cache — the lease is honored so
        a live worker is not robbed early. A *far*-future mtime is as
        untrustworthy as an expired one and is reclaimed immediately:
        without that, a skewed writer's lease would never expire and a
        dead worker could wedge the campaign forever.
        """
        age = _mtime_age(path, now)
        if age is None:
            return False
        return age >= self.ttl or age <= -self.ttl

    def _poison_file(self, source: Path, reason: str,
                     cell: dict | None = None) -> None:
        cell = cell or _read_json(source) or {}
        cell_id = cell.get("cell", source.stem)
        record = dict(cell)
        record["poisoned_unix"] = time.time()
        record["reason"] = reason
        _write_json_sync(self._cell_path(_POISON, str(cell_id)), record)
        source.unlink(missing_ok=True)
        self._dir(_LEASES).joinpath(f"{cell_id}.json").unlink(
            missing_ok=True)
        TELEMETRY.metrics.counter("queue.poisoned").inc()
        TELEMETRY.events.emit("queue.poisoned", cell=str(cell_id),
                              reason=reason)

    def reclaim_expired(self, now: float | None = None) -> dict:
        """Recover cells whose leases went stale; heal stuck reclaims.

        Returns ``{"reclaimed", "poisoned", "healed"}``. Safe to call
        from any process at any time: every transition is a
        single-winner rename.
        """
        stats = {"reclaimed": 0, "poisoned": 0, "healed": 0}
        now = now if now is not None else time.time()
        leased = self._dir(_LEASED)
        if leased.is_dir():
            for path in sorted(leased.glob("*.json")):
                if not self._lease_stale(path, now):
                    continue
                self._reclaim_one(path, stats)
        # A reclaimer killed mid-move leaves the cell in reclaiming/;
        # anything older than a TTL there cannot have a live mover.
        reclaiming = self._dir(_RECLAIMING)
        if reclaiming.is_dir():
            for path in sorted(reclaiming.iterdir()):
                if not self._lease_stale(path, now):
                    continue
                cell = _read_json(path)
                if cell is None:
                    path.unlink(missing_ok=True)
                    continue
                try:
                    os.rename(path,
                              self._cell_path(_PENDING, cell["cell"]))
                    stats["healed"] += 1
                except OSError:
                    continue
        if stats["reclaimed"]:
            TELEMETRY.metrics.counter("queue.reclaimed").inc(
                stats["reclaimed"])
        return stats

    def _reclaim_one(self, leased_path: Path, stats: dict) -> None:
        staging = self._dir(_RECLAIMING) / (
            f"{leased_path.stem}.{os.getpid()}")
        try:
            os.rename(leased_path, staging)
        except OSError:
            return  # another reclaimer (or the owner finishing) won
        cell = _read_json(staging)
        if cell is None:
            self._poison_file(staging, reason="unreadable cell spec")
            stats["poisoned"] += 1
            return
        lease = _read_json(
            self._dir(_LEASES) / f"{cell['cell']}.json") or {}
        if self._cell_path(_DONE, cell["cell"]).exists():
            # Completed by a worker that lost the rename race.
            staging.unlink(missing_ok=True)
            return
        cell["generation"] = int(cell.get("generation", 0)) + 1
        history = cell.setdefault("reclaim_history", [])
        history.append({
            "worker": lease.get("worker"),
            "generation": cell["generation"] - 1,
            "reclaimed_unix": time.time(),
        })
        if cell["generation"] > self.max_generations:
            self._poison_file(staging, cell=cell,
                              reason=f"exhausted {self.max_generations} "
                                     "reclaim generations")
            stats["poisoned"] += 1
            return
        _write_json_sync(staging, cell)
        try:
            os.rename(staging, self._cell_path(_PENDING, cell["cell"]))
        except OSError:
            return
        self._dir(_LEASES).joinpath(f"{cell['cell']}.json").unlink(
            missing_ok=True)
        stats["reclaimed"] += 1
        TELEMETRY.events.emit("queue.reclaimed", cell=cell["cell"],
                              generation=cell["generation"],
                              worker=lease.get("worker"))

    def sweep_heartbeats(self, max_age: float | None = None) -> int:
        """Delete heartbeat files of workers gone for ``max_age``
        (default: 4 TTLs) — dead workers stop cluttering status."""
        if max_age is None:
            max_age = 4 * self.ttl
        removed = 0
        directory = self._dir(_HEARTBEATS)
        if not directory.is_dir():
            return 0
        now = time.time()
        for path in directory.glob("*.json"):
            age = _mtime_age(path, now)
            if age is not None and age >= max_age:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    # -- introspection -------------------------------------------------

    def counts(self) -> dict[str, int]:
        out = {}
        for state in _CELL_DIRS:
            directory = self._dir(state)
            out[state] = sum(1 for _ in directory.glob("*.json")) \
                if directory.is_dir() else 0
        return out

    def poisoned(self) -> dict[str, dict]:
        """Poison records by cell id (reason + reclaim history)."""
        out = {}
        directory = self._dir(_POISON)
        if not directory.is_dir():
            return out
        for path in directory.glob("*.json"):
            record = _read_json(path)
            if record is not None:
                out[path.stem] = record
        return out

    def total_reclaims(self) -> int:
        """Cumulative reclaim generations across every cell file."""
        total = 0
        for state in _CELL_DIRS:
            directory = self._dir(state)
            if not directory.is_dir():
                continue
            for path in directory.glob("*.json"):
                cell = _read_json(path)
                if cell:
                    total += int(cell.get("generation", 0))
        return total


# ----------------------------------------------------------------------
# Coordinator: the fan_out-shaped executor
# ----------------------------------------------------------------------

class QueueExecutor:
    """Distributed executor plugged in behind ``fan_out``.

    One instance serves a whole campaign (every figure's fan-outs reuse
    it); :meth:`run` publishes one cell per item, polls the results
    journal, sweeps expired leases while waiting, and degrades to the
    ordinary in-process supervised fan-out when no worker heartbeat has
    been fresh for ``grace_seconds``.
    """

    def __init__(self, queue: WorkQueue,
                 grace_seconds: float | None = None,
                 poll_seconds: float = 0.25,
                 local_jobs: int | None = None) -> None:
        self.queue = queue
        self.grace_seconds = grace_seconds if grace_seconds is not None \
            else default_grace()
        self.poll_seconds = poll_seconds
        #: ``--jobs`` for the degraded local fan-out (None = env/serial).
        self.local_jobs = local_jobs
        self._saw_worker = False

    def run(self, runner, fn, items) -> list:
        from .parallel import fan_out, use_executor
        metrics = TELEMETRY.metrics
        params = runner.queue_params()
        cells = [make_cell(fn, args, params) for args in items]
        order = [cell["cell"] for cell in cells]
        wanted = set(order)
        self.queue.ensure()
        self.queue.publish(cells)
        index_of = {cell_id: i for i, cell_id in enumerate(order)}
        last_live = time.monotonic()
        while True:
            records = self.queue.results()
            missing = [cell_id for cell_id in order
                       if cell_id not in records]
            self._update_gauges(len(missing))
            if not missing:
                break
            poisoned = self.queue.poisoned()
            bad = sorted(wanted & set(poisoned))
            if bad:
                details = "; ".join(
                    f"{cell_id} ({poisoned[cell_id].get('reason', '?')}, "
                    f"fn {poisoned[cell_id].get('fn', '?')})"
                    for cell_id in bad)
                raise ExperimentError(
                    f"queue campaign {self.queue.campaign}: "
                    f"{len(bad)} cell(s) poisoned after repeated "
                    f"reclaims: {details}. Inspect "
                    f"{self.queue.directory / _POISON} and re-publish "
                    "with --fresh once the cause is fixed.")
            self.queue.reclaim_expired()
            if self.queue.live_workers():
                self._saw_worker = True
                last_live = time.monotonic()
            elif time.monotonic() - last_live >= self.grace_seconds:
                # No fleet (or the whole fleet died): finish the rest
                # exactly the way a --jobs run would, journaling the
                # results so late workers and resumed coordinators see
                # them as done.
                self._run_locally(runner, fn, items, index_of,
                                  [cell_id for cell_id in missing],
                                  fan_out, use_executor)
                continue
            time.sleep(self.poll_seconds)
        self.queue.settle(order)
        results = [None] * len(order)
        for cell_id, record in records.items():
            if cell_id in index_of:
                results[index_of[cell_id]] = decode_result(
                    record["result"])
        metrics.counter("queue.cells_merged").inc(len(order))
        return results

    def _run_locally(self, runner, fn, items, index_of, missing,
                     fan_out, use_executor) -> None:
        metrics = TELEMETRY.metrics
        metrics.counter("queue.degraded_fanouts").inc()
        metrics.counter("queue.degraded_cells").inc(len(missing))
        TELEMETRY.events.emit("queue.degraded",
                              campaign=self.queue.campaign,
                              cells=len(missing),
                              saw_worker=self._saw_worker)
        pending = [(cell_id, items[index_of[cell_id]])
                   for cell_id in missing]
        start = time.perf_counter()
        with use_executor(None):  # bypass ourselves: supervised pool
            values = fan_out(runner, fn,
                             [args for _, args in pending],
                             jobs=self.local_jobs)
        wall = time.perf_counter() - start
        for (cell_id, _), value in zip(pending, values):
            self.queue.append_result({
                "schema": QUEUE_SCHEMA,
                "cell": cell_id,
                "worker": "coordinator",
                "pid": os.getpid(),
                "generation": -1,
                "wall_seconds": round(wall / max(1, len(pending)), 3),
                "completed_unix": time.time(),
                "result": encode_result(value),
            })

    def _update_gauges(self, missing: int) -> None:
        metrics = TELEMETRY.metrics
        counts = self.queue.counts()
        for state in (_PENDING, _LEASED, _DONE, _POISON):
            metrics.gauge("queue.depth", state=state).set(counts[state])
        metrics.gauge("queue.missing").set(missing)
        metrics.gauge("queue.workers").set(
            len(self.queue.live_workers()))


# ----------------------------------------------------------------------
# Worker: ``python -m repro work``
# ----------------------------------------------------------------------

@dataclass
class WorkerReport:
    """What one worker loop did before exiting."""

    worker_id: str = ""
    completed: int = 0
    claims: int = 0
    stalled: int = 0
    campaigns: list[str] = field(default_factory=list)
    reason: str = ""


class _HeartbeatThread(threading.Thread):
    """Renews the worker heartbeat + held leases every ``~ttl / 3``.

    The renewal cadence carries deterministic per-worker jitter (a
    factor in [0.6, 1.0) of ``ttl / 3``): a fleet started by one
    orchestrator would otherwise fsync its heartbeats in lockstep
    against the shared cache directory. Jittering *downward* keeps
    every worker safely under the lease TTL.

    The ``heartbeat_stop`` fault freezes renewals permanently — the
    worker keeps executing, its leases go stale, and reclamation takes
    the cells away; at-least-once + idempotence keeps the campaign's
    bytes identical.
    """

    def __init__(self, queues: dict[str, WorkQueue], worker_id: str,
                 ttl: float, faults: FaultPlan) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{worker_id}")
        self.queues = queues
        self.worker_id = worker_id
        self.jitter = seeded_jitter(worker_id, "heartbeat", 0.6, 1.0)
        self.interval = max(0.05, ttl / 3.0 * self.jitter)
        self.faults = faults
        self.stop_event = threading.Event()
        self.held: dict[str, tuple[Path, ...]] = {}
        self._lock = threading.Lock()
        self._renewals = 0
        self.frozen = False

    def set_held(self, campaign: str, paths: tuple[Path, ...]) -> None:
        with self._lock:
            if paths:
                self.held[campaign] = paths
            else:
                self.held.pop(campaign, None)

    def beat_once(self) -> None:
        if self.faults.should_fire("heartbeat_stop", self.worker_id,
                                   self._renewals):
            if not self.frozen:
                self.frozen = True
                TELEMETRY.metrics.counter(
                    "queue.heartbeats_frozen").inc()
            return
        self._renewals += 1
        with self._lock:
            held = dict(self.held)
        for campaign, queue in list(self.queues.items()):
            try:
                queue.heartbeat(self.worker_id,
                                held=held.get(campaign, ()))
            except OSError:
                continue

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            self.beat_once()


def discover_campaigns(root: str | Path | None = None,
                       campaign: str | None = None,
                       active_only: bool = True) -> list[Path]:
    """Campaign directories under a queue root, newest manifest first."""
    base = Path(root) if root is not None else queue_root()
    if base is None or not base.is_dir():
        return []
    found = []
    for path in sorted(base.iterdir()):
        if not path.is_dir():
            continue
        if campaign is not None and path.name != campaign:
            continue
        manifest = _read_json(path / MANIFEST_NAME)
        if manifest is None:
            continue
        if active_only and manifest.get("state") != "active":
            continue
        found.append(path)
    return found


def work_loop(root: str | Path | None = None,
              campaign: str | None = None,
              worker_id: str | None = None,
              ttl: float | None = None,
              poll_seconds: float = 0.25,
              max_cells: int | None = None,
              idle_exit_seconds: float | None = None,
              faults: FaultPlan | None = None,
              emit=print) -> WorkerReport:
    """The ``python -m repro work`` loop: claim, execute, complete.

    Scans every active campaign under the queue root (or one named
    campaign), claims cells via the rename protocol, executes them on
    a per-params-cached :class:`~repro.experiments.runner.
    ExperimentRunner` whose disk cache is the campaign's own, and
    journals the results. Exits when ``max_cells`` is reached, when no
    work has been claimable for ``idle_exit_seconds``, or when every
    known campaign has closed.
    """
    from .runner import ExperimentRunner
    from .diskcache import DiskCache
    if faults is None:
        faults = FaultPlan.from_env()
    # ``ttl`` stays None unless the operator forced one: each campaign
    # manifest carries the coordinator's TTL/reclaim policy and
    # ``WorkQueue.__init__`` adopts it, so workers enforce the
    # coordinator's lease budget rather than their local default.
    worker_id = worker_id or \
        f"{socket.gethostname()}-{os.getpid()}"
    # Desynchronize idle polls across the fleet (deterministically per
    # worker) so N workers don't stat the queue directory in lockstep.
    poll_jitter = seeded_jitter(worker_id, "idle-poll", 0.75, 1.25)
    report = WorkerReport(worker_id=worker_id)
    metrics = TELEMETRY.metrics
    queues: dict[str, WorkQueue] = {}
    runners: dict[tuple, ExperimentRunner] = {}
    heart = _HeartbeatThread(
        queues, worker_id, ttl if ttl is not None else default_ttl(),
        faults)
    heart.start()
    idle_since = time.monotonic()
    try:
        while True:
            if max_cells is not None and report.completed >= max_cells:
                report.reason = "max-cells"
                return report
            directories = discover_campaigns(root, campaign)
            for path in directories:
                if path.name not in queues:
                    queue = WorkQueue(path, ttl=ttl)
                    queues[path.name] = queue
                    # Renew fast enough for the tightest lease TTL of
                    # any campaign we are serving (keeping this
                    # worker's deterministic jitter factor).
                    heart.interval = min(
                        heart.interval,
                        max(0.05, queue.ttl / 3.0 * heart.jitter))
                    queue.register_worker(worker_id)
                    report.campaigns.append(path.name)
                    emit(f"-- worker {worker_id}: joined campaign "
                         f"{path.name}")
            # Drop campaigns that closed underneath us.
            for name in [n for n in queues
                         if campaign is None
                         and not queues[n].is_active()]:
                del queues[name]
            if not directories and not queues:
                if idle_exit_seconds is not None and \
                        time.monotonic() - idle_since >= idle_exit_seconds:
                    report.reason = "no campaigns"
                    return report
                time.sleep(poll_seconds * poll_jitter)
                continue
            claimed = False
            for name, queue in list(queues.items()):
                claim = queue.claim(worker_id)
                if claim is None:
                    # Nothing pending: help recover other workers'
                    # stale leases before going back to sleep.
                    queue.reclaim_expired()
                    continue
                claimed = True
                idle_since = time.monotonic()
                report.claims += 1
                handled = _execute_claim(
                    queue, claim, worker_id, heart, runners, faults,
                    metrics, report, emit)
                if not handled:
                    break
            if not claimed:
                if idle_exit_seconds is not None and \
                        time.monotonic() - idle_since >= idle_exit_seconds:
                    report.reason = "idle"
                    return report
                time.sleep(poll_seconds * poll_jitter)
    finally:
        heart.stop_event.set()
        heart.join(timeout=2 * heart.interval)
    return report


def _execute_claim(queue: WorkQueue, claim: Claim, worker_id: str,
                   heart: _HeartbeatThread, runners: dict,
                   faults: FaultPlan, metrics, report: WorkerReport,
                   emit) -> bool:
    """Run one claimed cell through the fault gauntlet. Returns False
    when the cell was deliberately abandoned (``lease_stall``)."""
    from .runner import ExperimentRunner
    from .diskcache import DiskCache
    cell = claim.cell
    site = cell["cell"]
    if faults.should_fire("worker_exit", site, claim.generation):
        # Simulated kill -9 right after the claim: the lease dangles
        # until its TTL expires and a peer reclaims the cell.
        os._exit(23)
    if faults.should_fire("lease_stall", site, claim.generation):
        spec = faults.spec("lease_stall")
        report.stalled += 1
        metrics.counter("queue.stalls_injected").inc()
        queue.abandon(claim)
        time.sleep(min(spec.sleep_seconds, 3600.0))
        return False
    heart.set_held(queue.campaign, (claim.leased_path,))
    start = time.perf_counter()
    try:
        fn = resolve_fn(cell["fn"])
        args = decode_args(cell["args"])
        params = dict(cell.get("runner", {}))
        key = (queue.campaign,
               tuple(sorted(params.items())))
        runner = runners.get(key)
        if runner is None:
            runner = ExperimentRunner(
                **params, disk_cache=DiskCache(queue.cache_root()))
            runners[key] = runner
        with TELEMETRY.tracer.span("queue.cell", cell=site,
                                   campaign=queue.campaign,
                                   generation=claim.generation):
            result = fn(runner, *args)
    except Exception as exc:  # noqa: BLE001 — a bad cell must not
        # kill the worker; leave the lease to expire so the cell goes
        # back through reclaim accounting (and eventually poison).
        metrics.counter("queue.cell_errors").inc()
        TELEMETRY.events.emit("queue.cell_error", cell=site,
                              error=repr(exc))
        emit(f"-- worker {worker_id}: cell {site} failed: {exc!r}")
        return True
    finally:
        heart.set_held(queue.campaign, ())
    queue.complete(claim, result, worker_id,
                   wall_seconds=time.perf_counter() - start)
    report.completed += 1
    emit(f"-- worker {worker_id}: completed {site} "
         f"(gen {claim.generation}, "
         f"{time.perf_counter() - start:.1f}s)")
    return True


# ----------------------------------------------------------------------
# Maintenance: campaign sweeping for ``repro cache gc`` / usage
# ----------------------------------------------------------------------

def sweep_queues(root: str | Path,
                 max_age: float = CAMPAIGN_MAX_AGE_SECONDS,
                 now: float | None = None) -> dict:
    """Garbage-collect the queue tree under one cache root.

    * campaign directories whose manifest is closed (``complete`` /
      ``failed``), or with no file activity for ``max_age`` seconds,
      are deleted outright;
    * inside live campaigns, expired leases are reclaimed (the normal
      protocol — generations bump, poison applies) and heartbeat files
      of long-gone workers are removed.

    Returns ``{"campaigns_removed", "leases_reclaimed",
    "heartbeats_removed", "poisoned"}``.
    """
    stats = {"campaigns_removed": 0, "leases_reclaimed": 0,
             "heartbeats_removed": 0, "poisoned": 0}
    base = Path(root) / "queue"
    if not base.is_dir():
        return stats
    now = now if now is not None else time.time()
    for path in sorted(base.iterdir()):
        if not path.is_dir():
            continue
        manifest = _read_json(path / MANIFEST_NAME)
        closed = manifest is not None \
            and manifest.get("state") != "active"
        if manifest is None or closed \
                or _campaign_idle_for(path, now) >= max_age:
            try:
                shutil.rmtree(path)
                stats["campaigns_removed"] += 1
            except OSError:
                pass
            continue
        queue = WorkQueue(path,
                          ttl=float(manifest.get("ttl", DEFAULT_TTL)))
        reclaim = queue.reclaim_expired(now=now)
        stats["leases_reclaimed"] += reclaim["reclaimed"]
        stats["poisoned"] += reclaim["poisoned"]
        stats["heartbeats_removed"] += queue.sweep_heartbeats()
    return stats


def _campaign_idle_for(path: Path, now: float) -> float:
    """Seconds since the newest write anywhere in one campaign dir."""
    newest = 0.0
    for child in path.rglob("*"):
        try:
            newest = max(newest, child.stat().st_mtime)
        except OSError:
            continue
    try:
        newest = max(newest, path.stat().st_mtime)
    except OSError:
        pass
    return now - newest if newest else float("inf")


def queue_usage(root: str | Path) -> dict:
    """Entry counts and byte totals for the queue tree (for
    :meth:`~repro.experiments.diskcache.DiskCache.usage`)."""
    usage = {"campaigns": 0, "cells": 0, "bytes": 0}
    base = Path(root) / "queue"
    if not base.is_dir():
        return usage
    for path in sorted(base.iterdir()):
        if not path.is_dir():
            continue
        usage["campaigns"] += 1
        for child in path.rglob("*"):
            try:
                if child.is_file():
                    usage["bytes"] += child.stat().st_size
            except OSError:
                continue
        for state in _CELL_DIRS:
            directory = path / state
            if directory.is_dir():
                usage["cells"] += sum(
                    1 for _ in directory.glob("*.json"))
    return usage
