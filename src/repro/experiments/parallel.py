"""Supervised process-pool fan-out for independent experiment cells.

The figure harnesses iterate grids of independent (workload, config)
cells; :func:`fan_out` distributes those cells over a
``ProcessPoolExecutor`` while keeping three invariants the serial loops
rely on:

* **Determinism** — results come back in submission order, and each
  cell function is a pure function of its arguments plus the runner's
  construction parameters, so figure aggregation code sees exactly the
  sequence a serial loop would produce — whatever faults were survived
  along the way.
* **Telemetry** — each worker resets the sinks it inherited over
  ``fork`` (otherwise the parent's pre-fork counts would be merged back
  in again, double-counting, and the parent's open spans would be
  re-shipped under every cell), runs its cell inside a ``cell`` span,
  then ships a :data:`WIRE_SCHEMA` payload back with the result: the
  :meth:`~repro.telemetry.metrics.MetricsRegistry.dump`, the span
  forest (:meth:`~repro.telemetry.tracing.Tracer.export_state`), and
  the worker's pid. The parent merges the final successful payload of
  every cell, in submission order — metrics into its registry, span
  trees into ``TELEMETRY.workers`` — so the run manifest and the
  unified Chrome trace cover the whole fan-out. (Work lost to a
  crashed worker is not counted: its sinks died with it.)
* **Cache sharing** — workers build their own
  :class:`~repro.experiments.runner.ExperimentRunner` from
  :meth:`~repro.experiments.runner.ExperimentRunner.spawn_params`, so
  they inherit the parent's scale and its disk-cache root. Guest runs
  and memory-side states a worker computes are write-through persisted,
  which is how parallel work becomes visible to the parent (and to the
  next invocation) without shipping multi-megabyte traces over pipes.
  It is also what makes retries cheap: a cell that crashed *after*
  computing expensive sub-results finds them in the cache on re-run.
  Results that *do* carry a trace (``run_many`` handles) cross the
  pipe as a **reference**: once the disk cache committed the encoded
  payload, :meth:`~repro.host.trace.InstructionTrace.__getstate__`
  pickles the file path instead of the arrays
  (``trace.pickle_refs``), and the receiving side re-opens it as a
  lazily decoded mmap — N same-host cells share one set of page-cache
  bytes instead of deserializing N private copies. A reference whose
  file was evicted in flight fails the cell load, which the
  supervision above treats like any worker failure: retry, recompute.

Cells are supervised (see :class:`~repro.experiments.resilience.
RetryPolicy`): each one is an individual future with an optional
wall-clock timeout; cell exceptions and timeouts are retried with
exponential backoff up to a bounded budget; a broken pool
(``BrokenProcessPool`` — a worker was OOM-killed, segfaulted, or had a
fault injected) is rebuilt after *harvesting* whichever futures already
completed, and only the lost cells re-run. After ``max_pool_rebuilds``
rebuilds the remaining cells run **isolated** — one at a time, each in
a fresh single-worker pool, so a crash costs one cell-attempt instead
of the whole wave and the worker-side telemetry of every completed
cell still ships back. Cells whose isolated attempts also exhaust the
crash budget degrade to in-process serial execution rather than
aborting the campaign. ``KeyboardInterrupt`` cancels all pending
futures, terminates the workers, and propagates (the CLI turns it into
exit status 130). Every recovery is counted:
``resilience.retries{reason=...}``, ``resilience.timeouts``,
``resilience.pool_rebuilds``, ``resilience.isolation_fallbacks``,
``resilience.isolated_cells``, ``resilience.serial_fallbacks``,
``resilience.interrupted`` — and mirrored as events, which the unified
Chrome trace renders as instant markers.

Cell functions must be module-level (picklable) and take the worker's
runner as their first argument: ``fn(runner, *args)``.

``--jobs``/:data:`JOBS_ENV` semantics: ``1`` (default) runs serial in
the calling process, ``N > 1`` uses ``N`` workers, ``0`` means one
worker per CPU. Values beyond a sane cap (``max(16, 4 x cpu_count)``)
are rejected rather than silently spawning hundreds of workers.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool

from ..errors import ExperimentError
from ..telemetry import TELEMETRY
from .resilience import FaultPlan, RetryPolicy

JOBS_ENV = "REPRO_JOBS"

#: ``resolve_jobs`` rejects requests beyond ``max(MIN_JOBS_CAP,
#: MAX_JOBS_FACTOR * cpu_count)`` — fork bombs are a config error.
MAX_JOBS_FACTOR = 4
MIN_JOBS_CAP = 16

#: Exit status an injected ``worker_crash`` fault dies with.
CRASH_EXIT = 11

#: Version of the worker → parent telemetry payload. Bumped when the
#: shape of :func:`_run_cell`'s return value changes; the parent only
#: merges payloads whose schema it understands.
WIRE_SCHEMA = 2

#: Process-global pluggable executor. When set (see :func:`use_executor`),
#: :func:`fan_out` delegates whole item batches to it instead of the
#: local pool — this is how ``figures --distributed`` routes cells into
#: the lease-based work queue without changing any call site.
_ACTIVE_EXECUTOR = None

#: Worker-global runner, built once per process by :func:`_init_worker`.
_WORKER_RUNNER = None
#: Worker-global fault plan (None in the parent: injected worker faults
#: must never fire in the supervising process).
_WORKER_FAULTS: FaultPlan | None = None


def jobs_cap() -> int:
    """Largest accepted ``--jobs`` value on this machine."""
    return max(MIN_JOBS_CAP, MAX_JOBS_FACTOR * (os.cpu_count() or 1))


def resolve_jobs(jobs: int | None) -> int:
    """Turn a ``--jobs`` value (or None = consult the env) into a count."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ExperimentError(
                f"{JOBS_ENV} must be an integer, got {raw!r}") from None
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    cap = jobs_cap()
    if jobs > cap:
        raise ExperimentError(
            f"jobs={jobs} exceeds the sane cap of {cap} for this "
            f"machine ({os.cpu_count() or 1} CPUs); use 0 for one "
            "worker per CPU")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _init_worker(runner_params: dict, telemetry_on: bool,
                 fault_plan: FaultPlan) -> None:
    global _WORKER_RUNNER, _WORKER_FAULTS
    from .. import telemetry as telemetry_mod
    if telemetry_on:
        telemetry_mod.enable()
    # Forked workers inherit the parent's registry contents and the
    # parent's open span stack; reset so the payload shipped back
    # contains only this worker's own increments and spans.
    TELEMETRY.metrics.reset()
    TELEMETRY.tracer.reset()
    TELEMETRY.events.reset()
    from .runner import ExperimentRunner
    _WORKER_RUNNER = ExperimentRunner(**runner_params)
    _WORKER_FAULTS = fault_plan


def _run_cell(payload):
    fn, args, site, attempt = payload
    plan = _WORKER_FAULTS
    if plan:
        if plan.should_fire("worker_crash", site, attempt):
            os._exit(CRASH_EXIT)
        spec = plan.spec("cell_timeout")
        if spec is not None and plan.should_fire("cell_timeout", site,
                                                 attempt):
            time.sleep(spec.sleep_seconds)
    with TELEMETRY.tracer.span("cell", site=site, attempt=attempt):
        result = fn(_WORKER_RUNNER, *args)
    payload = {
        "schema": WIRE_SCHEMA,
        "result": result,
        "pid": os.getpid(),
        "site": site,
        "attempt": attempt,
        "metrics": TELEMETRY.metrics.dump(),
        "trace": TELEMETRY.tracer.export_state(),
    }
    TELEMETRY.metrics.reset()
    TELEMETRY.tracer.reset()
    return payload


@contextlib.contextmanager
def use_executor(executor):
    """Route every :func:`fan_out` in this process through ``executor``
    (an object with ``run(runner, fn, items) -> list``, e.g.
    :class:`~repro.experiments.queue.QueueExecutor` or the sweep
    server's per-request executor, which adds deadline/drain
    checkpoints between cells). ``None`` restores the local pool — the
    queue and serve executors use that to degrade to an ordinary
    supervised fan-out without recursing into themselves. The slot is
    process-global, so only one thread at a time may execute figure
    code under an installed executor (the sweep server guarantees this
    with its single scheduler thread)."""
    global _ACTIVE_EXECUTOR
    previous = _ACTIVE_EXECUTOR
    _ACTIVE_EXECUTOR = executor
    try:
        yield executor
    finally:
        _ACTIVE_EXECUTOR = previous


def active_executor():
    """The executor installed by :func:`use_executor`, or None."""
    return _ACTIVE_EXECUTOR


def fan_out(runner, fn, items, jobs: int | None = None,
            policy: RetryPolicy | None = None) -> list:
    """Run ``fn(runner, *args)`` for each args-tuple in ``items``.

    With one job (or one item) this is a plain serial loop on the
    caller's runner — no processes, no pickling, no fault injection.
    Otherwise cells run in a supervised fork-context pool (see the
    module docstring) and results return in submission order. An
    installed :func:`use_executor` executor takes precedence over both
    paths — even the serial one, because distributed cells should go to
    the fleet regardless of the local ``--jobs`` value.
    """
    items = [tuple(args) for args in items]
    if _ACTIVE_EXECUTOR is not None and items:
        return _ACTIVE_EXECUTOR.run(runner, fn, items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(runner, *args) for args in items]
    if policy is None:
        policy = RetryPolicy.from_env()
    supervisor = _Supervisor(runner, fn, items, jobs, policy,
                             FaultPlan.from_env())
    return supervisor.run()


class _PoolLost(Exception):
    """Internal: the pool died or was killed; rebuild and continue."""


def _terminate_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
    """Shut a pool down; ``kill`` terminates possibly-hung workers."""
    if not kill:
        pool.shutdown(wait=True)
        return
    # A worker may be hung (or mid-cell): cancel whatever has not
    # started and terminate the processes rather than joining them.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):
            pass
    for process in processes:
        try:
            process.join(timeout=5)
        except (OSError, ValueError, AssertionError):
            pass


class _Supervisor:
    """Drives one fan-out to completion through crashes and timeouts."""

    def __init__(self, runner, fn, items, jobs: int,
                 policy: RetryPolicy, faults: FaultPlan) -> None:
        self.runner = runner
        self.fn = fn
        self.items = items
        self.jobs = jobs
        self.policy = policy
        self.faults = faults
        self.params = runner.spawn_params()
        n = len(items)
        self.results: list = [None] * n
        self.dumps: list = [None] * n
        self.done = [False] * n
        #: Injection-site attempt counter (crashes and timeouts bump it
        #: so a deterministic fault does not re-fire forever).
        self.attempts = [0] * n
        self.error_counts = [0] * n
        self.timeout_counts = [0] * n
        self.pool: ProcessPoolExecutor | None = None
        self.rebuilds = 0

    # -- lifecycle -----------------------------------------------------

    def run(self) -> list:
        metrics = TELEMETRY.metrics
        try:
            while not all(self.done):
                if self.rebuilds > self.policy.max_pool_rebuilds:
                    self._finish_isolated()
                    break
                try:
                    self._round()
                except _PoolLost:
                    continue
        except KeyboardInterrupt:
            metrics.counter("resilience.interrupted").inc()
            TELEMETRY.events.emit("resilience.interrupted")
            raise
        finally:
            self._shutdown(kill=not all(self.done))
        # Merge telemetry in submission order so gauge last-writer-wins
        # matches what a serial run would have produced. Span forests go
        # to the worker-trace store for the unified Chrome trace; cells
        # finished by the serial fallback ran in-process on the parent's
        # own sinks and have no payload to merge.
        for payload in self.dumps:
            if not payload or payload.get("schema") != WIRE_SCHEMA:
                continue
            metrics.merge(payload["metrics"])
            TELEMETRY.workers.add({
                "pid": payload["pid"],
                "site": payload["site"],
                "attempt": payload["attempt"],
                "trace": payload["trace"],
            })
        return self.results

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            context = multiprocessing.get_context("fork")
            self.pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(self.items)),
                mp_context=context, initializer=_init_worker,
                initargs=(self.params, TELEMETRY.enabled, self.faults))
        return self.pool

    def _shutdown(self, kill: bool) -> None:
        pool, self.pool = self.pool, None
        if pool is not None:
            _terminate_pool(pool, kill)

    # -- one submission round ------------------------------------------

    def _site(self, index: int) -> str:
        fn = self.fn
        return f"{fn.__module__}.{fn.__qualname__}#{index}"

    def _payload(self, index: int):
        return (self.fn, self.items[index], self._site(index),
                self.attempts[index])

    def _submit(self, pool, index: int):
        try:
            return pool.submit(_run_cell, self._payload(index))
        except (BrokenProcessPool, RuntimeError) as exc:
            self._pool_lost(reason=repr(exc))
            raise _PoolLost from exc

    def _record(self, index: int, payload: dict) -> None:
        """Accept one cell's payload (result + worker telemetry)."""
        self.results[index] = payload["result"]
        self.dumps[index] = payload
        self.done[index] = True
        TELEMETRY.events.emit("cell.done", index=index,
                              site=payload["site"],
                              pid=payload["pid"],
                              attempt=payload["attempt"])

    def _harvest(self, futures: dict) -> None:
        """Record every future that finished before the pool died.

        A single crashed worker breaks the whole pool, but results that
        already crossed the pipe are intact — collecting them means a
        rebuild re-runs only the genuinely lost cells.
        """
        for index, future in futures.items():
            if self.done[index] or not future.done():
                continue
            if future.cancelled() or future.exception() is not None:
                continue
            self._record(index, future.result())

    def _round(self) -> None:
        pool = self._ensure_pool()
        pending = [i for i, finished in enumerate(self.done)
                   if not finished]
        futures = {i: self._submit(pool, i) for i in pending}
        for i in pending:
            while not self.done[i]:
                try:
                    payload = futures[i].result(
                        timeout=self.policy.timeout)
                except FuturesTimeout:
                    self._harvest(futures)
                    self._on_timeout(i)  # raises _PoolLost
                except BrokenProcessPool as exc:
                    self._harvest(futures)
                    self._pool_lost(reason=repr(exc))
                    raise _PoolLost from exc
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    self._on_error(i, exc)  # raises when out of budget
                    futures[i] = self._submit(pool, i)
                else:
                    self._record(i, payload)

    # -- failure handling ----------------------------------------------

    def _on_timeout(self, index: int) -> None:
        metrics = TELEMETRY.metrics
        metrics.counter("resilience.timeouts").inc()
        TELEMETRY.events.emit("resilience.timeout", site=self._site(index))
        self.timeout_counts[index] += 1
        self.attempts[index] += 1
        if self.timeout_counts[index] > self.policy.max_retries:
            raise ExperimentError(
                f"cell {self._site(index)} exceeded its "
                f"{self.policy.timeout}s timeout "
                f"{self.timeout_counts[index]} times; giving up")
        metrics.counter("resilience.retries", reason="timeout").inc()
        TELEMETRY.events.emit("resilience.retry", reason="timeout",
                              site=self._site(index))
        # The hung worker cannot be cancelled in place: kill the pool
        # and re-run every lost cell on a fresh one.
        self._pool_lost(reason="cell timeout", bump_attempts=False)
        raise _PoolLost

    def _on_error(self, index: int, exc: Exception) -> None:
        metrics = TELEMETRY.metrics
        self.error_counts[index] += 1
        self.attempts[index] += 1
        if self.error_counts[index] > self.policy.max_retries:
            metrics.counter("resilience.cell_failures").inc()
            raise ExperimentError(
                f"cell {self._site(index)} failed "
                f"{self.error_counts[index]} times "
                f"(last error: {exc!r}); giving up") from exc
        metrics.counter("resilience.retries", reason="error").inc()
        TELEMETRY.events.emit("resilience.retry", reason="error",
                              site=self._site(index), error=repr(exc))
        time.sleep(self.policy.backoff(self.error_counts[index]))

    def _pool_lost(self, reason: str, bump_attempts: bool = True) -> None:
        """Kill the (possibly broken) pool; schedule lost cells."""
        metrics = TELEMETRY.metrics
        metrics.counter("resilience.pool_rebuilds").inc()
        TELEMETRY.events.emit("resilience.pool_rebuild", reason=reason)
        self.rebuilds += 1
        if bump_attempts:
            for i, finished in enumerate(self.done):
                if not finished:
                    self.attempts[i] += 1
                    metrics.counter("resilience.retries",
                                    reason="crash").inc()
                    TELEMETRY.events.emit("resilience.retry",
                                          reason="crash",
                                          site=self._site(i))
        self._shutdown(kill=True)
        time.sleep(self.policy.backoff(self.rebuilds))

    # -- graceful degradation ------------------------------------------

    def _isolated_attempt(self, index: int) -> dict | None:
        """Run one cell alone in a fresh single-worker pool.

        Returns the payload, or None when the worker crashed or hung
        (the pool is torn down either way). Cell exceptions propagate:
        isolation is a crash-containment rung, not extra error budget.
        """
        context = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(
            max_workers=1, mp_context=context, initializer=_init_worker,
            initargs=(self.params, TELEMETRY.enabled, self.faults))
        lost = True
        try:
            payload = pool.submit(
                _run_cell,
                self._payload(index)).result(timeout=self.policy.timeout)
            lost = False
            return payload
        except FuturesTimeout:
            TELEMETRY.metrics.counter("resilience.timeouts").inc()
            TELEMETRY.events.emit("resilience.timeout",
                                  site=self._site(index), isolated=True)
            return None
        except (BrokenProcessPool, RuntimeError):
            return None
        finally:
            _terminate_pool(pool, kill=lost)

    def _finish_isolated(self) -> None:
        """Full-width pools keep dying: isolate the remaining cells.

        One cell per fresh single-worker pool, so an injected crash
        costs one cell-attempt instead of the whole wave — and the
        worker telemetry of every cell that does complete still ships
        back. A cell whose isolated attempts exhaust the crash budget
        degrades to in-process serial execution (worker-side fault
        injection never fires in the parent: ``_WORKER_FAULTS`` stays
        None there), so even a 100%-crash plan completes.
        """
        metrics = TELEMETRY.metrics
        metrics.counter("resilience.isolation_fallbacks").inc()
        TELEMETRY.events.emit("resilience.isolation_fallback",
                              remaining=self.done.count(False))
        serial_started = False
        for i, finished in enumerate(self.done):
            if finished:
                continue
            crashes = 0
            while not self.done[i] and crashes <= self.policy.max_retries:
                payload = self._isolated_attempt(i)
                if payload is None:
                    crashes += 1
                    self.attempts[i] += 1
                    metrics.counter("resilience.retries",
                                    reason="crash").inc()
                    TELEMETRY.events.emit("resilience.retry",
                                          reason="crash",
                                          site=self._site(i),
                                          isolated=True)
                    time.sleep(self.policy.backoff(crashes))
                else:
                    metrics.counter("resilience.isolated_cells").inc()
                    self._record(i, payload)
            if self.done[i]:
                continue
            if not serial_started:
                serial_started = True
                metrics.counter("resilience.serial_fallbacks").inc()
                TELEMETRY.events.emit("resilience.serial_fallback",
                                      remaining=self.done.count(False))
            metrics.counter("resilience.serial_cells").inc()
            self.results[i] = self.fn(self.runner, *self.items[i])
            self.done[i] = True
