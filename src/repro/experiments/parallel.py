"""Process-pool fan-out for independent experiment cells.

The figure harnesses iterate grids of independent (workload, config)
cells; :func:`fan_out` distributes those cells over a
``ProcessPoolExecutor`` while keeping three invariants the serial loops
rely on:

* **Determinism** — results come back in submission order (``map``),
  and each cell function is a pure function of its arguments plus the
  runner's construction parameters, so figure aggregation code sees
  exactly the sequence a serial loop would produce.
* **Telemetry** — each worker resets the metrics registry it inherited
  over ``fork`` (otherwise the parent's pre-fork counts would be merged
  back in again, double-counting), runs its cell, then ships a
  :meth:`~repro.telemetry.metrics.MetricsRegistry.dump` back with the
  result. The parent merges every dump so the run manifest covers the
  whole fan-out. Spans stay per-process; counters and histograms are
  what the bench assertions read.
* **Cache sharing** — workers build their own
  :class:`~repro.experiments.runner.ExperimentRunner` from
  :meth:`~repro.experiments.runner.ExperimentRunner.spawn_params`, so
  they inherit the parent's scale and its disk-cache root. Guest runs
  and memory-side states a worker computes are write-through persisted,
  which is how parallel work becomes visible to the parent (and to the
  next invocation) without shipping multi-megabyte traces over pipes.

Cell functions must be module-level (picklable) and take the worker's
runner as their first argument: ``fn(runner, *args)``.

``--jobs``/:data:`JOBS_ENV` semantics: ``1`` (default) runs serial in
the calling process, ``N > 1`` uses ``N`` workers, ``0`` means one
worker per CPU.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from ..errors import ExperimentError
from ..telemetry import TELEMETRY

JOBS_ENV = "REPRO_JOBS"

#: Worker-global runner, built once per process by :func:`_init_worker`.
_WORKER_RUNNER = None


def resolve_jobs(jobs: int | None) -> int:
    """Turn a ``--jobs`` value (or None = consult the env) into a count."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ExperimentError(
                f"{JOBS_ENV} must be an integer, got {raw!r}") from None
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _init_worker(runner_params: dict, telemetry_on: bool) -> None:
    global _WORKER_RUNNER
    from .. import telemetry as telemetry_mod
    if telemetry_on:
        telemetry_mod.enable()
    # Forked workers inherit the parent's registry contents; reset so the
    # dump shipped back contains only this worker's own increments.
    TELEMETRY.metrics.reset()
    from .runner import ExperimentRunner
    _WORKER_RUNNER = ExperimentRunner(**runner_params)


def _run_cell(payload):
    fn, args = payload
    result = fn(_WORKER_RUNNER, *args)
    dump = TELEMETRY.metrics.dump()
    TELEMETRY.metrics.reset()
    return result, dump


def fan_out(runner, fn, items, jobs: int | None = None) -> list:
    """Run ``fn(runner, *args)`` for each args-tuple in ``items``.

    With one job (or one item) this is a plain serial loop on the
    caller's runner — no processes, no pickling. Otherwise cells run in
    a fork-context pool and results return in submission order.
    """
    items = [tuple(args) for args in items]
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(runner, *args) for args in items]
    params = runner.spawn_params()
    context = multiprocessing.get_context("fork")
    results = []
    with ProcessPoolExecutor(
            max_workers=min(jobs, len(items)), mp_context=context,
            initializer=_init_worker,
            initargs=(params, TELEMETRY.enabled)) as pool:
        for result, dump in pool.map(
                _run_cell, [(fn, args) for args in items]):
            TELEMETRY.metrics.merge(dump)
            results.append(result)
    return results
