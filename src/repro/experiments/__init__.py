"""Experiment orchestration: one entry point per paper table/figure."""

from .runner import ExperimentRunner, RunHandle
from . import figures

__all__ = ["ExperimentRunner", "RunHandle", "figures"]
