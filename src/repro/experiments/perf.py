"""Perf-regression sentinel: ``python -m repro perf check|diff``.

``check`` runs a small fixed probe — a fresh (cache-bypassing) guest
run plus the two gated simulation stages on one reference workload —
reads the throughput gauges the production pipeline updates, appends a
``perf_probe`` record to the run registry, and compares the result
against the checked-in baseline in ``benchmarks/baselines/perf.json``.
A gauge below ``baseline / threshold`` (default threshold 2.0: a 2x
degradation) or a category share drifting more than
:data:`SHARE_TOLERANCE` fails the check with a nonzero exit — the
CI-able guardrail.

``diff`` compares the last two ``perf_probe`` records in the registry
(no new measurement, exit 0 always): the trajectory view.

Refresh the baseline on the target machine with ``repro perf check
--update`` (or ``REPRO_REFRESH_BASELINES=1``, matching
``benchmarks/test_throughput_gate.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..telemetry import TELEMETRY

#: Baseline file shared with the bench suite's conventions.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] \
    / "benchmarks" / "baselines" / "perf.json"

REFRESH_ENV = "REPRO_REFRESH_BASELINES"

PROBE_SCHEMA = 1

#: Reference cell: small enough for a CI smoke, big enough that the
#: vectorized stages dominate interpreter noise.
PROBE_WORKLOAD = "deltablue"
PROBE_RUNTIME = "cpython"
PROBE_SCALE = 2

#: Fail when a gauge drops below ``baseline / threshold``.
DEFAULT_THRESHOLD = 2.0

#: Fail when a category's share of cycles drifts more than this
#: (absolute) from the baseline breakdown.
SHARE_TOLERANCE = 0.15


def run_probe(repeats: int = 3) -> dict:
    """Measure the gated gauges once; append a registry record.

    Uses a cache-*disabled* runner so the guest run and both simulation
    stages actually execute (a disk hit would leave the gauges unset).
    Returns the probe record (also appended to the registry when
    telemetry is enabled).
    """
    from ..config import skylake_config
    from ..uarch.system import SimulatedSystem
    from ..analysis.breakdown import breakdown_for_run
    from .diskcache import DiskCache
    from .runner import ExperimentRunner

    runner = ExperimentRunner(scale=PROBE_SCALE,
                              disk_cache=DiskCache(None))
    with TELEMETRY.tracer.span("perf.probe", workload=PROBE_WORKLOAD):
        handle = runner.run(PROBE_WORKLOAD, runtime=PROBE_RUNTIME)
        config = skylake_config()
        system = SimulatedSystem(config)
        snapshot = TELEMETRY.metrics.snapshot
        gauges = {
            "guest": snapshot().get(
                "guest.instructions_per_second"
                f"{{runtime={PROBE_RUNTIME}}}", 0.0),
            "sim.memory_side": 0.0,
            "sim.core.ooo": 0.0,
        }
        state = None
        for _ in range(repeats):
            state = system.memory_side(handle.trace)
            gauges["sim.memory_side"] = max(
                gauges["sim.memory_side"],
                snapshot().get(
                    "sim.instructions_per_second{stage=memory_side}",
                    0.0))
        for _ in range(repeats):
            SimulatedSystem.run_many_configs(
                handle.trace, [config], [state])
            gauges["sim.core.ooo"] = max(
                gauges["sim.core.ooo"],
                snapshot().get(
                    "sim.instructions_per_second{stage=core.ooo}", 0.0))
        breakdown = breakdown_for_run(handle, config)
    categories = {str(category.name).lower(): breakdown.share(category)
                  for category in breakdown.cycles}

    record = {
        "schema": PROBE_SCHEMA,
        "kind": "perf_probe",
        "created_unix": time.time(),
        "command": "perf",
        "config": {"workload": PROBE_WORKLOAD, "runtime": PROBE_RUNTIME,
                   "scale": PROBE_SCALE, "repeats": repeats},
        "stats": {"host_instructions": handle.host_instructions,
                  "wall_seconds": handle.wall_seconds},
        "gauges": gauges,
        "categories": categories,
    }
    if TELEMETRY.enabled:
        from ..telemetry.registry import RunRegistry
        try:
            RunRegistry().append(record)
        except OSError:
            TELEMETRY.metrics.counter("registry.write_errors").inc()
    return record


def _delta_rows(current: dict, reference: dict,
                threshold: float) -> tuple[list[list[str]], list[str]]:
    """Delta table rows plus failure messages vs. a reference record."""
    rows: list[list[str]] = []
    failures: list[str] = []
    ref_gauges = reference.get("gauges", {}) or {}
    cur_gauges = current.get("gauges", {}) or {}
    for name in sorted(ref_gauges):
        base = float(ref_gauges[name])
        value = float(cur_gauges.get(name, 0.0))
        ratio = value / base if base else float("inf")
        status = "ok"
        if base and value < base / threshold:
            status = "FAIL"
            failures.append(
                f"gauge {name}: {value:,.0f} instr/s is below "
                f"1/{threshold:g} of baseline {base:,.0f}")
        rows.append([name, f"{base:,.0f}", f"{value:,.0f}",
                     f"{ratio:.2f}x", status])
    ref_shares = reference.get("categories", {}) or {}
    cur_shares = current.get("categories", {}) or {}
    for name in sorted(set(ref_shares) | set(cur_shares)):
        base = float(ref_shares.get(name, 0.0))
        value = float(cur_shares.get(name, 0.0))
        drift = value - base
        status = "ok"
        if abs(drift) > SHARE_TOLERANCE:
            status = "FAIL"
            failures.append(
                f"category {name}: share drifted {drift:+.1%} "
                f"(tolerance ±{SHARE_TOLERANCE:.0%})")
        rows.append([f"share:{name}", f"{base:.1%}", f"{value:.1%}",
                     f"{drift:+.1%}", status])
    return rows, failures


def check(baseline_path: str | Path | None = None,
          threshold: float = DEFAULT_THRESHOLD,
          update: bool = False, probe: bool = True,
          emit=print) -> int:
    """Probe, compare against the checked-in baseline, exit-code style.

    ``update=True`` (or ``REPRO_REFRESH_BASELINES=1``) rewrites the
    baseline from the measurement instead of gating. ``probe=False``
    reuses the registry's most recent ``perf_probe`` record.
    """
    from ..analysis.report import render_table
    path = Path(baseline_path) if baseline_path is not None \
        else DEFAULT_BASELINE
    if probe:
        record = run_probe()
    else:
        from ..telemetry.registry import RunRegistry
        record = RunRegistry().last(kind="perf_probe")
        if record is None:
            emit("perf check: no perf_probe record in the registry; "
             "run without --no-probe first")
            return 1
    refresh = os.environ.get(REFRESH_ENV, "").strip() not in ("", "0")
    if update or refresh:
        path.parent.mkdir(parents=True, exist_ok=True)
        baseline = {key: record[key] for key in
                    ("schema", "config", "gauges", "categories")}
        path.write_text(json.dumps(baseline, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        emit(f"perf check: baseline refreshed at {path}")
        return 0
    if not path.exists():
        emit(f"perf check: no baseline at {path}; "
             "create one with --update")
        return 1
    baseline = json.loads(path.read_text(encoding="utf-8"))
    rows, failures = _delta_rows(record, baseline, threshold)
    emit(render_table(
        ["metric", "baseline", "measured", "ratio/drift", "status"],
        rows, title=f"perf check vs {path.name} "
                    f"(gate: 1/{threshold:g} of baseline)"))
    if failures:
        for failure in failures:
            emit(f"FAIL: {failure}")
        emit(f"refresh with `repro perf check --update` if this "
             f"machine legitimately changed")
        return 1
    emit("perf check: all gauges within threshold")
    return 0


def diff(emit=print) -> int:
    """Compare the two most recent probes in the registry (exit 0)."""
    from ..analysis.report import render_table
    from ..telemetry.registry import RunRegistry
    records = [record for record in RunRegistry().records()
               if record.get("kind") == "perf_probe"]
    if len(records) < 2:
        emit(f"perf diff: need two perf_probe records, have "
             f"{len(records)}; run `repro perf check` to add one")
        return 0
    previous, current = records[-2], records[-1]
    rows, _ = _delta_rows(current, previous,
                          threshold=float("inf"))
    emit(render_table(
        ["metric", f"seq {previous.get('seq')}",
         f"seq {current.get('seq')}", "ratio/drift", "status"],
        rows, title="perf diff: last two probes"))
    return 0
