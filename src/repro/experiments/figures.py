"""One regeneration entry point per paper table and figure.

Every function returns a :class:`FigureResult` whose ``rendered`` field
is the plain-text equivalent of the paper's plot (same rows/series) and
whose ``data`` field holds the raw numbers for assertions in the bench
suite. ``quick=True`` (the default) trims workload sets and sweep grids
to bench-friendly sizes; ``quick=False`` reproduces the full grids.

Absolute magnitudes differ from the paper (our substrate is a
first-order model, theirs was Zsim on x86 traces); the *shapes* — which
categories dominate, who is sensitive to what, where the nursery
crossovers fall — are the reproduction targets recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from ..analysis.breakdown import (
    average_shares,
    breakdown_for_run,
    indirect_call_fraction,
    suite_breakdowns,
)
from ..analysis.nursery import (
    NURSERY_RATIOS,
    QUICK_RATIOS,
    best_nursery_improvement,
    normalized,
    nursery_sweep,
    paper_equivalent_label,
    sweep_memo,
    sweep_memo_key,
)
from ..analysis.report import format_percent, render_series, render_table
from ..analysis.sweeps import (
    SWEEP_AXES,
    axis_config,
    phase_cpis,
    quick_axes,
    run_sweep,
)
from ..categories import (
    CATEGORY_INFO,
    INTERPRETER_CATEGORIES,
    LANGUAGE_FEATURE_CATEGORIES,
    OverheadCategory,
    label_of,
)
from ..config import scaled_config, skylake_config
from ..telemetry import TELEMETRY
from ..vm.v8.workloads import JS_SUITE
from ..workloads import (
    BREAKDOWN_QUICK_SUITE,
    NURSERY_BENCHMARKS,
    PYTHON_SUITE,
    SWEEP_BENCHMARKS,
)
from .parallel import fan_out
from .runner import ExperimentRunner, memory_side_key

MB = 1024 * 1024

#: Default machine scale for the nursery studies (LLC = 64 kB; the
#: paper's 512k..128M nursery axis maps to ratios of this LLC).
NURSERY_SHIFT = 5

#: Guest workload scale for the nursery studies: allocation volumes must
#: comfortably exceed the scaled LLC.
NURSERY_SCALE = 2

_JS_QUICK = ("richards", "splay", "hash-map", "crypto", "n-body",
             "tagcloud", "delta-blue", "quicksort.c")


@dataclass
class FigureResult:
    """Rendered text plus raw data for one regenerated table/figure."""

    figure_id: str
    title: str
    rendered: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.figure_id}: {self.title} ==\n{self.rendered}"


def _runner(runner: ExperimentRunner | None, scale: int = 1,
            ) -> ExperimentRunner:
    return runner if runner is not None else ExperimentRunner(scale=scale)


def _traced(func):
    """Wrap a figure entry point in one telemetry span (``figure.<id>``).

    Also brackets the span with ``figure.begin``/``figure.end`` instant
    events, which mark the figure boundaries on the unified Chrome
    trace's timeline.
    """

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        TELEMETRY.events.emit("figure.begin", figure=func.__name__)
        try:
            with TELEMETRY.tracer.span(f"figure.{func.__name__}"):
                return func(*args, **kwargs)
        finally:
            TELEMETRY.events.emit("figure.end", figure=func.__name__)

    return wrapper


# ----------------------------------------------------------------------
# Parallel fan-out cells
#
# Each figure's grid loop stays serial (that is where floats are summed,
# so its order fixes the output bytes); with jobs > 1 the independent
# (workload, config) cells below are computed first, in worker
# processes, and their results seeded into the runner's memo/caches.
# Cells return plain picklable values and are module-level functions so
# the process pool can ship them.
# ----------------------------------------------------------------------

def _sweep_cell(runner: ExperimentRunner, kwargs: dict):
    return nursery_sweep(runner, **kwargs)


def _prefetch_sweeps(runner: ExperimentRunner, cells: list[dict],
                     jobs: int | None) -> None:
    """Compute nursery sweeps in parallel and seed the runner's memo.

    After this, the figure's serial ``nursery_sweep`` calls are memo
    hits, so aggregation order — and therefore output bytes — are
    identical to a fully serial run.
    """
    from .parallel import active_executor, resolve_jobs
    # One trace and one memory-side state per (sweep cell, ratio point):
    # size the runner's caches to the figure's own grid up front.
    points = sum(len(cell.get("ratios", NURSERY_RATIOS))
                 for cell in cells)
    runner.ensure_cache_capacity(traces=points, states=points)
    if resolve_jobs(jobs) <= 1 and active_executor() is None:
        return
    memo = sweep_memo(runner)
    pending = [cell for cell in cells
               if sweep_memo_key(**cell) not in memo]
    results = fan_out(runner, _sweep_cell, [(c,) for c in pending], jobs)
    for cell, points in zip(pending, results):
        memo[sweep_memo_key(**cell)] = points


def _breakdown_cell(runner: ExperimentRunner, workload: str,
                    runtime: str):
    """(C-call share) of one workload — Figures 5 and 6."""
    handle = runner.run(workload, runtime=runtime, jit=True,
                        nursery=1 * MB)
    return breakdown_for_run(handle).c_function_call_share


def _fig4_cell(runner: ExperimentRunner, workload: str):
    handle = runner.run(workload, runtime="cpython")
    of_ccall, of_total = indirect_call_fraction(handle)
    return breakdown_for_run(handle), of_ccall, of_total


def _fig7_phase_cell(runner: ExperimentRunner, workload: str):
    handle = runner.run(workload, runtime="pypy", jit=True,
                        nursery=1 * MB)
    return phase_cpis(handle)


def _fig8_cell(runner: ExperimentRunner, workload: str, axis: str,
               values: tuple, base):
    handle = runner.run(workload, runtime="pypy", jit=True,
                        nursery=1 * MB)
    configs = [axis_config(base, axis, value) for value in values]
    return [sim.cpi
            for sim in runner.simulate_many_configs(handle, configs,
                                                    core="ooo")]


def _fig13_cell(runner: ExperimentRunner, workload: str, jit: bool,
                nursery: int, config):
    handle = runner.run(workload, runtime="pypy", jit=jit,
                        nursery=nursery)
    return breakdown_for_run(handle, config).gc_share


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

@_traced
def table1() -> FigureResult:
    """Table I: the simulated machine configuration."""
    config = skylake_config()
    rows = [
        ["Core", f"{config.core.issue_width}-way OOO, "
                 f"{config.core.fetch_bytes}B fetch, "
                 f"{config.memory.frequency_ghz}GHz"],
        ["", f"{config.core.rob_entries} ROB, "
             f"{config.core.load_queue} Load-Q, "
             f"{config.core.store_queue} Store-Q"],
        ["Branch", "2-level 2-bit BP with "
                   f"{config.branch.l1_entries}x"
                   f"{config.branch.history_bits}b L1, "
                   f"{config.branch.l2_entries}x2b L2"],
        ["L1I", f"{config.l1i.size // 1024} kB, {config.l1i.ways}-way, "
                f"{config.l1i.latency}-cycle latency"],
        ["L1D", f"{config.l1d.size // 1024} kB, {config.l1d.ways}-way, "
                f"{config.l1d.latency}-cycle latency"],
        ["L2", f"{config.l2.size // 1024} kB, {config.l2.ways}-way, "
               f"{config.l2.latency}-cycle latency"],
        ["L3", f"{config.l3.size // MB} MB, {config.l3.ways}-way, "
               f"{config.l3.latency}-cycle latency"],
        ["Memory", f"DDR4, {config.memory.bandwidth_mbps} MBps, "
                   f"{config.memory.latency}-cycle latency"],
    ]
    rendered = render_table(["component", "configuration"], rows,
                            title="ZSim-analog configuration (Table I)")
    return FigureResult("table1", "machine configuration", rendered,
                        {"config": config})


@_traced
def table2() -> FigureResult:
    """Table II: the overhead taxonomy."""
    rows = []
    for category, info in CATEGORY_INFO.items():
        if category in (OverheadCategory.UNRESOLVED,
                        OverheadCategory.JIT_COMPILING,
                        OverheadCategory.JIT_COMPILED_CODE):
            continue
        rows.append([info.group.value, info.label,
                     "NEW" if info.new_in_paper else "",
                     info.description])
    rendered = render_table(["group", "category", "new", "description"],
                            rows, title="Sources of overhead (Table II)")
    return FigureResult("table2", "overhead taxonomy", rendered,
                        {"categories": list(CATEGORY_INFO)})


# ----------------------------------------------------------------------
# Figures 4-6: breakdowns
# ----------------------------------------------------------------------

@_traced
def fig4(runner: ExperimentRunner | None = None, quick: bool = True,
         jobs: int | None = None) -> FigureResult:
    """Figure 4: CPython overhead breakdown (language + interpreter)."""
    runner = _runner(runner)
    workloads = BREAKDOWN_QUICK_SUITE if quick else PYTHON_SUITE
    cells = fan_out(runner, _fig4_cell, [(name,) for name in workloads],
                    jobs)
    breakdowns = {name: cell[0]
                  for name, cell in zip(workloads, cells)}
    averages = average_shares(breakdowns)

    def table_for(categories, title):
        headers = ["workload"] + [label_of(c) for c in categories] \
            + ["group total"]
        rows = []
        for name, bd in breakdowns.items():
            rows.append([name]
                        + [format_percent(bd.share(c)) for c in categories]
                        + [format_percent(bd.group_share(categories))])
        avg_row = ["AVG"] + [
            format_percent(averages.get(c, 0.0)) for c in categories]
        avg_row.append(format_percent(
            sum(averages.get(c, 0.0) for c in categories)))
        rows.append(avg_row)
        return render_table(headers, rows, title=title)

    part_a = table_for(LANGUAGE_FEATURE_CATEGORIES,
                       "Figure 4(a): language features, % of execution")
    part_b = table_for(INTERPRETER_CATEGORIES,
                       "Figure 4(b): interpreter operations, "
                       "% of execution")
    overhead_avg = sum(averages.get(c, 0.0)
                       for c in LANGUAGE_FEATURE_CATEGORIES
                       + INTERPRETER_CATEGORIES)
    clib_avg = sum(bd.c_library_share for bd in breakdowns.values()) \
        / len(breakdowns)
    # Indirect-call share of the C function call overhead (IV-C.1).
    ind_of_ccall = ind_of_total = 0.0
    for _, of_ccall, of_total in cells:
        ind_of_ccall += of_ccall
        ind_of_total += of_total
    ind_of_ccall /= len(workloads)
    ind_of_total /= len(workloads)
    summary = (
        f"identified overhead: {format_percent(overhead_avg)} of execution "
        f"(paper: 64.9%) -> >= {1.0 / max(1e-9, 1 - overhead_avg):.1f}x "
        "over a C-like program\n"
        f"C library time: {format_percent(clib_avg)} average "
        "(paper: 7.0%)\n"
        f"indirect calls: {format_percent(ind_of_ccall)} of C-call "
        f"overhead, {format_percent(ind_of_total)} of total "
        "(paper: 11.9% / 1.9%)")
    rendered = "\n\n".join([part_a, part_b, summary])
    return FigureResult("fig4", "CPython overhead breakdown", rendered, {
        "breakdowns": breakdowns,
        "averages": averages,
        "overhead_avg": overhead_avg,
        "c_library_avg": clib_avg,
        "indirect_of_ccall": ind_of_ccall,
        "indirect_of_total": ind_of_total,
    })


def _ccall_figure(figure_id: str, title: str, runner: ExperimentRunner,
                  workloads, runtime: str,
                  jobs: int | None = None) -> FigureResult:
    values = fan_out(runner, _breakdown_cell,
                     [(name, runtime) for name in workloads], jobs)
    shares = dict(zip(workloads, values))
    average = sum(shares.values()) / len(shares)
    rows = [[name, format_percent(share)]
            for name, share in shares.items()]
    rows.append(["AVG", format_percent(average)])
    rendered = render_table(["workload", "C function call overhead"],
                            rows, title=title)
    return FigureResult(figure_id, title, rendered,
                        {"shares": shares, "average": average})


@_traced
def fig5(runner: ExperimentRunner | None = None, quick: bool = True,
         jobs: int | None = None) -> FigureResult:
    """Figure 5: C function call overhead for PyPy (with JIT)."""
    runner = _runner(runner)
    workloads = BREAKDOWN_QUICK_SUITE if quick else PYTHON_SUITE
    return _ccall_figure(
        "fig5", "C function call overhead for PyPy (paper avg: 7.5%)",
        runner, workloads, "pypy", jobs=jobs)


@_traced
def fig6(runner: ExperimentRunner | None = None, quick: bool = True,
         jobs: int | None = None) -> FigureResult:
    """Figure 6: C function call overhead for V8."""
    runner = _runner(runner)
    workloads = _JS_QUICK if quick else JS_SUITE
    return _ccall_figure(
        "fig6", "C function call overhead for V8 (paper avg: 5.6%)",
        runner, workloads, "v8", jobs=jobs)


# ----------------------------------------------------------------------
# Figures 7-9: microarchitecture sweeps
# ----------------------------------------------------------------------

@_traced
def fig7(runner: ExperimentRunner | None = None, quick: bool = True,
         jobs: int | None = None) -> FigureResult:
    """Figure 7: average CPI vs microarchitecture parameters."""
    runner = _runner(runner)
    workloads = SWEEP_BENCHMARKS[:4] if quick else SWEEP_BENCHMARKS
    axes = quick_axes() if quick else None
    sweep = run_sweep(runner, workloads, axes=axes, jobs=jobs)
    sections = []
    for axis in sweep.axes:
        labels = [str(v) for v in sweep.axis_values(axis)]
        sections.append(render_series(
            f"Figure 7 ({axis}): average CPI", labels,
            sweep.series(axis)))
    # PyPy-with-JIT phase breakdown at the baseline machine.
    phase_sums: dict[str, float] = {}
    for per_workload in fan_out(runner, _fig7_phase_cell,
                                [(name,) for name in workloads], jobs):
        for phase, cpi in per_workload.items():
            phase_sums[phase] = phase_sums.get(phase, 0.0) + cpi
    phases = {k: v / len(workloads) for k, v in phase_sums.items()}
    sections.append(render_table(
        ["phase", "simple-core CPI"],
        [[k, f"{v:.3f}"] for k, v in phases.items()],
        title="PyPy w/ JIT execution phases (baseline machine)"))
    rendered = "\n\n".join(sections)
    return FigureResult("fig7", "CPI microarchitecture sweeps", rendered,
                        {"sweep": sweep, "phases": phases})


@_traced
def fig8(runner: ExperimentRunner | None = None, quick: bool = True,
         jobs: int | None = None) -> FigureResult:
    """Figure 8: per-benchmark CPI sweeps for PyPy with JIT."""
    runner = _runner(runner)
    workloads = SWEEP_BENCHMARKS[:4] if quick else SWEEP_BENCHMARKS
    axes = quick_axes() if quick else {
        name: values for name, (values, _) in SWEEP_AXES.items()}
    base = skylake_config()
    cells = [(workload, axis, values, base)
             for axis, values in axes.items()
             for workload in workloads]
    mem_keys = {memory_side_key(axis_config(base, axis, value))
                for axis, values in axes.items() for value in values}
    runner.ensure_cache_capacity(
        traces=len(workloads), states=len(workloads) * len(mem_keys))
    results = fan_out(runner, _fig8_cell, cells, jobs)
    cpis_by_cell = {(axis, workload): cpis
                    for (workload, axis, _, _), cpis
                    in zip(cells, results)}
    sections = []
    data: dict[str, dict[str, list[float]]] = {}
    for axis, values in axes.items():
        series = {workload: cpis_by_cell[(axis, workload)]
                  for workload in workloads}
        data[axis] = series
        sections.append(render_series(
            f"Figure 8 ({axis}): per-benchmark CPI, PyPy w/ JIT",
            [str(v) for v in values], series))
    return FigureResult("fig8", "per-benchmark CPI sweeps",
                        "\n\n".join(sections), {"series": data})


@_traced
def fig9(runner: ExperimentRunner | None = None, quick: bool = True,
         jobs: int | None = None) -> FigureResult:
    """Figure 9: average CPI sweeps for V8."""
    runner = _runner(runner)
    workloads = _JS_QUICK[:4] if quick else JS_SUITE
    axes = quick_axes() if quick else None
    sweep = run_sweep(runner, workloads,
                      variants=(("v8", "v8", True),), axes=axes,
                      jobs=jobs)
    sections = []
    for axis in sweep.axes:
        labels = [str(v) for v in sweep.axis_values(axis)]
        sections.append(render_series(
            f"Figure 9 ({axis}): V8 average CPI", labels,
            sweep.series(axis)))
    return FigureResult("fig9", "V8 CPI sweeps", "\n\n".join(sections),
                        {"sweep": sweep})


# ----------------------------------------------------------------------
# Figures 10-17: nursery studies
# ----------------------------------------------------------------------

def _nursery_runner(runner: ExperimentRunner | None) -> ExperimentRunner:
    if runner is not None:
        return runner
    return ExperimentRunner(scale=NURSERY_SCALE)


def _nursery_ratios(quick: bool):
    return QUICK_RATIOS if quick else NURSERY_RATIOS


def _nursery_workloads(quick: bool):
    return NURSERY_BENCHMARKS[:4] if quick else NURSERY_BENCHMARKS


@_traced
def fig10(runner: ExperimentRunner | None = None, quick: bool = True,
          jobs: int | None = None) -> FigureResult:
    """Figure 10: LLC miss rate as a function of nursery size."""
    runner = _nursery_runner(runner)
    ratios = _nursery_ratios(quick)
    workloads = _nursery_workloads(quick)
    config = scaled_config(NURSERY_SHIFT)
    _prefetch_sweeps(runner,
                     [dict(workload=w, jit=True, ratios=ratios,
                           config=config) for w in workloads], jobs)
    sums = [0.0] * len(ratios)
    for workload in workloads:
        points = nursery_sweep(runner, workload, jit=True, ratios=ratios,
                               config=config)
        for i, point in enumerate(points):
            sums[i] += point.llc_miss_rate
    rates = [s / len(workloads) for s in sums]
    labels = [paper_equivalent_label(r) for r in ratios]
    rendered = render_series(
        "Figure 10: LLC miss rate vs nursery size "
        "(paper-equivalent labels; 2M = one LLC)",
        labels, {"miss_rate_%": [100 * r for r in rates]},
        value_format="{:.1f}")
    small = [r for ratio, r in zip(ratios, rates) if ratio <= 0.5]
    large = [r for ratio, r in zip(ratios, rates) if ratio >= 2.0]
    jump = (sum(large) / len(large)) / max(1e-9, sum(small) / len(small)) \
        if small and large else 0.0
    return FigureResult("fig10", "LLC miss rate vs nursery size",
                        rendered + f"\nmiss-rate jump past LLC: "
                        f"{jump:.1f}x (paper: ~2.4x)",
                        {"ratios": ratios, "rates": rates, "jump": jump})


@_traced
def fig11(runner: ExperimentRunner | None = None, quick: bool = True,
          jobs: int | None = None) -> FigureResult:
    """Figure 11: GC / non-GC / overall time vs nursery size."""
    runner = _nursery_runner(runner)
    ratios = _nursery_ratios(quick)
    workloads = _nursery_workloads(quick)
    config = scaled_config(NURSERY_SHIFT)
    _prefetch_sweeps(runner,
                     [dict(workload=w, jit=True, ratios=ratios,
                           config=config) for w in workloads], jobs)
    gc = [0.0] * len(ratios)
    nongc = [0.0] * len(ratios)
    overall = [0.0] * len(ratios)
    for workload in workloads:
        points = nursery_sweep(runner, workload, jit=True, ratios=ratios,
                               config=config)
        base = next((p.simple_cycles for p in points if p.ratio == 0.5),
                    points[0].simple_cycles)
        for i, point in enumerate(points):
            gc[i] += point.gc_cycles / base
            nongc[i] += point.nongc_cycles / base
            overall[i] += point.simple_cycles / base
    n = len(workloads)
    series = {"GC": [v / n for v in gc],
              "Non-GC": [v / n for v in nongc],
              "Overall": [v / n for v in overall]}
    labels = [paper_equivalent_label(r) for r in ratios]
    rendered = render_series(
        "Figure 11: execution breakdown vs nursery size "
        "(normalized to the half-LLC nursery)", labels, series)
    return FigureResult("fig11", "GC/non-GC breakdown vs nursery",
                        rendered, {"ratios": ratios, "series": series})


@_traced
def fig12(runner: ExperimentRunner | None = None, quick: bool = True,
          jobs: int | None = None) -> FigureResult:
    """Figure 12: nursery sweep for run-time configs and LLC sizes."""
    runner = _nursery_runner(runner)
    ratios = _nursery_ratios(quick)
    workloads = _nursery_workloads(quick)
    base_llc = scaled_config(NURSERY_SHIFT).l3.size
    configs = [
        ("w/o JIT 2MB LLC", False, scaled_config(NURSERY_SHIFT)),
        ("w/ JIT 2MB LLC", True, scaled_config(NURSERY_SHIFT)),
        ("w/ JIT 4MB LLC", True,
         scaled_config(NURSERY_SHIFT).with_llc_size(base_llc * 2)),
        ("w/ JIT 8MB LLC", True,
         scaled_config(NURSERY_SHIFT).with_llc_size(base_llc * 4)),
    ]
    _prefetch_sweeps(runner,
                     [dict(workload=w, jit=jit, ratios=ratios,
                           config=config, ratio_base=base_llc)
                      for _, jit, config in configs
                      for w in workloads], jobs)
    series: dict[str, list[float]] = {}
    for label, jit, config in configs:
        sums = [0.0] * len(ratios)
        for workload in workloads:
            # Nursery sizes stay relative to the *baseline* LLC so larger
            # caches shift the crossover, exactly as in the paper.
            points = nursery_sweep(
                runner, workload, jit=jit, ratios=ratios, config=config,
                ratio_base=base_llc)
            norm = normalized(points)
            for i, value in enumerate(norm):
                sums[i] += value
        series[label] = [s / len(workloads) for s in sums]
    labels = [paper_equivalent_label(r) for r in ratios]
    rendered = render_series(
        "Figure 12: normalized time vs nursery size per configuration",
        labels, series)
    return FigureResult("fig12", "nursery sweep per configuration",
                        rendered, {"ratios": ratios, "series": series})


@_traced
def fig13(runner: ExperimentRunner | None = None, quick: bool = True,
          jobs: int | None = None) -> FigureResult:
    """Figure 13: GC time as a percentage of execution, w/o vs w/ JIT."""
    runner = _nursery_runner(runner)
    workloads = _nursery_workloads(quick) if quick else PYTHON_SUITE
    config = scaled_config(NURSERY_SHIFT)
    nursery = config.l3.size // 2
    variants = (("nojit", False), ("jit", True))
    cells = [(workload, jit, nursery, config)
             for workload in workloads
             for _, jit in variants]
    gc_shares = fan_out(runner, _fig13_cell, cells, jobs)
    rows = []
    shares = {"nojit": {}, "jit": {}}
    for (workload, _, _, _), (key, _), gc_share in zip(
            cells, list(variants) * len(workloads), gc_shares):
        shares[key][workload] = gc_share
    for workload in workloads:
        rows.append([workload,
                     format_percent(shares["nojit"][workload]),
                     format_percent(shares["jit"][workload])])
    avg_nojit = sum(shares["nojit"].values()) / len(workloads)
    avg_jit = sum(shares["jit"].values()) / len(workloads)
    rows.append(["AVG", format_percent(avg_nojit),
                 format_percent(avg_jit)])
    rendered = render_table(
        ["workload", "GC % (w/o JIT)", "GC % (w/ JIT)"], rows,
        title="Figure 13: garbage collection share of execution "
              "(paper: 3% -> 14% average)")
    return FigureResult("fig13", "GC share w/o vs w/ JIT", rendered, {
        "shares": shares, "avg_nojit": avg_nojit, "avg_jit": avg_jit})


def _per_benchmark_nursery(figure_id: str, title: str, jit: bool,
                           runner: ExperimentRunner | None,
                           quick: bool,
                           jobs: int | None = None) -> FigureResult:
    runner = _nursery_runner(runner)
    ratios = _nursery_ratios(quick)
    workloads = _nursery_workloads(quick)
    config = scaled_config(NURSERY_SHIFT)
    _prefetch_sweeps(runner,
                     [dict(workload=w, jit=jit, ratios=ratios,
                           config=config) for w in workloads], jobs)
    series: dict[str, list[float]] = {}
    for workload in workloads:
        points = nursery_sweep(runner, workload, jit=jit, ratios=ratios,
                               config=config)
        series[workload] = normalized(points)
    labels = [paper_equivalent_label(r) for r in ratios]
    rendered = render_series(title, labels, series)
    return FigureResult(figure_id, title, rendered,
                        {"ratios": ratios, "series": series})


@_traced
def fig14(runner: ExperimentRunner | None = None, quick: bool = True,
          jobs: int | None = None) -> FigureResult:
    """Figure 14: per-benchmark nursery sweep, PyPy with JIT."""
    return _per_benchmark_nursery(
        "fig14", "Figure 14: normalized time vs nursery (PyPy w/ JIT)",
        True, runner, quick, jobs=jobs)


@_traced
def fig15(runner: ExperimentRunner | None = None, quick: bool = True,
          jobs: int | None = None) -> FigureResult:
    """Figure 15: per-benchmark nursery sweep, PyPy without JIT."""
    return _per_benchmark_nursery(
        "fig15", "Figure 15: normalized time vs nursery (PyPy w/o JIT)",
        False, runner, quick, jobs=jobs)


@_traced
def fig16(runner: ExperimentRunner | None = None, quick: bool = True,
          jobs: int | None = None) -> FigureResult:
    """Figure 16: nursery sweep for V8 with different LLC sizes."""
    runner = _runner(runner, scale=1)
    ratios = _nursery_ratios(quick)
    workloads = _JS_QUICK[:4] if quick else _JS_QUICK
    base_llc = scaled_config(NURSERY_SHIFT).l3.size
    llc_points = (("2MB LLC", 1), ("4MB LLC", 2), ("8MB LLC", 4))
    _prefetch_sweeps(runner,
                     [dict(workload=w, jit=True, runtime="v8",
                           ratios=ratios,
                           config=scaled_config(NURSERY_SHIFT)
                           .with_llc_size(base_llc * multiplier),
                           ratio_base=base_llc)
                      for _, multiplier in llc_points
                      for w in workloads], jobs)
    series: dict[str, list[float]] = {}
    for label, multiplier in llc_points:
        config = scaled_config(NURSERY_SHIFT).with_llc_size(
            base_llc * multiplier)
        sums = [0.0] * len(ratios)
        for workload in workloads:
            points = nursery_sweep(runner, workload, jit=True,
                                   runtime="v8", ratios=ratios,
                                   config=config, ratio_base=base_llc)
            norm = normalized(points)
            for i, value in enumerate(norm):
                sums[i] += value
        series[label] = [s / len(workloads) for s in sums]
    labels = [paper_equivalent_label(r) for r in ratios]
    rendered = render_series(
        "Figure 16: V8 normalized time vs nursery size per LLC size",
        labels, series)
    return FigureResult("fig16", "V8 nursery sweep", rendered,
                        {"ratios": ratios, "series": series})


@_traced
def fig17(runner: ExperimentRunner | None = None, quick: bool = True,
          jobs: int | None = None) -> FigureResult:
    """Figure 17: best nursery size per application."""
    runner = _nursery_runner(runner)
    ratios = _nursery_ratios(quick)
    workloads = _nursery_workloads(quick)
    config = scaled_config(NURSERY_SHIFT)
    _prefetch_sweeps(runner,
                     [dict(workload=w, jit=True, ratios=ratios,
                           config=config) for w in workloads], jobs)
    sweeps = {}
    for workload in workloads:
        sweeps[workload] = nursery_sweep(runner, workload, jit=True,
                                         ratios=ratios, config=config)
    summary = best_nursery_improvement(sweeps)
    rows = [[name, f"{value:.3f}"]
            for name, value in summary["per_workload"].items()]
    rows.append(["AVG best-per-app improvement",
                 format_percent(summary["best_improvement"])])
    rows.append(["AVG max-nursery improvement",
                 format_percent(summary["max_nursery_improvement"])])
    rendered = render_table(
        ["workload", "best normalized time"], rows,
        title="Figure 17: best nursery per app vs static half-cache "
              "sizing (paper: 21.4% vs 9.8%)")
    return FigureResult("fig17", "best nursery per application", rendered,
                        {"summary": summary, "sweeps": sweeps})


#: Every regeneration entry point, keyed by id.
ALL_FIGURES = {
    "table1": table1, "table2": table2,
    "fig4": fig4, "fig5": fig5, "fig6": fig6, "fig7": fig7,
    "fig8": fig8, "fig9": fig9, "fig10": fig10, "fig11": fig11,
    "fig12": fig12, "fig13": fig13, "fig14": fig14, "fig15": fig15,
    "fig16": fig16, "fig17": fig17,
}

#: Runner scale each figure builds its default runner with (None for
#: the tables, which take no runner). The ``figures --all`` campaign
#: driver shares one runner per scale across figures so the in-memory
#: caches stay warm between figures of the same family.
FIGURE_SCALES = {
    "table1": None, "table2": None,
    "fig4": 1, "fig5": 1, "fig6": 1, "fig7": 1, "fig8": 1, "fig9": 1,
    "fig10": NURSERY_SCALE, "fig11": NURSERY_SCALE,
    "fig12": NURSERY_SCALE, "fig13": NURSERY_SCALE,
    "fig14": NURSERY_SCALE, "fig15": NURSERY_SCALE,
    "fig16": 1, "fig17": NURSERY_SCALE,
}


def figure_scale(name: str) -> int | None:
    """Runner scale for one figure id (None = takes no runner)."""
    return FIGURE_SCALES.get(name)
