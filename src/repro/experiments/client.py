"""Thin client for ``repro serve`` (newline-delimited JSON).

The protocol is one JSON object per line in both directions. Every
request carries a ``type``; compute requests (``figure``/``bench``)
additionally carry a ``tenant`` and an idempotency ``key``. Responses
always carry ``ok``; failures are *typed*::

    {"ok": false, "error": "RETRY_AFTER", "reason": "quota",
     "retry_after": 1.5, "key": "..."}

Error codes:

``RETRY_AFTER``
    admission control shed this request (``reason`` is ``quota``,
    ``backpressure``, or ``draining``); re-ask after ``retry_after``
    seconds — with the *same key*, which makes the retry idempotent
    even across a server restart.
``DEADLINE_EXCEEDED``
    the request's deadline passed before its work finished; terminal
    for that key.
``BAD_REQUEST``
    unparseable line, unknown type, or unknown figure.
``INTERNAL``
    the figure function raised; the repr travels in ``message``.

The request key is the unit of idempotence: the server journals every
accepted key and every result, so a client that crashed, timed out, or
was disconnected mid-request simply re-asks with the same key and gets
either the journaled answer or a seat waiting for the in-flight one.
:func:`request_key` derives a deterministic default from the tenant and
the normalized spec, so identical asks dedupe naturally.

The ``client_disconnect`` fault kind (:data:`~repro.experiments.
resilience.FAULTS_ENV`) makes :meth:`ServeClient.request` drop the
connection right after sending — the chaos tests use it to prove the
server completes and journals work whose client went away.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from pathlib import Path

from ..errors import ReproError
from .resilience import FaultPlan

#: Bump when the request/response/journal shapes change incompatibly.
SERVE_SCHEMA = 1

RETRY_AFTER = "RETRY_AFTER"
DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
BAD_REQUEST = "BAD_REQUEST"
INTERNAL = "INTERNAL"


class ServeUnavailable(ReproError):
    """No server answered at the endpoint (connect/recv failed)."""


def serve_root() -> Path:
    """Directory the serve plane lives in: ``<cache-root>/serve``.

    With the disk cache off there is still a journal to keep, so the
    fallback is a local ``.repro-serve`` directory.
    """
    from .diskcache import cache_root
    root = cache_root()
    if root is None:
        return Path(".repro-serve")
    return root / "serve"


def default_socket_path() -> Path:
    """Default Unix-socket rendezvous, under :func:`serve_root`."""
    return serve_root() / "serve.sock"


def request_key(tenant: str, spec: dict) -> str:
    """Deterministic idempotency key for one (tenant, spec) ask."""
    payload = json.dumps({"tenant": tenant, "spec": spec},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def parse_endpoint(socket_path: str | os.PathLike | None = None,
                   tcp: str | None = None) -> tuple[str, object]:
    """Resolve ``(kind, address)``: explicit TCP wins, then an explicit
    socket path, then the default socket under the cache root."""
    if tcp:
        host, sep, port_text = str(tcp).rpartition(":")
        if not sep or not host:
            raise ReproError(
                f"--tcp must look like HOST:PORT, got {tcp!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ReproError(
                f"--tcp port must be an integer, got {port_text!r}"
            ) from None
        return ("tcp", (host, port))
    if socket_path is not None:
        return ("unix", str(socket_path))
    return ("unix", str(default_socket_path()))


class ServeClient:
    """One-request-per-connection client for the sweep server.

    Each :meth:`request` opens a fresh connection, sends one line, and
    blocks for one response line; blocking asks (a cold figure) hold
    the connection open until the scheduler answers. ``timeout`` is
    the per-request socket timeout (None = wait forever).
    """

    def __init__(self, socket_path: str | os.PathLike | None = None,
                 tcp: str | None = None, timeout: float | None = None,
                 tenant: str = "default",
                 faults: FaultPlan | None = None) -> None:
        self.kind, self.address = parse_endpoint(socket_path, tcp)
        self.timeout = timeout
        self.tenant = tenant
        self.faults = faults if faults is not None else FaultPlan.from_env()

    # -- transport -----------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            if self.kind == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.address)
            else:
                sock = socket.create_connection(self.address,
                                                timeout=self.timeout)
        except OSError as exc:
            raise ServeUnavailable(
                f"no sweep server at {self.describe()}: {exc}"
            ) from exc
        return sock

    def describe(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.address}"
        host, port = self.address
        return f"tcp:{host}:{port}"

    def request(self, payload: dict) -> dict | None:
        """Send one request; block for its response.

        Returns None when the ``client_disconnect`` fault fires (the
        connection is dropped right after the send — the server must
        finish and journal the work anyway).
        """
        sock = self._connect()
        try:
            line = json.dumps(payload, sort_keys=True) + "\n"
            sock.sendall(line.encode("utf-8"))
            site = str(payload.get("key") or payload.get("type") or "")
            if self.faults.should_fire("client_disconnect", site):
                return None
            buffer = b""
            while b"\n" not in buffer:
                try:
                    chunk = sock.recv(1 << 16)
                except OSError as exc:
                    raise ServeUnavailable(
                        f"server at {self.describe()} stopped "
                        f"responding: {exc}") from exc
                if not chunk:
                    raise ServeUnavailable(
                        f"server at {self.describe()} closed the "
                        "connection before responding (crashed or "
                        "killed mid-request? re-ask by key)")
                buffer += chunk
            response = json.loads(buffer.split(b"\n", 1)[0])
            if not isinstance(response, dict):
                raise ServeUnavailable(
                    f"malformed response from {self.describe()}")
            return response
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # -- convenience wrappers ------------------------------------------

    def probe(self, kind: str = "ping") -> dict | None:
        """``ping`` / ``ready`` / ``status`` control probe."""
        return self.request({"type": kind})

    def query_figure(self, name: str, quick: bool = True,
                     key: str | None = None,
                     deadline_seconds: float | None = None,
                     tenant: str | None = None) -> dict | None:
        tenant = tenant if tenant is not None else self.tenant
        spec = {"type": "figure", "figure": name, "quick": bool(quick)}
        payload = dict(spec)
        payload["tenant"] = tenant
        payload["key"] = key or request_key(tenant, spec)
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return self.request(payload)

    def bench(self, cells: int = 1, cell_seconds: float = 0.0,
              key: str | None = None,
              deadline_seconds: float | None = None,
              tenant: str | None = None) -> dict | None:
        """Synthetic scheduling probe: ``cells`` no-op cells of
        ``cell_seconds`` each — exercises admission, fairness, and
        deadlines without running a simulation."""
        tenant = tenant if tenant is not None else self.tenant
        spec = {"type": "bench", "cells": int(cells),
                "cell_seconds": float(cell_seconds)}
        payload = dict(spec)
        payload["tenant"] = tenant
        payload["key"] = key or request_key(
            tenant, {**spec, "nonce": time.time_ns()})
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return self.request(payload)

    def drain(self) -> dict | None:
        """Ask the server to drain (same path as SIGTERM)."""
        return self.request({"type": "drain"})


def wait_until_ready(client: ServeClient, timeout: float = 30.0,
                     poll: float = 0.1) -> bool:
    """Poll the readiness probe until it answers ``ready`` or times out."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            response = client.probe("ready")
        except ServeUnavailable:
            response = None
        if response and response.get("ready"):
            return True
        time.sleep(poll)
    return False
