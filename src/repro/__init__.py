"""repro — a reproduction of *Quantitative Overhead Analysis for Python*
(Ismail & Suh, IISWC 2018).

The package models the paper's full measurement pipeline in pure Python:

* :mod:`repro.frontend` — MiniPy, a Python-subset guest language
  compiled to CPython-2.7-style stack bytecode;
* :mod:`repro.vm` — three modeled run-times (CPython interpreter with
  refcounting, PyPy with generational GC and a tracing JIT, a V8 analog)
  that execute guests while emitting categorized host instructions;
* :mod:`repro.pintool` — Pin-analog statistics collection and the
  origin-PC annotation pipeline of Section IV-B;
* :mod:`repro.uarch` — Zsim-analog cache/branch/DRAM and core models;
* :mod:`repro.workloads` — the 48 Python-suite benchmarks (plus 37
  JetStream analogs under :mod:`repro.vm.v8.workloads`);
* :mod:`repro.analysis` / :mod:`repro.experiments` — breakdowns, sweeps,
  nursery studies, and one regeneration entry point per paper figure.

Quick start::

    from repro import compile_source, run_cpython, compute_breakdown

    program = compile_source(open("my_bench.py").read())
    vm, machine = run_cpython(program)
    breakdown = compute_breakdown(machine.trace, machine)
    print(breakdown.top_categories())
"""

from .categories import OverheadCategory, Group, label_of
from .config import (
    MachineConfig,
    RuntimeConfig,
    GCConfig,
    JITConfig,
    skylake_config,
    scaled_config,
    cpython_runtime,
    pypy_runtime,
    v8_runtime,
)
from .errors import ReproError, CompileError, GuestError
from .frontend import compile_source, Program, disassemble
from .host import HostMachine, AddressSpace, InstructionTrace
from .pintool import Breakdown, compute_breakdown, StatsCollector
from .uarch import SimulatedSystem, SimResult
from .vm.cpython import CPythonVM, run_cpython
from .vm.pypy import PyPyVM, run_pypy
from .vm.v8 import V8VM, run_v8
from .workloads import PYTHON_SUITE, get_workload
from .experiments import ExperimentRunner, figures

__version__ = "1.0.0"

__all__ = [
    "OverheadCategory", "Group", "label_of",
    "MachineConfig", "RuntimeConfig", "GCConfig", "JITConfig",
    "skylake_config", "scaled_config", "cpython_runtime", "pypy_runtime",
    "v8_runtime",
    "ReproError", "CompileError", "GuestError",
    "compile_source", "Program", "disassemble",
    "HostMachine", "AddressSpace", "InstructionTrace",
    "Breakdown", "compute_breakdown", "StatsCollector",
    "SimulatedSystem", "SimResult",
    "CPythonVM", "run_cpython", "PyPyVM", "run_pypy", "V8VM", "run_v8",
    "PYTHON_SUITE", "get_workload",
    "ExperimentRunner", "figures",
    "__version__",
]
