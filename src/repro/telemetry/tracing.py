"""Nested wall-clock spans and their Chrome trace-event export.

A :class:`Tracer` records a forest of :class:`Span` objects via a
context manager::

    with tracer.span("guest.run", workload="chaos", runtime="pypy"):
        with tracer.span("sim.memory_side"):
            ...

The recorded forest exports two ways:

* ``to_chrome_trace()`` — Trace Event Format "complete" events
  (``ph="X"``, microsecond ``ts``/``dur``) that load directly in
  ``chrome://tracing`` / Perfetto;
* ``tree()`` — plain nested dicts, rendered as an ASCII self-time tree
  by :func:`repro.analysis.report.render_span_tree`.

Timestamps are microseconds relative to the tracer's creation so
manifests diff cleanly across runs. The clock is injectable for tests.
"""

from __future__ import annotations

import time


class Span:
    """One timed region: name, attributes, children."""

    __slots__ = ("name", "attrs", "start_us", "end_us", "children")

    def __init__(self, name: str, attrs: dict | None,
                 start_us: float) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start_us = start_us
        self.end_us = start_us
        self.children: list[Span] = []

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def self_us(self) -> float:
        """Time spent in this span excluding its children."""
        return self.duration_us - sum(c.duration_us for c in self.children)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
            "self_us": round(self.self_us, 3),
            "children": [c.to_dict() for c in self.children],
        }


class _SpanContext:
    """Context manager that closes its span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span)


class Tracer:
    """Records a forest of nested spans against one wall clock."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def _now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span nested under the innermost live span."""
        span = Span(name, attrs, self._now_us())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end_us = self._now_us()
        # Unwind to the closed span; tolerates a child left open by an
        # exception between two spans.
        while self._stack:
            if self._stack.pop() is span:
                break

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self._epoch = self._clock()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def tree(self) -> list[dict]:
        """The whole forest as nested plain dicts (manifest `spans`)."""
        return [root.to_dict() for root in self.roots]

    def to_chrome_trace(self) -> list[dict]:
        """Trace Event Format complete events (``chrome://tracing``)."""
        events: list[dict] = []

        def visit(span: Span) -> None:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.duration_us, 3),
                "pid": 1,
                "tid": 1,
                "cat": "repro",
                "args": dict(span.attrs),
            })
            for child in span.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return events


class _NullSpanContext:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()
    span = None

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Default tracer when telemetry is disabled: records nothing."""

    __slots__ = ()
    roots: list = []

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN

    def reset(self) -> None:
        pass

    def tree(self) -> list:
        return []

    def to_chrome_trace(self) -> list:
        return []


NULL_TRACER = NullTracer()
