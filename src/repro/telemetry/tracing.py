"""Nested wall-clock spans and their Chrome trace-event export.

A :class:`Tracer` records a forest of :class:`Span` objects via a
context manager::

    with tracer.span("guest.run", workload="chaos", runtime="pypy"):
        with tracer.span("sim.memory_side"):
            ...

The recorded forest exports two ways:

* ``to_chrome_trace()`` — Trace Event Format "complete" events
  (``ph="X"``, microsecond ``ts``/``dur``) that load directly in
  ``chrome://tracing`` / Perfetto;
* ``tree()`` — plain nested dicts, rendered as an ASCII self-time tree
  by :func:`repro.analysis.report.render_span_tree`.

Timestamps are microseconds relative to the tracer's creation so
manifests diff cleanly across runs. The clock is injectable for tests.

Cross-process unification: every tracer also remembers the wall-clock
instant of its epoch (``epoch_unix``), so span forests recorded in
*worker processes* — shipped back as :meth:`Tracer.export_state` dumps
and collected in a :class:`WorkerTraceStore` — can be rebased onto the
parent's timeline and rendered as per-worker pid lanes in one merged
Chrome trace (:func:`spans_to_chrome`,
:func:`repro.telemetry.export.build_chrome_trace`).
"""

from __future__ import annotations

import time


class Span:
    """One timed region: name, attributes, children."""

    __slots__ = ("name", "attrs", "start_us", "end_us", "children")

    def __init__(self, name: str, attrs: dict | None,
                 start_us: float) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start_us = start_us
        self.end_us = start_us
        self.children: list[Span] = []

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def self_us(self) -> float:
        """Time spent in this span excluding its children."""
        return self.duration_us - sum(c.duration_us for c in self.children)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
            "self_us": round(self.self_us, 3),
            "children": [c.to_dict() for c in self.children],
        }


class _SpanContext:
    """Context manager that closes its span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span)


class Tracer:
    """Records a forest of nested spans against one wall clock."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        #: Wall-clock instant of the epoch — the anchor that lets span
        #: forests from different processes share one merged timeline.
        self.epoch_unix = time.time()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def _now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span nested under the innermost live span."""
        span = Span(name, attrs, self._now_us())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end_us = self._now_us()
        # Unwind to the closed span; tolerates a child left open by an
        # exception between two spans.
        while self._stack:
            if self._stack.pop() is span:
                break

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self._epoch = self._clock()
        self.epoch_unix = time.time()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def tree(self) -> list[dict]:
        """The whole forest as nested plain dicts (manifest `spans`)."""
        return [root.to_dict() for root in self.roots]

    def export_state(self) -> dict:
        """The forest plus its wall-clock anchor, JSON/pickle-ready.

        This is the cross-process wire format: a worker exports its
        state after each cell, the parent rebases the spans onto its
        own timeline via ``epoch_unix`` (see :func:`spans_to_chrome`).
        """
        return {"epoch_unix": self.epoch_unix, "spans": self.tree()}

    def to_chrome_trace(self) -> list[dict]:
        """Trace Event Format complete events (``chrome://tracing``)."""
        events: list[dict] = []

        def visit(span: Span) -> None:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.duration_us, 3),
                "pid": 1,
                "tid": 1,
                "cat": "repro",
                "args": dict(span.attrs),
            })
            for child in span.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return events


def spans_to_chrome(spans: list[dict], pid: int, tid: int = 1,
                    offset_us: float = 0.0) -> list[dict]:
    """Span dicts (:meth:`Span.to_dict` shape) as Chrome complete events.

    ``offset_us`` shifts every timestamp — the merged-trace builder
    passes ``(epoch_unix - base_unix) * 1e6`` so spans recorded against
    another process's epoch land at the right wall-clock position.
    """
    events: list[dict] = []

    def visit(span: dict) -> None:
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": round(span["start_us"] + offset_us, 3),
            "dur": round(span["duration_us"], 3),
            "pid": pid,
            "tid": tid,
            "cat": "repro",
            "args": dict(span.get("attrs", {})),
        })
        for child in span.get("children", ()):
            visit(child)

    for root in spans:
        visit(root)
    return events


class WorkerTraceStore:
    """Parent-side collection of worker span-tree dumps.

    The supervised fan-out appends one entry per completed cell, in
    submission order: ``{"pid": ..., "site": ..., "attempt": ...,
    "trace": Tracer.export_state()}``. Only the final successful dump
    of each cell is kept — spans from a crashed worker died with it,
    exactly like its metrics.
    """

    def __init__(self) -> None:
        self.dumps: list[dict] = []

    def add(self, dump: dict) -> None:
        self.dumps.append(dump)

    def pids(self) -> list[int]:
        """Distinct worker pids, in first-appearance order."""
        seen: dict[int, None] = {}
        for dump in self.dumps:
            seen.setdefault(dump.get("pid", 0), None)
        return list(seen)

    def reset(self) -> None:
        self.dumps = []

    def snapshot(self) -> dict:
        """Manifest block: per-worker span forests with anchors."""
        return {
            "cells": len(self.dumps),
            "pids": self.pids(),
            "dumps": [dict(dump) for dump in self.dumps],
        }


class NullWorkerTraceStore:
    """Default store when telemetry is disabled: records nothing."""

    __slots__ = ()
    dumps: list = []

    def add(self, dump: dict) -> None:
        pass

    def pids(self) -> list:
        return []

    def reset(self) -> None:
        pass

    def snapshot(self) -> dict:
        return {"cells": 0, "pids": [], "dumps": []}


NULL_WORKER_TRACES = NullWorkerTraceStore()


class _NullSpanContext:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()
    span = None

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Default tracer when telemetry is disabled: records nothing."""

    __slots__ = ()
    roots: list = []
    epoch_unix = 0.0

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN

    def reset(self) -> None:
        pass

    def tree(self) -> list:
        return []

    def export_state(self) -> dict:
        return {"epoch_unix": 0.0, "spans": []}

    def to_chrome_trace(self) -> list:
        return []


NULL_TRACER = NullTracer()
