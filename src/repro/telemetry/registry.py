"""Append-only JSONL time-series of run records (the run registry).

Every telemetry-enabled run appends one *record* — a compact summary of
its manifest: the command, config, cache key, wall/host-instruction
gauges, per-category cycle breakdown, and resilience counters — to
``runs.jsonl`` under the registry directory. Records carry a
**monotonic sequence number** assigned under an exclusive file lock, so
"which run is newest" never depends on filesystem mtimes (which tie
under coarse timestamp granularity; see
:func:`repro.telemetry.export.load_last_manifest`).

The registry lives *inside* the disk-cache root by default
(``.repro-cache/telemetry/``) so one directory holds everything a
campaign produced — but ``repro cache gc`` never evicts it: the cache's
collector only walks its ``traces/``/``states/`` kinds, and registry
retention is its own explicit knob (:meth:`RunRegistry.prune`, wired
into ``repro cache gc``).

Layout::

    <registry-dir>/
        runs.jsonl          # one record per line, seq-ordered
        runs.lock           # flock target serializing appenders
        manifest-<seq>.json # full manifest copies (newest few kept)

Overridable with ``REPRO_REGISTRY_DIR``; falls back to
``<telemetry-dir>/registry`` when the disk cache is off. All writes are
gated on ``TELEMETRY.enabled`` — disabled telemetry stays zero-cost.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from . import TELEMETRY

#: Bump when the record layout changes incompatibly.
REGISTRY_SCHEMA = 1

REGISTRY_DIR_ENV = "REPRO_REGISTRY_DIR"

RUNS_NAME = "runs.jsonl"
LOCK_NAME = "runs.lock"

#: Full-manifest copies kept alongside the JSONL (newest first).
MANIFEST_KEEP = 8

#: Default record cap applied by ``repro cache gc``.
DEFAULT_MAX_RECORDS = 4096

#: Gauge-name prefixes summarized into each record.
_GAUGE_PREFIXES = ("sim.instructions_per_second",
                   "guest.instructions_per_second")

#: Counter-name prefixes summarized into each record.
_COUNTER_PREFIXES = ("resilience.", "cache.", "runner.", "campaign.")


def registry_dir() -> Path:
    """Resolve the registry directory from the environment.

    ``REPRO_REGISTRY_DIR`` wins; otherwise ``<cache-root>/telemetry``;
    with the disk cache off, ``<telemetry-dir>/registry``.
    """
    override = os.environ.get(REGISTRY_DIR_ENV)
    if override:
        return Path(override)
    # Imported lazily: experiments.diskcache imports repro.telemetry at
    # module level, so a top-level import here would cycle.
    from ..experiments.diskcache import cache_root
    root = cache_root()
    if root is not None:
        return root / "telemetry"
    from .export import telemetry_dir
    return telemetry_dir() / "registry"


def summarize_manifest(manifest: dict, kind: str = "run") -> dict:
    """Boil one manifest down to a registry record (no ``seq`` yet)."""
    metrics = manifest.get("metrics", {})
    stats = manifest.get("stats", {}) or {}
    config = manifest.get("config", {}) or {}

    gauges = {}
    counters = {}
    categories = {}
    for name, value in metrics.items():
        base = name.split("{", 1)[0]
        if base in _GAUGE_PREFIXES:
            gauges[name] = value
        elif base.startswith(_COUNTER_PREFIXES):
            counters[name] = value
    for category, cycles in (stats.get("category_cycles") or {}).items():
        categories[category] = cycles

    record = {
        "schema": REGISTRY_SCHEMA,
        "kind": kind,
        "created_unix": manifest.get("created_unix"),
        "command": manifest.get("command"),
        "config": config,
        "cache_key": config.get("cache_key"),
        "resilience": manifest.get("resilience", {}),
        "stats": {key: stats[key] for key in
                  ("wall_seconds", "host_instructions", "cycles")
                  if key in stats},
        "categories": categories,
        "gauges": gauges,
        "counters": counters,
        "workers": (manifest.get("workers") or {}).get("cells", 0),
    }
    return record


class LockTimeout(OSError):
    """The registry lock stayed held past the acquisition budget."""


class RunRegistry:
    """Seq-ordered JSONL store of run records under one directory.

    ``lock_timeout`` bounds how long a writer waits for the exclusive
    lock. The registry serves long-lived daemons (``repro serve``), so
    a wedged appender on another host must not hang every other
    writer forever: acquisition is a non-blocking retry loop, and on
    timeout the write is *dropped* (counted in
    ``registry.lock_timeouts``) rather than blocking the caller.
    """

    def __init__(self, root: str | Path | None = None,
                 lock_timeout: float = 5.0,
                 lock_poll: float = 0.05) -> None:
        self.root = Path(root) if root is not None else registry_dir()
        self.lock_timeout = lock_timeout
        self.lock_poll = lock_poll

    @property
    def runs_path(self) -> Path:
        return self.root / RUNS_NAME

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    def _locked(self):
        """Exclusive advisory lock context over the registry.

        Bounded: raises :class:`LockTimeout` (after counting
        ``registry.lock_timeouts`` and emitting an event) when the
        lock cannot be taken within ``lock_timeout`` seconds.
        """
        import fcntl
        import time
        from contextlib import contextmanager

        @contextmanager
        def hold():
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.root / LOCK_NAME, "a+") as handle:
                deadline = time.monotonic() + max(self.lock_timeout, 0.0)
                while True:
                    try:
                        fcntl.flock(handle,
                                    fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if time.monotonic() >= deadline:
                            TELEMETRY.metrics.counter(
                                "registry.lock_timeouts").inc()
                            TELEMETRY.events.emit(
                                "registry.lock_timeout",
                                root=str(self.root),
                                timeout_seconds=self.lock_timeout)
                            raise LockTimeout(
                                f"registry lock {self.root / LOCK_NAME} "
                                f"held past {self.lock_timeout:g}s; "
                                "dropping the write") from None
                        time.sleep(self.lock_poll)
                try:
                    yield
                finally:
                    fcntl.flock(handle, fcntl.LOCK_UN)

        return hold()

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------

    def append(self, record: dict,
               manifest: dict | None = None,
               manifest_path: str | None = None) -> dict | None:
        """Append one record; returns it with its assigned ``seq``.

        Gated on telemetry being enabled: with null sinks installed the
        registry never touches disk (zero-cost guarantee). The sequence
        number is ``max(existing) + 1``, computed and written under the
        exclusive lock, so concurrent appenders (parallel campaigns)
        cannot collide and ordering never consults mtimes.
        """
        if not TELEMETRY.enabled:
            return None
        record = dict(record)
        try:
            with self._locked():
                seq = self._max_seq_unlocked() + 1
                record["seq"] = seq
                if manifest_path is not None:
                    record["manifest_path"] = str(manifest_path)
                elif manifest is not None:
                    copy = self.root / f"manifest-{seq}.json"
                    copy.write_text(
                        json.dumps(manifest, indent=2,
                                   default=str) + "\n",
                        encoding="utf-8")
                    record["manifest_path"] = str(copy)
                    self._prune_manifests_unlocked()
                line = json.dumps(record, sort_keys=True, default=str)
                with open(self.runs_path, "a",
                          encoding="utf-8") as handle:
                    handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
        except LockTimeout:
            # A wedged appender elsewhere must not hang this process;
            # one dropped summary record is the cheaper failure.
            return None
        return record

    def _max_seq_unlocked(self) -> int:
        best = 0
        for record in self._read_unlocked():
            seq = record.get("seq", 0)
            if isinstance(seq, int) and seq > best:
                best = seq
        return best

    def _prune_manifests_unlocked(self, keep: int = MANIFEST_KEEP) -> None:
        copies = sorted(self.root.glob("manifest-*.json"),
                        key=self._manifest_seq, reverse=True)
        for path in copies[keep:]:
            try:
                path.unlink()
            except OSError:
                pass

    @staticmethod
    def _manifest_seq(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def _read_unlocked(self) -> list[dict]:
        """Parse the JSONL, skipping torn/invalid lines."""
        if not self.runs_path.exists():
            return []
        records = []
        try:
            with open(self.runs_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn write (killed appender)
                    if isinstance(record, dict):
                        records.append(record)
        except OSError:
            return []
        records.sort(key=lambda r: r.get("seq", 0))
        return records

    def records(self) -> list[dict]:
        """All valid records, ascending by sequence number."""
        return self._read_unlocked()

    def last(self, kind: str | None = None) -> dict | None:
        """The highest-seq record (optionally of one ``kind``)."""
        records = self._read_unlocked()
        if kind is not None:
            records = [r for r in records if r.get("kind") == kind]
        return records[-1] if records else None

    def tail(self, n: int) -> list[dict]:
        return self._read_unlocked()[-n:]

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def prune(self, max_records: int = DEFAULT_MAX_RECORDS) -> int:
        """Drop the oldest records beyond ``max_records``; return count.

        Rewrites the JSONL atomically under the lock. This is the
        registry's *only* retention path — ``repro cache gc`` calls it
        explicitly rather than sweeping the directory by size.
        """
        if not self.runs_path.exists():
            return 0
        try:
            with self._locked():
                records = self._read_unlocked()
                excess = len(records) - max_records
                if excess <= 0:
                    return 0
                kept = records[excess:]
                tmp = self.runs_path.with_name(
                    f"{RUNS_NAME}.tmp{os.getpid()}")
                with open(tmp, "w", encoding="utf-8") as handle:
                    for record in kept:
                        handle.write(json.dumps(record, sort_keys=True,
                                                default=str) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self.runs_path)
                return excess
        except LockTimeout:
            return 0

    def usage(self) -> dict:
        """Entry count and byte total (for ``cache usage`` reporting)."""
        entries = bytes_total = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                try:
                    bytes_total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {"root": str(self.root), "entries": entries,
                "bytes": bytes_total,
                "records": len(self._read_unlocked())}
