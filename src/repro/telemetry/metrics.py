"""Process-wide metrics: counters, gauges, log-bucketed histograms.

The registry hands out *labeled children*: ``registry.counter(
"guest.instructions", runtime="pypy")`` names one time series; the same
call with ``runtime="v8"`` names another. A snapshot renders each child
as ``name{label=value,...}`` (Prometheus-style), which is the key format
the run manifest uses.

Instrumented code never checks whether telemetry is on — it talks to
whatever registry :data:`repro.telemetry.TELEMETRY` currently holds.
When telemetry is disabled that is a :class:`NullRegistry`, whose
children swallow every update, so the library-default cost is one
attribute load and a no-op call on paths that are never per-instruction
hot (see DESIGN.md §3: hot loops guard on ``TELEMETRY.enabled``).
"""

from __future__ import annotations

from ..errors import ReproError


class MetricError(ReproError):
    """A metric name was reused with a different instrument type."""


def _label_key(labels: dict[str, object]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_name(name: str, label_key: tuple) -> str:
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, instructions, hits)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """Last-written value (rates, sizes, temperatures)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self):
        return self.value


class Histogram:
    """Log-bucketed distribution (powers of two).

    An observation ``v`` lands in the bucket whose upper bound is the
    smallest power of two ``>= v`` (observations ``<= 1`` share the
    ``1`` bucket). Log bucketing keeps the footprint constant for
    values spanning many orders of magnitude — trace lengths, bytes
    promoted, span durations in microseconds.
    """

    __slots__ = ("name", "labels", "count", "sum", "buckets")
    kind = "histogram"

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        #: exponent -> count; bucket upper bound is ``2 ** exponent``.
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        exponent = 0
        if value > 1:
            exponent = int(value - 1).bit_length()
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {f"le_{2 ** e}": n
                        for e, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Process-wide instrument store with labeled children."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], object] = {}
        self._kinds: dict[str, str] = {}

    def _child(self, cls, name: str, labels: dict[str, object]):
        kind = self._kinds.get(name)
        if kind is not None and kind != cls.kind:
            raise MetricError(
                f"metric {name!r} already registered as a {kind}, "
                f"cannot reuse it as a {cls.kind}")
        label_key = _label_key(labels)
        child = self._metrics.get((name, label_key))
        if child is None:
            self._kinds[name] = cls.kind
            child = cls(name, label_key)
            self._metrics[(name, label_key)] = child
        return child

    def counter(self, name: str, **labels) -> Counter:
        return self._child(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._child(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._child(Histogram, name, labels)

    def get(self, name: str, **labels):
        """Fetch an existing child without creating it (None if absent)."""
        return self._metrics.get((name, _label_key(labels)))

    def reset(self) -> None:
        self._metrics.clear()
        self._kinds.clear()

    def snapshot(self) -> dict[str, object]:
        """``name{labels}`` -> value/histogram-dict, sorted by key."""
        out = {}
        for (name, label_key), metric in self._metrics.items():
            out[_render_name(name, label_key)] = metric.snapshot()
        return dict(sorted(out.items()))

    def sum_matching(self, prefix: str) -> float:
        """Total of counter/gauge values whose name starts with ``prefix``.

        Sums across labeled children, so ``sum_matching(
        "resilience.retries")`` covers every retry reason at once.
        """
        total = 0.0
        for (name, _), metric in self._metrics.items():
            if name.startswith(prefix) and metric.kind != "histogram":
                total += metric.value
        return total

    def filtered_snapshot(self, prefixes) -> dict[str, object]:
        """Like :meth:`snapshot`, restricted to the given name prefixes."""
        out = {}
        for (name, label_key), metric in self._metrics.items():
            if any(name.startswith(prefix) for prefix in prefixes):
                out[_render_name(name, label_key)] = metric.snapshot()
        return dict(sorted(out.items()))

    def dump(self) -> dict:
        """Serializable full state, suitable for :meth:`merge`.

        Worker processes dump their registry and ship it back to the
        parent, which merges it so fan-out runs produce one combined
        manifest.
        """
        metrics = []
        for (name, label_key), metric in self._metrics.items():
            entry: dict[str, object] = {"name": name,
                                        "labels": list(label_key),
                                        "kind": metric.kind}
            if metric.kind == "histogram":
                entry["count"] = metric.count
                entry["sum"] = metric.sum
                entry["buckets"] = dict(metric.buckets)
            else:
                entry["value"] = metric.value
            metrics.append(entry)
        return {"metrics": metrics}

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` into this registry.

        Counters and histograms accumulate; gauges keep the dumped
        value (last writer wins, matching serial execution where the
        most recent ``set`` sticks).
        """
        for entry in dump.get("metrics", []):
            labels = {key: value for key, value in entry["labels"]}
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).set(entry["value"])
            elif kind == "histogram":
                histogram = self.histogram(entry["name"], **labels)
                histogram.count += entry["count"]
                histogram.sum += entry["sum"]
                for exponent, count in entry["buckets"].items():
                    exponent = int(exponent)
                    histogram.buckets[exponent] = \
                        histogram.buckets.get(exponent, 0) + count


class _NullMetric:
    """Accepts every update, records nothing."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def snapshot(self):
        return 0


NULL_METRIC = _NullMetric()


class NullRegistry:
    """Default registry when telemetry is disabled: all no-ops."""

    __slots__ = ()

    def counter(self, name, **labels):
        return NULL_METRIC

    def gauge(self, name, **labels):
        return NULL_METRIC

    def histogram(self, name, **labels):
        return NULL_METRIC

    def get(self, name, **labels):
        return None

    def reset(self) -> None:
        pass

    def snapshot(self) -> dict:
        return {}

    def sum_matching(self, prefix: str) -> float:
        return 0.0

    def filtered_snapshot(self, prefixes) -> dict:
        return {}

    def dump(self) -> dict:
        return {"metrics": []}

    def merge(self, dump: dict) -> None:
        pass


NULL_REGISTRY = NullRegistry()
