"""Per-run JSON manifest: config, stats, metrics, spans, and events.

One manifest fully describes one run: what was asked for (``command``,
``config``), what the guest did (``stats``, ``events``), and where the
simulator spent its own time (``metrics``, ``spans``, ``workers``,
``chrome_trace``). The CLI and :class:`~repro.experiments.runner.
ExperimentRunner` write one after every telemetry-enabled run; the
latest one is mirrored to ``<telemetry-dir>/last_run.json`` and
summarized into the run registry
(:class:`~repro.telemetry.registry.RunRegistry`), whose monotonic
sequence numbers — not filesystem mtimes — decide which run is newest.

``chrome_trace`` is the **unified** trace: the parent's span forest on
its own pid lane, every fan-out worker's shipped span forest on that
worker's pid lane (rebased onto the parent's wall clock via each
tracer's ``epoch_unix`` anchor), instant events for cell boundaries and
resilience recoveries, and ``process_name`` metadata so
``chrome://tracing`` / Perfetto label the lanes.

The telemetry directory defaults to ``.repro-telemetry`` under the
current working directory and is overridable with the
``REPRO_TELEMETRY_DIR`` environment variable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from . import TELEMETRY
from .tracing import spans_to_chrome

#: Manifest schema identifier, bumped on incompatible layout changes.
SCHEMA = "repro-telemetry/2"

LAST_RUN_NAME = "last_run.json"

#: Event kinds surfaced as instant markers in the unified Chrome trace.
_INSTANT_PREFIXES = ("resilience.", "campaign.", "cell.", "figure.")


def telemetry_dir() -> Path:
    return Path(os.environ.get("REPRO_TELEMETRY_DIR", ".repro-telemetry"))


#: Resilience knobs recorded verbatim in every manifest when set, so a
#: run that survived injected faults or tightened supervision is
#: distinguishable from a clean one after the fact.
_RESILIENCE_ENV = ("REPRO_FAULTS", "REPRO_CELL_TIMEOUT",
                   "REPRO_CELL_RETRIES")


def build_chrome_trace() -> dict:
    """One merged Trace Event JSON covering parent and workers.

    The parent's spans render on its real pid lane; each worker dump in
    ``TELEMETRY.workers`` renders on the worker's pid lane, its
    timestamps shifted by the difference between the two tracers'
    wall-clock epochs. Event-log rows whose kind matches
    :data:`_INSTANT_PREFIXES` become instant events on the parent lane.
    """
    pid = os.getpid()
    base_unix = TELEMETRY.tracer.epoch_unix
    events: list[dict] = []

    def name_lane(lane_pid: int, label: str) -> None:
        events.append({"name": "process_name", "ph": "M", "pid": lane_pid,
                       "tid": 0, "args": {"name": label}})

    parent_spans = TELEMETRY.tracer.to_chrome_trace()
    if parent_spans or TELEMETRY.workers.dumps:
        name_lane(pid, f"repro parent (pid {pid})")
    for event in parent_spans:
        events.append({**event, "pid": pid})

    for worker_pid in TELEMETRY.workers.pids():
        name_lane(worker_pid, f"repro worker (pid {worker_pid})")
    for dump in TELEMETRY.workers.dumps:
        trace = dump.get("trace") or {}
        offset_us = (trace.get("epoch_unix", base_unix) - base_unix) * 1e6
        events.extend(spans_to_chrome(trace.get("spans", []),
                                      pid=dump.get("pid", 0),
                                      offset_us=offset_us))

    event_offset_us = (TELEMETRY.events.epoch_unix - base_unix) * 1e6
    for row in TELEMETRY.events:
        kind = row["kind"]
        if not kind.startswith(_INSTANT_PREFIXES):
            continue
        args = {key: value for key, value in row.items()
                if key not in ("ts_us", "kind")}
        events.append({"name": kind, "ph": "i", "s": "p",
                       "ts": round(row["ts_us"] + event_offset_us, 3),
                       "pid": pid, "tid": 1, "cat": "repro",
                       "args": args})

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def build_manifest(command: str | None = None,
                   config: dict | None = None,
                   stats: dict | None = None) -> dict:
    """Snapshot the live telemetry state into one JSON-ready dict."""
    resilience = {name: os.environ[name] for name in _RESILIENCE_ENV
                  if os.environ.get(name)}
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "command": command,
        "config": config or {},
        "resilience": resilience,
        "stats": stats or {},
        "metrics": TELEMETRY.metrics.snapshot(),
        "spans": TELEMETRY.tracer.tree(),
        "events": TELEMETRY.events.snapshot(),
        "workers": TELEMETRY.workers.snapshot(),
        "chrome_trace": build_chrome_trace(),
    }


def write_manifest(path: str | Path | None = None,
                   command: str | None = None,
                   config: dict | None = None,
                   stats: dict | None = None,
                   manifest: dict | None = None,
                   kind: str = "run") -> Path:
    """Write a manifest to ``path`` and mirror it to ``last_run.json``.

    With ``path=None`` only the ``last_run.json`` mirror is written.
    When telemetry is enabled the manifest is also summarized into the
    run registry (with a full per-seq copy), which is what
    :func:`load_last_manifest` consults first. Returns the primary
    path written.
    """
    if manifest is None:
        manifest = build_manifest(command=command, config=config,
                                  stats=stats)
    text = json.dumps(manifest, indent=2, sort_keys=False, default=str)
    last_run = telemetry_dir() / LAST_RUN_NAME
    last_run.parent.mkdir(parents=True, exist_ok=True)
    last_run.write_text(text + "\n", encoding="utf-8")
    primary = last_run
    if path is not None:
        primary = Path(path)
        if primary.parent != Path(""):
            primary.parent.mkdir(parents=True, exist_ok=True)
        primary.write_text(text + "\n", encoding="utf-8")
    if TELEMETRY.enabled:
        from .registry import RunRegistry, summarize_manifest
        try:
            RunRegistry().append(summarize_manifest(manifest, kind=kind),
                                 manifest=manifest)
        except OSError:
            # A read-only registry dir must not fail the run that
            # produced the manifest; the mirror above still exists.
            TELEMETRY.metrics.counter("registry.write_errors").inc()
    return primary


def load_last_manifest() -> dict | None:
    """The most recently written manifest, or None if there isn't one.

    Consults the run registry first: its monotonic sequence numbers
    order runs even when filesystem timestamps tie. Falls back to the
    ``last_run.json`` mirror (registry empty, pruned, or telemetry was
    written by an older schema).
    """
    from .registry import RunRegistry
    record = RunRegistry().last()
    if record is not None:
        manifest_path = record.get("manifest_path")
        if manifest_path and Path(manifest_path).exists():
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    return json.load(handle)
            except (OSError, ValueError):
                pass
    path = telemetry_dir() / LAST_RUN_NAME
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def write_chrome_trace(path: str | Path,
                       manifest: dict | None = None) -> Path:
    """Write just the Chrome trace-event JSON (``chrome://tracing``).

    With ``manifest=None`` the unified builder runs against the live
    telemetry state (parent + worker lanes + instants).
    """
    if manifest is None:
        trace = build_chrome_trace()
    else:
        trace = manifest.get("chrome_trace",
                             {"traceEvents": [], "displayTimeUnit": "ms"})
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, indent=2) + "\n", encoding="utf-8")
    return path
