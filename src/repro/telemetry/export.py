"""Per-run JSON manifest: config, stats, metrics, spans, and events.

One manifest fully describes one run: what was asked for (``command``,
``config``), what the guest did (``stats``, ``events``), and where the
simulator spent its own time (``metrics``, ``spans``,
``chrome_trace``). The CLI and :class:`~repro.experiments.runner.
ExperimentRunner` write one after every telemetry-enabled run; the
latest one is mirrored to ``<telemetry-dir>/last_run.json`` so
``python -m repro telemetry`` can dump it afterwards.

The telemetry directory defaults to ``.repro-telemetry`` under the
current working directory and is overridable with the
``REPRO_TELEMETRY_DIR`` environment variable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from . import TELEMETRY

#: Manifest schema identifier, bumped on incompatible layout changes.
SCHEMA = "repro-telemetry/1"

LAST_RUN_NAME = "last_run.json"


def telemetry_dir() -> Path:
    return Path(os.environ.get("REPRO_TELEMETRY_DIR", ".repro-telemetry"))


#: Resilience knobs recorded verbatim in every manifest when set, so a
#: run that survived injected faults or tightened supervision is
#: distinguishable from a clean one after the fact.
_RESILIENCE_ENV = ("REPRO_FAULTS", "REPRO_CELL_TIMEOUT",
                   "REPRO_CELL_RETRIES")


def build_manifest(command: str | None = None,
                   config: dict | None = None,
                   stats: dict | None = None) -> dict:
    """Snapshot the live telemetry state into one JSON-ready dict."""
    resilience = {name: os.environ[name] for name in _RESILIENCE_ENV
                  if os.environ.get(name)}
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "command": command,
        "config": config or {},
        "resilience": resilience,
        "stats": stats or {},
        "metrics": TELEMETRY.metrics.snapshot(),
        "spans": TELEMETRY.tracer.tree(),
        "events": TELEMETRY.events.snapshot(),
        "chrome_trace": {"traceEvents": TELEMETRY.tracer.to_chrome_trace(),
                         "displayTimeUnit": "ms"},
    }


def write_manifest(path: str | Path | None = None,
                   command: str | None = None,
                   config: dict | None = None,
                   stats: dict | None = None,
                   manifest: dict | None = None) -> Path:
    """Write a manifest to ``path`` and mirror it to ``last_run.json``.

    With ``path=None`` only the ``last_run.json`` mirror is written.
    Returns the primary path written.
    """
    if manifest is None:
        manifest = build_manifest(command=command, config=config,
                                  stats=stats)
    text = json.dumps(manifest, indent=2, sort_keys=False, default=str)
    last_run = telemetry_dir() / LAST_RUN_NAME
    last_run.parent.mkdir(parents=True, exist_ok=True)
    last_run.write_text(text + "\n", encoding="utf-8")
    if path is None:
        return last_run
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    return path


def load_last_manifest() -> dict | None:
    """The most recently written manifest, or None if there isn't one."""
    path = telemetry_dir() / LAST_RUN_NAME
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def write_chrome_trace(path: str | Path,
                       manifest: dict | None = None) -> Path:
    """Write just the Chrome trace-event JSON (``chrome://tracing``)."""
    if manifest is None:
        trace = {"traceEvents": TELEMETRY.tracer.to_chrome_trace(),
                 "displayTimeUnit": "ms"}
    else:
        trace = manifest.get("chrome_trace",
                             {"traceEvents": [], "displayTimeUnit": "ms"})
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, indent=2) + "\n", encoding="utf-8")
    return path
