"""``repro.telemetry`` — spans, metrics, and structured VM events.

One process-wide :data:`TELEMETRY` state object holds the three sinks:

* ``TELEMETRY.metrics`` — :class:`~repro.telemetry.metrics.MetricsRegistry`
* ``TELEMETRY.tracer`` — :class:`~repro.telemetry.tracing.Tracer`
* ``TELEMETRY.events`` — :class:`~repro.telemetry.events.EventLog`
* ``TELEMETRY.workers`` — :class:`~repro.telemetry.tracing.WorkerTraceStore`
  (span-tree dumps shipped back by fan-out worker processes)

The default (library use) is **disabled**: every sink is a null object
and instrumentation costs a no-op call at most; simulation hot loops
additionally guard on ``TELEMETRY.enabled`` so they pay one attribute
read. The CLI and the benchmark suite call :func:`enable`;
:func:`session` scopes enablement for tests.

Instrumented code must read the sinks *through* ``TELEMETRY`` at use
time (``TELEMETRY.events.emit(...)``), never cache them at import or
construction time — :func:`enable`/:func:`disable` swap the attributes
in place.
"""

from __future__ import annotations

from contextlib import contextmanager

from .events import DEFAULT_CAPACITY, EventLog, NullEventLog, NULL_EVENTS
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .tracing import (
    NullTracer,
    NULL_TRACER,
    NullWorkerTraceStore,
    NULL_WORKER_TRACES,
    Span,
    Tracer,
    WorkerTraceStore,
)

__all__ = [
    "TELEMETRY", "TelemetryState", "enable", "disable", "reset",
    "session", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "MetricError", "NullRegistry", "Tracer", "NullTracer", "Span",
    "EventLog", "NullEventLog", "DEFAULT_CAPACITY",
    "WorkerTraceStore", "NullWorkerTraceStore",
]


class TelemetryState:
    """Holder whose attributes are swapped by enable()/disable()."""

    __slots__ = ("enabled", "metrics", "tracer", "events", "workers")

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER
        self.events = NULL_EVENTS
        self.workers = NULL_WORKER_TRACES


#: The process-wide telemetry state. Disabled (null sinks) by default.
TELEMETRY = TelemetryState()


def enable(event_capacity: int = DEFAULT_CAPACITY) -> TelemetryState:
    """Install live sinks. Idempotent (keeps existing data if already on)."""
    if not TELEMETRY.enabled:
        TELEMETRY.metrics = MetricsRegistry()
        TELEMETRY.tracer = Tracer()
        TELEMETRY.events = EventLog(capacity=event_capacity)
        TELEMETRY.workers = WorkerTraceStore()
        TELEMETRY.enabled = True
    return TELEMETRY


def disable() -> None:
    """Restore the zero-cost null sinks (discards recorded data)."""
    TELEMETRY.enabled = False
    TELEMETRY.metrics = NULL_REGISTRY
    TELEMETRY.tracer = NULL_TRACER
    TELEMETRY.events = NULL_EVENTS
    TELEMETRY.workers = NULL_WORKER_TRACES


def reset() -> None:
    """Clear recorded data without changing enablement."""
    TELEMETRY.metrics.reset()
    TELEMETRY.tracer.reset()
    TELEMETRY.events.reset()
    TELEMETRY.workers.reset()


@contextmanager
def session(event_capacity: int = DEFAULT_CAPACITY):
    """Enable telemetry for a ``with`` block, then restore prior state."""
    was_enabled = TELEMETRY.enabled
    enable(event_capacity=event_capacity)
    try:
        yield TELEMETRY
    finally:
        if not was_enabled:
            disable()
