"""Bounded structured event log the modeled VMs emit into.

Events are the discrete happenings the paper's figures turn on — a
minor collection with its promoted bytes, a JIT trace compile, a guard
failure escalating to a bridge — recorded as ``(ts_us, kind, fields)``
rows. The log is a ring: once ``capacity`` is reached the oldest rows
are dropped and counted, so a pathological workload cannot balloon a
manifest. Per-kind counts survive eviction (``counts`` is cumulative).
"""

from __future__ import annotations

import time
from collections import deque

DEFAULT_CAPACITY = 8192


class EventLog:
    """Append-only ring of structured events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock=time.perf_counter) -> None:
        if capacity <= 0:
            raise ValueError("event log capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self._epoch = clock()
        #: Wall-clock instant of the epoch, so event timestamps can be
        #: rebased onto a merged multi-process timeline (instant events
        #: in the unified Chrome trace).
        self.epoch_unix = time.time()
        self._events: deque = deque(maxlen=capacity)
        #: Cumulative emissions per kind (not affected by eviction).
        self.counts: dict[str, int] = {}
        self.emitted = 0

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._events)

    def emit(self, kind: str, /, **fields) -> None:
        self.emitted += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        ts_us = (self._clock() - self._epoch) * 1e6
        self._events.append((ts_us, kind, fields))

    def count(self, kind: str) -> int:
        """Cumulative number of ``kind`` events emitted (incl. dropped)."""
        return self.counts.get(kind, 0)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        for ts_us, kind, fields in self._events:
            yield {"ts_us": round(ts_us, 3), "kind": kind, **fields}

    def reset(self) -> None:
        self._events.clear()
        self.counts.clear()
        self.emitted = 0
        self._epoch = self._clock()
        self.epoch_unix = time.time()

    def snapshot(self) -> dict:
        """Manifest block: retained rows plus cumulative accounting."""
        return {
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "counts": dict(sorted(self.counts.items())),
            "events": list(self),
        }


class NullEventLog:
    """Default sink when telemetry is disabled: swallows everything."""

    __slots__ = ()
    capacity = 0
    emitted = 0
    dropped = 0
    epoch_unix = 0.0
    counts: dict = {}

    def emit(self, kind: str, /, **fields) -> None:
        pass

    def count(self, kind: str) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def reset(self) -> None:
        pass

    def snapshot(self) -> dict:
        return {"capacity": 0, "emitted": 0, "dropped": 0,
                "counts": {}, "events": []}


NULL_EVENTS = NullEventLog()
