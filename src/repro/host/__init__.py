"""Simulated host machine that the modeled run-times execute on.

The run-time models (CPython-model interpreter, PyPy model, V8 analog) do
their *semantic* work in ordinary Python, but every micro-operation they
perform is mirrored as a stream of *host instructions* emitted through
:class:`~repro.host.machine.HostMachine`. Each host instruction carries an
overhead-category tag (Table II), a program counter inside the simulated
interpreter binary, and — for memory operations — an address inside the
simulated address space. The microarchitecture models in
:mod:`repro.uarch` consume these traces.
"""

from .isa import InstrKind, FLAG_TAKEN, FLAG_INDIRECT, FLAG_COND
from .trace import InstructionTrace
from .address_space import AddressSpace, Region, FreelistAllocator
from .machine import HostMachine

__all__ = [
    "InstrKind", "FLAG_TAKEN", "FLAG_INDIRECT", "FLAG_COND",
    "InstructionTrace", "AddressSpace", "Region", "FreelistAllocator",
    "HostMachine",
]
