"""Host instruction kinds and flags.

The host ISA is a small abstract x86-64-like machine: enough detail for the
cache, branch-prediction, and core timing models, and no more. Branch
targets are stored in the instruction's address field; memory operations
store their effective address there instead.
"""

from __future__ import annotations

import enum

#: Byte distance between consecutive static instructions.
INSTR_BYTES = 4


class InstrKind(enum.IntEnum):
    """Classification of one host instruction.

    Values are stored directly in traces and must remain stable.
    """

    ALU = 0          # integer ALU operation, 1-cycle
    FPU = 1          # floating-point operation, multi-cycle
    LOAD = 2         # memory read
    STORE = 3        # memory write
    BRANCH = 4       # conditional or unconditional direct branch
    CALL = 5         # direct call
    ICALL = 6        # indirect call (through a function pointer)
    RET = 7          # return
    MUL = 8          # integer multiply
    DIV = 9          # integer/floating divide, long latency


#: Execution latency (cycles) of each kind, excluding memory misses.
KIND_LATENCY = {
    InstrKind.ALU: 1,
    InstrKind.FPU: 4,
    InstrKind.LOAD: 1,       # + cache access latency, added by the core model
    InstrKind.STORE: 1,
    InstrKind.BRANCH: 1,
    InstrKind.CALL: 1,
    InstrKind.ICALL: 1,
    InstrKind.RET: 1,
    InstrKind.MUL: 3,
    InstrKind.DIV: 20,
}

#: Kinds that access data memory.
MEMORY_KINDS = frozenset({InstrKind.LOAD, InstrKind.STORE})

#: Kinds whose outcome the branch predictor must guess.
CONTROL_KINDS = frozenset({
    InstrKind.BRANCH, InstrKind.CALL, InstrKind.ICALL, InstrKind.RET,
})

# Flag bits stored in the trace's flags column.
FLAG_TAKEN = 1 << 0      # branch was taken
FLAG_INDIRECT = 1 << 1   # control transfer through a register/pointer
FLAG_COND = 1 << 2       # branch is conditional (predictable direction)
