"""Optional compiled kernel for the burst-emission flush.

The burst engine's flush is a deterministic expansion: walk the queue of
template ids, copy each template's static rows into the trace buffer,
and add the linear fixups from the flat dynamic-operand stream. That is
a ~40-line C loop, so — exactly like the OOO core's
:mod:`repro.uarch._ooo_kernel` — this module builds it into a
per-process shared library with one ``cc -O2 -shared`` invocation at
first use and the engine dispatches flushes to it. Everything is
best-effort: no compiler, a failed build, or ``REPRO_EMIT_KERNEL=off``
all degrade silently to the batched-NumPy flush, and both paths stamp
bit-identical rows (the kernel is an evaluation order change, not a
model change).

This is deliberately *not* a build-time extension: the repository must
stay importable from source with nothing but numpy.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
import threading

import numpy as np

#: Environment switch: ``auto`` (default) compiles when possible,
#: ``off`` disables the kernel entirely (pure-NumPy flush).
KERNEL_ENV = "REPRO_EMIT_KERNEL"

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* Expand the deferred emission queue into row-major int64 trace rows.

   order      queue of template ids (n_entries)
   dyn        flat stream of dynamic operands, arity[tid] per entry
   statics    concatenated template rows (8 cells each)
   static_off per-tid row offset into statics
   rows       per-tid row count
   arity      per-tid dynamic-operand count
   fix_off    per-tid offset into fixups (in fixup records)
   fix_cnt    per-tid fixup record count
   fixups     packed (row, col, dyn_index, coefficient) records
   out        destination rows (caller-reserved, row-major, 8 cells)

   Template id 0 is RAW: arity 8, the operands are the row itself. */

int64_t burst_flush(const int64_t *order, int64_t n_entries,
                    const int64_t *dyn,
                    const int64_t *statics,
                    const int64_t *static_off,
                    const int64_t *rows, const int64_t *arity,
                    const int64_t *fix_off, const int64_t *fix_cnt,
                    const int64_t *fixups,
                    int64_t *out)
{
    int64_t d = 0, r = 0;
    for (int64_t e = 0; e < n_entries; e++) {
        int64_t tid = order[e];
        int64_t k = rows[tid];
        int64_t *dst = out + r * 8;
        if (tid == 0) {
            memcpy(dst, dyn + d, 8 * sizeof(int64_t));
        } else {
            memcpy(dst, statics + static_off[tid] * 8,
                   (size_t)k * 8 * sizeof(int64_t));
            const int64_t *fx = fixups + fix_off[tid] * 4;
            for (int64_t f = fix_cnt[tid]; f > 0; f--, fx += 4)
                dst[fx[0] * 8 + fx[1]] += fx[3] * dyn[d + fx[2]];
        }
        d += arity[tid];
        r += k;
    }
    return r;
}
"""

_lock = threading.Lock()
_kernel = None
_kernel_tried = False

_P64 = ctypes.POINTER(ctypes.c_int64)


def _build() -> ctypes.CDLL | None:
    cc = (os.environ.get("CC") or shutil.which("cc")
          or shutil.which("gcc") or shutil.which("clang"))
    if cc is None:
        return None
    tmpdir = tempfile.mkdtemp(prefix="repro-emit-kernel-")
    atexit.register(shutil.rmtree, tmpdir, ignore_errors=True)
    src = os.path.join(tmpdir, "emit_kernel.c")
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    lib = os.path.join(tmpdir, "emit_kernel" + suffix)
    with open(src, "w", encoding="utf-8") as fh:
        fh.write(_SOURCE)
    cmd = [cc, "-O2", "-shared", "-fPIC", "-o", lib, src]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        dll = ctypes.CDLL(lib)
    except (OSError, subprocess.SubprocessError):
        return None
    dll.burst_flush.restype = ctypes.c_int64
    dll.burst_flush.argtypes = [
        _P64, ctypes.c_int64, _P64,
        _P64, _P64, _P64, _P64, _P64, _P64, _P64, _P64,
    ]
    return dll


class _FlushKernel:
    """Thin numpy-aware wrapper around the compiled entry point."""

    __slots__ = ("_dll",)

    def __init__(self, dll: ctypes.CDLL) -> None:
        self._dll = dll

    def burst_flush(self, order, n_entries, dyn, statics, static_off,
                    rows, arity, fix_off, fix_cnt, fixups, out) -> int:
        def p(arr: np.ndarray):
            return arr.ctypes.data_as(_P64)

        return int(self._dll.burst_flush(
            p(order), n_entries, p(dyn), p(statics), p(static_off),
            p(rows), p(arity), p(fix_off), p(fix_cnt), p(fixups),
            p(out)))


def get_kernel() -> _FlushKernel | None:
    """The compiled flush kernel, building on first use (or ``None``)."""
    global _kernel, _kernel_tried
    if os.environ.get(KERNEL_ENV, "auto").lower() in ("off", "0", "no"):
        return None
    with _lock:
        if not _kernel_tried:
            _kernel_tried = True
            dll = _build()
            _kernel = _FlushKernel(dll) if dll is not None else None
    return _kernel


def kernel_available() -> bool:
    return get_kernel() is not None
