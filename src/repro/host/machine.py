"""The instrumented host machine that run-time models emit instructions to.

A run-time model performs its semantic work in ordinary Python; for every
micro-operation it also calls one of the ``HostMachine`` emit helpers,
which appends a host instruction — PC, kind, overhead category, address —
to the columnar trace. Static code locations are modeled as *sites*: a
site name is interned once to a block of PCs inside the simulated
interpreter binary, so repeated executions of the same interpreter code
re-use the same PCs exactly as a real statically compiled interpreter
would. This is what lets the pintool annotate "the interpreter" once and
reuse the annotation for every guest program (Section IV-B of the paper).

The C calling convention is modeled explicitly because C function call
overhead is the paper's headline new finding: every interpreter-internal
helper call goes through :meth:`HostMachine.c_call`, which emits argument
moves, the call itself (direct or indirect), frame setup, register spills,
and the matching epilogue — all tagged ``C_FUNCTION_CALL``.
"""

from __future__ import annotations

from ..categories import OverheadCategory
from ..errors import VMError
from .address_space import AddressSpace, C_STACK_TOP
from .isa import (
    FLAG_COND,
    FLAG_INDIRECT,
    FLAG_TAKEN,
    INSTR_BYTES,
    InstrKind,
)
from .trace import InstructionTrace

#: Bytes of simulated static code reserved per site (32 instruction slots).
SITE_BLOCK = 32 * INSTR_BYTES

#: Granularity of bulk memory touches (one access per this many bytes).
TOUCH_GRANULARITY = 64

_C_CALL = int(OverheadCategory.C_FUNCTION_CALL)
_C_LIBRARY = int(OverheadCategory.C_LIBRARY)
_GC_CAT = int(OverheadCategory.GARBAGE_COLLECTION)

_ALU = int(InstrKind.ALU)
_FPU = int(InstrKind.FPU)
_LOAD = int(InstrKind.LOAD)
_STORE = int(InstrKind.STORE)
_BRANCH = int(InstrKind.BRANCH)
_CALL = int(InstrKind.CALL)
_ICALL = int(InstrKind.ICALL)
_RET = int(InstrKind.RET)
_MUL = int(InstrKind.MUL)
_DIV = int(InstrKind.DIV)


class HostMachine:
    """Emit API used by the run-time models; owns PCs, trace, and C stack."""

    def __init__(self, space: AddressSpace | None = None,
                 trace: InstructionTrace | None = None,
                 max_instructions: int = 200_000_000) -> None:
        self.space = space if space is not None else AddressSpace()
        self.trace = trace if trace is not None else InstructionTrace()
        self.max_instructions = max_instructions
        #: site name -> base PC (interpreter binary code region)
        self.site_table: dict[str, int] = {}
        self._site_cursor = self.space.code.base
        self._jit_cursor = self.space.jit_code.base
        self.origin = 0
        self.sp = C_STACK_TOP
        self._frames: list[tuple[int, int]] = []  # (saved sp, saves count)
        #: When True, emit helpers record nothing. The PyPy model's JIT
        #: sets this while replaying a compiled trace: semantic execution
        #: stays silent and the JIT emits its own compact code instead.
        self.suppressed = False
        #: Ablation knob: treat every indirect call as direct (perfect
        #: devirtualization, the related-work BTB optimizations taken to
        #: their limit).
        self.devirtualize = False
        #: Depth of modeled C library calls. While positive, emissions
        #: are re-tagged C_LIBRARY (except collector work): the paper
        #: measures "time in C library code" at function granularity, so
        #: everything a C extension does — including its allocations and
        #: internal calls — counts as C library time (Section IV-C.1).
        self.clib_depth = 0
        # Bind trace columns locally: emit helpers are the hottest code in
        # the package, and attribute lookups dominate otherwise.
        t = self.trace
        self._pc = t.pc
        self._kind = t.kind
        self._cat = t.category
        self._addr = t.addr
        self._size = t.size
        self._dep = t.dep
        self._flags = t.flags
        self._origin_col = t.origin

    # ------------------------------------------------------------------
    # Sites (static code locations)
    # ------------------------------------------------------------------

    def site(self, name: str) -> int:
        """Intern ``name`` and return its base PC in the code region."""
        pc = self.site_table.get(name)
        if pc is None:
            pc = self._site_cursor
            self._site_cursor += SITE_BLOCK
            if self._site_cursor > self.space.code.end:
                raise VMError("simulated interpreter code region exhausted")
            self.site_table[name] = pc
        return pc

    def jit_site(self, name: str, code_bytes: int = SITE_BLOCK) -> int:
        """Allocate a block of PCs in the JIT code region.

        Unlike interpreter sites, JIT sites are *not* deduplicated: each
        compiled trace gets fresh code, which is why JIT execution touches
        far more instruction-cache space than the interpreter loop.
        """
        pc = self._jit_cursor
        self._jit_cursor += max(code_bytes, INSTR_BYTES)
        if self._jit_cursor > self.space.jit_code.end:
            raise VMError("simulated JIT code region exhausted")
        self.site_table[name] = pc
        return pc

    def instruction_count(self) -> int:
        return len(self._pc)

    def check_budget(self) -> None:
        """Abort the simulation if the trace has grown past the budget."""
        if len(self._pc) > self.max_instructions:
            raise VMError(
                f"instruction budget exceeded "
                f"({self.max_instructions} host instructions); "
                "reduce the workload size or raise max_instructions")

    # ------------------------------------------------------------------
    # Emit helpers (hot path)
    # ------------------------------------------------------------------

    def _emit(self, pc: int, kind: int, cat: int, addr: int, size: int,
              dep: int, flags: int) -> None:
        if self.suppressed:
            return
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        self._pc.append(pc)
        self._kind.append(kind)
        self._cat.append(cat)
        self._addr.append(addr)
        self._size.append(size)
        self._dep.append(dep)
        self._flags.append(flags)
        self._origin_col.append(self.origin)

    def alu(self, site: int, cat: int, n: int = 1, dep: int = 1) -> None:
        """Emit ``n`` single-cycle ALU operations at ``site``."""
        emit = self._emit
        for i in range(n):
            emit(site + INSTR_BYTES * (i & 31), _ALU, cat, 0, 0, dep, 0)

    def fpu(self, site: int, cat: int, n: int = 1, dep: int = 1) -> None:
        """Emit ``n`` floating-point operations."""
        emit = self._emit
        for i in range(n):
            emit(site + INSTR_BYTES * (i & 31), _FPU, cat, 0, 0, dep, 0)

    def mul(self, site: int, cat: int, dep: int = 1) -> None:
        self._emit(site, _MUL, cat, 0, 0, dep, 0)

    def div(self, site: int, cat: int, dep: int = 1) -> None:
        self._emit(site, _DIV, cat, 0, 0, dep, 0)

    def load(self, site: int, cat: int, addr: int, size: int = 8,
             dep: int = 1) -> None:
        """Emit one memory read of ``size`` bytes at ``addr``."""
        self._emit(site, _LOAD, cat, addr, size, dep, 0)

    def store(self, site: int, cat: int, addr: int, size: int = 8,
              dep: int = 1) -> None:
        """Emit one memory write of ``size`` bytes at ``addr``."""
        self._emit(site, _STORE, cat, addr, size, dep, 0)

    def branch(self, site: int, cat: int, taken: bool,
               conditional: bool = True, target: int = 0,
               dep: int = 1) -> None:
        """Emit one direct branch; the predictor models its direction."""
        flags = (FLAG_TAKEN if taken else 0) | \
                (FLAG_COND if conditional else 0)
        self._emit(site, _BRANCH, cat, target, 0, dep, flags)

    def indirect_branch(self, site: int, cat: int, target: int,
                        dep: int = 1) -> None:
        """Emit one indirect jump (e.g. a computed-goto dispatch)."""
        self._emit(site, _BRANCH, cat, target, 0, dep,
                   FLAG_TAKEN | FLAG_INDIRECT)

    def touch_range(self, site: int, cat: int, addr: int, nbytes: int,
                    write: bool = False, dep: int = 1) -> None:
        """Emit one access per 64-byte chunk of ``[addr, addr+nbytes)``.

        Used for object initialization, GC copying/tracing, and C library
        buffer traffic. The 64-byte granularity matches the smallest cache
        line the sweeps use, so spatial locality is still visible to the
        line-size sweep (Fig 7d).
        """
        if nbytes <= 0:
            return
        kind = _STORE if write else _LOAD
        emit = self._emit
        first = addr - (addr % TOUCH_GRANULARITY)
        last = addr + nbytes - 1
        count = (last - first) // TOUCH_GRANULARITY + 1
        for i in range(count):
            emit(site + INSTR_BYTES * (i & 31), kind, cat,
                 first + i * TOUCH_GRANULARITY, TOUCH_GRANULARITY, dep, 0)

    # ------------------------------------------------------------------
    # C calling convention (the paper's new overhead source)
    # ------------------------------------------------------------------

    def c_call_enter(self, site: int, callee: int, *, indirect: bool = False,
                     args: int = 2, saves: int = 2,
                     frame_bytes: int = 64,
                     category: int = _C_CALL) -> None:
        """Emit a C call: argument moves, call, prologue, register spills.

        Everything here is tagged ``C_FUNCTION_CALL`` by default; the call
        instruction is marked indirect when invoked through a function
        pointer, which the paper's BTB analysis (Section IV-C.1)
        distinguishes. Calls *inside* modeled C library code pass
        ``category=C_LIBRARY`` — the paper accounts them as C library time
        and detects the calling-convention instructions within it
        automatically (Section IV-C.1's "still significant even in the C
        library code").
        """
        cat = category
        emit = self._emit
        # Argument setup: independent register moves.
        for i in range(args):
            emit(site + INSTR_BYTES * (i & 31), _ALU, cat, 0, 0, 0, 0)
        sp = self.sp
        if self.devirtualize:
            indirect = False
        # The call pushes the return address.
        call_kind = _ICALL if indirect else _CALL
        call_flags = (FLAG_TAKEN | FLAG_INDIRECT) if indirect else FLAG_TAKEN
        emit(site + 15 * INSTR_BYTES, call_kind, cat, callee, 0, 1,
             call_flags)
        emit(callee, _STORE, cat, sp - 8, 8, 1, 0)
        # Prologue: push rbp; mov rbp, rsp; sub rsp, frame.
        emit(callee + INSTR_BYTES, _STORE, cat, sp - 16, 8, 1, 0)
        emit(callee + 2 * INSTR_BYTES, _ALU, cat, 0, 0, 1, 0)
        emit(callee + 3 * INSTR_BYTES, _ALU, cat, 0, 0, 1, 0)
        # Callee-saved register spills.
        for i in range(saves):
            emit(callee + (4 + i) * INSTR_BYTES, _STORE, cat,
                 sp - 24 - 8 * i, 8, 0, 0)
        self.sp = sp - frame_bytes
        self._frames.append((sp, saves, cat))

    def c_call_exit(self, callee: int) -> None:
        """Emit the matching C epilogue: register restores, leave, ret."""
        if not self._frames:
            raise VMError("c_call_exit without matching c_call_enter")
        sp, saves, cat = self._frames.pop()
        emit = self._emit
        for i in range(saves):
            emit(callee + (10 + i) * INSTR_BYTES, _LOAD, cat,
                 sp - 24 - 8 * i, 8, 0, 0)
        # leave: mov rsp, rbp; pop rbp.
        emit(callee + 20 * INSTR_BYTES, _ALU, cat, 0, 0, 1, 0)
        emit(callee + 21 * INSTR_BYTES, _LOAD, cat, sp - 16, 8, 1, 0)
        emit(callee + 22 * INSTR_BYTES, _RET, cat, sp - 8, 0, 1,
             FLAG_TAKEN)
        self.sp = sp

    def c_call(self, site_name: str, callee_name: str, *,
               indirect: bool = False, args: int = 2, saves: int = 2,
               frame_bytes: int = 64,
               category: int = _C_CALL) -> "_CCallScope":
        """Context manager bracketing a modeled C helper call."""
        return _CCallScope(self, self.site(site_name),
                           self.site(callee_name), indirect, args, saves,
                           frame_bytes, category)

    def c_stack_slot(self, offset: int = 0) -> int:
        """Address of a local variable slot in the current C frame."""
        return self.sp + 16 + offset

    def clib_scope(self) -> "_ClibScope":
        """Context manager marking execution inside a C library function."""
        return _ClibScope(self)

    def unsuppressed(self) -> "_Unsuppressed":
        """Context manager that re-enables emission inside suppression.

        Used for work that must stay visible while a compiled trace
        replays: garbage collection and modeled C library calls.
        """
        return _Unsuppressed(self)

    @property
    def c_call_depth(self) -> int:
        return len(self._frames)


class _ClibScope:
    """``with machine.clib_scope():`` — emissions become C library time."""

    __slots__ = ("_machine",)

    def __init__(self, machine: HostMachine) -> None:
        self._machine = machine

    def __enter__(self) -> HostMachine:
        self._machine.clib_depth += 1
        return self._machine

    def __exit__(self, exc_type, exc, tb) -> None:
        self._machine.clib_depth -= 1


class _Unsuppressed:
    """``with machine.unsuppressed():`` — temporarily re-enable emission."""

    __slots__ = ("_machine", "_saved")

    def __init__(self, machine: HostMachine) -> None:
        self._machine = machine
        self._saved = False

    def __enter__(self) -> HostMachine:
        self._saved = self._machine.suppressed
        self._machine.suppressed = False
        return self._machine

    def __exit__(self, exc_type, exc, tb) -> None:
        self._machine.suppressed = self._saved


class _CCallScope:
    """``with machine.c_call(...):`` — emits call on enter, return on exit."""

    __slots__ = ("_machine", "_site", "_callee", "_indirect", "_args",
                 "_saves", "_frame_bytes", "_category")

    def __init__(self, machine: HostMachine, site: int, callee: int,
                 indirect: bool, args: int, saves: int,
                 frame_bytes: int, category: int = _C_CALL) -> None:
        self._machine = machine
        self._site = site
        self._callee = callee
        self._indirect = indirect
        self._args = args
        self._saves = saves
        self._frame_bytes = frame_bytes
        self._category = category

    def __enter__(self) -> int:
        self._machine.c_call_enter(
            self._site, self._callee, indirect=self._indirect,
            args=self._args, saves=self._saves,
            frame_bytes=self._frame_bytes, category=self._category)
        return self._callee

    def __exit__(self, exc_type, exc, tb) -> None:
        # Unwind even on guest exceptions so the C stack stays balanced.
        self._machine.c_call_exit(self._callee)
