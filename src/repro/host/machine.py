"""The instrumented host machine that run-time models emit instructions to.

A run-time model performs its semantic work in ordinary Python; for every
micro-operation it also calls one of the ``HostMachine`` emit helpers,
which appends a host instruction — PC, kind, overhead category, address —
to the columnar trace. Static code locations are modeled as *sites*: a
site name is interned once to a block of PCs inside the simulated
interpreter binary, so repeated executions of the same interpreter code
re-use the same PCs exactly as a real statically compiled interpreter
would. This is what lets the pintool annotate "the interpreter" once and
reuse the annotation for every guest program (Section IV-B of the paper).

The C calling convention is modeled explicitly because C function call
overhead is the paper's headline new finding: every interpreter-internal
helper call goes through :meth:`HostMachine.c_call`, which emits argument
moves, the call itself (direct or indirect), frame setup, register spills,
and the matching epilogue — all tagged ``C_FUNCTION_CALL``.
"""

from __future__ import annotations

import os

from ..categories import OverheadCategory
from ..errors import VMError
from .address_space import AddressSpace, C_STACK_TOP
from .isa import (
    FLAG_COND,
    FLAG_INDIRECT,
    FLAG_TAKEN,
    INSTR_BYTES,
    InstrKind,
)
from .burst import FLUSH_ENTRIES as _FLUSH_ENTRIES
from .trace import InstructionTrace

#: Bytes of simulated static code reserved per site (32 instruction slots).
SITE_BLOCK = 32 * INSTR_BYTES

#: Granularity of bulk memory touches (one access per this many bytes).
TOUCH_GRANULARITY = 64

_C_CALL = int(OverheadCategory.C_FUNCTION_CALL)
_C_LIBRARY = int(OverheadCategory.C_LIBRARY)
_GC_CAT = int(OverheadCategory.GARBAGE_COLLECTION)

_ALU = int(InstrKind.ALU)
_FPU = int(InstrKind.FPU)
_LOAD = int(InstrKind.LOAD)
_STORE = int(InstrKind.STORE)
_BRANCH = int(InstrKind.BRANCH)
_CALL = int(InstrKind.CALL)
_ICALL = int(InstrKind.ICALL)
_RET = int(InstrKind.RET)
_MUL = int(InstrKind.MUL)
_DIV = int(InstrKind.DIV)

#: Environment switch for the emission backend: ``auto`` (default)
#: selects the deferred burst engine, ``scalar`` the original per-row
#: append path. Both are bit-identical; ``scalar`` remains as the
#: reference implementation and slow-path fallback.
BACKEND_ENV = "REPRO_EMIT_BACKEND"

#: Emit helpers shadowed per-instance by ``_<name>_burst`` variants in
#: burst mode. The template recorder (:meth:`BurstEngine.record`) pops
#: these instance attributes for the duration of a recording run so the
#: scalar class bodies — which emit through ``self._emit`` — feed its
#: row collector instead of the raw queue.
BURST_SHADOWED = ("c_call_enter", "c_call_exit", "alu", "fpu", "mul",
                  "div", "load", "store", "branch", "indirect_branch",
                  "touch_range")


def resolve_backend(backend: str | None = None) -> str:
    """Normalize a backend request (arg wins over the environment)."""
    choice = (backend or os.environ.get(BACKEND_ENV, "auto")).lower()
    if choice in ("auto", "burst", ""):
        return "burst"
    if choice == "scalar":
        return "scalar"
    raise VMError(f"unknown {BACKEND_ENV} value: {choice!r} "
                  "(expected auto|burst|scalar)")


class HostMachine:
    """Emit API used by the run-time models; owns PCs, trace, and C stack."""

    def __init__(self, space: AddressSpace | None = None,
                 trace: InstructionTrace | None = None,
                 max_instructions: int = 200_000_000,
                 backend: str | None = None) -> None:
        self.space = space if space is not None else AddressSpace()
        self.trace = trace if trace is not None else InstructionTrace()
        self.max_instructions = max_instructions
        #: site name -> base PC (interpreter binary code region)
        self.site_table: dict[str, int] = {}
        self._site_cursor = self.space.code.base
        self._jit_cursor = self.space.jit_code.base
        self.origin = 0
        self.sp = C_STACK_TOP
        self._frames: list[tuple[int, int]] = []  # (saved sp, saves count)
        #: When True, emit helpers record nothing. The PyPy model's JIT
        #: sets this while replaying a compiled trace: semantic execution
        #: stays silent and the JIT emits its own compact code instead.
        self.suppressed = False
        #: Ablation knob: treat every indirect call as direct (perfect
        #: devirtualization, the related-work BTB optimizations taken to
        #: their limit).
        self.devirtualize = False
        #: Depth of modeled C library calls. While positive, emissions
        #: are re-tagged C_LIBRARY (except collector work): the paper
        #: measures "time in C library code" at function granularity, so
        #: everything a C extension does — including its allocations and
        #: internal calls — counts as C library time (Section IV-C.1).
        self.clib_depth = 0
        # Bind the trace's staging columns locally: emit helpers are the
        # hottest code in the package, and attribute lookups dominate
        # otherwise. The trace drains these into its committed buffer in
        # bulk; the array objects themselves are stable across drains.
        (self._pc, self._kind, self._cat, self._addr, self._size,
         self._dep, self._flags, self._origin_col) = self.trace._stage
        self.backend = resolve_backend(backend)
        self._engine = None
        if self.backend == "burst":
            from .burst import BurstEngine
            self._engine = BurstEngine(self)
            # Instance-attribute shadowing: the scalar class methods stay
            # reachable (template recording and the slow path use them).
            self._emit = self._emit_burst
            self._cc_enter_tids: dict[tuple, tuple | None] = {}
            self._cc_exit_tids: dict[tuple, tuple | None] = {}
            # The single-row helpers enqueue RAW rows directly instead
            # of going through ``_emit_burst`` — one Python call per row
            # instead of two on the hottest path in the package. The
            # engine's recorder pops these shadows while a template is
            # being recorded so the scalar bodies reach its collector.
            for name in BURST_SHADOWED:
                setattr(self, name, getattr(self, "_" + name + "_burst"))

    # ------------------------------------------------------------------
    # Sites (static code locations)
    # ------------------------------------------------------------------

    def site(self, name: str) -> int:
        """Intern ``name`` and return its base PC in the code region."""
        pc = self.site_table.get(name)
        if pc is None:
            pc = self._site_cursor
            self._site_cursor += SITE_BLOCK
            if self._site_cursor > self.space.code.end:
                raise VMError("simulated interpreter code region exhausted")
            self.site_table[name] = pc
        return pc

    def jit_site(self, name: str, code_bytes: int = SITE_BLOCK) -> int:
        """Allocate a block of PCs in the JIT code region.

        Unlike interpreter sites, JIT sites are *not* deduplicated: each
        compiled trace gets fresh code, which is why JIT execution touches
        far more instruction-cache space than the interpreter loop.
        """
        pc = self._jit_cursor
        self._jit_cursor += max(code_bytes, INSTR_BYTES)
        if self._jit_cursor > self.space.jit_code.end:
            raise VMError("simulated JIT code region exhausted")
        self.site_table[name] = pc
        return pc

    def instruction_count(self) -> int:
        return len(self.trace)

    def check_budget(self) -> None:
        """Abort the simulation if the trace has grown past the budget."""
        if len(self.trace) > self.max_instructions:
            raise VMError(
                f"instruction budget exceeded "
                f"({self.max_instructions} host instructions); "
                "reduce the workload size or raise max_instructions")

    # ------------------------------------------------------------------
    # Emit helpers (hot path)
    # ------------------------------------------------------------------

    def _emit(self, pc: int, kind: int, cat: int, addr: int, size: int,
              dep: int, flags: int) -> None:
        if self.suppressed:
            return
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        self._pc.append(pc)
        self._kind.append(kind)
        self._cat.append(cat)
        self._addr.append(addr)
        self._size.append(size)
        self._dep.append(dep)
        self._flags.append(flags)
        self._origin_col.append(self.origin)

    def _emit_burst(self, pc: int, kind: int, cat: int, addr: int,
                    size: int, dep: int, flags: int) -> None:
        """Burst-backend ``_emit``: enqueue one RAW row for the flush."""
        if self.suppressed:
            return
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        engine = self._engine
        engine.order.append(0)
        engine.dyn.extend(
            (pc, kind, cat, addr, size, dep, flags, self.origin))
        if len(engine.order) >= _FLUSH_ENTRIES:
            engine.flush()

    def _raw_burst(self, pc: int, kind: int, cat: int, addr: int,
                   size: int, dep: int, flags: int) -> None:
        """Enqueue one RAW row (burst backend, suppression pre-checked)."""
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        engine = self._engine
        engine.order.append(0)
        engine.dyn.extend(
            (pc, kind, cat, addr, size, dep, flags, self.origin))
        if len(engine.order) >= _FLUSH_ENTRIES:
            engine.flush()

    def _alu_burst(self, site: int, cat: int, n: int = 1,
                   dep: int = 1) -> None:
        if self.suppressed:
            return
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        engine = self._engine
        order = engine.order
        dyn = engine.dyn
        origin = self.origin
        if n == 1:
            order.append(0)
            dyn.extend((site, _ALU, cat, 0, 0, dep, 0, origin))
        else:
            for i in range(n):
                order.append(0)
                dyn.extend((site + INSTR_BYTES * (i & 31), _ALU, cat,
                            0, 0, dep, 0, origin))
        if len(engine.order) >= _FLUSH_ENTRIES:
            engine.flush()

    def _fpu_burst(self, site: int, cat: int, n: int = 1,
                   dep: int = 1) -> None:
        if self.suppressed:
            return
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        engine = self._engine
        order = engine.order
        dyn = engine.dyn
        origin = self.origin
        for i in range(n):
            order.append(0)
            dyn.extend((site + INSTR_BYTES * (i & 31), _FPU, cat,
                        0, 0, dep, 0, origin))
        if len(engine.order) >= _FLUSH_ENTRIES:
            engine.flush()

    def _mul_burst(self, site: int, cat: int, dep: int = 1) -> None:
        if not self.suppressed:
            self._raw_burst(site, _MUL, cat, 0, 0, dep, 0)

    def _div_burst(self, site: int, cat: int, dep: int = 1) -> None:
        if not self.suppressed:
            self._raw_burst(site, _DIV, cat, 0, 0, dep, 0)

    def _load_burst(self, site: int, cat: int, addr: int, size: int = 8,
                    dep: int = 1) -> None:
        if self.suppressed:
            return
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        engine = self._engine
        engine.order.append(0)
        engine.dyn.extend(
            (site, _LOAD, cat, addr, size, dep, 0, self.origin))
        if len(engine.order) >= _FLUSH_ENTRIES:
            engine.flush()

    def _store_burst(self, site: int, cat: int, addr: int, size: int = 8,
                     dep: int = 1) -> None:
        if self.suppressed:
            return
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        engine = self._engine
        engine.order.append(0)
        engine.dyn.extend(
            (site, _STORE, cat, addr, size, dep, 0, self.origin))
        if len(engine.order) >= _FLUSH_ENTRIES:
            engine.flush()

    def _branch_burst(self, site: int, cat: int, taken: bool,
                      conditional: bool = True, target: int = 0,
                      dep: int = 1) -> None:
        if self.suppressed:
            return
        flags = (FLAG_TAKEN if taken else 0) | \
                (FLAG_COND if conditional else 0)
        self._raw_burst(site, _BRANCH, cat, target, 0, dep, flags)

    def _indirect_branch_burst(self, site: int, cat: int, target: int,
                               dep: int = 1) -> None:
        if not self.suppressed:
            self._raw_burst(site, _BRANCH, cat, target, 0, dep,
                            FLAG_TAKEN | FLAG_INDIRECT)

    def _touch_range_burst(self, site: int, cat: int, addr: int,
                           nbytes: int, write: bool = False,
                           dep: int = 1) -> None:
        if nbytes <= 0 or self.suppressed:
            return
        if self.clib_depth and cat != _GC_CAT:
            cat = _C_LIBRARY
        kind = _STORE if write else _LOAD
        engine = self._engine
        order = engine.order
        dyn = engine.dyn
        origin = self.origin
        first = addr - (addr % TOUCH_GRANULARITY)
        last = addr + nbytes - 1
        count = (last - first) // TOUCH_GRANULARITY + 1
        for i in range(count):
            order.append(0)
            dyn.extend((site + INSTR_BYTES * (i & 31), kind, cat,
                        first + i * TOUCH_GRANULARITY, TOUCH_GRANULARITY,
                        dep, 0, origin))
        if len(engine.order) >= _FLUSH_ENTRIES:
            engine.flush()

    def alu(self, site: int, cat: int, n: int = 1, dep: int = 1) -> None:
        """Emit ``n`` single-cycle ALU operations at ``site``."""
        emit = self._emit
        for i in range(n):
            emit(site + INSTR_BYTES * (i & 31), _ALU, cat, 0, 0, dep, 0)

    def fpu(self, site: int, cat: int, n: int = 1, dep: int = 1) -> None:
        """Emit ``n`` floating-point operations."""
        emit = self._emit
        for i in range(n):
            emit(site + INSTR_BYTES * (i & 31), _FPU, cat, 0, 0, dep, 0)

    def mul(self, site: int, cat: int, dep: int = 1) -> None:
        self._emit(site, _MUL, cat, 0, 0, dep, 0)

    def div(self, site: int, cat: int, dep: int = 1) -> None:
        self._emit(site, _DIV, cat, 0, 0, dep, 0)

    def load(self, site: int, cat: int, addr: int, size: int = 8,
             dep: int = 1) -> None:
        """Emit one memory read of ``size`` bytes at ``addr``."""
        self._emit(site, _LOAD, cat, addr, size, dep, 0)

    def store(self, site: int, cat: int, addr: int, size: int = 8,
              dep: int = 1) -> None:
        """Emit one memory write of ``size`` bytes at ``addr``."""
        self._emit(site, _STORE, cat, addr, size, dep, 0)

    def branch(self, site: int, cat: int, taken: bool,
               conditional: bool = True, target: int = 0,
               dep: int = 1) -> None:
        """Emit one direct branch; the predictor models its direction."""
        flags = (FLAG_TAKEN if taken else 0) | \
                (FLAG_COND if conditional else 0)
        self._emit(site, _BRANCH, cat, target, 0, dep, flags)

    def indirect_branch(self, site: int, cat: int, target: int,
                        dep: int = 1) -> None:
        """Emit one indirect jump (e.g. a computed-goto dispatch)."""
        self._emit(site, _BRANCH, cat, target, 0, dep,
                   FLAG_TAKEN | FLAG_INDIRECT)

    def touch_range(self, site: int, cat: int, addr: int, nbytes: int,
                    write: bool = False, dep: int = 1) -> None:
        """Emit one access per 64-byte chunk of ``[addr, addr+nbytes)``.

        Used for object initialization, GC copying/tracing, and C library
        buffer traffic. The 64-byte granularity matches the smallest cache
        line the sweeps use, so spatial locality is still visible to the
        line-size sweep (Fig 7d).
        """
        if nbytes <= 0:
            return
        kind = _STORE if write else _LOAD
        emit = self._emit
        first = addr - (addr % TOUCH_GRANULARITY)
        last = addr + nbytes - 1
        count = (last - first) // TOUCH_GRANULARITY + 1
        for i in range(count):
            emit(site + INSTR_BYTES * (i & 31), kind, cat,
                 first + i * TOUCH_GRANULARITY, TOUCH_GRANULARITY, dep, 0)

    # ------------------------------------------------------------------
    # C calling convention (the paper's new overhead source)
    # ------------------------------------------------------------------

    def c_call_enter(self, site: int, callee: int, *, indirect: bool = False,
                     args: int = 2, saves: int = 2,
                     frame_bytes: int = 64,
                     category: int = _C_CALL) -> None:
        """Emit a C call: argument moves, call, prologue, register spills.

        Everything here is tagged ``C_FUNCTION_CALL`` by default; the call
        instruction is marked indirect when invoked through a function
        pointer, which the paper's BTB analysis (Section IV-C.1)
        distinguishes. Calls *inside* modeled C library code pass
        ``category=C_LIBRARY`` — the paper accounts them as C library time
        and detects the calling-convention instructions within it
        automatically (Section IV-C.1's "still significant even in the C
        library code").
        """
        if self.devirtualize:
            indirect = False
        sp = self.sp
        self._rows_c_enter(site, callee, indirect, args, saves, category,
                           sp)
        self.sp = sp - frame_bytes
        self._frames.append((sp, saves, category))

    def _rows_c_enter(self, site: int, callee: int, indirect: bool,
                      args: int, saves: int, cat: int, sp: int) -> None:
        """Emission-only body of :meth:`c_call_enter` (no side effects)."""
        emit = self._emit
        # Argument setup: independent register moves.
        for i in range(args):
            emit(site + INSTR_BYTES * (i & 31), _ALU, cat, 0, 0, 0, 0)
        # The call pushes the return address.
        call_kind = _ICALL if indirect else _CALL
        call_flags = (FLAG_TAKEN | FLAG_INDIRECT) if indirect else FLAG_TAKEN
        emit(site + 15 * INSTR_BYTES, call_kind, cat, callee, 0, 1,
             call_flags)
        emit(callee, _STORE, cat, sp - 8, 8, 1, 0)
        # Prologue: push rbp; mov rbp, rsp; sub rsp, frame.
        emit(callee + INSTR_BYTES, _STORE, cat, sp - 16, 8, 1, 0)
        emit(callee + 2 * INSTR_BYTES, _ALU, cat, 0, 0, 1, 0)
        emit(callee + 3 * INSTR_BYTES, _ALU, cat, 0, 0, 1, 0)
        # Callee-saved register spills.
        for i in range(saves):
            emit(callee + (4 + i) * INSTR_BYTES, _STORE, cat,
                 sp - 24 - 8 * i, 8, 0, 0)

    def c_call_exit(self, callee: int) -> None:
        """Emit the matching C epilogue: register restores, leave, ret."""
        if not self._frames:
            raise VMError("c_call_exit without matching c_call_enter")
        sp, saves, cat = self._frames.pop()
        self._rows_c_exit(callee, saves, cat, sp)
        self.sp = sp

    def _rows_c_exit(self, callee: int, saves: int, cat: int,
                     sp: int) -> None:
        """Emission-only body of :meth:`c_call_exit` (no side effects)."""
        emit = self._emit
        for i in range(saves):
            emit(callee + (10 + i) * INSTR_BYTES, _LOAD, cat,
                 sp - 24 - 8 * i, 8, 0, 0)
        # leave: mov rsp, rbp; pop rbp.
        emit(callee + 20 * INSTR_BYTES, _ALU, cat, 0, 0, 1, 0)
        emit(callee + 21 * INSTR_BYTES, _LOAD, cat, sp - 16, 8, 1, 0)
        emit(callee + 22 * INSTR_BYTES, _RET, cat, sp - 8, 0, 1,
             FLAG_TAKEN)

    def _c_call_enter_burst(self, site: int, callee: int, *,
                            indirect: bool = False, args: int = 2,
                            saves: int = 2, frame_bytes: int = 64,
                            category: int = _C_CALL) -> None:
        """Burst-backend :meth:`c_call_enter`: one queued template."""
        if self.devirtualize:
            indirect = False
        sp = self.sp
        if self.suppressed or self.clib_depth:
            # The raw queue applies suppression / C-library re-tagging.
            self._rows_c_enter(site, callee, indirect, args, saves,
                               category, sp)
        else:
            key = (site, callee, indirect, args, saves, category)
            entry = self._cc_enter_tids.get(key, ())
            if entry == ():
                entry = self._record_c_enter(key)
            if entry is None:
                self._rows_c_enter(site, callee, indirect, args, saves,
                                   category, sp)
            else:
                tid, rows = entry
                engine = self._engine
                engine.order.append(tid)
                engine.dyn.extend((self.origin, sp))
        self.sp = sp - frame_bytes
        self._frames.append((sp, saves, category))

    def _record_c_enter(self, key: tuple) -> tuple | None:
        site, callee, indirect, args, saves, category = key

        def thunk(_values):
            self._rows_c_enter(site, callee, indirect, args, saves,
                               category, self.sp)

        tid = self._engine.record(thunk, [], implicit=("origin", "sp"))
        entry = None if tid is None \
            else (tid, self._engine.templates[tid].rows)
        self._cc_enter_tids[key] = entry
        return entry

    def _c_call_exit_burst(self, callee: int) -> None:
        """Burst-backend :meth:`c_call_exit`: one queued template."""
        if not self._frames:
            raise VMError("c_call_exit without matching c_call_enter")
        sp, saves, cat = self._frames.pop()
        if self.suppressed or self.clib_depth:
            self._rows_c_exit(callee, saves, cat, sp)
        else:
            key = (callee, saves, cat)
            entry = self._cc_exit_tids.get(key, ())
            if entry == ():
                entry = self._record_c_exit(key)
            if entry is None:
                self._rows_c_exit(callee, saves, cat, sp)
            else:
                tid, rows = entry
                engine = self._engine
                engine.order.append(tid)
                engine.dyn.extend((self.origin, sp))
        self.sp = sp

    def _record_c_exit(self, key: tuple) -> tuple | None:
        callee, saves, cat = key

        def thunk(_values):
            self._rows_c_exit(callee, saves, cat, self.sp)

        tid = self._engine.record(thunk, [], implicit=("origin", "sp"))
        entry = None if tid is None \
            else (tid, self._engine.templates[tid].rows)
        self._cc_exit_tids[key] = entry
        return entry

    def c_call(self, site_name: str, callee_name: str, *,
               indirect: bool = False, args: int = 2, saves: int = 2,
               frame_bytes: int = 64,
               category: int = _C_CALL) -> "_CCallScope":
        """Context manager bracketing a modeled C helper call."""
        return _CCallScope(self, self.site(site_name),
                           self.site(callee_name), indirect, args, saves,
                           frame_bytes, category)

    def c_stack_slot(self, offset: int = 0) -> int:
        """Address of a local variable slot in the current C frame."""
        return self.sp + 16 + offset

    def clib_scope(self) -> "_ClibScope":
        """Context manager marking execution inside a C library function."""
        return _ClibScope(self)

    def unsuppressed(self) -> "_Unsuppressed":
        """Context manager that re-enables emission inside suppression.

        Used for work that must stay visible while a compiled trace
        replays: garbage collection and modeled C library calls.
        """
        return _Unsuppressed(self)

    @property
    def c_call_depth(self) -> int:
        return len(self._frames)


class _ClibScope:
    """``with machine.clib_scope():`` — emissions become C library time."""

    __slots__ = ("_machine",)

    def __init__(self, machine: HostMachine) -> None:
        self._machine = machine

    def __enter__(self) -> HostMachine:
        self._machine.clib_depth += 1
        return self._machine

    def __exit__(self, exc_type, exc, tb) -> None:
        self._machine.clib_depth -= 1


class _Unsuppressed:
    """``with machine.unsuppressed():`` — temporarily re-enable emission."""

    __slots__ = ("_machine", "_saved")

    def __init__(self, machine: HostMachine) -> None:
        self._machine = machine
        self._saved = False

    def __enter__(self) -> HostMachine:
        self._saved = self._machine.suppressed
        self._machine.suppressed = False
        return self._machine

    def __exit__(self, exc_type, exc, tb) -> None:
        self._machine.suppressed = self._saved


class _CCallScope:
    """``with machine.c_call(...):`` — emits call on enter, return on exit."""

    __slots__ = ("_machine", "_site", "_callee", "_indirect", "_args",
                 "_saves", "_frame_bytes", "_category")

    def __init__(self, machine: HostMachine, site: int, callee: int,
                 indirect: bool, args: int, saves: int,
                 frame_bytes: int, category: int = _C_CALL) -> None:
        self._machine = machine
        self._site = site
        self._callee = callee
        self._indirect = indirect
        self._args = args
        self._saves = saves
        self._frame_bytes = frame_bytes
        self._category = category

    def __enter__(self) -> int:
        self._machine.c_call_enter(
            self._site, self._callee, indirect=self._indirect,
            args=self._args, saves=self._saves,
            frame_bytes=self._frame_bytes, category=self._category)
        return self._callee

    def __exit__(self, exc_type, exc, tb) -> None:
        # Unwind even on guest exceptions so the C stack stays balanced.
        self._machine.c_call_exit(self._callee)
