"""Simulated flat address space shared by a run-time and the cache models.

Regions follow the layout of a real interpreter process:

========  =====================  ==============================================
region    base                   contents
========  =====================  ==============================================
code      0x0040_0000            the statically compiled interpreter binary
vm_data   0x0060_0000            VM globals: dispatch table, small-int cache
jit_code  0x0800_0000            machine code emitted by the tracing JIT
heap      0x1000_0000            CPython-style malloc heap (freelist reuse)
nursery   0x2000_0000            PyPy-model GC nursery (bump allocation)
old       0x4000_0000            PyPy-model GC old space
c_lib     0x6000_0000            modeled C library working buffers
c_stack   0x7fff_ffff (down)     native C call stack
========  =====================  ==============================================

Addresses are plain integers; nothing is ever stored at them. Their only
job is to give the cache hierarchy a realistic access stream — which is
exactly how the nursery-size results of Figures 10-17 become emergent
rather than scripted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AllocationError

CODE_BASE = 0x0040_0000
VM_DATA_BASE = 0x0060_0000
JIT_CODE_BASE = 0x0800_0000
HEAP_BASE = 0x1000_0000
NURSERY_BASE = 0x2000_0000
OLD_BASE = 0x4000_0000
C_LIB_BASE = 0x6000_0000
C_STACK_TOP = 0x7FFF_FF00

_ALIGN = 16


def align(size: int, alignment: int = _ALIGN) -> int:
    """Round ``size`` up to the given alignment."""
    return (size + alignment - 1) & ~(alignment - 1)


@dataclass
class Region:
    """A contiguous address range with a bump-allocation cursor."""

    name: str
    base: int
    size: int
    cursor: int = field(default=0)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AllocationError(f"region {self.name}: size must be > 0")
        self.cursor = self.base

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def used(self) -> int:
        return self.cursor - self.base

    @property
    def remaining(self) -> int:
        return self.end - self.cursor

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def bump(self, size: int) -> int:
        """Allocate ``size`` aligned bytes; raise if the region is full."""
        size = align(size)
        if self.cursor + size > self.end:
            raise AllocationError(
                f"region {self.name} exhausted "
                f"(used {self.used} of {self.size}, request {size})")
        addr = self.cursor
        self.cursor += size
        return addr

    def reset(self) -> None:
        """Reset the bump cursor (used by nursery collection)."""
        self.cursor = self.base


class AddressSpace:
    """The full set of regions for one simulated run-time process."""

    def __init__(self, nursery_size: int = 4 * 1024 * 1024) -> None:
        self.code = Region("code", CODE_BASE, 2 * 1024 * 1024)
        self.vm_data = Region("vm_data", VM_DATA_BASE, 8 * 1024 * 1024)
        self.jit_code = Region("jit_code", JIT_CODE_BASE, 64 * 1024 * 1024)
        self.heap = Region("heap", HEAP_BASE, 256 * 1024 * 1024)
        self.nursery = Region("nursery", NURSERY_BASE, nursery_size)
        self.old = Region("old", OLD_BASE, 512 * 1024 * 1024)
        self.c_lib = Region("c_lib", C_LIB_BASE, 64 * 1024 * 1024)
        self._regions = [
            self.code, self.vm_data, self.jit_code, self.heap,
            self.nursery, self.old, self.c_lib,
        ]

    def region_of(self, addr: int) -> Region | None:
        """Return the region containing ``addr``, or None (e.g. C stack)."""
        for region in self._regions:
            if region.contains(addr):
                return region
        return None


class FreelistAllocator:
    """CPython-style small-object allocator over the ``heap`` region.

    Freed blocks are recycled LIFO per size class, so a dealloc/alloc pair
    returns a *recently touched* address. This models the temporal locality
    that lets the CPython model run well with small caches (Section V-A),
    in contrast with the nursery's steadily advancing bump pointer.
    """

    #: Size classes in bytes; requests above the largest use bump allocation.
    SIZE_CLASSES = (16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
                    1024, 2048)

    def __init__(self, region: Region, recycle: bool = True) -> None:
        self._region = region
        #: Ablation knob: with recycling off, every allocation bumps and
        #: frees are dropped — the allocator loses its temporal locality.
        self.recycle = recycle
        self._freelists: dict[int, list[int]] = {
            size: [] for size in self.SIZE_CLASSES}
        self.alloc_count = 0
        self.free_count = 0
        self.reuse_count = 0

    def _size_class(self, size: int) -> int | None:
        for cls_size in self.SIZE_CLASSES:
            if size <= cls_size:
                return cls_size
        return None

    def alloc(self, size: int) -> int:
        """Return an address for ``size`` bytes, reusing freed blocks."""
        self.alloc_count += 1
        cls_size = self._size_class(size)
        if cls_size is not None:
            if self.recycle:
                freelist = self._freelists[cls_size]
                if freelist:
                    self.reuse_count += 1
                    return freelist.pop()
            return self._region.bump(cls_size)
        return self._region.bump(size)

    def free(self, addr: int, size: int) -> None:
        """Return a block to its size-class freelist."""
        self.free_count += 1
        if not self.recycle:
            return
        cls_size = self._size_class(size)
        if cls_size is not None:
            freelist = self._freelists[cls_size]
            # Bound freelist growth the way CPython's arenas do, roughly.
            if len(freelist) < 8192:
                freelist.append(addr)
